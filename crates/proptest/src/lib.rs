//! A minimal, dependency-free subset of the [`proptest`] API, vendored so
//! the workspace builds and tests without network access to crates.io.
//!
//! Supported surface (what this repository's tests use):
//!
//! * `proptest! { ... }` blocks with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header and
//!   parameters written either as `name in strategy` or `name: Type`;
//! * integer range strategies (`0u8..6`, `1u32..`, `0..=n`), `any::<T>()`,
//!   `Just`, tuple strategies, `.prop_map`, `prop_oneof!`, and
//!   `proptest::collection::vec`;
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Generation is a deterministic splitmix64 stream seeded per test
//! function, so failures are reproducible run to run. There is **no
//! shrinking**: a failing case panics with the generated inputs visible in
//! the assertion message only. Swap the workspace dependency back to the
//! registry crate to regain shrinking.
//!
//! [`proptest`]: https://docs.rs/proptest

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub use strategy::{any, Just, Strategy};
pub use test_runner::ProptestConfig;

/// Deterministic generator state (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A stream seeded from a test-specific value.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty range");
        // Modulo bias is irrelevant for test-case generation.
        self.next_u64() % bound
    }

    /// Uniform value in `[0, bound)` over the full 128-bit space.
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0, "empty range");
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % bound
    }
}

/// Seed derivation for one test function: FNV-1a over the name.
#[doc(hidden)]
pub fn seed_for(name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h.wrapping_add(case.wrapping_mul(0x2545_f491_4f6c_dd1d))
}

/// The test-block macro. Expands each contained function into a plain
/// `#[test]` that evaluates its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            for __case in 0..__cfg.cases as u64 {
                let mut __rng = $crate::TestRng::new($crate::seed_for(stringify!($name), __case));
                $crate::__proptest_bind!(__rng, ($($params)*), $body);
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, (), $body:block) => {
        { $body }
    };
    ($rng:ident, ($var:ident in $strat:expr $(, $($rest:tt)*)?), $body:block) => {
        {
            let $var = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
            $crate::__proptest_bind!($rng, ($($($rest)*)?), $body)
        }
    };
    ($rng:ident, ($var:ident : $ty:ty $(, $($rest:tt)*)?), $body:block) => {
        {
            let $var = $crate::strategy::Strategy::generate(&$crate::strategy::any::<$ty>(), &mut $rng);
            $crate::__proptest_bind!($rng, ($($($rest)*)?), $body)
        }
    };
}

/// In-test assertion; panics (no shrinking in this subset).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// In-test equality assertion; panics (no shrinking in this subset).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// In-test inequality assertion; panics (no shrinking in this subset).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Choose uniformly among the listed strategies (all must yield the same
/// value type). Weighted variants of the real macro are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Step {
        Write(u8, u32),
        Read(u8),
        Fence,
    }

    fn step() -> impl Strategy<Value = Step> {
        prop_oneof![
            (0u8..4, any::<u32>()).prop_map(|(r, v)| Step::Write(r, v)),
            (0u8..4).prop_map(Step::Read),
            Just(Step::Fence),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..7, y in 1u32.., z: u16) {
            prop_assert!((3..7).contains(&x));
            prop_assert!(y >= 1);
            let _ = z;
        }

        #[test]
        fn vec_respects_size(v in crate::collection::vec(0u32..100, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|x| *x < 100));
        }

        #[test]
        fn oneof_and_map_compose(steps in crate::collection::vec(step(), 1..20)) {
            prop_assert!(!steps.is_empty());
            for s in steps {
                if let Step::Write(r, _) | Step::Read(r) = s {
                    prop_assert!(r < 4);
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let make = || {
            let mut rng = crate::TestRng::new(crate::seed_for("determinism", 7));
            (0..8)
                .map(|_| (0u32..1000).generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(make(), make());
    }
}
