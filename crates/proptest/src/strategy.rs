//! Value-generation strategies: the composable core of the shim.

use crate::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// A recipe for producing values of `Self::Value` from a [`TestRng`].
///
/// Unlike the registry crate there is no value tree — `generate` yields a
/// plain value and failing cases are not shrunk.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for an [`Arbitrary`] type.
pub struct Any<T>(PhantomData<T>);

/// Full-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Bidirectional map between an integer type and an order-preserving
/// `u128` encoding, so every range strategy shares one sampling routine.
pub trait IntValue: Copy {
    const DOMAIN_MAX: u128;
    fn to_offset(self) -> u128;
    fn from_offset(off: u128) -> Self;
}

macro_rules! int_value_unsigned {
    ($($t:ty),*) => {$(
        impl IntValue for $t {
            const DOMAIN_MAX: u128 = <$t>::MAX as u128;
            fn to_offset(self) -> u128 {
                self as u128
            }
            fn from_offset(off: u128) -> $t {
                off as $t
            }
        }
    )*};
}

int_value_unsigned!(u8, u16, u32, u64, u128, usize);

macro_rules! int_value_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl IntValue for $t {
            const DOMAIN_MAX: u128 = <$u>::MAX as u128;
            fn to_offset(self) -> u128 {
                // Shift so the encoding is order-preserving and non-negative.
                ((self as $u) ^ (1 << (<$u>::BITS - 1))) as u128
            }
            fn from_offset(off: u128) -> $t {
                ((off as $u) ^ (1 << (<$u>::BITS - 1))) as $t
            }
        }
    )*};
}

int_value_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize);

impl<T: IntValue> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let lo = self.start.to_offset();
        let hi = self.end.to_offset();
        assert!(lo < hi, "empty range strategy");
        T::from_offset(lo + rng.below_u128(hi - lo))
    }
}

impl<T: IntValue> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let lo = self.start().to_offset();
        let hi = self.end().to_offset();
        assert!(lo <= hi, "empty range strategy");
        if lo == 0 && hi == T::DOMAIN_MAX {
            return T::from_offset(u128::arbitrary(rng) % (T::DOMAIN_MAX + 1).max(1));
        }
        T::from_offset(lo + rng.below_u128(hi - lo + 1))
    }
}

impl<T: IntValue> Strategy for RangeFrom<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let lo = self.start.to_offset();
        let span = T::DOMAIN_MAX - lo + 1;
        T::from_offset(lo + rng.below_u128(span))
    }
}

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Object-safe generation, used to erase heterogeneous strategies so
/// `prop_oneof!` can hold them in one `Vec`.
pub trait DynStrategy<T> {
    fn gen_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Erase a strategy for storage in a [`Union`].
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn DynStrategy<S::Value>> {
    Box::new(s)
}

/// Uniform choice among alternatives; the expansion of `prop_oneof!`.
pub struct Union<T> {
    options: Vec<Box<dyn DynStrategy<T>>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn DynStrategy<T>>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].gen_dyn(rng)
    }
}

impl<T, S> Strategy for Box<S>
where
    S: Strategy<Value = T> + ?Sized,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}
