//! Test-runner configuration (`ProptestConfig`).

/// How many cases each `proptest!` function runs. Other knobs of the
/// registry crate (fork, timeout, failure persistence) do not exist here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per test function.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}
