//! Stage-level tests of the dispatcher's stall accounting: every stall
//! cause the paper's design implies (register locks, busy units, a full
//! execution stage, fences) must be observable and correctly attributed,
//! because the experiments use these counters as evidence.

use fu_isa::msg::DevDeframer;
use fu_isa::{DevMsg, HostMsg, InstrWord, MgmtOp, UserInstr, Word};
use fu_rtm::testing::LatencyFu;
use fu_rtm::{CoprocConfig, Coprocessor};

fn machine(latency: u32) -> Coprocessor {
    Coprocessor::new(
        CoprocConfig {
            rx_frames_per_cycle: 8,
            rx_fifo_depth: 64,
            ..CoprocConfig::default()
        },
        vec![Box::new(LatencyFu::new("u", 1, latency))],
    )
    .unwrap()
}

fn run(coproc: &mut Coprocessor, msgs: &[HostMsg]) -> Vec<DevMsg> {
    let mut frames: std::collections::VecDeque<u32> =
        msgs.iter().flat_map(|m| m.to_frames(32)).collect();
    let mut deframer = DevDeframer::new(32);
    let mut out = Vec::new();
    let mut budget = 1_000_000u64;
    loop {
        while let Some(&f) = frames.front() {
            if coproc.push_frame(f) {
                frames.pop_front();
            } else {
                break;
            }
        }
        coproc.step();
        while let Some(f) = coproc.pop_frame() {
            if let Some(m) = deframer.push(f).unwrap() {
                out.push(m);
            }
        }
        if frames.is_empty() && coproc.is_idle() {
            return out;
        }
        budget -= 1;
        assert!(budget > 0, "machine wedged");
    }
}

fn add(dst: u8, s1: u8, s2: u8, flag: u8) -> HostMsg {
    HostMsg::Instr(InstrWord::user(UserInstr {
        func: 1,
        variety: 0,
        dst_flag: flag,
        dst_reg: dst,
        aux_reg: 0,
        src1: s1,
        src2: s2,
        src3: 0,
    }))
}

#[test]
fn raw_hazard_attributed_to_lock_stalls() {
    let mut m = machine(20);
    run(
        &mut m,
        &[
            HostMsg::WriteReg {
                reg: 1,
                value: Word::from_u64(1, 32),
            },
            add(2, 1, 1, 1), // 20-cycle producer of r2
            add(3, 2, 2, 2), // consumer: must wait on r2's lock
        ],
    );
    let s = m.stats();
    assert!(
        s.dispatch.stall_lock >= 15,
        "the consumer should stall ~20 cycles on the lock, saw {}",
        s.dispatch.stall_lock
    );
    assert_eq!(m.peek_reg(3).as_u64(), 4);
}

#[test]
fn busy_unit_attributed_to_fu_stalls() {
    // Two *independent* instructions to one single-occupancy unit: the
    // second stalls on the unit, not on any lock.
    let mut m = machine(20);
    run(
        &mut m,
        &[
            HostMsg::WriteReg {
                reg: 1,
                value: Word::from_u64(1, 32),
            },
            add(2, 1, 1, 1),
            add(3, 1, 1, 2), // independent registers and flags
        ],
    );
    let s = m.stats();
    assert!(
        s.dispatch.stall_fu_busy >= 15,
        "expected unit-busy stalls, saw {}",
        s.dispatch.stall_fu_busy
    );
    assert!(
        s.dispatch.stall_lock <= 2,
        "independent instructions may only catch the brief RAW window \
         behind the host's register write, saw {}",
        s.dispatch.stall_lock
    );
}

#[test]
fn waw_on_flags_attributed_to_lock_stalls() {
    // Same destination *flag* register with independent data registers:
    // the flag-file WAW interlock is the only dependency.
    let mut m = machine(20);
    run(
        &mut m,
        &[
            HostMsg::WriteReg {
                reg: 1,
                value: Word::from_u64(1, 32),
            },
            add(2, 1, 1, 1),
            add(3, 1, 1, 1), // same f1
        ],
    );
    let s = m.stats();
    assert!(s.dispatch.stall_lock + s.dispatch.stall_fu_busy >= 15);
    assert!(
        s.dispatch.stall_lock > 0,
        "the flag WAW must contribute lock stalls"
    );
}

#[test]
fn fence_attributed_to_fence_stalls() {
    let mut m = machine(25);
    run(
        &mut m,
        &[
            HostMsg::WriteReg {
                reg: 1,
                value: Word::from_u64(1, 32),
            },
            add(2, 1, 1, 1),
            HostMsg::Instr(MgmtOp::Fence.encode()),
        ],
    );
    let s = m.stats();
    assert!(
        s.dispatch.stall_fence >= 20,
        "the fence should wait out the unit, saw {}",
        s.dispatch.stall_fence
    );
}

#[test]
fn exec_backpressure_attributed_to_exec_stalls() {
    // A tx FIFO of depth 1 that is never drained clogs serialiser →
    // encoder → execution; subsequent responses stall at the dispatcher
    // with the exec-full cause.
    let mut coproc = Coprocessor::new(
        CoprocConfig {
            rx_frames_per_cycle: 8,
            rx_fifo_depth: 64,
            tx_fifo_depth: 1,
            ..CoprocConfig::default()
        },
        vec![],
    )
    .unwrap();
    let msgs: Vec<HostMsg> = (0..6u16)
        .map(|t| HostMsg::ReadReg { reg: 0, tag: t })
        .collect();
    let mut frames: std::collections::VecDeque<u32> =
        msgs.iter().flat_map(|m| m.to_frames(32)).collect();
    // Never pop tx frames; just run a while.
    for _ in 0..200 {
        while let Some(&f) = frames.front() {
            if coproc.push_frame(f) {
                frames.pop_front();
            } else {
                break;
            }
        }
        coproc.step();
    }
    let s = coproc.stats();
    assert!(
        s.dispatch.stall_exec_full > 50,
        "undrained responses must back-pressure the dispatcher, saw {}",
        s.dispatch.stall_exec_full
    );
    // Nothing was lost: drain now and count the responses.
    let mut deframer = DevDeframer::new(32);
    let mut got = 0;
    for _ in 0..2000 {
        coproc.step();
        while let Some(f) = coproc.pop_frame() {
            if deframer.push(f).unwrap().is_some() {
                got += 1;
            }
        }
        if got == 6 {
            break;
        }
    }
    assert_eq!(got, 6);
}

#[test]
fn counters_are_disjoint_on_a_clean_run() {
    let mut m = machine(1);
    run(
        &mut m,
        &[
            HostMsg::WriteReg {
                reg: 1,
                value: Word::from_u64(7, 32),
            },
            add(2, 1, 1, 1),
            HostMsg::ReadReg { reg: 2, tag: 0 },
        ],
    );
    let s = m.stats();
    assert_eq!(s.dispatch.user_dispatched, 1);
    assert_eq!(s.dispatch.stall_fu_busy, 0);
    assert_eq!(s.dispatch.stall_fence, 0);
    assert_eq!(s.decode_errors, 0);
}
