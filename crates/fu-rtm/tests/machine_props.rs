//! Machine-level property tests: random management programs against a
//! shadow model, with randomised frame-port widths and FIFO depths —
//! the coprocessor's architectural state must be configuration-blind.

use fu_isa::msg::DevDeframer;
use fu_isa::{DevMsg, HostMsg, MgmtOp, Word};
use fu_rtm::testing::LatencyFu;
use fu_rtm::{CoprocConfig, Coprocessor, FunctionalUnit};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Step {
    Write(u8, u32),
    Copy(u8, u8),
    LoadImm(u8, u32),
    SetFlags(u8, u8),
    Read(u8),
    ReadFlags(u8),
    Fence,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..8, any::<u32>()).prop_map(|(r, v)| Step::Write(r, v)),
        (0u8..8, 0u8..8).prop_map(|(d, s)| Step::Copy(d, s)),
        (0u8..8, any::<u32>()).prop_map(|(r, v)| Step::LoadImm(r, v)),
        (0u8..4, any::<u8>()).prop_map(|(r, v)| Step::SetFlags(r, v)),
        (0u8..8).prop_map(Step::Read),
        (0u8..4).prop_map(Step::ReadFlags),
        Just(Step::Fence),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn mgmt_programs_match_shadow_model(
        steps in proptest::collection::vec(step_strategy(), 1..60),
        rx_width in 1u8..6,
        rx_depth in 1usize..8,
        tx_depth in 1usize..8,
    ) {
        let cfg = CoprocConfig {
            data_regs: 8,
            flag_regs: 4,
            rx_frames_per_cycle: rx_width,
            tx_frames_per_cycle: rx_width,
            rx_fifo_depth: rx_depth,
            tx_fifo_depth: tx_depth,
            ..CoprocConfig::default()
        };
        let units: Vec<Box<dyn FunctionalUnit>> =
            vec![Box::new(LatencyFu::new("u", 1, 3))];
        let mut coproc = Coprocessor::new(cfg, units).unwrap();

        let mut shadow_regs = [0u32; 8];
        let mut shadow_flags = [0u8; 4];
        let mut msgs: Vec<HostMsg> = Vec::new();
        let mut expected: Vec<DevMsg> = Vec::new();
        let mut tag = 0u16;
        for s in &steps {
            match *s {
                Step::Write(r, v) => {
                    shadow_regs[r as usize] = v;
                    msgs.push(HostMsg::WriteReg { reg: r, value: Word::from_u64(v as u64, 32) });
                }
                Step::Copy(d, src) => {
                    shadow_regs[d as usize] = shadow_regs[src as usize];
                    msgs.push(HostMsg::Instr(MgmtOp::Copy { dst: d, src }.encode()));
                }
                Step::LoadImm(r, v) => {
                    shadow_regs[r as usize] = v;
                    msgs.push(HostMsg::Instr(MgmtOp::LoadImm { dst: r, imm: v }.encode()));
                }
                Step::SetFlags(r, v) => {
                    shadow_flags[r as usize] = v;
                    msgs.push(HostMsg::Instr(MgmtOp::SetFlags { dst: r, imm: v }.encode()));
                }
                Step::Read(r) => {
                    msgs.push(HostMsg::ReadReg { reg: r, tag });
                    expected.push(DevMsg::Data {
                        tag,
                        value: Word::from_u64(shadow_regs[r as usize] as u64, 32),
                    });
                    tag += 1;
                }
                Step::ReadFlags(r) => {
                    msgs.push(HostMsg::ReadFlags { reg: r, tag });
                    expected.push(DevMsg::Flags {
                        tag,
                        flags: fu_isa::Flags(shadow_flags[r as usize]),
                    });
                    tag += 1;
                }
                Step::Fence => msgs.push(HostMsg::Instr(MgmtOp::Fence.encode())),
            }
        }
        msgs.push(HostMsg::Sync { tag: 0xffff });
        expected.push(DevMsg::SyncAck { tag: 0xffff });

        let mut frames: std::collections::VecDeque<u32> =
            msgs.iter().flat_map(|m| m.to_frames(32)).collect();
        let mut deframer = DevDeframer::new(32);
        let mut got = Vec::new();
        let mut budget = 500_000u64;
        while got.len() < expected.len() {
            while let Some(&f) = frames.front() {
                if coproc.push_frame(f) {
                    frames.pop_front();
                } else {
                    break;
                }
            }
            coproc.step();
            while let Some(f) = coproc.pop_frame() {
                if let Some(m) = deframer.push(f).unwrap() {
                    got.push(m);
                }
            }
            budget -= 1;
            prop_assert!(budget > 0, "machine wedged");
        }
        prop_assert_eq!(got, expected);
        // Architectural state must match the shadow exactly.
        for r in 0..8u8 {
            prop_assert_eq!(coproc.peek_reg(r).as_u64(), shadow_regs[r as usize] as u64);
        }
        for f in 0..4u8 {
            prop_assert_eq!(coproc.peek_flags(f).0, shadow_flags[f as usize]);
        }
    }
}
