//! Scoreboard invariants asserted from the typed event trace.
//!
//! The observability layer records every lock grant/release, dispatch,
//! retirement and response the machine makes. These proptests run random
//! programs against units with random completion latencies and then
//! *replay* the trace, checking the properties the scoreboard hardware
//! must uphold:
//!
//! - a register is never granted while already locked (no double-grant),
//! - every acquire is matched by exactly one release, and the machine
//!   ends with zero locks held — including when the watchdog
//!   force-releases a hung dispatch,
//! - the encoder forwards responses in strictly increasing sequence
//!   order (issue order), no matter how completions reorder,
//! - every retirement corresponds to exactly one earlier dispatch.

use std::collections::HashSet;

use fu_isa::{HostMsg, InstrWord, UserInstr, Word};
use fu_rtm::testing::{LatencyFu, StuckFu};
use fu_rtm::{CoprocConfig, Coprocessor, FunctionalUnit};
use proptest::prelude::*;
use rtl_sim::TraceEventKind;

fn traced_machine(units: Vec<Box<dyn FunctionalUnit>>, max_busy: Option<u64>) -> Coprocessor {
    let cfg = CoprocConfig {
        data_regs: 16,
        flag_regs: 4,
        rx_frames_per_cycle: 4,
        tx_frames_per_cycle: 4,
        trace_depth: 1 << 16,
        max_busy_cycles: max_busy,
        ..CoprocConfig::default()
    };
    Coprocessor::new(cfg, units).expect("valid config")
}

fn instr(func: u8, dst: u8, flag: u8, s1: u8, s2: u8) -> HostMsg {
    HostMsg::Instr(InstrWord::user(UserInstr {
        func,
        variety: 0,
        dst_flag: flag,
        dst_reg: dst,
        aux_reg: 0,
        src1: s1,
        src2: s2,
        src3: 0,
    }))
}

/// Replay the trace and assert the lock-lifecycle invariants. Returns
/// `(acquires, releases)` so callers can also check population counts.
fn replay_locks(m: &Coprocessor) -> (usize, usize) {
    assert_eq!(m.trace().dropped(), 0, "trace ring too small for replay");
    let mut data_held: HashSet<u8> = HashSet::new();
    let mut flags_held: HashSet<u8> = HashSet::new();
    let (mut acquires, mut releases) = (0, 0);
    for e in m.trace().events() {
        match e.kind {
            TraceEventKind::LockAcquire { data, flag } => {
                acquires += 1;
                for r in data.into_iter().flatten() {
                    assert!(
                        data_held.insert(r),
                        "double-grant of data register r{r} at cycle {}",
                        e.cycle
                    );
                }
                if let Some(f) = flag {
                    assert!(
                        flags_held.insert(f),
                        "double-grant of flag register f{f} at cycle {}",
                        e.cycle
                    );
                }
            }
            TraceEventKind::LockRelease { data, flag } => {
                releases += 1;
                for r in data.into_iter().flatten() {
                    assert!(
                        data_held.remove(&r),
                        "release of unheld data register r{r} at cycle {}",
                        e.cycle
                    );
                }
                if let Some(f) = flag {
                    assert!(
                        flags_held.remove(&f),
                        "release of unheld flag register f{f} at cycle {}",
                        e.cycle
                    );
                }
            }
            _ => {}
        }
    }
    assert!(
        data_held.is_empty() && flags_held.is_empty(),
        "stale locks at end of run: data {data_held:?}, flags {flags_held:?}"
    );
    (acquires, releases)
}

/// Cheap deterministic generator for per-instruction choices.
fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random program over two units with random latencies: replay the
    /// trace and check lock lifecycle, issue-order responses, and
    /// dispatch/retire pairing.
    #[test]
    fn scoreboard_invariants_hold_under_random_latencies(
        lat1 in 1u32..24,
        lat2 in 1u32..24,
        n in 1usize..24,
        seed in any::<u64>(),
    ) {
        let mut m = traced_machine(
            vec![
                Box::new(LatencyFu::new("a", 1, lat1)),
                Box::new(LatencyFu::new("b", 2, lat2)),
            ],
            None,
        );
        let mut rng = seed;
        let mut msgs = vec![
            HostMsg::WriteReg { reg: 1, value: Word::from_u64(5, 32) },
            HostMsg::WriteReg { reg: 2, value: Word::from_u64(9, 32) },
        ];
        for i in 0..n {
            let r = splitmix(&mut rng);
            let func = 1 + (r % 2) as u8;
            // Destinations rotate over r3..r10, flags over f1..f3, both
            // clear of the source registers so sources never stall.
            let dst = 3 + (i % 8) as u8;
            let flag = 1 + (i % 3) as u8;
            msgs.push(instr(func, dst, flag, 1, 2));
        }
        msgs.push(HostMsg::Sync { tag: 99 });
        let out = m.run_messages(&msgs, 200_000).expect("drains");
        prop_assert!(out.iter().any(|d| matches!(d, fu_isa::DevMsg::SyncAck { tag: 99 })));

        let (acquires, releases) = replay_locks(&m);
        prop_assert_eq!(acquires, releases);
        // Two mgmt writes + n user instructions, each exactly one grant.
        prop_assert_eq!(acquires, n + 2);

        // The encoder must emit in issue order: strictly increasing seqs.
        let mut last: Option<u64> = None;
        let mut forwards = 0usize;
        for e in m.trace().events() {
            if let TraceEventKind::RespForward { seq } = e.kind {
                if let Some(prev) = last {
                    prop_assert!(
                        seq > prev,
                        "response seq {} after {} breaks issue order", seq, prev
                    );
                }
                last = Some(seq);
                forwards += 1;
            }
        }
        prop_assert!(forwards > 0, "sequenced responses must be traced");

        // Every retire pairs with exactly one earlier dispatch of the
        // same (unit, seq); all n dispatches retire.
        let mut outstanding: HashSet<(u8, u64)> = HashSet::new();
        let mut dispatches = 0usize;
        for e in m.trace().events() {
            match e.kind {
                TraceEventKind::FuDispatch { unit, seq } => {
                    dispatches += 1;
                    prop_assert!(
                        outstanding.insert((unit, seq)),
                        "duplicate dispatch ({}, {})", unit, seq
                    );
                }
                TraceEventKind::FuRetire { unit, seq } => {
                    prop_assert!(
                        outstanding.remove(&(unit, seq)),
                        "retire ({}, {}) without a matching dispatch", unit, seq
                    );
                }
                _ => {}
            }
        }
        prop_assert_eq!(dispatches, n);
        prop_assert!(outstanding.is_empty(), "unretired dispatches: {:?}", outstanding);

        // The always-on latency histograms saw the same population.
        let sim = m.sim_stats();
        prop_assert_eq!(sim.lat_issue_dispatch.count(), n as u64);
        prop_assert_eq!(sim.lat_issue_retire.count(), n as u64);
    }

    /// A hung unit next to a healthy one: the watchdog's force-release
    /// must leave the lock state clean (no stale locks), visible in the
    /// trace as a matching release for every acquire plus a quarantine
    /// event.
    #[test]
    fn watchdog_force_release_leaves_no_stale_locks(
        lat in 1u32..16,
        extra in 0usize..6,
        max_busy in 25u64..60,
    ) {
        let mut m = traced_machine(
            vec![
                Box::new(StuckFu::new("hang", 9)),
                Box::new(LatencyFu::new("add", 1, lat)),
            ],
            Some(max_busy),
        );
        let mut msgs = vec![
            HostMsg::WriteReg { reg: 1, value: Word::from_u64(30, 32) },
            HostMsg::WriteReg { reg: 2, value: Word::from_u64(12, 32) },
            instr(9, 5, 1, 1, 2), // hangs, then quarantined
        ];
        for i in 0..extra {
            msgs.push(instr(1, 6 + (i % 4) as u8, 2, 1, 2));
        }
        msgs.push(HostMsg::ReadReg { reg: 5, tag: 1 });
        msgs.push(HostMsg::Sync { tag: 4 });
        let out = m.run_messages(&msgs, 200_000).expect("drains");
        prop_assert!(out.iter().any(|d| matches!(d, fu_isa::DevMsg::SyncAck { tag: 4 })));

        let (acquires, releases) = replay_locks(&m);
        prop_assert_eq!(acquires, releases);
        let quarantines = m
            .trace()
            .events()
            .filter(|e| matches!(e.kind, TraceEventKind::FuQuarantined { unit: 0 }))
            .count();
        prop_assert_eq!(quarantines, 1);
        prop_assert_eq!(m.stats().fu_timeouts, 1);
    }
}
