//! The message serialiser — last stage of the RTM pipeline.
//!
//! "The signal vector is converted to the form required by the
//! communication port to the host, and is transmitted on the port."
//!
//! The serialiser shifts one message at a time out as 32-bit frames, up to
//! `frames_per_cycle` per cycle (the output port width), into the transmit
//! FIFO that feeds the transceiver. A multi-frame response therefore
//! occupies the port for several cycles — the cost the paper's slow
//! prototyping link makes painfully visible.

use std::collections::VecDeque;

use fu_isa::DevMsg;
use rtl_sim::{Fifo, HandshakeSlot, SatCounter, TraceBuffer, TraceEventKind};

/// The message-serialiser stage.
#[derive(Debug, Clone)]
pub struct MessageSerializer {
    shift: VecDeque<u32>,
    word_bits: u32,
    frames_per_cycle: u8,
    frames_out: SatCounter,
    msgs_in: SatCounter,
}

impl MessageSerializer {
    /// A serialiser for `word_bits`-wide data emitting up to
    /// `frames_per_cycle` frames per cycle.
    pub fn new(word_bits: u32, frames_per_cycle: u8) -> MessageSerializer {
        assert!(
            frames_per_cycle >= 1,
            "output port must carry at least one frame/cycle"
        );
        MessageSerializer {
            shift: VecDeque::new(),
            word_bits,
            frames_per_cycle,
            frames_out: SatCounter::default(),
            msgs_in: SatCounter::default(),
        }
    }

    /// One evaluate phase: load the shift register when empty, then emit
    /// frames into `tx`.
    pub fn eval(
        &mut self,
        input: &mut HandshakeSlot<DevMsg>,
        tx: &mut Fifo<u32>,
        cycle: u64,
        trace: &mut TraceBuffer,
    ) {
        if self.shift.is_empty() {
            if let Some(msg) = input.take() {
                self.msgs_in.bump();
                trace.record(
                    cycle,
                    TraceEventKind::StageTake {
                        stage: "serializer",
                    },
                );
                self.shift.extend(msg.frames(self.word_bits));
            }
        }
        for _ in 0..self.frames_per_cycle {
            if self.shift.is_empty() || !tx.can_push() {
                break;
            }
            tx.push(self.shift.pop_front().expect("checked non-empty"));
            self.frames_out.bump();
        }
    }

    /// True when no message is partially transmitted.
    pub fn is_idle(&self) -> bool {
        self.shift.is_empty()
    }

    /// `(messages accepted, frames emitted)` since reset.
    pub fn counters(&self) -> (u64, u64) {
        (self.msgs_in.get(), self.frames_out.get())
    }

    /// Return to the power-on state.
    pub fn reset(&mut self) {
        self.shift.clear();
        self.frames_out = SatCounter::default();
        self.msgs_in = SatCounter::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fu_isa::msg::DevDeframer;
    use fu_isa::Word;
    use rtl_sim::Clocked;

    fn cycle(s: &mut MessageSerializer, input: &mut HandshakeSlot<DevMsg>, tx: &mut Fifo<u32>) {
        s.eval(input, tx, 0, &mut TraceBuffer::disabled());
        input.commit();
        tx.commit();
    }

    #[test]
    fn single_frame_message() {
        let mut s = MessageSerializer::new(32, 1);
        let mut input = HandshakeSlot::new();
        let mut tx = Fifo::new(8);
        input.push(DevMsg::SyncAck { tag: 3 });
        input.commit();
        cycle(&mut s, &mut input, &mut tx);
        assert_eq!(tx.len(), 1);
        assert!(s.is_idle());
    }

    #[test]
    fn multi_frame_message_spans_cycles_and_roundtrips() {
        let mut s = MessageSerializer::new(128, 1);
        let mut input = HandshakeSlot::new();
        let mut tx = Fifo::new(16);
        let msg = DevMsg::Data {
            tag: 7,
            value: Word::from_u128(0x0102_0304_0506_0708_090a_0b0c, 128),
        };
        input.push(msg.clone());
        input.commit();
        // 1 header + 4 limbs = 5 frames at 1/cycle.
        for _ in 0..5 {
            cycle(&mut s, &mut input, &mut tx);
        }
        assert!(s.is_idle());
        let mut d = DevDeframer::new(128);
        let mut got = None;
        for f in tx.drain_all() {
            got = d.push(f).unwrap();
        }
        assert_eq!(got, Some(msg));
        assert_eq!(s.counters(), (1, 5));
    }

    #[test]
    fn wide_port_emits_burst() {
        let mut s = MessageSerializer::new(64, 4);
        let mut input = HandshakeSlot::new();
        let mut tx = Fifo::new(8);
        input.push(DevMsg::Data {
            tag: 1,
            value: Word::from_u64(5, 64),
        });
        input.commit();
        cycle(&mut s, &mut input, &mut tx);
        assert_eq!(
            tx.len(),
            3,
            "3-frame message fits one cycle on a 4-wide port"
        );
    }

    #[test]
    fn backpressure_from_full_tx_fifo() {
        let mut s = MessageSerializer::new(32, 1);
        let mut input = HandshakeSlot::new();
        let mut tx = Fifo::new(1);
        input.push(DevMsg::Data {
            tag: 1,
            value: Word::from_u64(5, 32),
        });
        input.commit();
        cycle(&mut s, &mut input, &mut tx); // header emitted, FIFO now full
        assert!(!s.is_idle());
        cycle(&mut s, &mut input, &mut tx); // stalled: nothing drained
        assert_eq!(tx.len(), 1);
        tx.pop();
        cycle(&mut s, &mut input, &mut tx); // resumes
        assert_eq!(tx.len(), 1);
        assert!(s.is_idle());
    }

    #[test]
    fn does_not_take_next_message_mid_transmission() {
        let mut s = MessageSerializer::new(64, 1);
        let mut input = HandshakeSlot::new();
        let mut tx = Fifo::new(16);
        input.push(DevMsg::Data {
            tag: 1,
            value: Word::from_u64(5, 64),
        });
        input.commit();
        cycle(&mut s, &mut input, &mut tx); // loads 3 frames, emits 1
        input.push(DevMsg::SyncAck { tag: 2 });
        input.commit();
        cycle(&mut s, &mut input, &mut tx);
        assert!(input.has_data(), "second message must wait in the slot");
        cycle(&mut s, &mut input, &mut tx);
        cycle(&mut s, &mut input, &mut tx); // now idle -> takes SyncAck
        assert!(!input.has_data());
    }
}
