//! The top-level coprocessor: Figure 2/3 of the paper, assembled.
//!
//! [`Coprocessor`] owns the whole on-FPGA design — interface FIFOs,
//! message buffer, decoder, dispatcher, execution stage, write arbiter,
//! message encoder/serialiser, both register files, the lock manager, the
//! functional unit table and the attached functional units — and clocks it
//! one cycle per [`Coprocessor::step`].
//!
//! Within a cycle the stages are evaluated **sink to source** so that the
//! local handshakes achieve full throughput (a pipeline register freed in
//! cycle *t* accepts new data in cycle *t*), exactly the behaviour of the
//! combinational ready chains in the VHDL original:
//!
//! ```text
//! serializer → encoder → write arbiter → execution → dispatcher → decoder → message buffer
//! ```
//!
//! after which every registered element commits simultaneously (the clock
//! edge).

use crate::arbiter::WriteArbiter;
use crate::config::CoprocConfig;
use crate::decoder::{DecodedOp, Decoder};
use crate::dispatcher::{DispatchStats, Dispatcher, StallClass};
use crate::encoder::{MessageEncoder, SequencedResponse};
use crate::execute::{ExecOp, Execution};
use crate::flagfile::FlagFile;
use crate::futable::FuTable;
use crate::lock::LockManager;
use crate::msgbuf::{MessageBuffer, MsgBufOut};
use crate::protocol::{FunctionalUnit, LockTicket, SoftEvent};
use crate::redundant::{protect_units, Redundancy};
use crate::regfile::RegFile;
use crate::serializer::MessageSerializer;
use crate::seu::{SeuModel, SeuTarget, Strike};
use crate::transceiver::DeviceTransceiver;
use fu_isa::msg::ErrorCode;
use fu_isa::transport::TransportStats;
use fu_isa::{DevMsg, Flags, Word};
use rtl_sim::area::log2_ceil;
use rtl_sim::{
    AreaEstimate, Clocked, CriticalPath, Fifo, HandshakeSlot, LatencyHistogram, RecoveryStats,
    SimError, SimStats, TimingWheel, TraceBuffer, TraceEventKind,
};
use std::collections::VecDeque;

/// How the scheduler treats provably inactive structure.
///
/// All modes produce **bit-identical architectural behaviour** — the same
/// simulated cycle counts, the same response streams, the same statistics.
/// They only change which host work the simulator performs to get there.
/// `Gated` skips evaluation of stages whose inputs are empty and does not
/// clock idle functional units; whole idle spans can be fast-forwarded.
/// `Scheduled` goes further: every source of future activity registers an
/// explicit wake on an event wheel, and the kernel jumps the clock
/// directly to the next wake even while units are *busy* (a fixed-latency
/// burn, a link retransmit wait, a stalled dispatcher head).
/// `Exhaustive` is the original evaluate-everything-every-cycle loop, kept
/// as the reference the equivalence tests compare against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ActivityMode {
    /// Skip evaluation of provably inactive structure (the default).
    #[default]
    Gated,
    /// Evaluate every stage and clock every unit every cycle.
    Exhaustive,
    /// Event-wheel kernel: advance directly to the next registered wake.
    Scheduled,
}

/// Scheduling verdict for the event-wheel kernel — can the machine's
/// observable state change this cycle, and if not, when can it next
/// change? Produced by [`Coprocessor::quiet_verdict`], consumed by hosts
/// that drive the machine (`System::run_until` and the farm's shard
/// workers), which combine it with their own event set (link arrival
/// times, endpoint retransmit deadlines) before calling
/// [`Coprocessor::skip_quiet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuietVerdict {
    /// Observable work exists this cycle; the machine must step.
    Busy,
    /// Provably quiet strictly before the given absolute cycle — the
    /// earliest registered wake. Skipping any number of cycles that
    /// lands at or before it is bit-identical to stepping them.
    Until(u64),
    /// Quiet with no internal wake registered (e.g. only a hung unit and
    /// no watchdog configured): external events alone bound the skip.
    Indefinite,
}

/// What registered a wake on the event wheel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WakeSource {
    /// A busy functional unit's next observable interface change.
    Fu(usize),
    /// The dispatch watchdog's deadline for a unit.
    Watchdog(usize),
    /// The transceiver's retransmit deadline.
    Transport,
}

/// Per-stage evaluate counters (how often each evaluate function ran).
#[derive(Debug, Clone, Copy, Default)]
struct StageEvals {
    msgbuf: u64,
    decoder: u64,
    dispatcher: u64,
    execution: u64,
    arbiter: u64,
    encoder: u64,
    serializer: u64,
}

/// Aggregated machine statistics (see the per-stage counters for
/// definitions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoprocStats {
    /// Clock cycles since reset.
    pub cycles: u64,
    /// Frames consumed from the receive FIFO.
    pub frames_in: u64,
    /// Host messages assembled by the message buffer.
    pub msgs_in: u64,
    /// Messages decoded (including errors).
    pub decoded: u64,
    /// Decode errors converted to in-band error responses.
    pub decode_errors: u64,
    /// Dispatcher throughput and stall breakdown.
    pub dispatch: DispatchStats,
    /// Functional-unit completions retired by the write arbiter.
    pub fu_completions: u64,
    /// Data-register writes performed by the write arbiter.
    pub arb_data_writes: u64,
    /// Flag-register writes performed by the write arbiter.
    pub arb_flag_writes: u64,
    /// Cycles in which a ready completion was denied a write port.
    pub arb_contention: u64,
    /// Data-register writes through the execution stage's high-priority
    /// port.
    pub exec_data_writes: u64,
    /// Flag-register writes through the high-priority port.
    pub exec_flag_writes: u64,
    /// Responses forwarded to the host.
    pub responses: u64,
    /// Frames emitted into the transmit FIFO.
    pub frames_out: u64,
    /// Functional units quarantined by the dispatch watchdog.
    pub fu_timeouts: u64,
}

/// One-cycle snapshot of the machine's observable signals (see
/// [`Coprocessor::probe`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoprocProbe {
    /// Receive-FIFO occupancy.
    pub rx_level: u32,
    /// Message-buffer output register holds a message.
    pub msg_valid: bool,
    /// Decoder output register holds an operation.
    pub decoded_valid: bool,
    /// Execution input register holds a micro-operation.
    pub exec_valid: bool,
    /// Response register holds a response.
    pub resp_valid: bool,
    /// Serialiser input register holds a message.
    pub dev_valid: bool,
    /// Transmit-FIFO occupancy.
    pub tx_level: u32,
    /// Instructions dispatched but not retired (scoreboard).
    pub in_flight: u32,
    /// Functional units currently holding work.
    pub fus_busy: u32,
}

/// The assembled coprocessor.
pub struct Coprocessor {
    cfg: CoprocConfig,
    // pipeline stages
    msgbuf: MessageBuffer,
    decoder: Decoder,
    dispatcher: Dispatcher,
    execution: Execution,
    arbiter: WriteArbiter,
    encoder: MessageEncoder,
    serializer: MessageSerializer,
    // architectural state
    regfile: RegFile,
    flagfile: FlagFile,
    lock: LockManager,
    futable: FuTable,
    fus: Vec<Box<dyn FunctionalUnit>>,
    // inter-stage registers
    rx_fifo: Fifo<u32>,
    msg_slot: HandshakeSlot<MsgBufOut>,
    decoded_slot: HandshakeSlot<DecodedOp>,
    exec_slot: HandshakeSlot<ExecOp>,
    resp_slot: HandshakeSlot<SequencedResponse>,
    dev_slot: HandshakeSlot<DevMsg>,
    tx_fifo: Fifo<u32>,
    // bookkeeping
    cycle: u64,
    trace: TraceBuffer,
    // activity-aware scheduling
    activity: ActivityMode,
    /// Units that may hold work. Maintained in both modes so `is_idle`
    /// is O(1); only `Gated` uses it to skip evaluation.
    fu_active: Vec<bool>,
    n_active_fus: usize,
    /// Units whose `commit` must run even while idle
    /// ([`FunctionalUnit::needs_clock_when_idle`]).
    fu_always_clock: Vec<bool>,
    skipped_cycles: u64,
    stage_evals: StageEvals,
    /// Cycles each stage had work (pipeline utilization). Unlike
    /// `stage_evals` this is counted identically in both scheduling
    /// modes, so it is part of `SimStats` equality.
    stage_busy: StageEvals,
    // per-instruction latency profiling (always on; see `sim_stats`)
    /// Cycle the current decoded head became visible to the dispatcher —
    /// the instruction's issue time.
    decoded_since: Option<u64>,
    /// Dispatched-but-not-retired instructions:
    /// `(seq, unit, issue_cycle, dispatch_cycle)`.
    lat_inflight: Vec<(u64, usize, u64, u64)>,
    lat_issue_dispatch: LatencyHistogram,
    lat_dispatch_retire: LatencyHistogram,
    lat_issue_retire: LatencyHistogram,
    // reliable transport (None = bare frame port, the default)
    transceiver: Option<DeviceTransceiver>,
    // dispatch watchdog (active when cfg.max_busy_cycles is Some)
    /// Last cycle each unit made observable progress (accepted a dispatch
    /// or had a completion granted by the arbiter).
    fu_last_progress: Vec<u64>,
    /// Lock tickets of dispatches not yet retired by the arbiter, per
    /// unit — what the watchdog force-releases on quarantine.
    fu_outstanding: Vec<Vec<LockTicket>>,
    /// Units quarantined by the watchdog (mirror of the FU table's flag,
    /// consulted in the commit loop). A quarantined unit is never clocked.
    fu_quarantined: Vec<bool>,
    /// `FuTimeout` error responses awaiting a free execution slot.
    watchdog_errors: VecDeque<DevMsg>,
    fu_timeouts: u64,
    /// The event wheel (`Scheduled` mode): each scheduling decision
    /// registers the machine's pending wakes — FU hints, watchdog
    /// deadlines, the transceiver's retransmit deadline — and the kernel
    /// jumps to the earliest. Its counters accumulate across decisions
    /// and surface in [`Coprocessor::sim_stats`].
    wheel: TimingWheel<WakeSource>,
    /// Seeded SEU strike schedule (`cfg.seu`). Deliberately excluded from
    /// checkpoints: the schedule position must survive a rollback, or the
    /// replay would take the identical strikes and never converge.
    seu: Option<SeuModel>,
    /// Soft-error bookkeeping (strike outcomes); the rollback and farm
    /// counters are filled in by the host layers.
    recovery: RecoveryStats,
}

impl Coprocessor {
    /// Assemble a coprocessor from a configuration and a set of
    /// functional units.
    ///
    /// # Errors
    /// Fails when the configuration violates a generic constraint or two
    /// units claim the same function code.
    pub fn new(cfg: CoprocConfig, fus: Vec<Box<dyn FunctionalUnit>>) -> Result<Self, SimError> {
        cfg.validate()?;
        // Redundant execution wraps each clone-capable unit in lock-step
        // replicas *before* the FU table is built, so the table sees one
        // entry per function code exactly as in the unprotected machine.
        let fus = protect_units(fus, cfg.redundancy);
        let futable = FuTable::build(&fus)?;
        let mut regfile = RegFile::new(cfg.data_regs, cfg.word_bits);
        let mut flagfile = FlagFile::new(cfg.flag_regs);
        if cfg.parity {
            regfile.set_parity_enabled(true);
            flagfile.set_parity_enabled(true);
        }
        Ok(Coprocessor {
            msgbuf: MessageBuffer::new(cfg.word_bits, cfg.rx_frames_per_cycle),
            decoder: Decoder::new(cfg.data_regs, cfg.flag_regs, cfg.word_bits),
            dispatcher: Dispatcher::new(cfg.word_bits),
            execution: Execution::new(),
            arbiter: WriteArbiter::new(cfg.write_ports),
            encoder: MessageEncoder::new(),
            serializer: MessageSerializer::new(cfg.word_bits, cfg.tx_frames_per_cycle),
            regfile,
            flagfile,
            lock: LockManager::new(cfg.data_regs, cfg.flag_regs),
            futable,
            rx_fifo: Fifo::new(cfg.rx_fifo_depth),
            msg_slot: HandshakeSlot::new(),
            decoded_slot: HandshakeSlot::new(),
            exec_slot: HandshakeSlot::new(),
            resp_slot: HandshakeSlot::new(),
            dev_slot: HandshakeSlot::new(),
            tx_fifo: Fifo::new(cfg.tx_fifo_depth),
            cycle: 0,
            trace: if cfg.trace_depth > 0 {
                TraceBuffer::new(cfg.trace_depth)
            } else {
                TraceBuffer::disabled()
            },
            activity: ActivityMode::default(),
            fu_active: vec![false; fus.len()],
            n_active_fus: 0,
            fu_always_clock: fus.iter().map(|f| f.needs_clock_when_idle()).collect(),
            skipped_cycles: 0,
            stage_evals: StageEvals::default(),
            stage_busy: StageEvals::default(),
            decoded_since: None,
            lat_inflight: Vec::new(),
            lat_issue_dispatch: LatencyHistogram::default(),
            lat_dispatch_retire: LatencyHistogram::default(),
            lat_issue_retire: LatencyHistogram::default(),
            transceiver: cfg.transport.map(DeviceTransceiver::new),
            fu_last_progress: vec![0; fus.len()],
            fu_outstanding: vec![Vec::new(); fus.len()],
            fu_quarantined: vec![false; fus.len()],
            watchdog_errors: VecDeque::new(),
            fu_timeouts: 0,
            wheel: TimingWheel::new(0, 64),
            seu: cfg.seu.map(SeuModel::new),
            recovery: RecoveryStats::default(),
            fus,
            cfg,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &CoprocConfig {
        &self.cfg
    }

    /// Cycles elapsed since reset.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Can the receive FIFO accept another frame this cycle?
    pub fn rx_ready(&self) -> bool {
        self.rx_fifo.can_push()
    }

    /// Free space in the receive FIFO this cycle.
    pub fn rx_space(&self) -> usize {
        self.rx_fifo.space()
    }

    /// Deliver one frame from the link (receiver → receive FIFO).
    /// Returns `false` (frame not accepted) when the FIFO is full — the
    /// link must retry, as real flow control would.
    ///
    /// With a reliable transceiver fitted the frame is a *wire* frame
    /// (data segment or ack) and is always accepted: loss recovery is the
    /// transport's job, and validated payloads trickle into the receive
    /// FIFO as space frees up.
    pub fn push_frame(&mut self, frame: u32) -> bool {
        if let Some(t) = self.transceiver.as_mut() {
            t.on_wire_frame(self.cycle, frame);
            return true;
        }
        if self.rx_fifo.can_push() {
            self.rx_fifo.push(frame);
            true
        } else {
            false
        }
    }

    /// Remove one frame from the transmit FIFO (transmitter → link).
    /// With a reliable transceiver fitted this emits wire frames (data
    /// segments and acks) instead of bare payload frames.
    pub fn pop_frame(&mut self) -> Option<u32> {
        if let Some(t) = self.transceiver.as_mut() {
            return t.pull_wire_frame(self.cycle);
        }
        self.tx_fifo.pop()
    }

    /// Advance the design by one clock cycle.
    ///
    /// In [`ActivityMode::Gated`] a stage's evaluate only runs when its
    /// inputs could make it do something: every skipped evaluate is one
    /// whose body would have been a guaranteed no-op (each stage's first
    /// action on an empty input is to return). Idle functional units are
    /// neither scanned by the arbiter nor clocked at the edge, except
    /// units that demand a free-running clock. Architectural behaviour is
    /// identical in both modes, cycle for cycle.
    pub fn step(&mut self) {
        // A stepped cycle in Scheduled mode is exactly a gated cycle —
        // the event wheel only changes *which* cycles are stepped.
        let gated = self.activity != ActivityMode::Exhaustive;

        // ---- reliable transceiver: timer + rx delivery ----
        if let Some(t) = self.transceiver.as_mut() {
            // Advance the retransmit timer, then move validated in-order
            // payloads into the receive FIFO while it has space (staged;
            // the message buffer sees them after the clock edge, exactly
            // like frames pushed by a bare link).
            t.poll(self.cycle);
            while self.rx_fifo.can_push() && t.has_deliverable() {
                let f = t.deliver().expect("has_deliverable implies a frame");
                self.rx_fifo.push(f);
            }
        }

        // ---- per-instruction latency: a decoded head's issue time is the
        // cycle it first becomes visible to the dispatcher ----
        if self.decoded_since.is_none() && self.decoded_slot.has_data() {
            self.decoded_since = Some(self.cycle);
        }

        // ---- evaluate, sink to source ----
        // Each stage's activity predicate is computed once: it feeds the
        // busy-cycle counters unconditionally (so utilization is identical
        // in both scheduling modes) and, in gated mode, decides whether
        // the evaluate runs at all.
        let cycle = self.cycle;
        let serializer_busy = self.dev_slot.has_data() || !self.serializer.is_idle();
        if serializer_busy {
            self.stage_busy.serializer += 1;
        }
        if !gated || serializer_busy {
            self.stage_evals.serializer += 1;
            self.serializer.eval(
                &mut self.dev_slot,
                &mut self.tx_fifo,
                cycle,
                &mut self.trace,
            );
        }
        let encoder_busy = self.resp_slot.has_data();
        if encoder_busy {
            self.stage_busy.encoder += 1;
        }
        if !gated || encoder_busy {
            self.stage_evals.encoder += 1;
            self.encoder.eval(
                &mut self.resp_slot,
                &mut self.dev_slot,
                cycle,
                &mut self.trace,
            );
        }
        let arbiter_busy = self.n_active_fus > 0 || !self.arbiter.is_idle();
        if arbiter_busy {
            self.stage_busy.arbiter += 1;
        }
        if !gated || arbiter_busy {
            self.stage_evals.arbiter += 1;
            let mask = gated.then_some(self.fu_active.as_slice());
            self.arbiter.eval(
                &mut self.fus,
                &mut self.regfile,
                &mut self.flagfile,
                &mut self.lock,
                mask,
                cycle,
                &mut self.trace,
            );
            // Watchdog bookkeeping: a granted completion is progress, and
            // its ticket is no longer outstanding. Processed only when the
            // arbiter actually evaluated — the grant list is rebuilt each
            // eval, so reading it outside this gate would replay stale
            // grants. A grant also retires the instruction's latency
            // record.
            for &(idx, ticket, seq) in self.arbiter.acked() {
                self.fu_last_progress[idx] = self.cycle;
                if let Some(pos) = self.fu_outstanding[idx].iter().position(|&t| t == ticket) {
                    self.fu_outstanding[idx].swap_remove(pos);
                }
                if let Some(pos) = self.lat_inflight.iter().position(|e| e.0 == seq) {
                    let (_, _, issue, disp) = self.lat_inflight.swap_remove(pos);
                    self.lat_dispatch_retire.record(self.cycle - disp);
                    self.lat_issue_retire.record(self.cycle - issue);
                }
                // A redundant unit votes at the grant; collect the verdict.
                // TMR out-votes the upset silently (corrected); a DMR
                // disagreement means the retired result is suspect — report
                // it in band so the host can roll back.
                match self.fus[idx].take_soft_event() {
                    Some(SoftEvent::Corrected) => {
                        self.recovery.seus_detected += 1;
                        self.recovery.seus_corrected += 1;
                        self.trace
                            .record(cycle, TraceEventKind::SeuCorrected { unit: idx as u8 });
                    }
                    Some(SoftEvent::Detected) => {
                        self.recovery.seus_detected += 1;
                        let func = u32::from(self.fus[idx].func_code());
                        self.trace
                            .record(cycle, TraceEventKind::SeuDetected { reg: idx as u8 });
                        self.watchdog_errors.push_back(DevMsg::Error {
                            code: ErrorCode::SoftError,
                            info: func,
                        });
                    }
                    None => {}
                }
            }
        }
        let execution_busy = self.exec_slot.has_data() || !self.execution.is_idle();
        if execution_busy {
            self.stage_busy.execution += 1;
        }
        if !gated || execution_busy {
            self.stage_evals.execution += 1;
            self.execution.eval(
                &mut self.exec_slot,
                &mut self.resp_slot,
                &mut self.regfile,
                &mut self.flagfile,
                &mut self.lock,
                cycle,
                &mut self.trace,
            );
        }
        // In-band watchdog errors take the execution slot ahead of new
        // dispatches: a quarantine must be reported even when the decode
        // pipeline has gone quiet.
        if !self.watchdog_errors.is_empty() && self.exec_slot.can_push() {
            let msg = self.watchdog_errors.pop_front().expect("checked non-empty");
            self.dispatcher.respond(&mut self.exec_slot, msg);
        }
        let dispatcher_busy = self.decoded_slot.has_data();
        if dispatcher_busy {
            self.stage_busy.dispatcher += 1;
        }
        if !gated || dispatcher_busy {
            self.stage_evals.dispatcher += 1;
            let dispatched = self.dispatcher.eval(
                &mut self.decoded_slot,
                &mut self.exec_slot,
                &mut self.fus,
                &mut self.lock,
                &mut self.regfile,
                &mut self.flagfile,
                &self.futable,
                cycle,
                &mut self.trace,
            );
            if let Some((idx, ticket, seq)) = dispatched {
                if !self.fu_active[idx] {
                    self.fu_active[idx] = true;
                    self.n_active_fus += 1;
                }
                self.fu_last_progress[idx] = self.cycle;
                self.fu_outstanding[idx].push(ticket);
                let issue = self.decoded_since.take().unwrap_or(self.cycle);
                self.lat_issue_dispatch.record(self.cycle - issue);
                self.lat_inflight.push((seq, idx, issue, self.cycle));
            }
            if !self.decoded_slot.has_data() {
                // Head consumed (dispatched, or a management op executed
                // in place): the next head's issue clock starts when it
                // becomes visible after a commit.
                self.decoded_since = None;
            }
        }
        let decoder_busy = self.msg_slot.has_data();
        if decoder_busy {
            self.stage_busy.decoder += 1;
        }
        if !gated || decoder_busy {
            self.stage_evals.decoder += 1;
            self.decoder.eval(
                &mut self.msg_slot,
                &mut self.decoded_slot,
                &self.futable,
                cycle,
                &mut self.trace,
            );
        }
        let msgbuf_busy = !self.rx_fifo.is_empty();
        if msgbuf_busy {
            self.stage_busy.msgbuf += 1;
        }
        if !gated || msgbuf_busy {
            self.stage_evals.msgbuf += 1;
            self.msgbuf.eval(
                &mut self.rx_fifo,
                &mut self.msg_slot,
                cycle,
                &mut self.trace,
            );
        }

        // ---- SEU strikes due this cycle ----
        // Latch and scoreboard strikes land before the clock edge (they
        // hit datapath/control state); register/flag cell strikes are
        // deferred until after the commit so the parity bits — computed
        // from the staged value at the edge — go stale, which is exactly
        // how a memory-cell upset escapes a write-time check.
        let mut cell_strikes: Vec<Strike> = Vec::new();
        while let Some(s) = self.seu.as_mut().and_then(|m| m.take(cycle)) {
            if let Some(cell) = self.apply_strike_pre_commit(s) {
                cell_strikes.push(cell);
            }
        }
        // ---- parity checks tripped by this cycle's reads ----
        if self.cfg.parity {
            self.drain_parity_errors();
        }

        // ---- clock edge ----
        self.rx_fifo.commit();
        self.msg_slot.commit();
        self.decoded_slot.commit();
        self.exec_slot.commit();
        self.resp_slot.commit();
        self.dev_slot.commit();
        self.tx_fifo.commit();
        self.regfile.commit();
        self.flagfile.commit();
        for s in cell_strikes {
            self.apply_cell_strike(s);
        }
        for (i, fu) in self.fus.iter_mut().enumerate() {
            // Quarantined units lose their clock in *both* modes: a merely
            // slow (not truly hung) unit must not complete after its locks
            // were force-released, or the release would happen twice.
            if self.fu_quarantined[i] {
                continue;
            }
            if !gated || self.fu_active[i] || self.fu_always_clock[i] {
                fu.commit();
            }
        }
        // Retire units that drained this cycle from the active set.
        if self.n_active_fus > 0 {
            for i in 0..self.fus.len() {
                if self.fu_active[i] && self.fus[i].is_idle() {
                    self.fu_active[i] = false;
                    self.n_active_fus -= 1;
                }
            }
        }
        // ---- dispatch watchdog ----
        if let Some(max) = self.cfg.max_busy_cycles {
            if self.n_active_fus > 0 {
                for i in 0..self.fus.len() {
                    // A unit with a completion waiting at the arbiter is
                    // making progress even if contention delays the grant.
                    if self.fu_active[i]
                        && !self.fu_quarantined[i]
                        && self.fus[i].peek_output().is_none()
                        && self.cycle - self.fu_last_progress[i] >= max
                    {
                        self.quarantine_unit(i);
                    }
                }
            }
        }
        // ---- reliable transceiver: collect serialised output ----
        if let Some(t) = self.transceiver.as_mut() {
            while let Some(f) = self.tx_fifo.pop() {
                t.send_payload(f);
            }
        }
        self.cycle += 1;
    }

    /// Quarantine a hung unit: mark it failed in the FU table (later
    /// dispatches are refused with `FuQuarantined`), stop clocking it,
    /// force-release every lock its outstanding dispatches hold, and queue
    /// one in-band `FuTimeout` error per abandoned dispatch so the host
    /// learns which results will never arrive.
    fn quarantine_unit(&mut self, i: usize) {
        self.futable.quarantine(i);
        self.fu_quarantined[i] = true;
        if self.fu_active[i] {
            self.fu_active[i] = false;
            self.n_active_fus -= 1;
        }
        self.fu_timeouts += 1;
        let tickets = std::mem::take(&mut self.fu_outstanding[i]);
        let func = self
            .futable
            .entries()
            .iter()
            .find(|e| e.index == i)
            .map_or(i as u32, |e| u32::from(e.func_code));
        if tickets.is_empty() {
            self.watchdog_errors.push_back(DevMsg::Error {
                code: ErrorCode::FuTimeout,
                info: func,
            });
        }
        let cycle = self.cycle;
        for t in tickets {
            self.lock.release(&t);
            self.trace.record(
                cycle,
                TraceEventKind::LockRelease {
                    data: t.data,
                    flag: t.flag,
                },
            );
            self.watchdog_errors.push_back(DevMsg::Error {
                code: ErrorCode::FuTimeout,
                info: func,
            });
        }
        // Abandoned dispatches never retire; drop their latency records
        // rather than let them linger as in-flight forever.
        self.lat_inflight.retain(|e| e.1 != i);
        self.trace
            .record(cycle, TraceEventKind::FuQuarantined { unit: i as u8 });
    }

    /// Record one strike and apply it if it lands before the clock edge.
    /// Stored-cell strikes are returned to flip after the commit instead.
    fn apply_strike_pre_commit(&mut self, s: Strike) -> Option<Strike> {
        self.recovery.seus_injected += 1;
        self.trace.record(
            self.cycle,
            TraceEventKind::SeuInjected {
                target: s.target.label(),
                index: s.index,
                bit: s.bit,
            },
        );
        match s.target {
            SeuTarget::RegFile | SeuTarget::FlagFile => Some(s),
            SeuTarget::ResultLatch => {
                self.apply_latch_strike(s);
                None
            }
            SeuTarget::Scoreboard => {
                // The scoreboard is duplicated with comparison: the flip
                // is caught against the shadow copy and repaired in place
                // before any interlock decision can observe it.
                let slot = self.lock.seu_strike(s.index as usize);
                self.recovery.seus_detected += 1;
                self.recovery.seus_corrected += 1;
                self.trace
                    .record(self.cycle, TraceEventKind::SeuCorrected { unit: slot });
                None
            }
        }
    }

    /// A result-latch strike: prefer an in-flight unit result (where a
    /// redundancy vote can judge it at retire), then a write staged
    /// toward the register file this cycle. The staged path is the write
    /// datapath: a triplicated machine out-votes the flip, a duplicated
    /// one detects it and reports in band (the rollback recovers), and a
    /// bare machine commits the corruption silently — parity cannot see
    /// it because the parity bit is computed from the corrupted value.
    fn apply_latch_strike(&mut self, s: Strike) {
        if !self.fus.is_empty() {
            let i = s.index as usize % self.fus.len();
            if !self.fu_quarantined[i] && self.fus[i].seu_flip_result(s.bit) {
                return;
            }
        }
        if !self.regfile.has_staged_write() {
            self.recovery.seus_absorbed += 1;
            return;
        }
        match self.cfg.redundancy {
            Redundancy::Tmr => {
                self.recovery.seus_detected += 1;
                self.recovery.seus_corrected += 1;
                self.trace
                    .record(self.cycle, TraceEventKind::SeuCorrected { unit: s.index });
            }
            Redundancy::Dmr => {
                self.regfile.seu_flip_staged(s.bit);
                self.recovery.seus_detected += 1;
                self.trace
                    .record(self.cycle, TraceEventKind::SeuDetected { reg: s.index });
                self.watchdog_errors.push_back(DevMsg::Error {
                    code: ErrorCode::SoftError,
                    info: u32::from(s.index),
                });
            }
            Redundancy::None => {
                self.regfile.seu_flip_staged(s.bit);
            }
        }
    }

    /// Flip a stored register/flag cell after the clock edge. Parity
    /// (when fitted) was computed from the committed value, so the flip
    /// leaves it stale and the next read of the entry trips the check.
    fn apply_cell_strike(&mut self, s: Strike) {
        match s.target {
            SeuTarget::RegFile => {
                let r = (u16::from(s.index) % self.cfg.data_regs) as u8;
                self.regfile.seu_flip(r, s.bit);
            }
            SeuTarget::FlagFile => {
                let r = (u16::from(s.index) % self.cfg.flag_regs) as u8;
                self.flagfile.seu_flip(r, s.bit);
            }
            SeuTarget::ResultLatch | SeuTarget::Scoreboard => {
                unreachable!("pre-commit strike classes are applied in place")
            }
        }
    }

    /// Move parity mismatches caught by this cycle's reads into the
    /// in-band error queue (one `SoftError` per corrupted entry; the
    /// check scrubs the parity bit so each upset reports once).
    fn drain_parity_errors(&mut self) {
        for r in self.regfile.take_parity_errors() {
            self.recovery.seus_detected += 1;
            self.trace
                .record(self.cycle, TraceEventKind::SeuDetected { reg: r });
            self.watchdog_errors.push_back(DevMsg::Error {
                code: ErrorCode::SoftError,
                info: u32::from(r),
            });
        }
        for r in self.flagfile.take_parity_errors() {
            self.recovery.seus_detected += 1;
            self.trace
                .record(self.cycle, TraceEventKind::SeuDetected { reg: r });
            self.watchdog_errors.push_back(DevMsg::Error {
                code: ErrorCode::SoftError,
                info: u32::from(r),
            });
        }
    }

    /// Apply every strike that fell inside a just-skipped span (due at or
    /// before `self.cycle - 1`). Cell strikes flip directly — nothing
    /// read the entry during the provably-quiet span, so span-end
    /// application is bit-identical to per-cycle stepping. Latch strikes
    /// hit any unit still holding in-flight work (the pending flip is
    /// judged at the next retire, exactly as in the stepped path); a
    /// quiet span stages no register writes, so the fallback only ever
    /// absorbs.
    fn apply_span_strikes(&mut self) {
        let end = self.cycle - 1;
        while let Some(s) = self.seu.as_mut().and_then(|m| m.take(end)) {
            if let Some(cell) = self.apply_strike_pre_commit(s) {
                self.apply_cell_strike(cell);
            }
        }
    }

    /// Advance up to `n` cycles, stopping early when the machine drains.
    /// Returns the number of cycles actually stepped. Never skips cycles;
    /// pair with [`Coprocessor::fast_forward`] for that.
    pub fn step_n(&mut self, n: u64) -> u64 {
        let mut stepped = 0;
        while stepped < n && !self.is_idle() {
            self.step();
            stepped += 1;
        }
        stepped
    }

    /// Jump the clock forward `cycles` without evaluating anything.
    ///
    /// Only legal while [`Coprocessor::is_idle`] holds: an idle machine's
    /// step is the identity on all state except the cycle counters and
    /// the storage elements' lifetime `cycles` statistic, both of which
    /// this method advances directly. Units that keep state across idle
    /// cycles catch up via [`FunctionalUnit::advance_idle`].
    pub fn fast_forward(&mut self, cycles: u64) {
        debug_assert!(self.is_idle(), "fast_forward on a busy machine");
        if cycles == 0 {
            return;
        }
        self.rx_fifo.note_idle_cycles(cycles);
        self.msg_slot.note_idle_cycles(cycles);
        self.decoded_slot.note_idle_cycles(cycles);
        self.exec_slot.note_idle_cycles(cycles);
        self.resp_slot.note_idle_cycles(cycles);
        self.dev_slot.note_idle_cycles(cycles);
        self.tx_fifo.note_idle_cycles(cycles);
        for fu in &mut self.fus {
            fu.advance_idle(cycles);
        }
        self.cycle += cycles;
        self.skipped_cycles += cycles;
        if self.seu.is_some() {
            self.apply_span_strikes();
        }
    }

    /// Event-wheel scheduling decision: is the machine provably quiet
    /// this cycle, and if so, when is its next internal wake?
    ///
    /// "Quiet" is weaker than [`Coprocessor::is_idle`]: units may be
    /// busy and the dispatcher head may be resident, as long as nothing
    /// *observable* can happen. Concretely, every inter-stage register
    /// except the decoded slot is empty, no unit holds an unretired
    /// completion, every active unit can bound its next change with a
    /// [`FunctionalUnit::wake_hint`], and a resident decoded head
    /// provably stalls on a cause that cannot change during the span
    /// (locks, quiescence and unit occupancy only change through arbiter
    /// or execution activity, which quietness excludes).
    ///
    /// On a quiet verdict the pending wakes — one per active unit, the
    /// watchdog deadline per active unit, the transceiver's retransmit
    /// deadline — are registered on the event wheel, and the earliest
    /// becomes the verdict. The caller combines it with its own external
    /// events and then either steps (something is due now) or calls
    /// [`Coprocessor::skip_quiet`].
    pub fn quiet_verdict(&mut self) -> QuietVerdict {
        // Stage inputs and outputs must be empty: any resident item makes
        // a stage do observable work on the next step. A partial message
        // in the deframe buffer is frozen while the receive FIFO is
        // empty; the decoded head is dry-run classified below.
        if !(self.rx_fifo.is_idle()
            && self.msg_slot.is_idle()
            && self.exec_slot.is_idle()
            && self.resp_slot.is_idle()
            && self.dev_slot.is_idle()
            && self.tx_fifo.is_idle()
            && self.serializer.is_idle()
            && self.execution.is_idle()
            && self.arbiter.is_idle()
            && self.watchdog_errors.is_empty()
            && self
                .transceiver
                .as_ref()
                .is_none_or(|t| !t.has_deliverable() && !t.has_tx_work()))
        {
            return QuietVerdict::Busy;
        }
        // A unit holding a completion gives the write arbiter work.
        for (i, fu) in self.fus.iter().enumerate() {
            if self.fu_active[i] && !self.fu_quarantined[i] && fu.peek_output().is_some() {
                return QuietVerdict::Busy;
            }
        }
        // The decoded head must provably stall; a head that would advance
        // is work.
        if let Some(op) = self.decoded_slot.peek() {
            if Dispatcher::classify_head(op, &self.fus, &self.lock, &self.futable)
                == StallClass::Progress
            {
                return QuietVerdict::Busy;
            }
        }
        // Register the machine's wakes and take the earliest.
        self.wheel.clear();
        self.wheel.seek(self.cycle);
        for i in 0..self.fus.len() {
            if !self.fu_active[i] || self.fu_quarantined[i] {
                continue;
            }
            let Some(hint) = self.fus[i].wake_hint() else {
                // The unit cannot bound its next change: step it.
                self.wheel.clear();
                return QuietVerdict::Busy;
            };
            self.wheel
                .schedule(self.cycle.saturating_add(hint.max(1)), WakeSource::Fu(i));
            if let Some(max) = self.cfg.max_busy_cycles {
                // The watchdog fires at the end of the step whose cycle
                // reaches the deadline; that step must run for real.
                self.wheel.schedule(
                    self.fu_last_progress[i].saturating_add(max),
                    WakeSource::Watchdog(i),
                );
            }
        }
        if let Some(t) = self.transport_next_event() {
            self.wheel.schedule(t, WakeSource::Transport);
        }
        match self.wheel.next_wake() {
            Some(t) if t <= self.cycle => QuietVerdict::Busy,
            Some(u64::MAX) | None => QuietVerdict::Indefinite,
            Some(t) => QuietVerdict::Until(t),
        }
    }

    /// Jump the clock forward `cycles` through a span the last
    /// [`Coprocessor::quiet_verdict`] proved quiet, replaying exactly the
    /// bookkeeping the stepped cycles would have produced: storage
    /// lifetime statistics, busy-cycle counters, the dispatcher's
    /// per-cycle stall accounting (stats, lock counters and trace
    /// events), and each unit's internal progress
    /// ([`FunctionalUnit::advance_busy`] for active units,
    /// [`FunctionalUnit::advance_idle`] otherwise).
    ///
    /// `cycles` must not pass the verdict's wake (nor any external event
    /// the caller tracks); the caller picks the minimum.
    pub fn skip_quiet(&mut self, cycles: u64) {
        if cycles == 0 {
            return;
        }
        let k = cycles;
        let start = self.cycle;
        self.rx_fifo.note_idle_cycles(k);
        self.msg_slot.note_idle_cycles(k);
        if self.decoded_slot.has_data() {
            // A waiting head's issue clock starts when it first becomes
            // visible — the first cycle of the span if not already set.
            if self.decoded_since.is_none() {
                self.decoded_since = Some(start);
            }
            self.decoded_slot.note_held_cycles(k);
            self.stage_busy.dispatcher += k;
            let class = Dispatcher::classify_head(
                self.decoded_slot.peek().expect("head checked above"),
                &self.fus,
                &self.lock,
                &self.futable,
            );
            self.dispatcher
                .note_stalled_span(class, start, k, &mut self.lock, &mut self.trace);
        } else {
            self.decoded_slot.note_idle_cycles(k);
        }
        self.exec_slot.note_idle_cycles(k);
        self.resp_slot.note_idle_cycles(k);
        self.dev_slot.note_idle_cycles(k);
        self.tx_fifo.note_idle_cycles(k);
        if self.n_active_fus > 0 {
            // The arbiter's busy predicate holds whenever units are
            // active, even though its eval is a no-op with no completion
            // pending — identical accounting to the stepped path.
            self.stage_busy.arbiter += k;
        }
        for (i, fu) in self.fus.iter_mut().enumerate() {
            if self.fu_quarantined[i] {
                continue;
            }
            if self.fu_active[i] {
                fu.advance_busy(k);
            } else {
                fu.advance_idle(k);
            }
        }
        // Fire the wakes the span reaches (work-count accounting).
        if self.wheel.now() < self.cycle {
            // No verdict preceded this skip (direct call): nothing is
            // registered for this span.
            self.wheel.clear();
            self.wheel.seek(self.cycle);
        }
        let _ = self.wheel.advance_to(start + k);
        self.cycle += k;
        self.skipped_cycles += k;
        if self.seu.is_some() {
            self.apply_span_strikes();
        }
    }

    /// The current scheduling mode.
    pub fn activity_mode(&self) -> ActivityMode {
        self.activity
    }

    /// Select the scheduling mode. Safe at any time — both modes maintain
    /// the same bookkeeping and produce identical behaviour.
    pub fn set_activity_mode(&mut self, mode: ActivityMode) {
        self.activity = mode;
    }

    /// Scheduler statistics: how much work the simulator did to produce
    /// the simulated cycles so far.
    pub fn sim_stats(&self) -> SimStats {
        let e = &self.stage_evals;
        let b = &self.stage_busy;
        SimStats {
            cycles_simulated: self.cycle,
            cycles_stepped: self.cycle - self.skipped_cycles,
            cycles_skipped: self.skipped_cycles,
            stage_evals: vec![
                ("msgbuf", e.msgbuf),
                ("decoder", e.decoder),
                ("dispatcher", e.dispatcher),
                ("execution", e.execution),
                ("arbiter", e.arbiter),
                ("encoder", e.encoder),
                ("serializer", e.serializer),
            ],
            stage_busy: vec![
                ("msgbuf", b.msgbuf),
                ("decoder", b.decoder),
                ("dispatcher", b.dispatcher),
                ("execution", b.execution),
                ("arbiter", b.arbiter),
                ("encoder", b.encoder),
                ("serializer", b.serializer),
            ],
            lat_issue_dispatch: self.lat_issue_dispatch.clone(),
            lat_dispatch_retire: self.lat_dispatch_retire.clone(),
            lat_issue_retire: self.lat_issue_retire.clone(),
            wheel: self.wheel.stats(),
            recovery: self.recovery,
        }
    }

    /// Soft-error bookkeeping so far (strike outcomes; the rollback and
    /// farm counters stay zero at this layer — the host fills them in).
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery
    }

    /// True when neither register file holds a latent (not yet read)
    /// parity violation. Checkpoint logic uses this to refuse capturing a
    /// state with a silently corrupted memory cell — rolling back to such
    /// a checkpoint could never converge, because the replay would
    /// rediscover the same corruption. Trivially true with parity off.
    pub fn parity_clean(&self) -> bool {
        self.regfile.parity_clean() && self.flagfile.parity_clean()
    }

    /// True when no work is anywhere in the machine (including unread
    /// transmit frames).
    ///
    /// A fitted transceiver that is merely waiting on its retransmit
    /// timer *is* idle — nothing changes until the deadline, which
    /// [`Coprocessor::transport_next_event`] exposes so hosts can bound
    /// their fast-forwards. Pending deliveries, unsent wire frames and
    /// queued watchdog errors are work and hold the machine awake.
    pub fn is_idle(&self) -> bool {
        !self.msgbuf.mid_message() && self.pipeline_drained()
    }

    /// Every stage empty except possibly a partial message sitting in the
    /// deframe buffer. With a live peer more frames will arrive and the
    /// machine is merely between frames; if the sender gave up mid-message
    /// the machine is permanently stalled here, which hosts with a dead
    /// reliable link treat as settled (see `System::is_idle`).
    pub fn stalled_mid_message(&self) -> bool {
        self.msgbuf.mid_message() && self.pipeline_drained()
    }

    fn pipeline_drained(&self) -> bool {
        self.rx_fifo.is_idle()
            && self.msg_slot.is_idle()
            && self.decoded_slot.is_idle()
            && self.exec_slot.is_idle()
            && self.resp_slot.is_idle()
            && self.dev_slot.is_idle()
            && self.serializer.is_idle()
            && self.tx_fifo.is_idle()
            && self.lock.quiescent()
            && self.execution.is_idle()
            && self.arbiter.is_idle()
            && self.no_fu_activity()
            && self.watchdog_errors.is_empty()
            && self
                .transceiver
                .as_ref()
                .is_none_or(|t| !t.has_deliverable() && !t.has_tx_work())
    }

    /// O(1) stand-in for scanning every unit: the active set is exact
    /// after each step (units are registered at dispatch and retired in
    /// the post-commit sweep), so an empty set means every unit is idle.
    /// Quarantined units are exempt — a hung unit stays busy forever by
    /// definition, but it is unclocked and off the scoreboard.
    fn no_fu_activity(&self) -> bool {
        debug_assert_eq!(
            self.n_active_fus == 0,
            self.fus
                .iter()
                .enumerate()
                .all(|(i, f)| f.is_idle() || self.fu_quarantined[i]),
            "active-unit bookkeeping diverged from unit state"
        );
        self.n_active_fus == 0
    }

    /// Transport statistics, when a reliable transceiver is fitted.
    pub fn transport_stats(&self) -> Option<TransportStats> {
        self.transceiver.as_ref().map(|t| t.stats())
    }

    /// True when the fitted transceiver (if any) has delivered and had
    /// acknowledged all traffic. Distinct from [`Coprocessor::is_idle`]:
    /// an endpoint waiting for a peer's ack is idle but not quiescent.
    pub fn transport_quiescent(&self) -> bool {
        self.transceiver.as_ref().is_none_or(|t| t.is_quiescent())
    }

    /// The transceiver's retransmit deadline, for event-driven hosts:
    /// fast-forwarding past it would delay a retransmission.
    pub fn transport_next_event(&self) -> Option<u64> {
        self.transceiver.as_ref().and_then(|t| t.next_event_cycle())
    }

    /// Step until idle, with a cycle budget.
    ///
    /// # Errors
    /// Returns [`SimError::Timeout`] when the budget is exhausted — the
    /// usual symptom of a deadlocked handshake or an unserviced read.
    pub fn run_until_idle(&mut self, max_cycles: u64) -> Result<u64, SimError> {
        let start = self.cycle;
        loop {
            if self.is_idle() {
                return Ok(self.cycle - start);
            }
            let elapsed = self.cycle - start;
            if elapsed >= max_cycles {
                return Err(SimError::Timeout {
                    cycles: max_cycles,
                    waiting_for: "coprocessor idle".into(),
                });
            }
            // Batched stepping: step_n stops exactly at the first idle
            // cycle, so the drain cycle count matches per-cycle stepping.
            self.step_n((max_cycles - elapsed).min(64));
        }
    }

    /// Convenience harness: feed a message batch through the frame port,
    /// run to idle, and return the responses — the loop every host-less
    /// test and experiment would otherwise re-implement. Respects frame
    /// flow control; does not model link timing (use `fu-host` for that).
    ///
    /// # Errors
    /// [`SimError::Timeout`] when `max_cycles` elapse before the machine
    /// drains.
    pub fn run_messages(
        &mut self,
        msgs: &[fu_isa::HostMsg],
        max_cycles: u64,
    ) -> Result<Vec<DevMsg>, SimError> {
        let word_bits = self.cfg.word_bits;
        // One queue allocation for the whole batch; `frames()` serialises
        // each message without a per-message Vec.
        let mut frames: std::collections::VecDeque<u32> =
            msgs.iter().flat_map(|m| m.frames(word_bits)).collect();
        let mut deframer = fu_isa::msg::DevDeframer::new(word_bits);
        let mut out = Vec::new();
        let start = self.cycle;
        loop {
            while let Some(&f) = frames.front() {
                if self.push_frame(f) {
                    frames.pop_front();
                } else {
                    break;
                }
            }
            self.step();
            while let Some(f) = self.pop_frame() {
                if let Some(m) = deframer
                    .push(f)
                    .expect("the serialiser emits well-formed frames")
                {
                    out.push(m);
                }
            }
            if frames.is_empty() && self.is_idle() {
                return Ok(out);
            }
            if self.cycle - start >= max_cycles {
                return Err(SimError::Timeout {
                    cycles: max_cycles,
                    waiting_for: "message batch to drain".into(),
                });
            }
        }
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> CoprocStats {
        let (frames_in, msgs_in) = self.msgbuf.counters();
        let (decoded, decode_errors) = self.decoder.counters();
        let (fu_completions, arb_data_writes, arb_flag_writes, arb_contention) =
            self.arbiter.counters();
        let (exec_data_writes, exec_flag_writes, _resp, _stall) = self.execution.counters();
        let (d, f, s, e) = self.encoder.counters();
        let (_msgs, frames_out) = self.serializer.counters();
        CoprocStats {
            cycles: self.cycle,
            frames_in,
            msgs_in,
            decoded,
            decode_errors,
            dispatch: self.dispatcher.stats,
            fu_completions,
            arb_data_writes,
            arb_flag_writes,
            arb_contention,
            exec_data_writes,
            exec_flag_writes,
            responses: d + f + s + e,
            frames_out,
            fu_timeouts: self.fu_timeouts,
        }
    }

    /// Snapshot of the machine's observable signals this cycle — the
    /// probe points a waveform viewer would attach to (see the
    /// `waveform_trace` example for VCD export).
    pub fn probe(&self) -> CoprocProbe {
        CoprocProbe {
            rx_level: self.rx_fifo.len() as u32,
            msg_valid: self.msg_slot.has_data(),
            decoded_valid: self.decoded_slot.has_data(),
            exec_valid: self.exec_slot.has_data(),
            resp_valid: self.resp_slot.has_data(),
            dev_valid: self.dev_slot.has_data(),
            tx_level: self.tx_fifo.len() as u32,
            in_flight: self.lock.in_flight() as u32,
            fus_busy: self.fus.iter().filter(|f| !f.is_idle()).count() as u32,
        }
    }

    /// Diagnostic read of a data register (not a simulated port).
    pub fn peek_reg(&self, r: u8) -> Word {
        self.regfile.peek(r)
    }

    /// Diagnostic read of a flag register.
    pub fn peek_flags(&self, r: u8) -> Flags {
        self.flagfile.peek(r)
    }

    /// The functional unit table.
    pub fn futable(&self) -> &FuTable {
        &self.futable
    }

    /// Attached units (for diagnostics/experiments).
    pub fn units(&self) -> &[Box<dyn FunctionalUnit>] {
        &self.fus
    }

    /// The retained trace, if tracing was enabled.
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// Resize (or enable/disable) the event trace at run time. `0`
    /// disables tracing; any other value installs a fresh ring buffer of
    /// that capacity, discarding previously retained events. Latency
    /// histograms and busy counters are unaffected — they are always on,
    /// which is what keeps [`Coprocessor::sim_stats`] identical whether
    /// or not tracing is enabled.
    pub fn set_trace_depth(&mut self, depth: usize) {
        self.cfg.trace_depth = depth;
        self.trace = if depth > 0 {
            TraceBuffer::new(depth)
        } else {
            TraceBuffer::disabled()
        };
    }

    /// Total area estimate: framework plus attached units.
    pub fn area(&self) -> AreaEstimate {
        self.framework_area() + self.fus.iter().map(|f| f.area()).sum()
    }

    /// Area of the framework alone (the reusable part).
    pub fn framework_area(&self) -> AreaEstimate {
        let w = self.cfg.word_bits as u64;
        let nfu = self.fus.len().max(1) as u64;
        self.regfile.area()
            + self.flagfile.area()
            + AreaEstimate::fifo(32, self.cfg.rx_fifo_depth as u64)
            + AreaEstimate::fifo(32, self.cfg.tx_fifo_depth as u64)
            // message buffer / serialiser shift structures
            + AreaEstimate::register(2 * w + 64)
            // decoder LUTs + pipeline registers
            + AreaEstimate {
                les: 150,
                ffs: 80 + w,
                bram_bits: 0,
            }
            // dispatcher: operand muxes and lock checks
            + AreaEstimate::mux2(3 * w)
            + AreaEstimate::register(3 * w + 32)
            // lock manager: one bit per register plus decode
            + AreaEstimate {
                les: (self.cfg.data_regs + self.cfg.flag_regs) as u64 / 2,
                ffs: (self.cfg.data_regs + self.cfg.flag_regs) as u64,
                bram_bits: 0,
            }
            // write arbiter: grant tree and result muxes
            + AreaEstimate::mux2(nfu * w)
            + AreaEstimate {
                les: 8 * nfu,
                ffs: 16,
                bram_bits: 0,
            }
    }

    /// Worst combinational depth per stage (the design's clock-period
    /// profile; E5).
    pub fn stage_critical_paths(&self) -> Vec<(&'static str, CriticalPath)> {
        let regs = self.cfg.data_regs.max(self.cfg.flag_regs) as u64;
        let nfu = self.fus.len().max(1) as u64;
        let mut v = vec![
            ("message buffer", CriticalPath::of(4)),
            ("decoder", CriticalPath::of(5)),
            (
                "dispatcher",
                // register-file read mux + lock lookup + handshake
                CriticalPath::of(log2_ceil(regs) + 3),
            ),
            ("execution", CriticalPath::of(3)),
            (
                "write arbiter",
                CriticalPath::tree(nfu, 2).then(CriticalPath::of(2)),
            ),
            ("message encoder", CriticalPath::of(3)),
            ("message serialiser", CriticalPath::of(3)),
        ];
        for fu in &self.fus {
            v.push((fu.name(), fu.critical_path()));
        }
        v
    }

    /// The design's overall critical path (worst stage).
    pub fn critical_path(&self) -> CriticalPath {
        self.stage_critical_paths()
            .into_iter()
            .map(|(_, p)| p)
            .fold(CriticalPath::of(0), CriticalPath::max)
    }

    /// Synchronous reset of the entire design.
    pub fn reset(&mut self) {
        self.msgbuf.reset();
        self.decoder.reset();
        self.dispatcher.reset();
        self.execution.reset();
        self.arbiter.reset();
        self.encoder.reset();
        self.serializer.reset();
        self.regfile.reset();
        self.flagfile.reset();
        self.lock.reset();
        self.rx_fifo.reset();
        self.msg_slot.reset();
        self.decoded_slot.reset();
        self.exec_slot.reset();
        self.resp_slot.reset();
        self.dev_slot.reset();
        self.tx_fifo.reset();
        for fu in &mut self.fus {
            fu.reset();
        }
        self.trace.clear();
        self.cycle = 0;
        self.fu_active.fill(false);
        self.n_active_fus = 0;
        self.skipped_cycles = 0;
        self.stage_evals = StageEvals::default();
        self.stage_busy = StageEvals::default();
        self.decoded_since = None;
        self.lat_inflight.clear();
        self.lat_issue_dispatch = LatencyHistogram::default();
        self.lat_dispatch_retire = LatencyHistogram::default();
        self.lat_issue_retire = LatencyHistogram::default();
        if let Some(t) = self.transceiver.as_mut() {
            t.reset();
        }
        self.futable.clear_quarantine();
        self.wheel.reset(0);
        self.fu_last_progress.fill(0);
        for v in &mut self.fu_outstanding {
            v.clear();
        }
        self.fu_quarantined.fill(false);
        self.watchdog_errors.clear();
        self.fu_timeouts = 0;
        self.seu = self.cfg.seu.map(SeuModel::new);
        self.recovery = RecoveryStats::default();
    }

    /// Deep-copy the whole machine. `None` when an attached unit does not
    /// implement [`FunctionalUnit::clone_unit`].
    fn clone_state(&self) -> Option<Coprocessor> {
        let mut fus = Vec::with_capacity(self.fus.len());
        for f in &self.fus {
            fus.push(f.clone_unit()?);
        }
        Some(Coprocessor {
            cfg: self.cfg.clone(),
            msgbuf: self.msgbuf.clone(),
            decoder: self.decoder.clone(),
            dispatcher: self.dispatcher.clone(),
            execution: self.execution.clone(),
            arbiter: self.arbiter.clone(),
            encoder: self.encoder.clone(),
            serializer: self.serializer.clone(),
            regfile: self.regfile.clone(),
            flagfile: self.flagfile.clone(),
            lock: self.lock.clone(),
            futable: self.futable.clone(),
            fus,
            rx_fifo: self.rx_fifo.clone(),
            msg_slot: self.msg_slot.clone(),
            decoded_slot: self.decoded_slot.clone(),
            exec_slot: self.exec_slot.clone(),
            resp_slot: self.resp_slot.clone(),
            dev_slot: self.dev_slot.clone(),
            tx_fifo: self.tx_fifo.clone(),
            cycle: self.cycle,
            trace: self.trace.clone(),
            activity: self.activity,
            fu_active: self.fu_active.clone(),
            n_active_fus: self.n_active_fus,
            fu_always_clock: self.fu_always_clock.clone(),
            skipped_cycles: self.skipped_cycles,
            stage_evals: self.stage_evals,
            stage_busy: self.stage_busy,
            decoded_since: self.decoded_since,
            lat_inflight: self.lat_inflight.clone(),
            lat_issue_dispatch: self.lat_issue_dispatch.clone(),
            lat_dispatch_retire: self.lat_dispatch_retire.clone(),
            lat_issue_retire: self.lat_issue_retire.clone(),
            transceiver: self.transceiver.clone(),
            fu_last_progress: self.fu_last_progress.clone(),
            fu_outstanding: self.fu_outstanding.clone(),
            fu_quarantined: self.fu_quarantined.clone(),
            watchdog_errors: self.watchdog_errors.clone(),
            fu_timeouts: self.fu_timeouts,
            wheel: self.wheel.clone(),
            seu: self.seu.clone(),
            recovery: self.recovery,
        })
    }

    /// Capture a restorable checkpoint of the full device state —
    /// architectural registers, every pipeline latch, in-flight unit
    /// work, the transceiver and the scheduler bookkeeping. `None` when
    /// an attached unit cannot be cloned (see
    /// [`FunctionalUnit::clone_unit`]).
    pub fn snapshot(&self) -> Option<CoprocSnapshot> {
        self.clone_state().map(|c| CoprocSnapshot(Box::new(c)))
    }

    /// Roll the machine back to `snap`. The SEU strike schedule and the
    /// recovery counters deliberately survive the restore: rewinding the
    /// schedule would replay the identical strikes into every retry and
    /// the rollback loop would never converge, and the counters describe
    /// history, not machine state.
    pub fn restore(&mut self, snap: &CoprocSnapshot) {
        let mut fresh = snap
            .0
            .clone_state()
            .expect("snapshot was built from clonable units");
        fresh.seu = self.seu.take();
        fresh.recovery = self.recovery;
        *self = fresh;
    }
}

/// A restorable deep copy of a [`Coprocessor`] (see
/// [`Coprocessor::snapshot`]). Opaque: it can only be fed back to
/// [`Coprocessor::restore`], any number of times.
pub struct CoprocSnapshot(Box<Coprocessor>);

impl Clone for CoprocSnapshot {
    fn clone(&self) -> Self {
        CoprocSnapshot(Box::new(
            self.0
                .clone_state()
                .expect("snapshot was built from clonable units"),
        ))
    }
}

impl std::fmt::Debug for Coprocessor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coprocessor")
            .field("cycle", &self.cycle)
            .field("config", &self.cfg)
            .field("units", &self.fus.len())
            .field("idle", &self.is_idle())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{LatencyFu, StuckFu};
    use fu_isa::msg::DevDeframer;
    use fu_isa::transport::{Endpoint, TransportConfig};
    use fu_isa::{HostMsg, InstrWord, MgmtOp, UserInstr};

    fn machine(units: Vec<Box<dyn FunctionalUnit>>) -> Coprocessor {
        let cfg = CoprocConfig {
            data_regs: 16,
            flag_regs: 4,
            rx_frames_per_cycle: 4,
            tx_frames_per_cycle: 4,
            ..CoprocConfig::default()
        };
        Coprocessor::new(cfg, units).unwrap()
    }

    /// Feed a message stream, run to idle, return the responses.
    fn run(coproc: &mut Coprocessor, msgs: Vec<HostMsg>) -> Vec<DevMsg> {
        let word_bits = coproc.config().word_bits;
        let mut frames: std::collections::VecDeque<u32> =
            msgs.iter().flat_map(|m| m.to_frames(word_bits)).collect();
        let mut deframer = DevDeframer::new(word_bits);
        let mut out = Vec::new();
        let mut budget = 100_000;
        loop {
            while let Some(&f) = frames.front() {
                if coproc.push_frame(f) {
                    frames.pop_front();
                } else {
                    break;
                }
            }
            coproc.step();
            while let Some(f) = coproc.pop_frame() {
                if let Some(m) = deframer.push(f).unwrap() {
                    out.push(m);
                }
            }
            if frames.is_empty() && coproc.is_idle() {
                break;
            }
            budget -= 1;
            assert!(budget > 0, "machine failed to drain");
        }
        out
    }

    fn add_instr(dst: u8, s1: u8, s2: u8) -> HostMsg {
        // LatencyFu ignores its variety; any value works.
        HostMsg::Instr(InstrWord::user(UserInstr {
            func: 1,
            variety: 0,
            dst_flag: 1,
            dst_reg: dst,
            aux_reg: 0,
            src1: s1,
            src2: s2,
            src3: 0,
        }))
    }

    #[test]
    fn write_read_roundtrip_without_units() {
        let mut m = machine(vec![]);
        let out = run(
            &mut m,
            vec![
                HostMsg::WriteReg {
                    reg: 3,
                    value: Word::from_u64(42, 32),
                },
                HostMsg::ReadReg { reg: 3, tag: 7 },
            ],
        );
        assert_eq!(
            out,
            vec![DevMsg::Data {
                tag: 7,
                value: Word::from_u64(42, 32)
            }]
        );
    }

    #[test]
    fn user_instruction_computes_through_unit() {
        let mut m = machine(vec![Box::new(LatencyFu::new("add", 1, 2))]);
        let out = run(
            &mut m,
            vec![
                HostMsg::WriteReg {
                    reg: 1,
                    value: Word::from_u64(30, 32),
                },
                HostMsg::WriteReg {
                    reg: 2,
                    value: Word::from_u64(12, 32),
                },
                add_instr(3, 1, 2),
                HostMsg::ReadReg { reg: 3, tag: 1 },
                HostMsg::ReadFlags { reg: 1, tag: 2 },
            ],
        );
        assert_eq!(
            out[0],
            DevMsg::Data {
                tag: 1,
                value: Word::from_u64(42, 32)
            }
        );
        // 30 + 12: no carry, not zero, not negative.
        assert_eq!(
            out[1],
            DevMsg::Flags {
                tag: 2,
                flags: Flags::NONE
            }
        );
        let stats = m.stats();
        assert_eq!(stats.dispatch.user_dispatched, 1);
        assert_eq!(stats.fu_completions, 1);
    }

    #[test]
    fn read_after_use_waits_for_completion() {
        // The ReadReg must stall on the lock until the 20-cycle unit
        // completes — the host never sees a stale value.
        let mut m = machine(vec![Box::new(LatencyFu::new("slow", 1, 20))]);
        let out = run(
            &mut m,
            vec![
                HostMsg::WriteReg {
                    reg: 1,
                    value: Word::from_u64(5, 32),
                },
                add_instr(2, 1, 1),
                HostMsg::ReadReg { reg: 2, tag: 9 },
            ],
        );
        assert_eq!(
            out,
            vec![DevMsg::Data {
                tag: 9,
                value: Word::from_u64(10, 32)
            }]
        );
        assert!(
            m.stats().dispatch.stall_lock > 0,
            "the read must have stalled"
        );
    }

    #[test]
    fn sync_acks_after_quiescence() {
        let mut m = machine(vec![Box::new(LatencyFu::new("slow", 1, 10))]);
        let out = run(&mut m, vec![add_instr(2, 1, 1), HostMsg::Sync { tag: 4 }]);
        assert_eq!(out, vec![DevMsg::SyncAck { tag: 4 }]);
        assert!(m.stats().dispatch.stall_fence > 0);
    }

    #[test]
    fn errors_are_reported_in_stream_order() {
        let mut m = machine(vec![Box::new(LatencyFu::new("u", 1, 1))]);
        let out = run(
            &mut m,
            vec![
                HostMsg::ReadReg { reg: 0, tag: 1 },
                // unknown unit
                HostMsg::Instr(InstrWord::user(UserInstr {
                    func: 77,
                    variety: 0,
                    dst_flag: 0,
                    dst_reg: 0,
                    aux_reg: 0,
                    src1: 0,
                    src2: 0,
                    src3: 0,
                })),
                HostMsg::ReadReg { reg: 0, tag: 2 },
            ],
        );
        assert_eq!(out.len(), 3);
        assert!(matches!(out[0], DevMsg::Data { tag: 1, .. }));
        assert!(matches!(
            out[1],
            DevMsg::Error {
                code: fu_isa::msg::ErrorCode::NoSuchUnit,
                info: 77
            }
        ));
        assert!(matches!(out[2], DevMsg::Data { tag: 2, .. }));
    }

    #[test]
    fn mgmt_copy_and_fence() {
        let mut m = machine(vec![]);
        let out = run(
            &mut m,
            vec![
                HostMsg::Instr(
                    MgmtOp::LoadImm {
                        dst: 1,
                        imm: 0xbeef,
                    }
                    .encode(),
                ),
                HostMsg::Instr(MgmtOp::Copy { dst: 2, src: 1 }.encode()),
                HostMsg::Instr(MgmtOp::Fence.encode()),
                HostMsg::ReadReg { reg: 2, tag: 0 },
            ],
        );
        assert_eq!(
            out,
            vec![DevMsg::Data {
                tag: 0,
                value: Word::from_u64(0xbeef, 32)
            }]
        );
    }

    #[test]
    fn copy_chain_respects_data_hazards() {
        // r1 <- 7; r2 <- r1; r3 <- r2; read r3. Each copy depends on the
        // previous one's write; the interlocks must serialise correctly.
        let mut m = machine(vec![]);
        let out = run(
            &mut m,
            vec![
                HostMsg::Instr(MgmtOp::LoadImm { dst: 1, imm: 7 }.encode()),
                HostMsg::Instr(MgmtOp::Copy { dst: 2, src: 1 }.encode()),
                HostMsg::Instr(MgmtOp::Copy { dst: 3, src: 2 }.encode()),
                HostMsg::ReadReg { reg: 3, tag: 0 },
            ],
        );
        assert_eq!(
            out,
            vec![DevMsg::Data {
                tag: 0,
                value: Word::from_u64(7, 32)
            }]
        );
    }

    #[test]
    fn out_of_order_completion_preserves_architectural_state() {
        // Unit 1 is slow, unit 2 fast; issue slow-then-fast with distinct
        // destinations. The fast result is written first internally, but
        // both reads observe correct values.
        let mut m = machine(vec![
            Box::new(LatencyFu::new("slow", 1, 30)),
            Box::new(LatencyFu::new("fast", 2, 1)),
        ]);
        let fast_instr = HostMsg::Instr(InstrWord::user(UserInstr {
            func: 2,
            variety: 0,
            dst_flag: 2,
            dst_reg: 4,
            aux_reg: 0,
            src1: 1,
            src2: 1,
            src3: 0,
        }));
        let out = run(
            &mut m,
            vec![
                HostMsg::WriteReg {
                    reg: 1,
                    value: Word::from_u64(3, 32),
                },
                add_instr(3, 1, 1), // slow: r3 = 6
                fast_instr,         // fast: r4 = 6
                HostMsg::ReadReg { reg: 4, tag: 1 },
                HostMsg::ReadReg { reg: 3, tag: 2 },
            ],
        );
        assert_eq!(
            out,
            vec![
                DevMsg::Data {
                    tag: 1,
                    value: Word::from_u64(6, 32)
                },
                DevMsg::Data {
                    tag: 2,
                    value: Word::from_u64(6, 32)
                },
            ]
        );
    }

    #[test]
    fn waw_interlock_orders_same_destination() {
        // Two instructions target r3: slow first, fast second. Without the
        // WAW interlock the fast unit would write first and the slow write
        // would clobber it; the lock manager must serialise them.
        let mut m = machine(vec![
            Box::new(LatencyFu::new("slow", 1, 25)),
            Box::new(LatencyFu::new("fast", 2, 1)),
        ]);
        let fast_to_r3 = HostMsg::Instr(InstrWord::user(UserInstr {
            func: 2,
            variety: 0,
            dst_flag: 2,
            dst_reg: 3,
            aux_reg: 0,
            src1: 2,
            src2: 2,
            src3: 0,
        }));
        let out = run(
            &mut m,
            vec![
                HostMsg::WriteReg {
                    reg: 1,
                    value: Word::from_u64(10, 32),
                },
                HostMsg::WriteReg {
                    reg: 2,
                    value: Word::from_u64(50, 32),
                },
                add_instr(3, 1, 1), // slow: r3 = 20
                fast_to_r3,         // fast: r3 = 100 — must come second
                HostMsg::ReadReg { reg: 3, tag: 0 },
            ],
        );
        assert_eq!(
            out,
            vec![DevMsg::Data {
                tag: 0,
                value: Word::from_u64(100, 32)
            }]
        );
    }

    #[test]
    fn bad_register_is_reported() {
        let mut m = machine(vec![]);
        let out = run(&mut m, vec![HostMsg::ReadReg { reg: 200, tag: 0 }]);
        assert_eq!(
            out,
            vec![DevMsg::Error {
                code: fu_isa::msg::ErrorCode::BadRegister,
                info: 200
            }]
        );
    }

    #[test]
    fn reset_restores_power_on_state() {
        let mut m = machine(vec![Box::new(LatencyFu::new("u", 1, 3))]);
        let _ = run(
            &mut m,
            vec![
                HostMsg::WriteReg {
                    reg: 1,
                    value: Word::from_u64(9, 32),
                },
                add_instr(2, 1, 1),
                HostMsg::Sync { tag: 0 },
            ],
        );
        m.reset();
        assert!(m.is_idle());
        assert_eq!(m.cycle(), 0);
        assert!(m.peek_reg(1).is_zero());
        assert_eq!(m.stats(), CoprocStats::default());
    }

    #[test]
    fn probe_reflects_pipeline_activity() {
        let mut m = machine(vec![Box::new(LatencyFu::new("slow", 1, 30))]);
        let idle = m.probe();
        assert_eq!(idle.rx_level, 0);
        assert_eq!(idle.in_flight, 0);
        assert_eq!(idle.fus_busy, 0);
        // Inject work and observe the scoreboard and unit occupancy.
        let msgs = vec![
            HostMsg::WriteReg {
                reg: 1,
                value: Word::from_u64(2, 32),
            },
            add_instr(2, 1, 1),
        ];
        for msg in &msgs {
            for f in msg.to_frames(32) {
                assert!(m.push_frame(f));
            }
        }
        let mut saw_busy = false;
        for _ in 0..10 {
            m.step();
            let p = m.probe();
            if p.in_flight > 0 && p.fus_busy > 0 {
                saw_busy = true;
            }
        }
        assert!(saw_busy, "the probe must expose in-flight work");
        m.run_until_idle(1000).unwrap();
        let done = m.probe();
        assert_eq!(done.in_flight, 0);
        assert_eq!(done.fus_busy, 0);
    }

    #[test]
    fn trace_records_dispatches_when_enabled() {
        let cfg = CoprocConfig {
            rx_frames_per_cycle: 8,
            trace_depth: 64,
            ..CoprocConfig::default()
        };
        let mut m = Coprocessor::new(cfg, vec![Box::new(LatencyFu::new("u", 1, 1))]).unwrap();
        let msgs = vec![
            HostMsg::WriteReg {
                reg: 1,
                value: Word::from_u64(1, 32),
            },
            add_instr(2, 1, 1),
            add_instr(3, 1, 1),
        ];
        let _ = m.run_messages(&msgs, 10_000).unwrap();
        let dispatches = m
            .trace()
            .events()
            .filter(|e| matches!(e.kind, TraceEventKind::FuDispatch { .. }))
            .count();
        assert_eq!(dispatches, 2, "one trace event per user dispatch");
        // Disabled tracing records nothing.
        let mut quiet = machine(vec![Box::new(LatencyFu::new("u", 1, 1))]);
        let _ = quiet.run_messages(&[add_instr(2, 1, 1)], 10_000).unwrap();
        assert_eq!(quiet.trace().events().count(), 0);
    }

    #[test]
    fn area_and_critical_path_reports() {
        let m = machine(vec![Box::new(LatencyFu::new("u", 1, 1))]);
        let area = m.area();
        assert!(area.les > 0 && area.ffs > 0);
        assert!(area.components() > m.framework_area().components());
        let paths = m.stage_critical_paths();
        assert!(paths.iter().any(|(n, _)| *n == "dispatcher"));
        assert!(m.critical_path().levels >= 5);
        // The pipelined controller should permit tens of MHz, the band the
        // paper's Cyclone prototype reports.
        assert!(m.critical_path().fmax_mhz() > 30.0);
    }

    fn stuck_instr(dst: u8) -> HostMsg {
        HostMsg::Instr(InstrWord::user(UserInstr {
            func: 9,
            variety: 0,
            dst_flag: 3,
            dst_reg: dst,
            aux_reg: 0,
            src1: 0,
            src2: 0,
            src3: 0,
        }))
    }

    fn watchdog_machine() -> Coprocessor {
        let cfg = CoprocConfig {
            data_regs: 16,
            flag_regs: 4,
            rx_frames_per_cycle: 4,
            tx_frames_per_cycle: 4,
            max_busy_cycles: Some(40),
            ..CoprocConfig::default()
        };
        Coprocessor::new(
            cfg,
            vec![
                Box::new(StuckFu::new("hang", 9)),
                Box::new(LatencyFu::new("add", 1, 2)),
            ],
        )
        .unwrap()
    }

    fn watchdog_workload() -> Vec<HostMsg> {
        vec![
            HostMsg::WriteReg {
                reg: 1,
                value: Word::from_u64(30, 32),
            },
            HostMsg::WriteReg {
                reg: 2,
                value: Word::from_u64(12, 32),
            },
            stuck_instr(5),
            add_instr(3, 1, 2),
            HostMsg::ReadReg { reg: 3, tag: 1 },
            HostMsg::Sync { tag: 4 },
        ]
    }

    #[test]
    fn watchdog_quarantines_hung_unit_and_reports_in_band() {
        let mut m = watchdog_machine();
        let out = run(&mut m, watchdog_workload());
        // The hung dispatch is reported in band; the healthy unit's
        // result and the fence both still complete.
        assert!(out.contains(&DevMsg::Error {
            code: ErrorCode::FuTimeout,
            info: 9
        }));
        assert!(out.contains(&DevMsg::Data {
            tag: 1,
            value: Word::from_u64(42, 32)
        }));
        assert!(out.contains(&DevMsg::SyncAck { tag: 4 }));
        assert_eq!(m.stats().fu_timeouts, 1);
        assert!(m.futable().is_quarantined(0));
        // Later dispatches to the quarantined unit fail fast, and the
        // rest of the machine keeps working.
        let out2 = run(
            &mut m,
            vec![stuck_instr(6), HostMsg::ReadReg { reg: 3, tag: 7 }],
        );
        assert_eq!(
            out2[0],
            DevMsg::Error {
                code: ErrorCode::FuQuarantined,
                info: 9
            }
        );
        assert!(matches!(out2[1], DevMsg::Data { tag: 7, .. }));
        // Reset restores the quarantined unit.
        m.reset();
        assert!(!m.futable().is_quarantined(0));
        assert_eq!(m.stats().fu_timeouts, 0);
    }

    #[test]
    fn watchdog_releases_locks_of_the_hung_dispatch() {
        let mut m = watchdog_machine();
        // The read of the stuck instruction's destination stalls on its
        // lock; the quarantine must release it so the read completes
        // (with the stale register value) instead of wedging forever.
        let out = run(
            &mut m,
            vec![stuck_instr(5), HostMsg::ReadReg { reg: 5, tag: 2 }],
        );
        assert!(out.contains(&DevMsg::Error {
            code: ErrorCode::FuTimeout,
            info: 9
        }));
        assert!(matches!(out[1], DevMsg::Data { tag: 2, .. }));
    }

    #[test]
    fn watchdog_behaviour_is_identical_in_all_activity_modes() {
        let run_mode = |mode: ActivityMode| {
            let mut m = watchdog_machine();
            m.set_activity_mode(mode);
            let out = run(&mut m, watchdog_workload());
            (out, m.cycle(), m.stats().fu_timeouts)
        };
        let gated = run_mode(ActivityMode::Gated);
        assert_eq!(gated, run_mode(ActivityMode::Exhaustive));
        assert_eq!(gated, run_mode(ActivityMode::Scheduled));
    }

    /// Drive a coprocessor the way the event-scheduled kernel does:
    /// consult [`Coprocessor::quiet_verdict`] whenever no input is
    /// pending and jump quiet spans with [`Coprocessor::skip_quiet`],
    /// stepping everything else cycle by cycle.
    fn run_scheduled(coproc: &mut Coprocessor, msgs: Vec<HostMsg>) -> Vec<DevMsg> {
        let word_bits = coproc.config().word_bits;
        let mut frames: std::collections::VecDeque<u32> =
            msgs.iter().flat_map(|m| m.to_frames(word_bits)).collect();
        let mut deframer = DevDeframer::new(word_bits);
        let mut out = Vec::new();
        let mut budget = 100_000;
        loop {
            while let Some(&f) = frames.front() {
                if coproc.push_frame(f) {
                    frames.pop_front();
                } else {
                    break;
                }
            }
            let skip = if frames.is_empty() {
                match coproc.quiet_verdict() {
                    QuietVerdict::Until(t) => t - coproc.cycle(),
                    QuietVerdict::Busy | QuietVerdict::Indefinite => 0,
                }
            } else {
                0
            };
            if skip > 0 {
                coproc.skip_quiet(skip);
            } else {
                coproc.step();
            }
            while let Some(f) = coproc.pop_frame() {
                if let Some(m) = deframer.push(f).unwrap() {
                    out.push(m);
                }
            }
            if frames.is_empty() && coproc.is_idle() {
                break;
            }
            budget -= 1;
            assert!(budget > 0, "machine failed to drain");
        }
        out
    }

    #[test]
    fn scheduled_kernel_matches_stepped_gated_execution() {
        // A long-latency unit plus a RAW-dependent follow-up: the skip
        // path must cross both a plain busy span and a span in which the
        // dispatcher head stalls on a lock, replaying stall statistics
        // and trace events identically.
        let mk = || {
            let cfg = CoprocConfig {
                data_regs: 16,
                flag_regs: 4,
                rx_frames_per_cycle: 4,
                tx_frames_per_cycle: 4,
                trace_depth: 512,
                ..CoprocConfig::default()
            };
            Coprocessor::new(cfg, vec![Box::new(LatencyFu::new("slow", 1, 37)) as _]).unwrap()
        };
        // Two phases: the compute batch first (so nothing queues up
        // behind the stalled head and spoils quietness — a message
        // waiting in the pipe is work), then the readback.
        let compute = || {
            vec![
                HostMsg::WriteReg {
                    reg: 1,
                    value: Word::from_u64(30, 32),
                },
                HostMsg::WriteReg {
                    reg: 2,
                    value: Word::from_u64(12, 32),
                },
                add_instr(3, 1, 2),
                add_instr(4, 3, 3),
            ]
        };
        let readback = || {
            vec![
                HostMsg::ReadReg { reg: 4, tag: 9 },
                HostMsg::Sync { tag: 5 },
            ]
        };
        let mut gated = mk();
        gated.set_activity_mode(ActivityMode::Gated);
        let mut out_g = run(&mut gated, compute());
        out_g.extend(run(&mut gated, readback()));
        let mut sched = mk();
        sched.set_activity_mode(ActivityMode::Scheduled);
        let mut out_s = run_scheduled(&mut sched, compute());
        out_s.extend(run_scheduled(&mut sched, readback()));

        assert_eq!(out_g, out_s);
        assert_eq!(gated.cycle(), sched.cycle());
        assert_eq!(gated.stats(), sched.stats(), "CoprocStats incl. stalls");
        let (sg, ss) = (gated.sim_stats(), sched.sim_stats());
        assert_eq!(sg.stage_busy, ss.stage_busy);
        assert_eq!(sg.lat_issue_dispatch, ss.lat_issue_dispatch);
        assert_eq!(sg.lat_dispatch_retire, ss.lat_dispatch_retire);
        assert_eq!(sg.lat_issue_retire, ss.lat_issue_retire);
        let tg: Vec<_> = gated.trace().events().collect();
        let ts: Vec<_> = sched.trace().events().collect();
        assert_eq!(tg, ts, "trace streams identical across kernels");
        assert!(
            ss.cycles_skipped > 30,
            "the busy span was actually skipped (skipped {})",
            ss.cycles_skipped
        );
        assert!(ss.wheel.wakes_scheduled > 0 && ss.wheel.wakes_fired > 0);
    }

    #[test]
    fn scheduled_kernel_handles_watchdog_deadline() {
        // The hung unit hints "forever"; only the watchdog deadline
        // bounds the skip, and the deadline cycle itself must be stepped
        // so quarantine fires exactly as in the gated kernel.
        let mut gated = watchdog_machine();
        gated.set_activity_mode(ActivityMode::Gated);
        let out_g = run(&mut gated, watchdog_workload());
        let mut sched = watchdog_machine();
        sched.set_activity_mode(ActivityMode::Scheduled);
        let out_s = run_scheduled(&mut sched, watchdog_workload());
        assert_eq!(out_g, out_s);
        assert_eq!(gated.cycle(), sched.cycle());
        assert_eq!(gated.stats(), sched.stats());
        assert_eq!(gated.stats().fu_timeouts, 1, "watchdog actually fired");
    }

    #[test]
    fn transceiver_port_carries_messages_over_wire_segments() {
        let tcfg = TransportConfig::default();
        let cfg = CoprocConfig {
            rx_frames_per_cycle: 4,
            tx_frames_per_cycle: 4,
            transport: Some(tcfg),
            ..CoprocConfig::default()
        };
        let mut m = Coprocessor::new(cfg, vec![]).unwrap();
        let mut host = Endpoint::new(tcfg);
        let msgs = [
            HostMsg::WriteReg {
                reg: 3,
                value: Word::from_u64(42, 32),
            },
            HostMsg::ReadReg { reg: 3, tag: 7 },
        ];
        for msg in &msgs {
            for f in msg.to_frames(32) {
                host.send(f);
            }
        }
        let mut deframer = DevDeframer::new(32);
        let mut out = Vec::new();
        for now in 0..5_000u64 {
            host.poll(now);
            while let Some(f) = host.pull_frame(now) {
                assert!(m.push_frame(f), "wire frames are always accepted");
            }
            m.step();
            while let Some(f) = m.pop_frame() {
                host.on_frame(now, f);
            }
            while let Some(p) = host.deliver() {
                if let Some(msg) = deframer.push(p).unwrap() {
                    out.push(msg);
                }
            }
            if !out.is_empty() && m.is_idle() && m.transport_quiescent() && host.is_quiescent() {
                break;
            }
        }
        assert_eq!(
            out,
            vec![DevMsg::Data {
                tag: 7,
                value: Word::from_u64(42, 32)
            }]
        );
        let stats = m.transport_stats().expect("transceiver fitted");
        assert!(stats.delivered > 0 && stats.acks_sent > 0);
        assert!(!stats.gave_up);
    }

    #[test]
    fn wide_word_machine_roundtrips() {
        let cfg = CoprocConfig {
            word_bits: 128,
            rx_frames_per_cycle: 8,
            tx_frames_per_cycle: 8,
            ..CoprocConfig::default()
        };
        let mut m = Coprocessor::new(cfg, vec![]).unwrap();
        let v = Word::from_u128(0x0011_2233_4455_6677_8899_aabb_ccdd_eeff, 128);
        let out = run(
            &mut m,
            vec![
                HostMsg::WriteReg { reg: 1, value: v },
                HostMsg::ReadReg { reg: 1, tag: 5 },
            ],
        );
        assert_eq!(out, vec![DevMsg::Data { tag: 5, value: v }]);
    }
}
