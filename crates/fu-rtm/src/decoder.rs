//! The decoder stage.
//!
//! "The current instruction is decoded into a vector of signals that
//! control the execution stage." The decoder validates messages against
//! the configuration (register ranges) and the functional unit table
//! (known function codes), producing either a [`DecodedOp`] control vector
//! or an in-band error that will be reported to the host *in stream
//! order* — an error travels down the pipeline like any other operation,
//! so the host can correlate it with its request stream.

use crate::futable::FuTable;
use crate::msgbuf::MsgBufOut;
use fu_isa::msg::ErrorCode;
use fu_isa::{Flags, HostMsg, MgmtOp, RegNum, Tag, UserInstr, Word};
use rtl_sim::{HandshakeSlot, SatCounter, TraceBuffer, TraceEventKind};

/// The decoder's control vector — one per host message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodedOp {
    /// Dispatch a user instruction to the unit at `fu_index`.
    User {
        /// Decoded instruction fields.
        instr: UserInstr,
        /// Index of the target unit in the coprocessor's unit vector.
        fu_index: usize,
    },
    /// Execute a management primitive in the main pipeline.
    Mgmt(MgmtOp),
    /// Architectural register write requested by the host.
    WriteReg {
        /// Destination register.
        reg: RegNum,
        /// Value to write.
        value: Word,
    },
    /// Architectural flag write requested by the host.
    WriteFlags {
        /// Destination flag register.
        reg: RegNum,
        /// Flags to write.
        flags: Flags,
    },
    /// Read a data register and respond with the given tag.
    ReadReg {
        /// Source register.
        reg: RegNum,
        /// Correlation tag.
        tag: Tag,
    },
    /// Read a flag register and respond with the given tag.
    ReadFlags {
        /// Source flag register.
        reg: RegNum,
        /// Correlation tag.
        tag: Tag,
    },
    /// Barrier with acknowledgement.
    Sync {
        /// Correlation tag.
        tag: Tag,
    },
    /// Report an error to the host (in stream order).
    Error {
        /// Error class.
        code: ErrorCode,
        /// Additional information.
        info: u32,
    },
}

/// The decoder stage.
#[derive(Debug, Clone)]
pub struct Decoder {
    data_regs: u16,
    flag_regs: u16,
    word_bits: u32,
    decoded: SatCounter,
    errors: SatCounter,
}

impl Decoder {
    /// A decoder validating against the given configuration limits.
    pub fn new(data_regs: u16, flag_regs: u16, word_bits: u32) -> Decoder {
        Decoder {
            data_regs,
            flag_regs,
            word_bits,
            decoded: SatCounter::default(),
            errors: SatCounter::default(),
        }
    }

    fn data_ok(&self, r: RegNum) -> bool {
        (r as u16) < self.data_regs
    }

    fn flag_ok(&self, r: RegNum) -> bool {
        (r as u16) < self.flag_regs
    }

    fn decode(&mut self, msg: HostMsg, futable: &FuTable) -> DecodedOp {
        let bad_reg = |r: RegNum| DecodedOp::Error {
            code: ErrorCode::BadRegister,
            info: r as u32,
        };
        match msg {
            HostMsg::WriteReg { reg, value } => {
                if !self.data_ok(reg) {
                    return bad_reg(reg);
                }
                debug_assert_eq!(value.bits(), self.word_bits);
                DecodedOp::WriteReg { reg, value }
            }
            HostMsg::WriteFlags { reg, flags } => {
                if !self.flag_ok(reg) {
                    return bad_reg(reg);
                }
                DecodedOp::WriteFlags { reg, flags }
            }
            HostMsg::ReadReg { reg, tag } => {
                if !self.data_ok(reg) {
                    return bad_reg(reg);
                }
                DecodedOp::ReadReg { reg, tag }
            }
            HostMsg::ReadFlags { reg, tag } => {
                if !self.flag_ok(reg) {
                    return bad_reg(reg);
                }
                DecodedOp::ReadFlags { reg, tag }
            }
            HostMsg::Sync { tag } => DecodedOp::Sync { tag },
            HostMsg::Instr(w) if w.is_user() => {
                let instr = w.as_user();
                let Some(entry) = futable.lookup(instr.func) else {
                    return DecodedOp::Error {
                        code: ErrorCode::NoSuchUnit,
                        info: instr.func as u32,
                    };
                };
                if futable.is_quarantined(entry.index) {
                    // The watchdog abandoned this unit; fail fast instead
                    // of queueing work it will never accept.
                    return DecodedOp::Error {
                        code: ErrorCode::FuQuarantined,
                        info: instr.func as u32,
                    };
                }
                // All data-register fields must be in range (unused fields
                // encode as 0, which is always in range); the aux field is
                // checked against the file its role selects.
                for r in [instr.dst_reg, instr.src1, instr.src2, instr.src3] {
                    if !self.data_ok(r) {
                        return bad_reg(r);
                    }
                }
                if !self.flag_ok(instr.dst_flag) {
                    return bad_reg(instr.dst_flag);
                }
                let aux_ok = match entry.aux_role {
                    crate::protocol::AuxRole::Unused => true,
                    crate::protocol::AuxRole::FlagSource => self.flag_ok(instr.aux_reg),
                    crate::protocol::AuxRole::SecondDest => self.data_ok(instr.aux_reg),
                };
                if !aux_ok {
                    return bad_reg(instr.aux_reg);
                }
                DecodedOp::User {
                    instr,
                    fu_index: entry.index,
                }
            }
            HostMsg::Instr(w) => match MgmtOp::decode(w) {
                Err(e) => DecodedOp::Error {
                    code: ErrorCode::BadOpcode,
                    info: e.opcode as u32,
                },
                Ok(op) => {
                    let (rd, fd) = op.reads();
                    let (wd, wf) = op.writes();
                    for r in rd.iter().chain(&wd) {
                        if !self.data_ok(*r) {
                            return bad_reg(*r);
                        }
                    }
                    for r in fd.iter().chain(&wf) {
                        if !self.flag_ok(*r) {
                            return bad_reg(*r);
                        }
                    }
                    DecodedOp::Mgmt(op)
                }
            },
        }
    }

    /// One evaluate phase: decode at most one message.
    pub fn eval(
        &mut self,
        input: &mut HandshakeSlot<MsgBufOut>,
        output: &mut HandshakeSlot<DecodedOp>,
        futable: &FuTable,
        cycle: u64,
        trace: &mut TraceBuffer,
    ) {
        if !output.can_push() {
            return;
        }
        let Some(item) = input.take() else { return };
        let op = match item {
            Ok(msg) => self.decode(msg, futable),
            Err(e) => DecodedOp::Error {
                code: ErrorCode::BadFrame,
                info: e.header,
            },
        };
        if matches!(op, DecodedOp::Error { .. }) {
            self.errors.bump();
        }
        self.decoded.bump();
        trace.record(cycle, TraceEventKind::StagePush { stage: "decoder" });
        output.push(op);
    }

    /// `(messages decoded, errors produced)` since reset.
    pub fn counters(&self) -> (u64, u64) {
        (self.decoded.get(), self.errors.get())
    }

    /// Return to the power-on state.
    pub fn reset(&mut self) {
        self.decoded = SatCounter::default();
        self.errors = SatCounter::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{AuxRole, DispatchPacket, FuOutput, FunctionalUnit};
    use fu_isa::InstrWord;
    use rtl_sim::{AreaEstimate, Clocked, CriticalPath};

    struct Dummy(u8, AuxRole);

    impl Clocked for Dummy {
        fn commit(&mut self) {}
        fn reset(&mut self) {}
    }

    impl FunctionalUnit for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn func_code(&self) -> u8 {
            self.0
        }
        fn aux_role(&self) -> AuxRole {
            self.1
        }
        fn can_dispatch(&self) -> bool {
            true
        }
        fn dispatch(&mut self, _p: DispatchPacket) {}
        fn peek_output(&self) -> Option<&FuOutput> {
            None
        }
        fn ack_output(&mut self) -> FuOutput {
            unreachable!()
        }
        fn is_idle(&self) -> bool {
            true
        }
        fn area(&self) -> AreaEstimate {
            AreaEstimate::ZERO
        }
        fn critical_path(&self) -> CriticalPath {
            CriticalPath::of(0)
        }
    }

    fn table() -> FuTable {
        let units: Vec<Box<dyn FunctionalUnit>> = vec![
            Box::new(Dummy(16, AuxRole::FlagSource)),
            Box::new(Dummy(19, AuxRole::SecondDest)),
        ];
        FuTable::build(&units).unwrap()
    }

    fn decode_one(msg: HostMsg) -> DecodedOp {
        let mut d = Decoder::new(16, 4, 32);
        let t = table();
        let mut input = HandshakeSlot::new();
        let mut output = HandshakeSlot::new();
        input.push(Ok(msg));
        input.commit();
        d.eval(&mut input, &mut output, &t, 0, &mut TraceBuffer::disabled());
        output.commit();
        output.take().expect("decoded op")
    }

    fn user_word(func: u8, dst: u8, aux: u8, src1: u8) -> HostMsg {
        HostMsg::Instr(InstrWord::user(UserInstr {
            func,
            variety: 0,
            dst_flag: 0,
            dst_reg: dst,
            aux_reg: aux,
            src1,
            src2: 0,
            src3: 0,
        }))
    }

    #[test]
    fn user_instruction_resolves_unit_index() {
        let op = decode_one(user_word(19, 1, 2, 3));
        assert_eq!(
            op,
            DecodedOp::User {
                instr: UserInstr {
                    func: 19,
                    variety: 0,
                    dst_flag: 0,
                    dst_reg: 1,
                    aux_reg: 2,
                    src1: 3,
                    src2: 0,
                    src3: 0
                },
                fu_index: 1
            }
        );
    }

    #[test]
    fn unknown_unit_is_reported() {
        let op = decode_one(user_word(99, 0, 0, 0));
        assert_eq!(
            op,
            DecodedOp::Error {
                code: ErrorCode::NoSuchUnit,
                info: 99
            }
        );
    }

    #[test]
    fn register_ranges_enforced() {
        // data regs: 16, flag regs: 4.
        assert!(matches!(
            decode_one(user_word(16, 16, 0, 0)),
            DecodedOp::Error {
                code: ErrorCode::BadRegister,
                info: 16
            }
        ));
        assert!(matches!(
            decode_one(user_word(16, 0, 0, 200)),
            DecodedOp::Error {
                code: ErrorCode::BadRegister,
                ..
            }
        ));
        // aux as flag source: limit 4.
        assert!(matches!(
            decode_one(user_word(16, 0, 4, 0)),
            DecodedOp::Error {
                code: ErrorCode::BadRegister,
                info: 4
            }
        ));
        // aux as second destination: limit 16, so 4 is fine.
        assert!(matches!(
            decode_one(user_word(19, 0, 4, 0)),
            DecodedOp::User { .. }
        ));
        assert!(matches!(
            decode_one(HostMsg::ReadReg { reg: 16, tag: 0 }),
            DecodedOp::Error {
                code: ErrorCode::BadRegister,
                ..
            }
        ));
        assert!(matches!(
            decode_one(HostMsg::WriteFlags {
                reg: 9,
                flags: Flags::NONE
            }),
            DecodedOp::Error {
                code: ErrorCode::BadRegister,
                ..
            }
        ));
    }

    #[test]
    fn mgmt_ops_decode_and_validate() {
        assert_eq!(
            decode_one(HostMsg::Instr(MgmtOp::Copy { dst: 3, src: 5 }.encode())),
            DecodedOp::Mgmt(MgmtOp::Copy { dst: 3, src: 5 })
        );
        assert!(matches!(
            decode_one(HostMsg::Instr(MgmtOp::Copy { dst: 30, src: 5 }.encode())),
            DecodedOp::Error {
                code: ErrorCode::BadRegister,
                info: 30
            }
        ));
        assert!(matches!(
            decode_one(HostMsg::Instr(InstrWord::mgmt(0x44, 0, 0, 0))),
            DecodedOp::Error {
                code: ErrorCode::BadOpcode,
                info: 0x44
            }
        ));
    }

    #[test]
    fn frame_errors_pass_through() {
        let mut d = Decoder::new(16, 4, 32);
        let t = table();
        let mut input = HandshakeSlot::new();
        let mut output = HandshakeSlot::new();
        input.push(Err(fu_isa::msg::FrameError {
            header: 0xbad0_0000,
        }));
        input.commit();
        d.eval(&mut input, &mut output, &t, 0, &mut TraceBuffer::disabled());
        output.commit();
        assert_eq!(
            output.take(),
            Some(DecodedOp::Error {
                code: ErrorCode::BadFrame,
                info: 0xbad0_0000
            })
        );
        assert_eq!(d.counters(), (1, 1));
    }

    #[test]
    fn stalls_without_consuming() {
        let mut d = Decoder::new(16, 4, 32);
        let t = table();
        let mut input = HandshakeSlot::new();
        let mut output = HandshakeSlot::new();
        output.push(DecodedOp::Sync { tag: 0 }); // occupy downstream
        output.commit();
        input.push(Ok(HostMsg::Sync { tag: 1 }));
        input.commit();
        d.eval(&mut input, &mut output, &t, 0, &mut TraceBuffer::disabled());
        assert!(input.has_data(), "input must not be consumed while stalled");
    }

    #[test]
    fn reads_and_sync_pass_through() {
        assert_eq!(
            decode_one(HostMsg::ReadFlags { reg: 2, tag: 5 }),
            DecodedOp::ReadFlags { reg: 2, tag: 5 }
        );
        assert_eq!(
            decode_one(HostMsg::Sync { tag: 9 }),
            DecodedOp::Sync { tag: 9 }
        );
    }
}
