//! The execution stage.
//!
//! "Instructions that operate on the state of the RTM are executed" here:
//! management primitives (register/flag copies, immediates, host writes)
//! and response generation for host reads, syncs and errors. The stage
//! owns the *high-priority write port* shown entering the write arbiter in
//! Figure 4 — its writes never contend with functional-unit completions
//! because the lock manager guarantees the register sets are disjoint.
//!
//! Like the write arbiter, lock releases are registered (one cycle after
//! the write is staged) so a dependent instruction dispatched in the
//! release cycle reads the committed value.

use crate::encoder::SequencedResponse;
use crate::flagfile::FlagFile;
use crate::lock::LockManager;
use crate::protocol::LockTicket;
use crate::regfile::RegFile;
use fu_isa::{Flags, RegNum, Word};
use rtl_sim::{HandshakeSlot, SatCounter, StallCause, TraceBuffer, TraceEventKind};

/// Micro-operations entering the execution stage from the dispatcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecOp {
    /// Write a data register through the high-priority port.
    WriteData {
        /// Destination register.
        reg: RegNum,
        /// Value (already resolved by the dispatcher's operand read).
        value: Word,
        /// Lock to release once written.
        ticket: LockTicket,
    },
    /// Write a flag register through the high-priority port.
    WriteFlags {
        /// Destination flag register.
        reg: RegNum,
        /// Flag vector.
        flags: Flags,
        /// Lock to release once written.
        ticket: LockTicket,
    },
    /// Forward a response towards the message encoder.
    Respond(SequencedResponse),
}

/// The execution stage.
#[derive(Debug, Clone, Default)]
pub struct Execution {
    pending_release: Vec<LockTicket>,
    data_writes: SatCounter,
    flag_writes: SatCounter,
    responses: SatCounter,
    stall_cycles: SatCounter,
}

impl Execution {
    /// A fresh execution stage.
    pub fn new() -> Execution {
        Execution::default()
    }

    /// One evaluate phase: release last cycle's locks, then execute at
    /// most one micro-operation.
    #[allow(clippy::too_many_arguments)] // the stage's port list, as in hardware
    pub fn eval(
        &mut self,
        input: &mut HandshakeSlot<ExecOp>,
        resp_out: &mut HandshakeSlot<SequencedResponse>,
        regfile: &mut RegFile,
        flagfile: &mut FlagFile,
        lock: &mut LockManager,
        cycle: u64,
        trace: &mut TraceBuffer,
    ) {
        for t in self.pending_release.drain(..) {
            trace.record(
                cycle,
                TraceEventKind::LockRelease {
                    data: t.data,
                    flag: t.flag,
                },
            );
            lock.release(&t);
        }
        let Some(op) = input.peek() else { return };
        match op {
            ExecOp::Respond(_) => {
                if !resp_out.can_push() {
                    self.stall_cycles.bump();
                    trace.record(
                        cycle,
                        TraceEventKind::StageStall {
                            stage: "execution",
                            cause: StallCause::RespFull,
                        },
                    );
                    return; // stall against a full encoder
                }
                let Some(ExecOp::Respond(r)) = input.take() else {
                    unreachable!("peeked Respond")
                };
                self.responses.bump();
                trace.record(cycle, TraceEventKind::StagePush { stage: "execution" });
                resp_out.push(r);
            }
            ExecOp::WriteData { .. } => {
                let Some(ExecOp::WriteData { reg, value, ticket }) = input.take() else {
                    unreachable!("peeked WriteData")
                };
                regfile.write(reg, value);
                self.data_writes.bump();
                trace.record(cycle, TraceEventKind::StagePush { stage: "execution" });
                self.pending_release.push(ticket);
            }
            ExecOp::WriteFlags { .. } => {
                let Some(ExecOp::WriteFlags { reg, flags, ticket }) = input.take() else {
                    unreachable!("peeked WriteFlags")
                };
                flagfile.write(reg, flags);
                self.flag_writes.bump();
                trace.record(cycle, TraceEventKind::StagePush { stage: "execution" });
                self.pending_release.push(ticket);
            }
        }
    }

    /// True when no lock release is still pending.
    pub fn is_idle(&self) -> bool {
        self.pending_release.is_empty()
    }

    /// `(data writes, flag writes, responses, stall cycles)` since reset.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.data_writes.get(),
            self.flag_writes.get(),
            self.responses.get(),
            self.stall_cycles.get(),
        )
    }

    /// Return to the power-on state.
    pub fn reset(&mut self) {
        *self = Execution::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fu_isa::DevMsg;
    use rtl_sim::Clocked;

    fn setup() -> (
        Execution,
        HandshakeSlot<ExecOp>,
        HandshakeSlot<SequencedResponse>,
        RegFile,
        FlagFile,
        LockManager,
    ) {
        (
            Execution::new(),
            HandshakeSlot::new(),
            HandshakeSlot::new(),
            RegFile::new(8, 32),
            FlagFile::new(4),
            LockManager::new(8, 4),
        )
    }

    #[test]
    fn write_data_and_registered_release() {
        let (mut ex, mut input, mut resp, mut rf, mut ff, mut lm) = setup();
        let ticket = LockTicket::new(Some(5), None, None);
        lm.acquire(&ticket);
        input.push(ExecOp::WriteData {
            reg: 5,
            value: Word::from_u64(123, 32),
            ticket,
        });
        input.commit();
        ex.eval(
            &mut input,
            &mut resp,
            &mut rf,
            &mut ff,
            &mut lm,
            0,
            &mut TraceBuffer::disabled(),
        );
        assert!(lm.data_locked(5), "release must wait one cycle");
        assert!(!ex.is_idle());
        rf.commit();
        ex.eval(
            &mut input,
            &mut resp,
            &mut rf,
            &mut ff,
            &mut lm,
            0,
            &mut TraceBuffer::disabled(),
        );
        assert!(lm.quiescent());
        assert!(ex.is_idle());
        assert_eq!(rf.peek(5).as_u64(), 123);
    }

    #[test]
    fn write_flags() {
        let (mut ex, mut input, mut resp, mut rf, mut ff, mut lm) = setup();
        let ticket = LockTicket::new(None, None, Some(2));
        lm.acquire(&ticket);
        input.push(ExecOp::WriteFlags {
            reg: 2,
            flags: Flags::ERROR,
            ticket,
        });
        input.commit();
        ex.eval(
            &mut input,
            &mut resp,
            &mut rf,
            &mut ff,
            &mut lm,
            0,
            &mut TraceBuffer::disabled(),
        );
        ff.commit();
        assert_eq!(ff.peek(2), Flags::ERROR);
        ex.eval(
            &mut input,
            &mut resp,
            &mut rf,
            &mut ff,
            &mut lm,
            0,
            &mut TraceBuffer::disabled(),
        );
        assert!(lm.quiescent());
    }

    #[test]
    fn respond_stalls_on_full_encoder() {
        let (mut ex, mut input, mut resp, mut rf, mut ff, mut lm) = setup();
        resp.push(SequencedResponse {
            seq: 0,
            msg: DevMsg::SyncAck { tag: 0 },
        });
        resp.commit();
        input.push(ExecOp::Respond(SequencedResponse {
            seq: 1,
            msg: DevMsg::SyncAck { tag: 1 },
        }));
        input.commit();
        ex.eval(
            &mut input,
            &mut resp,
            &mut rf,
            &mut ff,
            &mut lm,
            0,
            &mut TraceBuffer::disabled(),
        );
        assert!(input.has_data(), "stalled response must stay queued");
        assert_eq!(ex.counters().3, 1);
        resp.take();
        ex.eval(
            &mut input,
            &mut resp,
            &mut rf,
            &mut ff,
            &mut lm,
            0,
            &mut TraceBuffer::disabled(),
        );
        assert!(!input.has_data());
        resp.commit();
        assert_eq!(resp.take().unwrap().msg, DevMsg::SyncAck { tag: 1 });
    }

    #[test]
    fn counters_accumulate() {
        let (mut ex, mut input, mut resp, mut rf, mut ff, mut lm) = setup();
        let t1 = LockTicket::new(Some(1), None, None);
        lm.acquire(&t1);
        input.push(ExecOp::WriteData {
            reg: 1,
            value: Word::from_u64(1, 32),
            ticket: t1,
        });
        input.commit();
        ex.eval(
            &mut input,
            &mut resp,
            &mut rf,
            &mut ff,
            &mut lm,
            0,
            &mut TraceBuffer::disabled(),
        );
        rf.commit();
        input.push(ExecOp::Respond(SequencedResponse {
            seq: 0,
            msg: DevMsg::SyncAck { tag: 0 },
        }));
        input.commit();
        ex.eval(
            &mut input,
            &mut resp,
            &mut rf,
            &mut ff,
            &mut lm,
            0,
            &mut TraceBuffer::disabled(),
        );
        assert_eq!(ex.counters(), (1, 0, 1, 0));
    }
}
