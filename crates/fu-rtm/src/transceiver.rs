//! The device-side reliable transceiver.
//!
//! The paper places a *message buffer* behind "the FPGA input port
//! connected to the host processor" and a *message serialiser* in front of
//! the output port, and notes the framing layer "is exactly what a
//! different transceiver would replace". This module is that replacement
//! for lossy links: it sits between the external frame port and the
//! rx/tx frame FIFOs, wrapping every outgoing frame in a go-back-N data
//! segment and unwrapping/acknowledging every incoming one (see
//! [`fu_isa::transport`] for the protocol itself).
//!
//! When no transceiver is configured the coprocessor keeps the bare port:
//! frames pass straight through, as all existing benches assume.

use fu_isa::transport::{Endpoint, TransportConfig, TransportStats};

/// Reliable-transport shim for the coprocessor's frame port.
#[derive(Debug, Clone)]
pub struct DeviceTransceiver {
    ep: Endpoint,
}

impl DeviceTransceiver {
    pub fn new(cfg: TransportConfig) -> DeviceTransceiver {
        DeviceTransceiver {
            ep: Endpoint::new(cfg),
        }
    }

    /// A wire frame arrived on the input port.
    pub fn on_wire_frame(&mut self, now: u64, frame: u32) {
        self.ep.on_frame(now, frame);
    }

    /// Next validated in-order payload frame for the rx FIFO.
    pub fn deliver(&mut self) -> Option<u32> {
        self.ep.deliver()
    }

    /// Payload frames waiting for rx-FIFO space.
    pub fn has_deliverable(&self) -> bool {
        self.ep.has_deliverable()
    }

    /// Queue one serialiser output frame for reliable delivery.
    pub fn send_payload(&mut self, frame: u32) {
        self.ep.send(frame);
    }

    /// Next wire frame for the output port (acks and data segments).
    pub fn pull_wire_frame(&mut self, now: u64) -> Option<u32> {
        self.ep.pull_frame(now)
    }

    /// Advance the retransmit timer.
    pub fn poll(&mut self, now: u64) {
        self.ep.poll(now);
    }

    /// True when `pull_wire_frame` would emit a frame right now. While this
    /// holds the coprocessor is *not* idle for fast-forward purposes.
    pub fn has_tx_work(&self) -> bool {
        self.ep.has_tx_work()
    }

    /// Retransmit deadline, for event-driven fast-forwarding.
    pub fn next_event_cycle(&self) -> Option<u64> {
        self.ep.next_event_cycle()
    }

    /// All traffic delivered and acknowledged.
    pub fn is_quiescent(&self) -> bool {
        self.ep.is_quiescent()
    }

    pub fn stats(&self) -> TransportStats {
        *self.ep.stats()
    }

    /// Return to the power-on state.
    pub fn reset(&mut self) {
        self.ep = Endpoint::new(*self.ep.config());
    }
}
