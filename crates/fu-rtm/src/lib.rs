//! `fu-rtm` — the generic coprocessor framework (the paper's primary
//! contribution).
//!
//! This crate implements, as a cycle-accurate simulation, the generic
//! interface of Koltes & O'Donnell (IPDPS 2010): a *Register Transfer
//! Machine* (RTM) that sits between a host CPU and a set of user-designed
//! functional units on an FPGA.
//!
//! > "These requirements are satisfied by organising the interface as a
//! > register transfer machine. This is a simple programmable datapath that
//! > contains a register file, and that has an instruction set for
//! > communications." — §II
//!
//! The pipeline (Figure 4 of the paper) comprises:
//!
//! * [`msgbuf::MessageBuffer`] — converts link frames into decoded host
//!   messages;
//! * [`decoder::Decoder`] — turns messages into control vectors
//!   ([`decoder::DecodedOp`]);
//! * [`dispatcher`] — reads the register files, enforces the
//!   lock-manager/register-usage-table interlocks, and dispatches user
//!   instructions to functional units;
//! * the execution stage ([`execute`]) — runs management primitives
//!   directly in the main pipeline;
//! * [`arbiter::WriteArbiter`] — collects out-of-order functional-unit
//!   completions into the register files (with a high-priority port for
//!   the execution stage);
//! * [`encoder::MessageEncoder`] and [`serializer::MessageSerializer`] —
//!   multiplex responses and convert them to link frames.
//!
//! Functional units attach through the dispatch/acknowledge protocol in
//! [`protocol`]; the whole machine is assembled and clocked by
//! [`coprocessor::Coprocessor`], parameterised by [`config::CoprocConfig`]
//! (the Rust stand-in for the VHDL generics).

pub mod arbiter;
pub mod config;
pub mod coprocessor;
pub mod decoder;
pub mod dispatcher;
pub mod encoder;
pub mod execute;
pub mod flagfile;
pub mod futable;
pub mod lock;
pub mod msgbuf;
pub mod protocol;
pub mod redundant;
pub mod regfile;
pub mod serializer;
pub mod seu;
pub mod testing;
pub mod transceiver;

pub use config::CoprocConfig;
pub use coprocessor::{ActivityMode, CoprocSnapshot, CoprocStats, Coprocessor, QuietVerdict};
pub use protocol::{AuxRole, DispatchPacket, FuOutput, FunctionalUnit, LockTicket, SoftEvent};
pub use redundant::{protect_units, Redundancy, RedundantFu};
pub use seu::{SeuConfig, SeuModel, SeuTarget};
