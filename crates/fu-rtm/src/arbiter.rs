//! The write arbiter.
//!
//! Figure 4 shows the *Write Arbiter* between the functional units and the
//! register files: units assert `data_ready` with their results and
//! destination register numbers; the arbiter grants acknowledgements,
//! writes the results, and releases the corresponding locks. Because units
//! finish in their own time, completions — and hence register-file
//! writes — happen **out of order**; the lock manager keeps that invisible
//! to the architectural state.
//!
//! The arbiter grants in round-robin order, up to the configured number of
//! completions per cycle, with a total data-write budget equal to the
//! register file's write ports ("up to two results may be loaded into the
//! register file"). Lock releases are registered: a lock drops one cycle
//! after the write is staged, so a consumer dispatched in the release
//! cycle reads the committed value. (The execution stage's high-priority
//! write port lives in [`crate::execute`]; it targets registers the lock
//! manager guarantees are disjoint from the arbiter's.)

use crate::flagfile::FlagFile;
use crate::lock::LockManager;
use crate::protocol::{FunctionalUnit, LockTicket};
use crate::regfile::RegFile;
use rtl_sim::{SatCounter, StallCause, TraceBuffer, TraceEventKind};

/// The write-arbiter stage.
#[derive(Debug, Clone)]
pub struct WriteArbiter {
    data_ports: u8,
    rr_ptr: usize,
    pending_release: Vec<LockTicket>,
    /// `(unit index, ticket, dispatch seq)` of each grant made by the
    /// most recent `eval` — consumed by the dispatch watchdog to retire
    /// outstanding work and by the latency profiler. Cleared at the start
    /// of every `eval`.
    acked: Vec<(usize, LockTicket, u64)>,
    completions: SatCounter,
    data_writes: SatCounter,
    flag_writes: SatCounter,
    contended_cycles: SatCounter,
}

impl WriteArbiter {
    /// An arbiter with `data_ports` register-file write ports per cycle.
    pub fn new(data_ports: u8) -> WriteArbiter {
        assert!(data_ports >= 1, "arbiter needs at least one write port");
        WriteArbiter {
            data_ports,
            rr_ptr: 0,
            pending_release: Vec::with_capacity(4),
            acked: Vec::with_capacity(4),
            completions: SatCounter::default(),
            data_writes: SatCounter::default(),
            flag_writes: SatCounter::default(),
            contended_cycles: SatCounter::default(),
        }
    }

    /// One evaluate phase: release last cycle's locks, then grant
    /// acknowledgements round-robin while port budget remains.
    ///
    /// `active`, when given, marks the units that may hold work; units
    /// outside the mask are skipped without touching them. Skipping is
    /// behaviour-identical to scanning, because an inactive unit is idle
    /// and an idle unit has no output to grant — the mask only saves the
    /// virtual `peek_output` calls on a large, mostly-idle unit roster.
    #[allow(clippy::too_many_arguments)] // the stage's port list, as in hardware
    pub fn eval(
        &mut self,
        fus: &mut [Box<dyn FunctionalUnit>],
        regfile: &mut RegFile,
        flagfile: &mut FlagFile,
        lock: &mut LockManager,
        active: Option<&[bool]>,
        cycle: u64,
        trace: &mut TraceBuffer,
    ) {
        for t in self.pending_release.drain(..) {
            trace.record(
                cycle,
                TraceEventKind::LockRelease {
                    data: t.data,
                    flag: t.flag,
                },
            );
            lock.release(&t);
        }
        self.acked.clear();
        let n = fus.len();
        if n == 0 {
            return;
        }
        let mut budget = self.data_ports as i32;
        let mut granted_any = false;
        let mut denied_any = false;
        let mut next_ptr = self.rr_ptr;
        for i in 0..n {
            let idx = (self.rr_ptr + i) % n;
            if active.is_some_and(|a| !a[idx]) {
                debug_assert!(
                    fus[idx].peek_output().is_none(),
                    "inactive unit held output"
                );
                continue;
            }
            let Some(out) = fus[idx].peek_output() else {
                continue;
            };
            let cost = out.data.is_some() as i32 + out.data2.is_some() as i32;
            if budget <= 0 || cost > budget {
                denied_any = true;
                continue;
            }
            budget -= cost.max(1); // even a flag-only completion occupies a grant slot
            let out = fus[idx].ack_output();
            trace.record(
                cycle,
                TraceEventKind::ArbGrant {
                    unit: idx as u8,
                    data_writes: cost as u8,
                },
            );
            trace.record(
                cycle,
                TraceEventKind::FuRetire {
                    unit: idx as u8,
                    seq: out.seq,
                },
            );
            if let Some((r, v)) = out.data {
                regfile.write(r, v);
                self.data_writes.bump();
            }
            if let Some((r, v)) = out.data2 {
                regfile.write(r, v);
                self.data_writes.bump();
            }
            if let Some((r, f)) = out.flags {
                flagfile.write(r, f);
                self.flag_writes.bump();
            }
            self.pending_release.push(out.ticket);
            self.acked.push((idx, out.ticket, out.seq));
            self.completions.bump();
            granted_any = true;
            next_ptr = (idx + 1) % n;
        }
        if granted_any {
            self.rr_ptr = next_ptr;
        }
        if denied_any {
            self.contended_cycles.bump();
            trace.record(
                cycle,
                TraceEventKind::StageStall {
                    stage: "arbiter",
                    cause: StallCause::WritePort,
                },
            );
        }
    }

    /// True when no lock release is still pending.
    pub fn is_idle(&self) -> bool {
        self.pending_release.is_empty()
    }

    /// Grants made by the most recent `eval`: `(unit index, ticket,
    /// dispatch seq)`. Only meaningful immediately after an `eval` — the
    /// list is rebuilt each evaluation.
    pub fn acked(&self) -> &[(usize, LockTicket, u64)] {
        &self.acked
    }

    /// `(completions, data writes, flag writes, contended cycles)` since
    /// reset.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.completions.get(),
            self.data_writes.get(),
            self.flag_writes.get(),
            self.contended_cycles.get(),
        )
    }

    /// Return to the power-on state.
    pub fn reset(&mut self) {
        self.rr_ptr = 0;
        self.pending_release.clear();
        self.acked.clear();
        self.completions = SatCounter::default();
        self.data_writes = SatCounter::default();
        self.flag_writes = SatCounter::default();
        self.contended_cycles = SatCounter::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{AuxRole, DispatchPacket, FuOutput};
    use fu_isa::{Flags, Word};
    use rtl_sim::{AreaEstimate, Clocked, CriticalPath};

    /// A unit whose output queue is scripted by the test.
    struct Scripted {
        out: std::collections::VecDeque<FuOutput>,
    }

    impl Scripted {
        fn boxed(outs: Vec<FuOutput>) -> Box<dyn FunctionalUnit> {
            Box::new(Scripted { out: outs.into() })
        }
    }

    impl Clocked for Scripted {
        fn commit(&mut self) {}
        fn reset(&mut self) {}
    }

    impl FunctionalUnit for Scripted {
        fn name(&self) -> &'static str {
            "scripted"
        }
        fn func_code(&self) -> u8 {
            0
        }
        fn aux_role(&self) -> AuxRole {
            AuxRole::Unused
        }
        fn can_dispatch(&self) -> bool {
            false
        }
        fn dispatch(&mut self, _p: DispatchPacket) {
            unreachable!()
        }
        fn peek_output(&self) -> Option<&FuOutput> {
            self.out.front()
        }
        fn ack_output(&mut self) -> FuOutput {
            self.out.pop_front().expect("ack without output")
        }
        fn is_idle(&self) -> bool {
            self.out.is_empty()
        }
        fn area(&self) -> AreaEstimate {
            AreaEstimate::ZERO
        }
        fn critical_path(&self) -> CriticalPath {
            CriticalPath::of(0)
        }
    }

    fn out(reg: u8, val: u64, flag: Option<u8>) -> FuOutput {
        FuOutput {
            data: Some((reg, Word::from_u64(val, 32))),
            data2: None,
            flags: flag.map(|f| (f, Flags::CARRY)),
            ticket: LockTicket::new(Some(reg), None, flag),
            seq: 0,
        }
    }

    fn setup(n_regs: u16) -> (RegFile, FlagFile, LockManager) {
        (
            RegFile::new(n_regs, 32),
            FlagFile::new(8),
            LockManager::new(n_regs, 8),
        )
    }

    #[test]
    fn completion_writes_and_releases_one_cycle_later() {
        let (mut rf, mut ff, mut lm) = setup(8);
        let ticket = LockTicket::new(Some(3), None, Some(1));
        lm.acquire(&ticket);
        let mut fus = vec![Scripted::boxed(vec![out(3, 99, Some(1))])];
        let mut arb = WriteArbiter::new(2);

        arb.eval(
            &mut fus,
            &mut rf,
            &mut ff,
            &mut lm,
            None,
            0,
            &mut TraceBuffer::disabled(),
        );
        assert!(
            lm.data_locked(3),
            "release must be registered, not combinational"
        );
        rf.commit();
        ff.commit();
        assert_eq!(rf.peek(3).as_u64(), 99);
        assert_eq!(ff.peek(1), Flags::CARRY);

        arb.eval(
            &mut fus,
            &mut rf,
            &mut ff,
            &mut lm,
            None,
            0,
            &mut TraceBuffer::disabled(),
        );
        assert!(
            !lm.data_locked(3),
            "lock drops the cycle after the write commits"
        );
        assert!(lm.quiescent());
        assert_eq!(arb.counters().0, 1);
    }

    #[test]
    fn round_robin_is_fair_under_contention() {
        let (mut rf, mut ff, mut lm) = setup(16);
        // Three units, each with two completions; one grant per cycle.
        let mut fus: Vec<Box<dyn FunctionalUnit>> = (0..3u8)
            .map(|u| {
                let r1 = 2 * u + 1;
                let r2 = 2 * u + 2;
                lm.acquire(&LockTicket::new(Some(r1), None, None));
                lm.acquire(&LockTicket::new(Some(r2), None, None));
                Scripted::boxed(vec![out(r1, u as u64, None), out(r2, u as u64, None)])
            })
            .collect();
        let mut arb = WriteArbiter::new(1);
        // After three single-grant cycles, round-robin must have served
        // each unit exactly once (one completion left per unit).
        for _ in 0..3 {
            arb.eval(
                &mut fus,
                &mut rf,
                &mut ff,
                &mut lm,
                None,
                0,
                &mut TraceBuffer::disabled(),
            );
            rf.commit();
        }
        for f in &fus {
            assert!(
                f.peek_output().is_some() && !f.is_idle(),
                "each unit should have exactly its second completion left"
            );
        }
        for _ in 0..3 {
            arb.eval(
                &mut fus,
                &mut rf,
                &mut ff,
                &mut lm,
                None,
                0,
                &mut TraceBuffer::disabled(),
            );
            rf.commit();
        }
        assert_eq!(arb.counters().0, 6, "all completions eventually drain");
        assert!(fus.iter().all(|f| f.is_idle()));
    }

    #[test]
    fn port_budget_limits_completions_per_cycle() {
        let (mut rf, mut ff, mut lm) = setup(16);
        let mut fus: Vec<Box<dyn FunctionalUnit>> = (0..4u8)
            .map(|u| {
                lm.acquire(&LockTicket::new(Some(u + 1), None, None));
                Scripted::boxed(vec![out(u + 1, 7, None)])
            })
            .collect();
        let mut arb = WriteArbiter::new(2);
        arb.eval(
            &mut fus,
            &mut rf,
            &mut ff,
            &mut lm,
            None,
            0,
            &mut TraceBuffer::disabled(),
        );
        assert_eq!(arb.counters().0, 2, "only two grants fit the port budget");
        assert_eq!(arb.counters().3, 1, "contention recorded");
        arb.eval(
            &mut fus,
            &mut rf,
            &mut ff,
            &mut lm,
            None,
            0,
            &mut TraceBuffer::disabled(),
        );
        assert_eq!(arb.counters().0, 4);
    }

    #[test]
    fn dual_result_completion_consumes_two_ports() {
        let (mut rf, mut ff, mut lm) = setup(16);
        let dual = FuOutput {
            data: Some((1, Word::from_u64(1, 32))),
            data2: Some((2, Word::from_u64(2, 32))),
            flags: None,
            ticket: LockTicket::new(Some(1), Some(2), None),
            seq: 0,
        };
        lm.acquire(&dual.ticket);
        lm.acquire(&LockTicket::new(Some(3), None, None));
        let mut fus = vec![
            Scripted::boxed(vec![dual]),
            Scripted::boxed(vec![out(3, 3, None)]),
        ];
        let mut arb = WriteArbiter::new(2);
        arb.eval(
            &mut fus,
            &mut rf,
            &mut ff,
            &mut lm,
            None,
            0,
            &mut TraceBuffer::disabled(),
        );
        // The dual-result completion uses both ports; the second unit waits.
        assert_eq!(arb.counters().0, 1);
        assert_eq!(arb.counters().1, 2);
        arb.eval(
            &mut fus,
            &mut rf,
            &mut ff,
            &mut lm,
            None,
            0,
            &mut TraceBuffer::disabled(),
        );
        assert_eq!(arb.counters().0, 2);
        rf.commit();
        assert_eq!(rf.peek(1).as_u64(), 1);
        assert_eq!(rf.peek(2).as_u64(), 2);
        assert_eq!(rf.peek(3).as_u64(), 3);
    }

    #[test]
    fn flag_only_completion_unlocks_destinations() {
        // A compare writes no data register but must still release its
        // (flag) lock.
        let (mut rf, mut ff, mut lm) = setup(8);
        let cmp = FuOutput {
            data: None,
            data2: None,
            flags: Some((2, Flags::ZERO)),
            ticket: LockTicket::new(None, None, Some(2)),
            seq: 0,
        };
        lm.acquire(&cmp.ticket);
        let mut fus = vec![Scripted::boxed(vec![cmp])];
        let mut arb = WriteArbiter::new(2);
        arb.eval(
            &mut fus,
            &mut rf,
            &mut ff,
            &mut lm,
            None,
            0,
            &mut TraceBuffer::disabled(),
        );
        ff.commit();
        arb.eval(
            &mut fus,
            &mut rf,
            &mut ff,
            &mut lm,
            None,
            0,
            &mut TraceBuffer::disabled(),
        );
        assert!(lm.quiescent());
        assert_eq!(ff.peek(2), Flags::ZERO);
        assert_eq!(arb.counters(), (1, 0, 1, 0));
    }

    #[test]
    fn empty_unit_list_is_a_noop() {
        let (mut rf, mut ff, mut lm) = setup(8);
        let mut arb = WriteArbiter::new(2);
        let mut fus: Vec<Box<dyn FunctionalUnit>> = vec![];
        arb.eval(
            &mut fus,
            &mut rf,
            &mut ff,
            &mut lm,
            None,
            0,
            &mut TraceBuffer::disabled(),
        );
        assert!(arb.is_idle());
    }
}
