//! The functional-unit protocol: the fixed contract between the framework
//! and user-designed hardware.
//!
//! "Each functional unit is designed to interact with the central interface
//! using a standard signal protocol, which is defined by the framework."
//! The signals of the minimal-unit schematic (Figure 5) map to this trait
//! as follows:
//!
//! | VHDL signal            | Rust equivalent                                |
//! |------------------------|------------------------------------------------|
//! | `dispatch` + operand buses | [`FunctionalUnit::dispatch`] with a [`DispatchPacket`] |
//! | `idle` (towards dispatcher) | [`FunctionalUnit::can_dispatch`]          |
//! | `data_ready`, `data_output`, `data_output_reg` | [`FunctionalUnit::peek_output`] returning a [`FuOutput`] |
//! | `data_acknowledge` (from write arbiter) | [`FunctionalUnit::ack_output`] |
//! | `clock`                | [`rtl_sim::Clocked::commit`]                   |
//! | `reset`                | [`rtl_sim::Clocked::reset`]                    |
//!
//! A unit is free in its internal structure ("the designer has complete
//! freedom in the internal structure of a functional unit") — the three
//! published skeletons live in the `fu-units` crate.

use fu_isa::{Flags, RegNum, Word};
use rtl_sim::{AreaEstimate, Clocked, CriticalPath};

/// What the instruction's *aux register* field means for a given unit
/// (see `fu_isa::instr` for the field layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuxRole {
    /// The unit ignores the field.
    Unused,
    /// The field names the *source flag register*; the dispatcher reads it
    /// and forwards the flags in [`DispatchPacket::flags_in`] (ADC/SBB/
    /// CMPB consume the carry this way).
    FlagSource,
    /// The field names a *second destination register* ("up to two results
    /// may be loaded into the register file") — e.g. the widening
    /// multiplier's high half.
    SecondDest,
}

/// Registers locked on behalf of one in-flight instruction.
///
/// The dispatcher acquires the ticket from the lock manager at dispatch
/// time; it travels with the instruction through the functional unit and
/// returns to the write arbiter in the [`FuOutput`], which releases it —
/// regardless of which results the unit actually produced (a compare
/// writes no data register but still unlocks its destinations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LockTicket {
    /// Locked main registers (destination #1, destination #2).
    pub data: [Option<RegNum>; 2],
    /// Locked flag register (destination flag register).
    pub flag: Option<RegNum>,
}

impl LockTicket {
    /// Ticket locking one data register and one flag register.
    pub fn new(data: Option<RegNum>, data2: Option<RegNum>, flag: Option<RegNum>) -> LockTicket {
        LockTicket {
            data: [data, data2],
            flag,
        }
    }

    /// True when the ticket locks nothing.
    pub fn is_empty(&self) -> bool {
        self.data.iter().all(Option::is_none) && self.flag.is_none()
    }
}

/// Operands and control forwarded to a unit by the dispatcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchPacket {
    /// The 8-bit variety code from the instruction word.
    pub variety: u8,
    /// Up to three operand values read from the register file ("the RTM
    /// instructions may have up to three operands").
    pub ops: [Word; 3],
    /// Input flag vector (from the source flag register when the unit's
    /// [`AuxRole`] is `FlagSource`, otherwise all clear).
    pub flags_in: Flags,
    /// Destination register for the (first) data result.
    pub dst_reg: RegNum,
    /// Destination register for the second data result, when the unit
    /// produces one.
    pub dst2_reg: Option<RegNum>,
    /// Destination flag register.
    pub dst_flag: RegNum,
    /// The raw `src3` field of the instruction word, forwarded as an
    /// 8-bit immediate for units that use it that way (e.g. shift
    /// amounts) instead of as a register number.
    pub imm8: u8,
    /// Locks held for this instruction (returned via [`FuOutput`]).
    pub ticket: LockTicket,
    /// Dispatch sequence number (diagnostics and ordering checks).
    pub seq: u64,
}

/// A completed instruction, pending acknowledgement by the write arbiter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuOutput {
    /// Data result for the first destination register, if produced
    /// (compare varieties produce none).
    pub data: Option<(RegNum, Word)>,
    /// Second data result, if produced.
    pub data2: Option<(RegNum, Word)>,
    /// Output flag vector for the destination flag register, if produced.
    pub flags: Option<(RegNum, Flags)>,
    /// The locks to release on acknowledgement.
    pub ticket: LockTicket,
    /// Sequence number copied from the dispatch packet.
    pub seq: u64,
}

/// A soft-error event latched by a redundancy wrapper, polled by the
/// coprocessor after the write arbiter retires the affected instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SoftEvent {
    /// A majority vote repaired a replica disagreement (TMR): the retired
    /// output is correct, no architectural damage.
    Corrected,
    /// Dual replicas disagreed (DMR): the error is detected but the
    /// retired output may be corrupt. The coprocessor reports an in-band
    /// `SoftError` so the host can roll back.
    Detected,
}

/// The framework-side view of a functional unit.
///
/// Call discipline within one evaluate phase (the coprocessor evaluates
/// sink-to-source):
///
/// 1. the write arbiter calls [`FunctionalUnit::peek_output`] /
///    [`FunctionalUnit::ack_output`];
/// 2. the dispatcher calls [`FunctionalUnit::can_dispatch`] /
///    [`FunctionalUnit::dispatch`];
/// 3. at the clock edge, `commit` advances the unit's internal pipeline.
///
/// Because acknowledgements are evaluated *before* dispatches, a unit may
/// combinationally forward the acknowledgement into its `can_dispatch`
/// ("this combinational forward mechanism … allows the functional unit to
/// theoretically accept a new instruction every clock cycle"), at the cost
/// of a longer combinational path — exactly the trade-off the thesis
/// describes.
///
/// Units must be [`Send`]: a coprocessor (and the `System` wrapping it) is
/// owned by exactly one simulation thread at a time, and the farm moves
/// whole shards onto worker threads. Units are plain state machines, so
/// this costs nothing; it only forbids `Rc`/raw-pointer internals.
pub trait FunctionalUnit: Clocked + Send {
    /// Display name for traces and reports.
    fn name(&self) -> &'static str;

    /// The function code this unit answers to (entry in the functional
    /// unit table).
    fn func_code(&self) -> u8;

    /// How this unit interprets the instruction's aux field.
    fn aux_role(&self) -> AuxRole {
        AuxRole::Unused
    }

    /// `idle` towards the dispatcher: can the unit accept a dispatch this
    /// cycle?
    fn can_dispatch(&self) -> bool;

    /// Deliver one instruction.
    ///
    /// # Panics
    /// Implementations panic when `can_dispatch` is false; dispatching to
    /// a busy unit is a framework bug.
    fn dispatch(&mut self, pkt: DispatchPacket);

    /// Completed output pending acknowledgement, if any (`data_ready`).
    fn peek_output(&self) -> Option<&FuOutput>;

    /// Acknowledge and remove the pending output (`data_acknowledge`).
    ///
    /// # Panics
    /// Implementations panic when no output is pending.
    fn ack_output(&mut self) -> FuOutput;

    /// True when the unit holds no work at all (used by FENCE/SYNC and by
    /// drain checks).
    fn is_idle(&self) -> bool;

    // ----- activity-aware scheduling --------------------------------
    // The coprocessor's gated stepping mode clocks only busy units, and
    // its fast-forward path skips whole idle spans. Units whose state
    // evolves even while idle (e.g. a free-running clock-domain divider
    // phase) opt out of the optimisation via these two hooks.

    /// True when the unit's `commit` must run every cycle even while the
    /// unit is idle. The default (`false`) is correct for any unit whose
    /// idle `commit` is a no-op on observable state.
    fn needs_clock_when_idle(&self) -> bool {
        false
    }

    /// Account for `cycles` fast-forwarded cycles during which the unit
    /// was idle. Must be observably equivalent to calling `commit` that
    /// many times while idle; the default no-op is correct exactly when
    /// an idle `commit` changes nothing.
    fn advance_idle(&mut self, _cycles: u64) {}

    // ----- event-wheel scheduling -----------------------------------
    // The event-scheduled kernel (`ActivityMode::Scheduled`) skips whole
    // spans while units are *busy*, not just idle — a unit burning a
    // fixed latency is the canonical case. The contract is phrased in
    // terms of the interface the pipeline observes.

    /// A lower bound on the unit's next observable change, in cycles.
    ///
    /// `Some(h)` promises that for the next `h` commits the unit's
    /// *observable interface* is constant: `peek_output` stays `None`
    /// (no new output appears), `can_dispatch` keeps its current value,
    /// and `is_idle` keeps its current value. The scheduler may then
    /// replace up to `h` commits with one [`FunctionalUnit::advance_busy`]
    /// call. `None` means the unit cannot bound its next change and must
    /// be clocked every cycle (always safe).
    ///
    /// Only queried while the unit is active with no pending output; an
    /// output already waiting for the write arbiter pins the scheduler to
    /// per-cycle stepping regardless of the hint.
    fn wake_hint(&self) -> Option<u64> {
        None
    }

    /// Advance the unit's internal state by `cycles` commits at once.
    ///
    /// Must be bit-identical to calling `commit` `cycles` times. The
    /// scheduler only calls this with `cycles` no larger than the last
    /// [`FunctionalUnit::wake_hint`]. The default literally runs the
    /// commits; units with cheap closed-form state (a latency counter, a
    /// divider phase) override it to make long skips O(1).
    fn advance_busy(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.commit();
        }
    }

    // ----- decode lookup tables -------------------------------------
    // "Lookup tables are implicitly synthesised into Decoder" (Fig. 4):
    // per-variety facts the dispatcher needs to form lock tickets and
    // operand reads. Defaults describe a unit that always reads two
    // operands and writes one data result plus flags.

    /// Does this variety produce a data result? (CMP/CMPB do not.)
    fn variety_writes_data(&self, _variety: u8) -> bool {
        true
    }

    /// Does this variety produce an output flag vector?
    fn variety_writes_flags(&self, _variety: u8) -> bool {
        true
    }

    /// Does this variety consume the source flag register? Only
    /// meaningful when [`FunctionalUnit::aux_role`] is
    /// [`AuxRole::FlagSource`].
    fn variety_reads_flags(&self, _variety: u8) -> bool {
        matches!(self.aux_role(), AuxRole::FlagSource)
    }

    /// Which of the three source-register fields this variety actually
    /// reads (unread fields must not create false RAW dependencies).
    fn variety_reads_srcs(&self, _variety: u8) -> [bool; 3] {
        [true, true, false]
    }

    // ----- soft-error resilience ------------------------------------
    // The SEU model strikes functional-unit result latches, redundancy
    // wrappers replicate whole units, and checkpointing clones the
    // architectural state. All three hooks default to "unsupported" so
    // existing units keep working unchanged.

    /// A deep copy of this unit, state included. `None` (the default)
    /// means the unit cannot be replicated: it is skipped by redundancy
    /// wrapping and makes the enclosing coprocessor non-checkpointable.
    fn clone_unit(&self) -> Option<Box<dyn FunctionalUnit>> {
        None
    }

    /// Flip bit `bit` of the unit's pending result latch, if it holds
    /// one. Returns `true` when a flip landed; `false` (the default)
    /// when the unit has no live result state to corrupt, letting the
    /// SEU model fall back to another target.
    fn seu_flip_result(&mut self, _bit: u8) -> bool {
        false
    }

    /// Drain the unit's latched soft-error event, if any. Only
    /// redundancy wrappers ever report one; the default is `None`.
    fn take_soft_event(&mut self) -> Option<SoftEvent> {
        None
    }

    /// Resource estimate for area reports.
    fn area(&self) -> AreaEstimate;

    /// Combinational depth estimate for clock-period reports.
    fn critical_path(&self) -> CriticalPath;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticket_emptiness() {
        assert!(LockTicket::default().is_empty());
        assert!(!LockTicket::new(Some(3), None, None).is_empty());
        assert!(!LockTicket::new(None, None, Some(0)).is_empty());
        assert!(!LockTicket::new(None, Some(1), None).is_empty());
    }

    #[test]
    fn ticket_layout() {
        let t = LockTicket::new(Some(1), Some(2), Some(3));
        assert_eq!(t.data, [Some(1), Some(2)]);
        assert_eq!(t.flag, Some(3));
    }
}
