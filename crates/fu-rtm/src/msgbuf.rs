//! The message buffer — first stage of the RTM pipeline.
//!
//! "The first stage receives data from the FPGA input port connected to the
//! host processor, and converts it to a form usable by the decoder. This
//! stage needs to be implemented according to the communication protocol
//! used by the host processor."
//!
//! Here the communication protocol is the 32-bit framing of
//! [`fu_isa::msg`]; the stage consumes up to `frames_per_cycle` frames per
//! cycle from the receive FIFO (modelling the input port width) and emits
//! at most one complete [`fu_isa::HostMsg`] per cycle to the decoder.
//! Framing errors are forwarded as errors so the decoder can report them
//! to the host instead of silently desynchronising.

use fu_isa::msg::{FrameError, HostDeframer};
use fu_isa::HostMsg;
use rtl_sim::{Fifo, HandshakeSlot, SatCounter, TraceBuffer, TraceEventKind};

/// Output of the message buffer: a parsed message or a framing error
/// (carrying the offending header frame).
pub type MsgBufOut = Result<HostMsg, FrameError>;

/// The message-buffer stage.
#[derive(Debug, Clone)]
pub struct MessageBuffer {
    deframer: HostDeframer,
    frames_per_cycle: u8,
    word_bits: u32,
    frames_consumed: SatCounter,
    msgs_produced: SatCounter,
}

impl MessageBuffer {
    /// A message buffer for `word_bits`-wide registers consuming up to
    /// `frames_per_cycle` frames per cycle.
    pub fn new(word_bits: u32, frames_per_cycle: u8) -> MessageBuffer {
        assert!(
            frames_per_cycle >= 1,
            "input port must carry at least one frame/cycle"
        );
        MessageBuffer {
            deframer: HostDeframer::new(word_bits),
            frames_per_cycle,
            word_bits,
            frames_consumed: SatCounter::default(),
            msgs_produced: SatCounter::default(),
        }
    }

    /// One evaluate phase: pull frames from `rx`, push at most one
    /// complete message into `out`.
    pub fn eval(
        &mut self,
        rx: &mut Fifo<u32>,
        out: &mut HandshakeSlot<MsgBufOut>,
        cycle: u64,
        trace: &mut TraceBuffer,
    ) {
        if !out.can_push() {
            return; // local stall: downstream register still occupied
        }
        for _ in 0..self.frames_per_cycle {
            let Some(frame) = rx.pop() else { break };
            self.frames_consumed.bump();
            match self.deframer.push(frame) {
                Ok(None) => continue,
                Ok(Some(msg)) => {
                    self.msgs_produced.bump();
                    trace.record(cycle, TraceEventKind::StagePush { stage: "msgbuf" });
                    out.push(Ok(msg));
                    break; // one message per cycle
                }
                Err(e) => {
                    trace.record(cycle, TraceEventKind::StagePush { stage: "msgbuf" });
                    out.push(Err(e));
                    // The deframer dropped its partial state with the
                    // error; resynchronise on the next frame.
                    self.deframer = HostDeframer::new(self.word_bits);
                    break;
                }
            }
        }
    }

    /// True while a message is partially assembled.
    pub fn mid_message(&self) -> bool {
        self.deframer.mid_message()
    }

    /// `(frames consumed, messages produced)` since reset.
    pub fn counters(&self) -> (u64, u64) {
        (self.frames_consumed.get(), self.msgs_produced.get())
    }

    /// Return to the power-on state.
    pub fn reset(&mut self) {
        self.deframer = HostDeframer::new(self.word_bits);
        self.frames_consumed = SatCounter::default();
        self.msgs_produced = SatCounter::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fu_isa::{InstrWord, Word};
    use rtl_sim::Clocked;

    fn run_cycle(mb: &mut MessageBuffer, rx: &mut Fifo<u32>, out: &mut HandshakeSlot<MsgBufOut>) {
        mb.eval(rx, out, 0, &mut TraceBuffer::disabled());
        rx.commit();
        out.commit();
    }

    #[test]
    fn single_frame_message_takes_one_cycle() {
        let mut mb = MessageBuffer::new(32, 1);
        let mut rx = Fifo::new(8);
        let mut out = HandshakeSlot::new();
        let msg = HostMsg::ReadReg { reg: 3, tag: 7 };
        for f in msg.to_frames(32) {
            rx.push(f);
        }
        rx.commit();
        run_cycle(&mut mb, &mut rx, &mut out);
        assert_eq!(out.take(), Some(Ok(msg)));
    }

    #[test]
    fn multi_frame_message_at_one_frame_per_cycle() {
        let mut mb = MessageBuffer::new(32, 1);
        let mut rx = Fifo::new(8);
        let mut out = HandshakeSlot::new();
        let msg = HostMsg::Instr(InstrWord(0x8010_aabb_ccdd_eeff));
        for f in msg.to_frames(32) {
            rx.push(f);
        }
        rx.commit();
        // Three frames -> three cycles until the message appears.
        run_cycle(&mut mb, &mut rx, &mut out);
        assert!(out.peek().is_none());
        assert!(mb.mid_message());
        run_cycle(&mut mb, &mut rx, &mut out);
        assert!(out.peek().is_none());
        run_cycle(&mut mb, &mut rx, &mut out);
        assert_eq!(out.take(), Some(Ok(msg)));
        assert!(!mb.mid_message());
        assert_eq!(mb.counters(), (3, 1));
    }

    #[test]
    fn wide_port_completes_in_one_cycle() {
        let mut mb = MessageBuffer::new(32, 4);
        let mut rx = Fifo::new(8);
        let mut out = HandshakeSlot::new();
        let msg = HostMsg::Instr(InstrWord(42));
        for f in msg.to_frames(32) {
            rx.push(f);
        }
        rx.commit();
        run_cycle(&mut mb, &mut rx, &mut out);
        assert_eq!(out.take(), Some(Ok(msg)));
    }

    #[test]
    fn stalled_decoder_backpressures_frames() {
        let mut mb = MessageBuffer::new(32, 4);
        let mut rx = Fifo::new(8);
        let mut out: HandshakeSlot<MsgBufOut> = HandshakeSlot::new();
        for f in (HostMsg::Sync { tag: 1 }).to_frames(32) {
            rx.push(f);
        }
        for f in (HostMsg::Sync { tag: 2 }).to_frames(32) {
            rx.push(f);
        }
        rx.commit();
        run_cycle(&mut mb, &mut rx, &mut out);
        // Slot now holds Sync#1 and is never taken: no further frames may
        // be consumed.
        run_cycle(&mut mb, &mut rx, &mut out);
        run_cycle(&mut mb, &mut rx, &mut out);
        assert_eq!(rx.len(), 1, "second message must stay in the FIFO");
        assert_eq!(out.take(), Some(Ok(HostMsg::Sync { tag: 1 })));
    }

    #[test]
    fn framing_error_is_reported_and_resyncs() {
        let mut mb = MessageBuffer::new(32, 1);
        let mut rx = Fifo::new(8);
        let mut out = HandshakeSlot::new();
        rx.push(0xdead_0000); // unknown type code 0xde
        for f in (HostMsg::WriteReg {
            reg: 1,
            value: Word::from_u64(5, 32),
        })
        .to_frames(32)
        {
            rx.push(f);
        }
        rx.commit();
        run_cycle(&mut mb, &mut rx, &mut out);
        assert!(matches!(out.take(), Some(Err(e)) if e.header == 0xdead_0000));
        run_cycle(&mut mb, &mut rx, &mut out);
        run_cycle(&mut mb, &mut rx, &mut out);
        assert!(matches!(
            out.take(),
            Some(Ok(HostMsg::WriteReg { reg: 1, .. }))
        ));
    }

    #[test]
    fn one_message_per_cycle_even_on_wide_port() {
        let mut mb = MessageBuffer::new(32, 8);
        let mut rx = Fifo::new(16);
        let mut out = HandshakeSlot::new();
        for t in 0..3u16 {
            for f in (HostMsg::Sync { tag: t }).to_frames(32) {
                rx.push(f);
            }
        }
        rx.commit();
        run_cycle(&mut mb, &mut rx, &mut out);
        assert_eq!(out.take(), Some(Ok(HostMsg::Sync { tag: 0 })));
        run_cycle(&mut mb, &mut rx, &mut out);
        assert_eq!(out.take(), Some(Ok(HostMsg::Sync { tag: 1 })));
        run_cycle(&mut mb, &mut rx, &mut out);
        assert_eq!(out.take(), Some(Ok(HostMsg::Sync { tag: 2 })));
    }
}
