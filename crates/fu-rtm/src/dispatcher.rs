//! The dispatcher stage.
//!
//! "Reads from the register file take place in the dispatcher stage, and
//! instructions that initiate a functional unit operation transmit data to
//! the functional unit through a register in this stage."
//!
//! The dispatcher is where the framework's concurrency policy lives:
//!
//! * operands are read here (so WAR hazards cannot occur);
//! * the lock manager is consulted for RAW hazards on sources and WAW
//!   hazards on destinations; a conflicting instruction **stalls locally**
//!   without blocking the stages behind it from filling;
//! * destination registers are locked and the instruction is handed to its
//!   functional unit, after which it may complete out of order;
//! * management primitives and host reads are resolved to
//!   [`crate::execute::ExecOp`] micro-operations that stay in the in-order
//!   pipeline — which is precisely why the response stream keeps issue
//!   order;
//! * `FENCE`/`SYNC` hold the dispatcher until the machine is quiescent.

use crate::decoder::DecodedOp;
use crate::encoder::SequencedResponse;
use crate::execute::ExecOp;
use crate::flagfile::FlagFile;
use crate::futable::FuTable;
use crate::lock::LockManager;
use crate::protocol::{AuxRole, DispatchPacket, FunctionalUnit, LockTicket};
use crate::regfile::RegFile;
use fu_isa::msg::ErrorCode;
use fu_isa::{DevMsg, Flags, MgmtOp, UserInstr, Word};
use rtl_sim::{HandshakeSlot, StallCause, TraceBuffer, TraceEventKind};

/// Stall-cause and throughput counters for the dispatcher.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// User instructions dispatched to functional units.
    pub user_dispatched: u64,
    /// Management micro-operations forwarded to the execution stage.
    pub mgmt_forwarded: u64,
    /// Responses generated (reads, syncs, errors).
    pub responses: u64,
    /// Cycles stalled on a register lock (RAW/WAW hazard).
    pub stall_lock: u64,
    /// Cycles stalled because the target unit was busy.
    pub stall_fu_busy: u64,
    /// Cycles stalled because the execution stage was full.
    pub stall_exec_full: u64,
    /// Cycles stalled waiting for quiescence (FENCE/SYNC).
    pub stall_fence: u64,
}

/// What the decoded head at the dispatcher would do this cycle, judged
/// without side effects — the event-scheduled kernel's dry run. A head
/// that would advance means the machine is *not* quiet; a head that
/// stalls pins the stall cause for the whole quiet span (nothing that
/// could change the verdict — an arbiter release, an execution-slot
/// drain, an FU completion — happens during a span the scheduler deemed
/// quiet).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StallClass {
    /// The head would make progress (dispatch, forward, respond, retire).
    Progress,
    /// Stalled on a register lock (RAW/WAW hazard).
    Lock,
    /// Stalled waiting for quiescence (FENCE/SYNC).
    Fence,
    /// Stalled on a busy functional unit (the unit's index).
    FuBusy(usize),
}

/// The dispatcher stage.
#[derive(Debug, Clone, Default)]
pub struct Dispatcher {
    next_seq: u64,
    next_resp_seq: u64,
    /// Public statistics.
    pub stats: DispatchStats,
    word_bits: u32,
}

impl Dispatcher {
    /// A dispatcher for a machine with `word_bits`-wide registers.
    pub fn new(word_bits: u32) -> Dispatcher {
        Dispatcher {
            word_bits,
            ..Dispatcher::default()
        }
    }

    pub(crate) fn respond(&mut self, exec_out: &mut HandshakeSlot<ExecOp>, msg: DevMsg) {
        let seq = self.next_resp_seq;
        self.next_resp_seq += 1;
        self.stats.responses += 1;
        exec_out.push(ExecOp::Respond(SequencedResponse { seq, msg }));
    }

    /// True when every unit is idle and no instruction is in flight —
    /// the FENCE/SYNC condition. Quarantined units are exempt: they will
    /// never become idle again, and their in-flight work was already
    /// abandoned (locks released, error reported) by the watchdog.
    fn quiescent(lock: &LockManager, fus: &[Box<dyn FunctionalUnit>], futable: &FuTable) -> bool {
        lock.quiescent()
            && fus
                .iter()
                .enumerate()
                .all(|(i, f)| f.is_idle() || futable.is_quarantined(i))
    }

    /// One evaluate phase: handle at most one decoded operation. Returns
    /// the index of the functional unit that received a user dispatch, the
    /// lock ticket it carries and its dispatch sequence number, if a
    /// dispatch happened — the coprocessor's activity tracker marks that
    /// unit busy, the watchdog remembers the ticket so a hung unit's locks
    /// can be force-released, and the latency profiler keys on the seq.
    #[allow(clippy::too_many_arguments)] // the stage's port list, as in hardware
    pub fn eval(
        &mut self,
        input: &mut HandshakeSlot<DecodedOp>,
        exec_out: &mut HandshakeSlot<ExecOp>,
        fus: &mut [Box<dyn FunctionalUnit>],
        lock: &mut LockManager,
        regfile: &mut RegFile,
        flagfile: &mut FlagFile,
        futable: &FuTable,
        cycle: u64,
        trace: &mut TraceBuffer,
    ) -> Option<(usize, LockTicket, u64)> {
        let op = input.peek()?;
        match op.clone() {
            DecodedOp::User { instr, fu_index } => {
                if futable.is_quarantined(fu_index) {
                    // The unit was quarantined while this instruction was
                    // in flight past the decoder; fail fast instead of
                    // stalling on a unit that will never accept work again.
                    if exec_out.can_push() {
                        self.respond(
                            exec_out,
                            DevMsg::Error {
                                code: ErrorCode::FuQuarantined,
                                info: instr.func as u32,
                            },
                        );
                        input.take();
                    } else {
                        self.stats.stall_exec_full += 1;
                        trace.record(
                            cycle,
                            TraceEventKind::StageStall {
                                stage: "dispatcher",
                                cause: StallCause::ExecFull,
                            },
                        );
                    }
                    return None;
                }
                return self.try_dispatch_user(
                    instr, fu_index, input, exec_out, fus, lock, regfile, flagfile, cycle, trace,
                );
            }
            DecodedOp::Mgmt(MgmtOp::Nop) => {
                input.take();
            }
            DecodedOp::Mgmt(MgmtOp::Copy { dst, src }) => {
                self.try_exec_write(
                    input,
                    exec_out,
                    lock,
                    regfile,
                    dst,
                    Some(src),
                    None,
                    cycle,
                    trace,
                );
            }
            DecodedOp::Mgmt(MgmtOp::LoadImm { dst, imm }) => {
                let value = Word::from_u64(imm as u64, self.word_bits);
                self.try_exec_write(
                    input,
                    exec_out,
                    lock,
                    regfile,
                    dst,
                    None,
                    Some(value),
                    cycle,
                    trace,
                );
            }
            DecodedOp::WriteReg { reg, value } => {
                self.try_exec_write(
                    input,
                    exec_out,
                    lock,
                    regfile,
                    reg,
                    None,
                    Some(value),
                    cycle,
                    trace,
                );
            }
            DecodedOp::Mgmt(MgmtOp::CopyFlags { dst, src }) => {
                self.try_exec_write_flags(
                    input,
                    exec_out,
                    lock,
                    flagfile,
                    dst,
                    Some(src),
                    None,
                    cycle,
                    trace,
                );
            }
            DecodedOp::Mgmt(MgmtOp::SetFlags { dst, imm }) => {
                self.try_exec_write_flags(
                    input,
                    exec_out,
                    lock,
                    flagfile,
                    dst,
                    None,
                    Some(Flags(imm)),
                    cycle,
                    trace,
                );
            }
            DecodedOp::WriteFlags { reg, flags } => {
                self.try_exec_write_flags(
                    input,
                    exec_out,
                    lock,
                    flagfile,
                    reg,
                    None,
                    Some(flags),
                    cycle,
                    trace,
                );
            }
            DecodedOp::Mgmt(MgmtOp::Fence) => {
                if Self::quiescent(lock, fus, futable) {
                    input.take();
                    self.stats.mgmt_forwarded += 1;
                } else {
                    self.stats.stall_fence += 1;
                    trace.record(
                        cycle,
                        TraceEventKind::StageStall {
                            stage: "dispatcher",
                            cause: StallCause::Fence,
                        },
                    );
                }
            }
            DecodedOp::ReadReg { reg, tag } => {
                if !exec_out.can_push() {
                    self.stats.stall_exec_full += 1;
                    trace.record(
                        cycle,
                        TraceEventKind::StageStall {
                            stage: "dispatcher",
                            cause: StallCause::ExecFull,
                        },
                    );
                } else if lock.data_locked(reg) {
                    self.stats.stall_lock += 1;
                    lock.note_stall();
                    trace.record(
                        cycle,
                        TraceEventKind::StageStall {
                            stage: "dispatcher",
                            cause: StallCause::Lock,
                        },
                    );
                } else {
                    let value = regfile.read(reg);
                    self.respond(exec_out, DevMsg::Data { tag, value });
                    input.take();
                }
            }
            DecodedOp::ReadFlags { reg, tag } => {
                if !exec_out.can_push() {
                    self.stats.stall_exec_full += 1;
                    trace.record(
                        cycle,
                        TraceEventKind::StageStall {
                            stage: "dispatcher",
                            cause: StallCause::ExecFull,
                        },
                    );
                } else if lock.flag_locked(reg) {
                    self.stats.stall_lock += 1;
                    lock.note_stall();
                    trace.record(
                        cycle,
                        TraceEventKind::StageStall {
                            stage: "dispatcher",
                            cause: StallCause::Lock,
                        },
                    );
                } else {
                    let flags = flagfile.read(reg);
                    self.respond(exec_out, DevMsg::Flags { tag, flags });
                    input.take();
                }
            }
            DecodedOp::Sync { tag } => {
                if !exec_out.can_push() {
                    self.stats.stall_exec_full += 1;
                    trace.record(
                        cycle,
                        TraceEventKind::StageStall {
                            stage: "dispatcher",
                            cause: StallCause::ExecFull,
                        },
                    );
                } else if !Self::quiescent(lock, fus, futable) {
                    self.stats.stall_fence += 1;
                    trace.record(
                        cycle,
                        TraceEventKind::StageStall {
                            stage: "dispatcher",
                            cause: StallCause::Fence,
                        },
                    );
                } else {
                    self.respond(exec_out, DevMsg::SyncAck { tag });
                    input.take();
                }
            }
            DecodedOp::Error { code, info } => {
                if exec_out.can_push() {
                    self.respond(exec_out, DevMsg::Error { code, info });
                    input.take();
                } else {
                    self.stats.stall_exec_full += 1;
                    trace.record(
                        cycle,
                        TraceEventKind::StageStall {
                            stage: "dispatcher",
                            cause: StallCause::ExecFull,
                        },
                    );
                }
            }
        }
        None
    }

    /// Dry-run classification of the decoded head: what would `eval` do
    /// this cycle? Mirrors `eval`'s decision order exactly but mutates
    /// nothing. Callers must only rely on the verdict while the
    /// execution-stage slot can accept a push (the event-scheduled
    /// kernel's quiet-span precondition); with `exec_out` full the real
    /// `eval` takes ExecFull branches this dry run does not model.
    pub(crate) fn classify_head(
        op: &DecodedOp,
        fus: &[Box<dyn FunctionalUnit>],
        lock: &LockManager,
        futable: &FuTable,
    ) -> StallClass {
        match op {
            DecodedOp::User { instr, fu_index } => {
                let fu_index = *fu_index;
                if futable.is_quarantined(fu_index) {
                    return StallClass::Progress; // fails fast with an error response
                }
                let unit = &fus[fu_index];
                let v = instr.variety;
                let aux_role = unit.aux_role();
                let reads = unit.variety_reads_srcs(v);
                let reads_flags = aux_role == AuxRole::FlagSource && unit.variety_reads_flags(v);
                let writes_data = unit.variety_writes_data(v);
                let writes_flags = unit.variety_writes_flags(v);
                let dst2 =
                    (aux_role == AuxRole::SecondDest && writes_data).then_some(instr.aux_reg);
                if dst2.is_some_and(|d2| d2 == instr.dst_reg) {
                    return StallClass::Progress; // error response, not a stall
                }
                let ticket = LockTicket::new(
                    writes_data.then_some(instr.dst_reg),
                    dst2,
                    writes_flags.then_some(instr.dst_flag),
                );
                let srcs = [instr.src1, instr.src2, instr.src3];
                let raw_blocked = srcs
                    .iter()
                    .zip(reads)
                    .any(|(r, used)| used && lock.data_locked(*r))
                    || (reads_flags && lock.flag_locked(instr.aux_reg));
                if raw_blocked || !lock.can_acquire(&ticket) {
                    return StallClass::Lock;
                }
                if !fus[fu_index].can_dispatch() {
                    return StallClass::FuBusy(fu_index);
                }
                StallClass::Progress
            }
            DecodedOp::Mgmt(MgmtOp::Nop) => StallClass::Progress,
            DecodedOp::Mgmt(MgmtOp::Copy { dst, src }) => {
                Self::classify_exec_write(lock, *dst, Some(*src))
            }
            DecodedOp::Mgmt(MgmtOp::LoadImm { dst, .. }) => {
                Self::classify_exec_write(lock, *dst, None)
            }
            DecodedOp::WriteReg { reg, .. } => Self::classify_exec_write(lock, *reg, None),
            DecodedOp::Mgmt(MgmtOp::CopyFlags { dst, src }) => {
                Self::classify_exec_write_flags(lock, *dst, Some(*src))
            }
            DecodedOp::Mgmt(MgmtOp::SetFlags { dst, .. }) => {
                Self::classify_exec_write_flags(lock, *dst, None)
            }
            DecodedOp::WriteFlags { reg, .. } => Self::classify_exec_write_flags(lock, *reg, None),
            DecodedOp::Mgmt(MgmtOp::Fence) | DecodedOp::Sync { .. } => {
                if Self::quiescent(lock, fus, futable) {
                    StallClass::Progress
                } else {
                    StallClass::Fence
                }
            }
            DecodedOp::ReadReg { reg, .. } => {
                if lock.data_locked(*reg) {
                    StallClass::Lock
                } else {
                    StallClass::Progress
                }
            }
            DecodedOp::ReadFlags { reg, .. } => {
                if lock.flag_locked(*reg) {
                    StallClass::Lock
                } else {
                    StallClass::Progress
                }
            }
            DecodedOp::Error { .. } => StallClass::Progress,
        }
    }

    fn classify_exec_write(lock: &LockManager, dst: u8, src: Option<u8>) -> StallClass {
        let ticket = LockTicket::new(Some(dst), None, None);
        if src.is_some_and(|s| lock.data_locked(s)) || !lock.can_acquire(&ticket) {
            StallClass::Lock
        } else {
            StallClass::Progress
        }
    }

    fn classify_exec_write_flags(lock: &LockManager, dst: u8, src: Option<u8>) -> StallClass {
        let ticket = LockTicket::new(None, None, Some(dst));
        if src.is_some_and(|s| lock.flag_locked(s)) || !lock.can_acquire(&ticket) {
            StallClass::Lock
        } else {
            StallClass::Progress
        }
    }

    /// Replay `n` fast-forwarded stall cycles of class `class` starting
    /// at `start_cycle`: identical counter and trace effects to `eval`
    /// stalling once per cycle over the span.
    pub(crate) fn note_stalled_span(
        &mut self,
        class: StallClass,
        start_cycle: u64,
        n: u64,
        lock: &mut LockManager,
        trace: &mut TraceBuffer,
    ) {
        let (kind, bump): (TraceEventKind, &mut u64) = match class {
            StallClass::Progress => unreachable!("no stall span for a progressing head"),
            StallClass::Lock => {
                lock.note_stalls(n);
                (
                    TraceEventKind::StageStall {
                        stage: "dispatcher",
                        cause: StallCause::Lock,
                    },
                    &mut self.stats.stall_lock,
                )
            }
            StallClass::Fence => (
                TraceEventKind::StageStall {
                    stage: "dispatcher",
                    cause: StallCause::Fence,
                },
                &mut self.stats.stall_fence,
            ),
            StallClass::FuBusy(unit) => (
                TraceEventKind::FuBusy { unit: unit as u8 },
                &mut self.stats.stall_fu_busy,
            ),
        };
        *bump += n;
        if trace.is_enabled() {
            for i in 0..n {
                trace.record(start_cycle + i, kind);
            }
        }
    }

    /// Dispatch path for user instructions. Returns the target unit's
    /// index when the dispatch went through.
    #[allow(clippy::too_many_arguments)]
    fn try_dispatch_user(
        &mut self,
        instr: UserInstr,
        fu_index: usize,
        input: &mut HandshakeSlot<DecodedOp>,
        exec_out: &mut HandshakeSlot<ExecOp>,
        fus: &mut [Box<dyn FunctionalUnit>],
        lock: &mut LockManager,
        regfile: &mut RegFile,
        flagfile: &mut FlagFile,
        cycle: u64,
        trace: &mut TraceBuffer,
    ) -> Option<(usize, LockTicket, u64)> {
        let unit = &fus[fu_index];
        let v = instr.variety;
        let aux_role = unit.aux_role();
        let reads = unit.variety_reads_srcs(v);
        let reads_flags = aux_role == AuxRole::FlagSource && unit.variety_reads_flags(v);
        let writes_data = unit.variety_writes_data(v);
        let writes_flags = unit.variety_writes_flags(v);

        let dst2 = (aux_role == AuxRole::SecondDest && writes_data).then_some(instr.aux_reg);
        if let Some(d2) = dst2 {
            if d2 == instr.dst_reg {
                // One register cannot take both results; report instead of
                // wedging the lock manager.
                if exec_out.can_push() {
                    self.respond(
                        exec_out,
                        DevMsg::Error {
                            code: ErrorCode::BadRegister,
                            info: d2 as u32,
                        },
                    );
                    input.take();
                } else {
                    self.stats.stall_exec_full += 1;
                    trace.record(
                        cycle,
                        TraceEventKind::StageStall {
                            stage: "dispatcher",
                            cause: StallCause::ExecFull,
                        },
                    );
                }
                return None;
            }
        }
        let ticket = LockTicket::new(
            writes_data.then_some(instr.dst_reg),
            dst2,
            writes_flags.then_some(instr.dst_flag),
        );

        // RAW hazards on sources actually read.
        let srcs = [instr.src1, instr.src2, instr.src3];
        let raw_blocked = srcs
            .iter()
            .zip(reads)
            .any(|(r, used)| used && lock.data_locked(*r))
            || (reads_flags && lock.flag_locked(instr.aux_reg));
        if raw_blocked || !lock.can_acquire(&ticket) {
            self.stats.stall_lock += 1;
            lock.note_stall();
            trace.record(
                cycle,
                TraceEventKind::StageStall {
                    stage: "dispatcher",
                    cause: StallCause::Lock,
                },
            );
            return None;
        }
        if !fus[fu_index].can_dispatch() {
            self.stats.stall_fu_busy += 1;
            trace.record(
                cycle,
                TraceEventKind::FuBusy {
                    unit: fu_index as u8,
                },
            );
            return None;
        }

        let zero = Word::zero(self.word_bits);
        let ops = [
            if reads[0] {
                regfile.read(instr.src1)
            } else {
                zero
            },
            if reads[1] {
                regfile.read(instr.src2)
            } else {
                zero
            },
            if reads[2] {
                regfile.read(instr.src3)
            } else {
                zero
            },
        ];
        let flags_in = if reads_flags {
            flagfile.read(instr.aux_reg)
        } else {
            Flags::NONE
        };
        lock.acquire(&ticket);
        trace.record(
            cycle,
            TraceEventKind::LockAcquire {
                data: ticket.data,
                flag: ticket.flag,
            },
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        trace.record(
            cycle,
            TraceEventKind::FuDispatch {
                unit: fu_index as u8,
                seq,
            },
        );
        fus[fu_index].dispatch(DispatchPacket {
            variety: v,
            ops,
            flags_in,
            dst_reg: instr.dst_reg,
            dst2_reg: dst2,
            dst_flag: instr.dst_flag,
            imm8: instr.src3,
            ticket,
            seq,
        });
        self.stats.user_dispatched += 1;
        input.take();
        Some((fu_index, ticket, seq))
    }

    /// Shared path for data-register writes resolved in the pipeline
    /// (COPY, LOADI, host WriteReg).
    #[allow(clippy::too_many_arguments)]
    fn try_exec_write(
        &mut self,
        input: &mut HandshakeSlot<DecodedOp>,
        exec_out: &mut HandshakeSlot<ExecOp>,
        lock: &mut LockManager,
        regfile: &mut RegFile,
        dst: u8,
        src: Option<u8>,
        imm: Option<Word>,
        cycle: u64,
        trace: &mut TraceBuffer,
    ) {
        if !exec_out.can_push() {
            self.stats.stall_exec_full += 1;
            trace.record(
                cycle,
                TraceEventKind::StageStall {
                    stage: "dispatcher",
                    cause: StallCause::ExecFull,
                },
            );
            return;
        }
        let ticket = LockTicket::new(Some(dst), None, None);
        if src.is_some_and(|s| lock.data_locked(s)) || !lock.can_acquire(&ticket) {
            self.stats.stall_lock += 1;
            lock.note_stall();
            trace.record(
                cycle,
                TraceEventKind::StageStall {
                    stage: "dispatcher",
                    cause: StallCause::Lock,
                },
            );
            return;
        }
        let value = match (src, imm) {
            (Some(s), None) => regfile.read(s),
            (None, Some(v)) => v,
            _ => unreachable!("exactly one of src/imm"),
        };
        lock.acquire(&ticket);
        trace.record(
            cycle,
            TraceEventKind::LockAcquire {
                data: ticket.data,
                flag: ticket.flag,
            },
        );
        exec_out.push(ExecOp::WriteData {
            reg: dst,
            value,
            ticket,
        });
        self.stats.mgmt_forwarded += 1;
        input.take();
    }

    /// Shared path for flag-register writes (COPYF, SETF, host
    /// WriteFlags).
    #[allow(clippy::too_many_arguments)]
    fn try_exec_write_flags(
        &mut self,
        input: &mut HandshakeSlot<DecodedOp>,
        exec_out: &mut HandshakeSlot<ExecOp>,
        lock: &mut LockManager,
        flagfile: &mut FlagFile,
        dst: u8,
        src: Option<u8>,
        imm: Option<Flags>,
        cycle: u64,
        trace: &mut TraceBuffer,
    ) {
        if !exec_out.can_push() {
            self.stats.stall_exec_full += 1;
            trace.record(
                cycle,
                TraceEventKind::StageStall {
                    stage: "dispatcher",
                    cause: StallCause::ExecFull,
                },
            );
            return;
        }
        let ticket = LockTicket::new(None, None, Some(dst));
        if src.is_some_and(|s| lock.flag_locked(s)) || !lock.can_acquire(&ticket) {
            self.stats.stall_lock += 1;
            lock.note_stall();
            trace.record(
                cycle,
                TraceEventKind::StageStall {
                    stage: "dispatcher",
                    cause: StallCause::Lock,
                },
            );
            return;
        }
        let flags = match (src, imm) {
            (Some(s), None) => flagfile.read(s),
            (None, Some(f)) => f,
            _ => unreachable!("exactly one of src/imm"),
        };
        lock.acquire(&ticket);
        trace.record(
            cycle,
            TraceEventKind::LockAcquire {
                data: ticket.data,
                flag: ticket.flag,
            },
        );
        exec_out.push(ExecOp::WriteFlags {
            reg: dst,
            flags,
            ticket,
        });
        self.stats.mgmt_forwarded += 1;
        input.take();
    }

    /// Return to the power-on state.
    pub fn reset(&mut self) {
        let word_bits = self.word_bits;
        *self = Dispatcher::new(word_bits);
    }
}
