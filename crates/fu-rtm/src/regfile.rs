//! The main register file.
//!
//! "The main register file holds data, and its word size is configurable in
//! multiples of 32 bits. … up to three operands to be fetched from the
//! register file, and up to two results may be loaded into the register
//! file."
//!
//! Reads are combinational (the dispatcher reads operands within its
//! stage); writes are registered and become visible at the next clock
//! edge. Multiple writes per cycle are legal as long as they target
//! distinct registers — the lock manager guarantees the write arbiter and
//! the execution stage never collide on the same register.

use fu_isa::Word;
use rtl_sim::{AreaEstimate, Clocked, SatCounter};

/// A register file of `n` words of `word_bits` each.
#[derive(Debug, Clone)]
pub struct RegFile {
    regs: Vec<Word>,
    staged: Vec<(u8, Word)>,
    word_bits: u32,
    reads: SatCounter,
    writes: SatCounter,
    /// Per-entry even-parity bit, maintained at commit time. Only checked
    /// on read when `parity_enabled`; an SEU cell flip leaves it stale,
    /// which is exactly how the mismatch is detected.
    parity: Vec<bool>,
    parity_enabled: bool,
    /// Registers whose parity check failed, awaiting collection by the
    /// coprocessor (which reports them as in-band soft errors).
    parity_errors: Vec<u8>,
}

impl RegFile {
    /// A zero-initialised register file.
    pub fn new(n: u16, word_bits: u32) -> RegFile {
        assert!((2..=256).contains(&n), "register count must be in 2..=256");
        RegFile {
            regs: vec![Word::zero(word_bits); n as usize],
            staged: Vec::with_capacity(4),
            word_bits,
            reads: SatCounter::default(),
            writes: SatCounter::default(),
            parity: vec![false; n as usize],
            parity_enabled: false,
            parity_errors: Vec::new(),
        }
    }

    /// Enable or disable the per-entry parity protection. Parity bits are
    /// recomputed from the current contents, so enabling never reports
    /// pre-existing state as corrupt.
    pub fn set_parity_enabled(&mut self, enabled: bool) {
        self.parity_enabled = enabled;
        for (i, r) in self.regs.iter().enumerate() {
            self.parity[i] = r.popcount() & 1 == 1;
        }
    }

    /// Flip bit `bit % word_bits` of register `r` in place, leaving the
    /// parity bit stale — the SEU model's memory-cell strike.
    pub fn seu_flip(&mut self, r: u8, bit: u8) {
        let w = &mut self.regs[r as usize];
        let bit = u32::from(bit) % w.bits();
        let mut limbs: Vec<u32> = w.limbs().to_vec();
        limbs[(bit / 32) as usize] ^= 1 << (bit % 32);
        *w = Word::from_limbs(&limbs);
    }

    /// Flip bit `bit` of a staged (not yet committed) write, if one
    /// exists — the SEU model's datapath-latch strike. The corrupted
    /// value flows into the parity computation at commit, so parity
    /// cannot catch it; only redundant execution can. Returns whether a
    /// staged write was hit.
    pub fn seu_flip_staged(&mut self, bit: u8) -> bool {
        let Some((_, w)) = self.staged.first_mut() else {
            return false;
        };
        let bit = u32::from(bit) % w.bits();
        let mut limbs: Vec<u32> = w.limbs().to_vec();
        limbs[(bit / 32) as usize] ^= 1 << (bit % 32);
        *w = Word::from_limbs(&limbs);
        true
    }

    /// Drain the registers that failed their parity check since the last
    /// call. Each scrubbed entry reports once.
    pub fn take_parity_errors(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.parity_errors)
    }

    /// True when at least one write is staged toward this cycle's commit
    /// — whether a datapath-latch strike has anything to corrupt.
    pub fn has_staged_write(&self) -> bool {
        !self.staged.is_empty()
    }

    /// True when every stored word agrees with its parity bit, i.e. no
    /// latent (not yet read) memory-cell upset is present. Checkpoint
    /// logic refuses to snapshot while this is false; trivially true with
    /// parity disabled.
    pub fn parity_clean(&self) -> bool {
        if !self.parity_enabled {
            return true;
        }
        self.regs
            .iter()
            .zip(&self.parity)
            .all(|(r, p)| (r.popcount() & 1 == 1) == *p)
    }

    /// Number of registers.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// True when the file has no registers (never: construction enforces
    /// at least two, but the method completes the container contract).
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// Configured word size in bits.
    pub fn word_bits(&self) -> u32 {
        self.word_bits
    }

    /// True when `r` names an existing register.
    pub fn in_range(&self, r: u8) -> bool {
        (r as usize) < self.regs.len()
    }

    /// Combinational read port.
    ///
    /// # Panics
    /// Panics on out-of-range registers — the decoder validates register
    /// numbers before they reach a read port.
    pub fn read(&mut self, r: u8) -> Word {
        self.reads.bump();
        if self.parity_enabled {
            let got = self.regs[r as usize].popcount() & 1 == 1;
            if got != self.parity[r as usize] {
                self.parity_errors.push(r);
                // Scrub: a single upset reports once, not on every read.
                self.parity[r as usize] = got;
            }
        }
        self.regs[r as usize]
    }

    /// Read without counting (diagnostics, test assertions).
    pub fn peek(&self, r: u8) -> Word {
        self.regs[r as usize]
    }

    /// Registered write port: the value is visible from the next cycle.
    ///
    /// # Panics
    /// Panics on out-of-range registers, width mismatches, or two writes
    /// to the same register in one cycle (the lock manager must prevent
    /// the latter; hitting it is a framework bug).
    pub fn write(&mut self, r: u8, v: Word) {
        assert!(self.in_range(r), "register {r} out of range");
        assert_eq!(v.bits(), self.word_bits, "register write width mismatch");
        assert!(
            !self.staged.iter().any(|(sr, _)| *sr == r),
            "double write to r{r} in one cycle"
        );
        self.writes.bump();
        self.staged.push((r, v));
    }

    /// `(reads, writes)` since reset.
    pub fn port_counts(&self) -> (u64, u64) {
        (self.reads.get(), self.writes.get())
    }

    /// Area estimate: a register-based file with 3 read and 2+1 write
    /// ports, as the paper's operand/result counts require.
    pub fn area(&self) -> AreaEstimate {
        AreaEstimate::regfile(self.regs.len() as u64, self.word_bits as u64, 3, 3)
    }
}

impl Clocked for RegFile {
    fn commit(&mut self) {
        for (r, v) in self.staged.drain(..) {
            if self.parity_enabled {
                self.parity[r as usize] = v.popcount() & 1 == 1;
            }
            self.regs[r as usize] = v;
        }
    }

    fn reset(&mut self) {
        for r in &mut self.regs {
            *r = Word::zero(self.word_bits);
        }
        self.staged.clear();
        self.reads = SatCounter::default();
        self.writes = SatCounter::default();
        self.parity.fill(false);
        self.parity_errors.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_is_registered() {
        let mut rf = RegFile::new(8, 32);
        rf.write(3, Word::from_u64(77, 32));
        assert!(rf.read(3).is_zero(), "write must not be visible this cycle");
        rf.commit();
        assert_eq!(rf.read(3).as_u64(), 77);
    }

    #[test]
    fn distinct_registers_may_write_same_cycle() {
        let mut rf = RegFile::new(8, 32);
        rf.write(1, Word::from_u64(1, 32));
        rf.write(2, Word::from_u64(2, 32));
        rf.write(3, Word::from_u64(3, 32));
        rf.commit();
        assert_eq!(rf.peek(1).as_u64(), 1);
        assert_eq!(rf.peek(2).as_u64(), 2);
        assert_eq!(rf.peek(3).as_u64(), 3);
    }

    #[test]
    #[should_panic(expected = "double write")]
    fn same_register_double_write_panics() {
        let mut rf = RegFile::new(8, 32);
        rf.write(1, Word::from_u64(1, 32));
        rf.write(1, Word::from_u64(2, 32));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut rf = RegFile::new(8, 32);
        rf.write(1, Word::from_u64(1, 64));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_write_panics() {
        let mut rf = RegFile::new(8, 32);
        rf.write(8, Word::from_u64(1, 32));
    }

    #[test]
    fn range_check() {
        let rf = RegFile::new(8, 32);
        assert!(rf.in_range(7));
        assert!(!rf.in_range(8));
    }

    #[test]
    fn counters_and_reset() {
        let mut rf = RegFile::new(4, 64);
        rf.write(0, Word::from_u64(5, 64));
        rf.commit();
        let _ = rf.read(0);
        let _ = rf.read(1);
        assert_eq!(rf.port_counts(), (2, 1));
        rf.reset();
        assert_eq!(rf.port_counts(), (0, 0));
        assert!(rf.peek(0).is_zero());
    }

    #[test]
    fn wide_word_configuration() {
        let mut rf = RegFile::new(4, 128);
        let v = Word::from_u128(u128::MAX - 5, 128);
        rf.write(2, v);
        rf.commit();
        assert_eq!(rf.peek(2), v);
        assert_eq!(rf.word_bits(), 128);
    }

    #[test]
    fn parity_catches_cell_flip_and_reports_once() {
        let mut rf = RegFile::new(8, 32);
        rf.set_parity_enabled(true);
        rf.write(3, Word::from_u64(0b1011, 32));
        rf.commit();
        assert_eq!(rf.read(3).as_u64(), 0b1011);
        assert!(rf.take_parity_errors().is_empty(), "clean read, no error");
        rf.seu_flip(3, 1);
        assert_eq!(rf.read(3).as_u64(), 0b1001, "corrupt value still served");
        assert_eq!(rf.take_parity_errors(), vec![3]);
        let _ = rf.read(3);
        assert!(rf.take_parity_errors().is_empty(), "scrubbed: reports once");
    }

    #[test]
    fn parity_misses_staged_flip() {
        // A strike on the write datapath corrupts the value *before* the
        // parity bit is computed, so the stored word is self-consistent:
        // detection requires redundant execution, not parity.
        let mut rf = RegFile::new(8, 32);
        rf.set_parity_enabled(true);
        rf.write(2, Word::from_u64(0xF0, 32));
        assert!(rf.seu_flip_staged(0));
        rf.commit();
        assert_eq!(rf.read(2).as_u64(), 0xF1);
        assert!(rf.take_parity_errors().is_empty());
        assert!(!rf.seu_flip_staged(5), "no staged write to hit");
    }

    #[test]
    fn parity_disabled_is_free() {
        let mut rf = RegFile::new(8, 32);
        rf.write(1, Word::from_u64(7, 32));
        rf.commit();
        rf.seu_flip(1, 0);
        let _ = rf.read(1);
        assert!(rf.take_parity_errors().is_empty());
    }

    #[test]
    fn area_scales_with_size() {
        let small = RegFile::new(8, 32).area();
        let big = RegFile::new(64, 32).area();
        assert!(big.ffs > small.ffs);
        assert_eq!(small.ffs, 8 * 32);
    }
}
