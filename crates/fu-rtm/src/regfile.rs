//! The main register file.
//!
//! "The main register file holds data, and its word size is configurable in
//! multiples of 32 bits. … up to three operands to be fetched from the
//! register file, and up to two results may be loaded into the register
//! file."
//!
//! Reads are combinational (the dispatcher reads operands within its
//! stage); writes are registered and become visible at the next clock
//! edge. Multiple writes per cycle are legal as long as they target
//! distinct registers — the lock manager guarantees the write arbiter and
//! the execution stage never collide on the same register.

use fu_isa::Word;
use rtl_sim::{AreaEstimate, Clocked, SatCounter};

/// A register file of `n` words of `word_bits` each.
#[derive(Debug, Clone)]
pub struct RegFile {
    regs: Vec<Word>,
    staged: Vec<(u8, Word)>,
    word_bits: u32,
    reads: SatCounter,
    writes: SatCounter,
}

impl RegFile {
    /// A zero-initialised register file.
    pub fn new(n: u16, word_bits: u32) -> RegFile {
        assert!((2..=256).contains(&n), "register count must be in 2..=256");
        RegFile {
            regs: vec![Word::zero(word_bits); n as usize],
            staged: Vec::with_capacity(4),
            word_bits,
            reads: SatCounter::default(),
            writes: SatCounter::default(),
        }
    }

    /// Number of registers.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// True when the file has no registers (never: construction enforces
    /// at least two, but the method completes the container contract).
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// Configured word size in bits.
    pub fn word_bits(&self) -> u32 {
        self.word_bits
    }

    /// True when `r` names an existing register.
    pub fn in_range(&self, r: u8) -> bool {
        (r as usize) < self.regs.len()
    }

    /// Combinational read port.
    ///
    /// # Panics
    /// Panics on out-of-range registers — the decoder validates register
    /// numbers before they reach a read port.
    pub fn read(&mut self, r: u8) -> Word {
        self.reads.bump();
        self.regs[r as usize]
    }

    /// Read without counting (diagnostics, test assertions).
    pub fn peek(&self, r: u8) -> Word {
        self.regs[r as usize]
    }

    /// Registered write port: the value is visible from the next cycle.
    ///
    /// # Panics
    /// Panics on out-of-range registers, width mismatches, or two writes
    /// to the same register in one cycle (the lock manager must prevent
    /// the latter; hitting it is a framework bug).
    pub fn write(&mut self, r: u8, v: Word) {
        assert!(self.in_range(r), "register {r} out of range");
        assert_eq!(v.bits(), self.word_bits, "register write width mismatch");
        assert!(
            !self.staged.iter().any(|(sr, _)| *sr == r),
            "double write to r{r} in one cycle"
        );
        self.writes.bump();
        self.staged.push((r, v));
    }

    /// `(reads, writes)` since reset.
    pub fn port_counts(&self) -> (u64, u64) {
        (self.reads.get(), self.writes.get())
    }

    /// Area estimate: a register-based file with 3 read and 2+1 write
    /// ports, as the paper's operand/result counts require.
    pub fn area(&self) -> AreaEstimate {
        AreaEstimate::regfile(self.regs.len() as u64, self.word_bits as u64, 3, 3)
    }
}

impl Clocked for RegFile {
    fn commit(&mut self) {
        for (r, v) in self.staged.drain(..) {
            self.regs[r as usize] = v;
        }
    }

    fn reset(&mut self) {
        for r in &mut self.regs {
            *r = Word::zero(self.word_bits);
        }
        self.staged.clear();
        self.reads = SatCounter::default();
        self.writes = SatCounter::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_is_registered() {
        let mut rf = RegFile::new(8, 32);
        rf.write(3, Word::from_u64(77, 32));
        assert!(rf.read(3).is_zero(), "write must not be visible this cycle");
        rf.commit();
        assert_eq!(rf.read(3).as_u64(), 77);
    }

    #[test]
    fn distinct_registers_may_write_same_cycle() {
        let mut rf = RegFile::new(8, 32);
        rf.write(1, Word::from_u64(1, 32));
        rf.write(2, Word::from_u64(2, 32));
        rf.write(3, Word::from_u64(3, 32));
        rf.commit();
        assert_eq!(rf.peek(1).as_u64(), 1);
        assert_eq!(rf.peek(2).as_u64(), 2);
        assert_eq!(rf.peek(3).as_u64(), 3);
    }

    #[test]
    #[should_panic(expected = "double write")]
    fn same_register_double_write_panics() {
        let mut rf = RegFile::new(8, 32);
        rf.write(1, Word::from_u64(1, 32));
        rf.write(1, Word::from_u64(2, 32));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut rf = RegFile::new(8, 32);
        rf.write(1, Word::from_u64(1, 64));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_write_panics() {
        let mut rf = RegFile::new(8, 32);
        rf.write(8, Word::from_u64(1, 32));
    }

    #[test]
    fn range_check() {
        let rf = RegFile::new(8, 32);
        assert!(rf.in_range(7));
        assert!(!rf.in_range(8));
    }

    #[test]
    fn counters_and_reset() {
        let mut rf = RegFile::new(4, 64);
        rf.write(0, Word::from_u64(5, 64));
        rf.commit();
        let _ = rf.read(0);
        let _ = rf.read(1);
        assert_eq!(rf.port_counts(), (2, 1));
        rf.reset();
        assert_eq!(rf.port_counts(), (0, 0));
        assert!(rf.peek(0).is_zero());
    }

    #[test]
    fn wide_word_configuration() {
        let mut rf = RegFile::new(4, 128);
        let v = Word::from_u128(u128::MAX - 5, 128);
        rf.write(2, v);
        rf.commit();
        assert_eq!(rf.peek(2), v);
        assert_eq!(rf.word_bits(), 128);
    }

    #[test]
    fn area_scales_with_size() {
        let small = RegFile::new(8, 32).area();
        let big = RegFile::new(64, 32).area();
        assert!(big.ffs > small.ffs);
        assert_eq!(small.ffs, 8 * 32);
    }
}
