//! Seeded single-event-upset (SEU) injection for device state.
//!
//! The wire already has a deterministic fault model (`fu_host::Link`);
//! this is its device-state counterpart: a seeded strike schedule that
//! flips bits in the coprocessor's architectural and micro-architectural
//! state — register/flag file cells, in-flight result latches, scoreboard
//! lock bits — so the resilience machinery (parity, redundant execution,
//! checkpoint rollback) can be exercised reproducibly.
//!
//! Determinism contract: the cycle of the i-th strike and its target are
//! pure functions of `(seed, i)`. Strikes are *scheduled* (gap-sampled)
//! rather than Bernoulli-per-cycle, so an event-driven kernel that skips
//! a million quiet cycles pays O(strikes-in-span), not O(cycles), to stay
//! bit-identical with per-cycle stepping.

/// Which class of device state a strike lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeuTarget {
    /// A stored word in the main register file (post-commit memory cell).
    RegFile,
    /// A stored vector in the flag register file.
    FlagFile,
    /// A functional unit's pending result latch, or failing that, a write
    /// staged toward the register file this cycle (datapath state —
    /// invisible to parity, caught only by redundant execution).
    ResultLatch,
    /// A scoreboard lock bit (protected by duplication-with-comparison,
    /// so always detected and repaired in place).
    Scoreboard,
}

impl SeuTarget {
    /// Stable label for trace events.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SeuTarget::RegFile => "regfile",
            SeuTarget::FlagFile => "flagfile",
            SeuTarget::ResultLatch => "latch",
            SeuTarget::Scoreboard => "scoreboard",
        }
    }
}

/// Configuration for the SEU injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeuConfig {
    /// Seed for the strike schedule (strike cycles and targets are pure
    /// functions of this and the strike index).
    pub seed: u64,
    /// Mean cycles between strikes. Gaps are sampled uniformly from
    /// `1..=2*mean - 1`, so the long-run strike rate is `1/mean`.
    pub mean_interval_cycles: u64,
    /// Strike stored register-file words.
    pub regfile: bool,
    /// Strike stored flag-file vectors.
    pub flagfile: bool,
    /// Strike FU result latches / staged register writes.
    pub result_latch: bool,
    /// Strike scoreboard lock bits.
    pub scoreboard: bool,
}

impl SeuConfig {
    /// A config striking every state class at the given mean interval.
    #[must_use]
    pub fn all(seed: u64, mean_interval_cycles: u64) -> SeuConfig {
        SeuConfig {
            seed,
            mean_interval_cycles,
            regfile: true,
            flagfile: true,
            result_latch: true,
            scoreboard: true,
        }
    }

    fn enabled_targets(&self) -> [Option<SeuTarget>; 4] {
        let mut out = [None; 4];
        let mut n = 0;
        for (on, t) in [
            (self.regfile, SeuTarget::RegFile),
            (self.flagfile, SeuTarget::FlagFile),
            (self.result_latch, SeuTarget::ResultLatch),
            (self.scoreboard, SeuTarget::Scoreboard),
        ] {
            if on {
                out[n] = Some(t);
                n += 1;
            }
        }
        out
    }
}

/// One scheduled upset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Strike {
    /// The state class hit.
    pub target: SeuTarget,
    /// Register / unit selector within the class (reduced modulo the
    /// class size by the applier).
    pub index: u8,
    /// Bit position within the struck word (reduced modulo its width).
    pub bit: u8,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The strike scheduler. Holds only the next strike's cycle and index;
/// everything else is recomputed, so cloning or *not* cloning it across a
/// checkpoint restore is a policy choice (the coprocessor deliberately
/// keeps it out of snapshots — replaying the same strikes after every
/// rollback would re-poison every replay and never converge).
#[derive(Debug, Clone)]
pub struct SeuModel {
    cfg: SeuConfig,
    /// Cycle of the upcoming strike.
    next_strike: u64,
    /// Index of the upcoming strike (schedule position).
    strike_idx: u64,
}

impl SeuModel {
    pub fn new(cfg: SeuConfig) -> SeuModel {
        assert!(
            cfg.mean_interval_cycles >= 1,
            "mean SEU interval must be at least 1 cycle"
        );
        assert!(
            cfg.regfile || cfg.flagfile || cfg.result_latch || cfg.scoreboard,
            "SEU injection enabled with no target class"
        );
        let mut m = SeuModel {
            cfg,
            next_strike: 0,
            strike_idx: 0,
        };
        m.next_strike = m.gap(0);
        m
    }

    /// The sampled gap before strike `i`: uniform in `1..=2*mean - 1`.
    fn gap(&self, i: u64) -> u64 {
        let h = splitmix64(self.cfg.seed ^ i.wrapping_mul(0xA076_1D64_78BD_642F));
        1 + h % (2 * self.cfg.mean_interval_cycles - 1).max(1)
    }

    /// Cycle of the next strike not yet taken — the scheduling kernel
    /// must not skip past it without calling [`SeuModel::take`].
    #[must_use]
    pub fn next_strike_cycle(&self) -> u64 {
        self.next_strike
    }

    /// Consume and return the strike due at or before `cycle`, if any.
    /// Call in a loop when a span of cycles is retired at once.
    pub fn take(&mut self, cycle: u64) -> Option<Strike> {
        if cycle < self.next_strike {
            return None;
        }
        let h = splitmix64(
            self.cfg.seed ^ 0x5345_5f55 ^ self.strike_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let targets = self.cfg.enabled_targets();
        let n = targets.iter().flatten().count();
        let target = targets[(h % n as u64) as usize].expect("class count checked");
        let strike = Strike {
            target,
            index: (h >> 8) as u8,
            bit: (h >> 16) as u8,
        };
        self.strike_idx += 1;
        self.next_strike = self.next_strike.saturating_add(self.gap(self.strike_idx));
        Some(strike)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_rate_accurate() {
        let cfg = SeuConfig::all(42, 1000);
        let run = |span: u64| {
            let mut m = SeuModel::new(cfg);
            let mut strikes = Vec::new();
            while m.next_strike_cycle() <= span {
                let c = m.next_strike_cycle();
                strikes.push((c, m.take(c).expect("due")));
            }
            strikes
        };
        let a = run(1_000_000);
        let b = run(1_000_000);
        assert_eq!(a, b, "same seed, same schedule");
        // Mean gap is `mean_interval_cycles`: expect ~1000 strikes ±20%.
        assert!((800..=1200).contains(&a.len()), "got {} strikes", a.len());
    }

    #[test]
    fn span_replay_equals_per_cycle_polling() {
        // Taking strikes cycle-by-cycle and draining them at a span
        // boundary yields the same sequence — the property the
        // event-scheduled kernel relies on.
        let cfg = SeuConfig::all(7, 50);
        let mut per_cycle = SeuModel::new(cfg);
        let mut stepped = Vec::new();
        for c in 0..10_000u64 {
            while let Some(s) = per_cycle.take(c) {
                stepped.push(s);
            }
        }
        let mut spanned = SeuModel::new(cfg);
        let mut skipped = Vec::new();
        for c in (0..=10_000u64).step_by(777) {
            while let Some(s) = spanned.take(c.saturating_sub(1)) {
                skipped.push(s);
            }
        }
        // The spanned run covers 0..=9999 via uneven chunks.
        while let Some(s) = spanned.take(9_999) {
            skipped.push(s);
        }
        assert_eq!(stepped, skipped);
    }

    #[test]
    fn respects_enabled_classes() {
        let cfg = SeuConfig {
            regfile: false,
            flagfile: false,
            result_latch: false,
            scoreboard: true,
            ..SeuConfig::all(3, 10)
        };
        let mut m = SeuModel::new(cfg);
        for _ in 0..100 {
            let c = m.next_strike_cycle();
            let s = m.take(c).expect("due");
            assert_eq!(s.target, SeuTarget::Scoreboard);
        }
    }

    #[test]
    #[should_panic(expected = "no target class")]
    fn rejects_empty_target_set() {
        let _ = SeuModel::new(SeuConfig {
            regfile: false,
            flagfile: false,
            result_latch: false,
            scoreboard: false,
            ..SeuConfig::all(1, 10)
        });
    }
}
