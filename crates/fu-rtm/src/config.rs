//! Framework configuration — the Rust stand-in for the VHDL generics.
//!
//! "The architecture of the controller is specified as a set of generics in
//! VHDL. … the word size used for the register file is adjustable, so the
//! interface can meet the requirements of the functional units while
//! requiring as small a portion of the FPGA as possible."

use crate::redundant::Redundancy;
use crate::seu::SeuConfig;
use fu_isa::transport::TransportConfig;
use rtl_sim::SimError;

/// Configuration of one coprocessor instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoprocConfig {
    /// Register word size in bits; must be a multiple of 32 in `32..=128`
    /// ("configurable in multiples of 32 bits").
    pub word_bits: u32,
    /// Number of main data registers (2..=256).
    pub data_regs: u16,
    /// Number of flag registers (1..=256).
    pub flag_regs: u16,
    /// Register-file write ports available to the write arbiter per cycle,
    /// *excluding* the execution stage's high-priority port ("up to two
    /// results may be loaded into the register file").
    pub write_ports: u8,
    /// Input-port width: frames the message buffer may consume per cycle
    /// (1 models the paper's narrow prototyping link port; 4 a tightly
    /// coupled 128-bit bus).
    pub rx_frames_per_cycle: u8,
    /// Output-port width: frames the serialiser may emit per cycle.
    pub tx_frames_per_cycle: u8,
    /// Depth of the inbound frame FIFO between the receiver and the
    /// message buffer.
    pub rx_fifo_depth: usize,
    /// Depth of the outbound frame FIFO between the serialiser and the
    /// transmitter.
    pub tx_fifo_depth: usize,
    /// Number of trace events retained (0 disables tracing).
    pub trace_depth: usize,
    /// Dispatch watchdog: a functional unit that is busy for this many
    /// cycles without making progress (no dispatch accepted, no output
    /// produced) is declared hung — its register locks are force-released,
    /// an in-band [`fu_isa::msg::ErrorCode::FuTimeout`] error is emitted,
    /// and the unit is quarantined in the FU table so later dispatches fail
    /// fast. `None` disables the watchdog (the default).
    pub max_busy_cycles: Option<u64>,
    /// Reliable-transport configuration for the device-side transceiver.
    /// `None` (the default) keeps the bare frame port: every frame is
    /// assumed delivered intact, as the paper's framing layer does.
    pub transport: Option<TransportConfig>,
    /// Seeded single-event-upset injection into device state (register/
    /// flag file cells, result latches, scoreboard bits). `None` (the
    /// default) models radiation-free hardware.
    pub seu: Option<SeuConfig>,
    /// Per-entry parity on the register and flag files, checked on read.
    /// Detects memory-cell upsets (reported as in-band
    /// [`fu_isa::msg::ErrorCode::SoftError`]); cannot see datapath
    /// upsets, which need redundant execution.
    pub parity: bool,
    /// Redundant execution: every clone-capable functional unit runs as
    /// 2 (DMR, detect) or 3 (TMR, detect + majority-correct) lock-step
    /// replicas with a vote at retire.
    pub redundancy: Redundancy,
}

impl Default for CoprocConfig {
    fn default() -> Self {
        CoprocConfig {
            word_bits: 32,
            data_regs: 32,
            flag_regs: 8,
            write_ports: 2,
            rx_frames_per_cycle: 1,
            tx_frames_per_cycle: 1,
            rx_fifo_depth: 16,
            tx_fifo_depth: 16,
            trace_depth: 0,
            max_busy_cycles: None,
            transport: None,
            seu: None,
            parity: false,
            redundancy: Redundancy::None,
        }
    }
}

impl CoprocConfig {
    /// Validate the same constraints the VHDL generics impose.
    pub fn validate(&self) -> Result<(), SimError> {
        let err = |m: String| Err(SimError::Config(m));
        if !self.word_bits.is_multiple_of(32) || !(32..=128).contains(&self.word_bits) {
            return err(format!(
                "word_bits must be a multiple of 32 in 32..=128, got {}",
                self.word_bits
            ));
        }
        if !(2..=256).contains(&self.data_regs) {
            return err(format!(
                "data_regs must be in 2..=256, got {}",
                self.data_regs
            ));
        }
        if !(1..=256).contains(&self.flag_regs) {
            return err(format!(
                "flag_regs must be in 1..=256, got {}",
                self.flag_regs
            ));
        }
        if self.write_ports == 0 {
            return err("write_ports must be at least 1".into());
        }
        if self.rx_fifo_depth == 0 || self.tx_fifo_depth == 0 {
            return err("frame FIFO depths must be at least 1".into());
        }
        if self.rx_frames_per_cycle == 0 || self.tx_frames_per_cycle == 0 {
            return err("port widths must be at least one frame per cycle".into());
        }
        if self.max_busy_cycles == Some(0) {
            return err("max_busy_cycles must be at least 1 when enabled".into());
        }
        if let Some(t) = &self.transport {
            if t.window == 0 || t.ack_timeout == 0 {
                return err("transport window and ack_timeout must be at least 1".into());
            }
        }
        if let Some(s) = &self.seu {
            if s.mean_interval_cycles == 0 {
                return err("seu mean_interval_cycles must be at least 1".into());
            }
            if !(s.regfile || s.flagfile || s.result_latch || s.scoreboard) {
                return err("seu injection enabled with no target class".into());
            }
        }
        Ok(())
    }

    /// Builder-style port width override (both directions).
    pub fn with_port_width(mut self, frames_per_cycle: u8) -> Self {
        self.rx_frames_per_cycle = frames_per_cycle;
        self.tx_frames_per_cycle = frames_per_cycle;
        self
    }

    /// Builder-style word size override.
    pub fn with_word_bits(mut self, bits: u32) -> Self {
        self.word_bits = bits;
        self
    }

    /// Builder-style register count override.
    pub fn with_data_regs(mut self, n: u16) -> Self {
        self.data_regs = n;
        self
    }

    /// Builder-style flag register count override.
    pub fn with_flag_regs(mut self, n: u16) -> Self {
        self.flag_regs = n;
        self
    }

    /// Builder-style trace enable.
    pub fn with_trace(mut self, depth: usize) -> Self {
        self.trace_depth = depth;
        self
    }

    /// Builder-style dispatch-watchdog enable.
    pub fn with_watchdog(mut self, max_busy_cycles: u64) -> Self {
        self.max_busy_cycles = Some(max_busy_cycles);
        self
    }

    /// Builder-style reliable-transport enable for the device frame port.
    pub fn with_transport(mut self, transport: TransportConfig) -> Self {
        self.transport = Some(transport);
        self
    }

    /// Builder-style SEU injection enable.
    pub fn with_seu(mut self, seu: SeuConfig) -> Self {
        self.seu = Some(seu);
        self
    }

    /// Builder-style register/flag file parity enable.
    pub fn with_parity(mut self) -> Self {
        self.parity = true;
        self
    }

    /// Builder-style redundant execution mode.
    pub fn with_redundancy(mut self, redundancy: Redundancy) -> Self {
        self.redundancy = redundancy;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(CoprocConfig::default().validate().is_ok());
    }

    #[test]
    fn all_supported_word_sizes_validate() {
        for bits in [32, 64, 96, 128] {
            assert!(CoprocConfig::default()
                .with_word_bits(bits)
                .validate()
                .is_ok());
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad = [
            CoprocConfig::default().with_word_bits(48),
            CoprocConfig::default().with_word_bits(0),
            CoprocConfig::default().with_word_bits(160),
            CoprocConfig::default().with_data_regs(1),
            CoprocConfig::default().with_flag_regs(0),
            CoprocConfig {
                write_ports: 0,
                ..CoprocConfig::default()
            },
            CoprocConfig {
                rx_fifo_depth: 0,
                ..CoprocConfig::default()
            },
            CoprocConfig {
                max_busy_cycles: Some(0),
                ..CoprocConfig::default()
            },
            CoprocConfig {
                seu: Some(SeuConfig {
                    mean_interval_cycles: 0,
                    ..SeuConfig::all(1, 1)
                }),
                ..CoprocConfig::default()
            },
            CoprocConfig {
                seu: Some(SeuConfig {
                    regfile: false,
                    flagfile: false,
                    result_latch: false,
                    scoreboard: false,
                    ..SeuConfig::all(1, 100)
                }),
                ..CoprocConfig::default()
            },
        ];
        for cfg in bad {
            assert!(cfg.validate().is_err(), "{cfg:?} should be rejected");
        }
    }

    #[test]
    fn error_messages_name_the_parameter() {
        let e = CoprocConfig::default()
            .with_word_bits(48)
            .validate()
            .unwrap_err();
        assert!(e.to_string().contains("word_bits"));
        let e = CoprocConfig::default()
            .with_data_regs(0)
            .validate()
            .unwrap_err();
        assert!(e.to_string().contains("data_regs"));
    }
}
