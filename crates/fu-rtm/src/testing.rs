//! Test and experiment support: a configurable fixed-latency functional
//! unit.
//!
//! [`LatencyFu`] computes `dst = src1 + src2` (wrapping) after a fixed
//! number of cycles, holding one instruction at a time. It exists so that
//! framework tests and the out-of-order experiment (E4) can build units of
//! *known* timing without pulling in the real unit library — mixing a
//! 1-cycle and a 32-cycle `LatencyFu` makes completion reordering
//! deterministic and observable.

use crate::protocol::{AuxRole, DispatchPacket, FuOutput, FunctionalUnit};
use fu_isa::Flags;
use rtl_sim::{AreaEstimate, Clocked, CriticalPath};

/// A single-occupancy unit with a fixed compute latency.
#[derive(Debug, Clone)]
pub struct LatencyFu {
    name: &'static str,
    func_code: u8,
    latency: u32,
    busy: Option<(u32, DispatchPacket)>,
    out: Option<FuOutput>,
}

impl LatencyFu {
    /// A unit answering to `func_code` that completes `latency` cycles
    /// after dispatch (`latency >= 1`).
    pub fn new(name: &'static str, func_code: u8, latency: u32) -> LatencyFu {
        assert!(latency >= 1, "latency must be at least one cycle");
        LatencyFu {
            name,
            func_code,
            latency,
            busy: None,
            out: None,
        }
    }

    /// The configured latency.
    pub fn latency(&self) -> u32 {
        self.latency
    }

    fn compute(pkt: &DispatchPacket) -> FuOutput {
        let (sum, carry, ovf) = pkt.ops[0].adc(&pkt.ops[1], false);
        FuOutput {
            data: Some((pkt.dst_reg, sum)),
            data2: None,
            flags: Some((
                pkt.dst_flag,
                Flags::from_parts(carry, sum.is_zero(), sum.msb(), ovf),
            )),
            ticket: pkt.ticket,
            seq: pkt.seq,
        }
    }
}

impl Clocked for LatencyFu {
    fn commit(&mut self) {
        if let Some((remaining, _)) = &mut self.busy {
            if *remaining > 0 {
                *remaining -= 1;
            }
            if *remaining == 0 && self.out.is_none() {
                let (_, pkt) = self.busy.take().expect("checked busy");
                self.out = Some(Self::compute(&pkt));
            }
        }
    }

    fn reset(&mut self) {
        self.busy = None;
        self.out = None;
    }
}

impl FunctionalUnit for LatencyFu {
    fn name(&self) -> &'static str {
        self.name
    }

    fn func_code(&self) -> u8 {
        self.func_code
    }

    fn aux_role(&self) -> AuxRole {
        AuxRole::Unused
    }

    fn can_dispatch(&self) -> bool {
        self.busy.is_none() && self.out.is_none()
    }

    fn dispatch(&mut self, pkt: DispatchPacket) {
        assert!(self.can_dispatch(), "dispatch to busy LatencyFu");
        self.busy = Some((self.latency, pkt));
    }

    fn peek_output(&self) -> Option<&FuOutput> {
        self.out.as_ref()
    }

    fn ack_output(&mut self) -> FuOutput {
        self.out.take().expect("ack with no pending output")
    }

    fn is_idle(&self) -> bool {
        self.busy.is_none() && self.out.is_none()
    }

    fn wake_hint(&self) -> Option<u64> {
        // While burning latency the remaining count is exactly the number
        // of commits until the output appears; nothing observable changes
        // earlier. With output pending the hint is irrelevant (the
        // scheduler never skips past a waiting output).
        match (&self.busy, &self.out) {
            (Some((remaining, _)), None) => Some(u64::from(*remaining)),
            _ => None,
        }
    }

    fn advance_busy(&mut self, cycles: u64) {
        if let Some((remaining, _)) = &mut self.busy {
            *remaining -= u32::try_from(cycles.min(u64::from(*remaining))).expect("bounded");
            if *remaining == 0 && self.out.is_none() {
                let (_, pkt) = self.busy.take().expect("checked busy");
                self.out = Some(Self::compute(&pkt));
            }
        }
    }

    fn clone_unit(&self) -> Option<Box<dyn FunctionalUnit>> {
        Some(Box::new(self.clone()))
    }

    fn area(&self) -> AreaEstimate {
        AreaEstimate::adder(32) + AreaEstimate::register(64)
    }

    fn critical_path(&self) -> CriticalPath {
        CriticalPath::adder(32)
    }
}

/// A unit that accepts one dispatch and never completes it — the hung-FU
/// stimulus for the dispatch watchdog. It reports busy forever, produces
/// no output, and only `reset` (or quarantine, which stops its clock)
/// releases it.
#[derive(Debug, Clone)]
pub struct StuckFu {
    name: &'static str,
    func_code: u8,
    stuck: bool,
}

impl StuckFu {
    pub fn new(name: &'static str, func_code: u8) -> StuckFu {
        StuckFu {
            name,
            func_code,
            stuck: false,
        }
    }

    /// Has the unit swallowed its dispatch?
    pub fn is_stuck(&self) -> bool {
        self.stuck
    }
}

impl Clocked for StuckFu {
    fn commit(&mut self) {}

    fn reset(&mut self) {
        self.stuck = false;
    }
}

impl FunctionalUnit for StuckFu {
    fn name(&self) -> &'static str {
        self.name
    }

    fn func_code(&self) -> u8 {
        self.func_code
    }

    fn aux_role(&self) -> AuxRole {
        AuxRole::Unused
    }

    fn can_dispatch(&self) -> bool {
        !self.stuck
    }

    fn dispatch(&mut self, _pkt: DispatchPacket) {
        assert!(!self.stuck, "dispatch to busy StuckFu");
        self.stuck = true;
    }

    fn peek_output(&self) -> Option<&FuOutput> {
        None
    }

    fn ack_output(&mut self) -> FuOutput {
        unreachable!("StuckFu never produces output")
    }

    fn is_idle(&self) -> bool {
        !self.stuck
    }

    fn wake_hint(&self) -> Option<u64> {
        // A hung unit never changes again; only the watchdog deadline
        // (tracked by the coprocessor, not the unit) bounds the skip.
        Some(u64::MAX)
    }

    fn advance_busy(&mut self, _cycles: u64) {}

    fn clone_unit(&self) -> Option<Box<dyn FunctionalUnit>> {
        Some(Box::new(self.clone()))
    }

    fn area(&self) -> AreaEstimate {
        AreaEstimate::register(1)
    }

    fn critical_path(&self) -> CriticalPath {
        CriticalPath::of(1)
    }
}

/// A [`LatencyFu`] that panics when dispatched with `src1 == trigger` —
/// the stimulus for shard-failover tests, modelling control state
/// corrupted beyond in-band recovery (the simulation equivalent of a
/// wedged board). An unarmed unit (`trigger: None`) behaves exactly like
/// its inner [`LatencyFu`], so one farm builder can poison a single
/// shard and leave the rest healthy.
#[derive(Debug, Clone)]
pub struct PoisonFu {
    inner: LatencyFu,
    trigger: Option<u64>,
}

impl PoisonFu {
    /// A latency-`latency` unit answering to `func_code` that dies when
    /// it sees `trigger` as its first operand.
    pub fn new(name: &'static str, func_code: u8, latency: u32, trigger: Option<u64>) -> PoisonFu {
        PoisonFu {
            inner: LatencyFu::new(name, func_code, latency),
            trigger,
        }
    }
}

impl Clocked for PoisonFu {
    fn commit(&mut self) {
        self.inner.commit();
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

impl FunctionalUnit for PoisonFu {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn func_code(&self) -> u8 {
        self.inner.func_code()
    }

    fn aux_role(&self) -> AuxRole {
        AuxRole::Unused
    }

    fn can_dispatch(&self) -> bool {
        self.inner.can_dispatch()
    }

    fn dispatch(&mut self, pkt: DispatchPacket) {
        if self.trigger.is_some_and(|t| pkt.ops[0].as_u64() == t) {
            panic!("PoisonFu struck: shard control state is corrupt");
        }
        self.inner.dispatch(pkt);
    }

    fn peek_output(&self) -> Option<&FuOutput> {
        self.inner.peek_output()
    }

    fn ack_output(&mut self) -> FuOutput {
        self.inner.ack_output()
    }

    fn is_idle(&self) -> bool {
        self.inner.is_idle()
    }

    fn wake_hint(&self) -> Option<u64> {
        self.inner.wake_hint()
    }

    fn advance_busy(&mut self, cycles: u64) {
        self.inner.advance_busy(cycles);
    }

    fn clone_unit(&self) -> Option<Box<dyn FunctionalUnit>> {
        Some(Box::new(self.clone()))
    }

    fn area(&self) -> AreaEstimate {
        self.inner.area()
    }

    fn critical_path(&self) -> CriticalPath {
        self.inner.critical_path()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::LockTicket;
    use fu_isa::Word;

    fn pkt(a: u64, b: u64, dst: u8) -> DispatchPacket {
        DispatchPacket {
            variety: 0,
            ops: [Word::from_u64(a, 32), Word::from_u64(b, 32), Word::zero(32)],
            flags_in: Flags::NONE,
            dst_reg: dst,
            dst2_reg: None,
            dst_flag: 0,
            imm8: 0,
            ticket: LockTicket::new(Some(dst), None, Some(0)),
            seq: 0,
        }
    }

    #[test]
    fn completes_after_exact_latency() {
        let mut fu = LatencyFu::new("slow", 1, 3);
        fu.dispatch(pkt(2, 3, 4));
        assert!(!fu.can_dispatch());
        for cycle in 1..=3 {
            assert!(fu.peek_output().is_none(), "early output at cycle {cycle}");
            fu.commit();
        }
        let out = fu.ack_output();
        assert_eq!(out.data.unwrap().1.as_u64(), 5);
        assert_eq!(out.data.unwrap().0, 4);
        assert!(fu.is_idle());
    }

    #[test]
    fn holds_output_until_acknowledged() {
        let mut fu = LatencyFu::new("u", 1, 1);
        fu.dispatch(pkt(1, 1, 0));
        fu.commit();
        assert!(fu.peek_output().is_some());
        assert!(!fu.can_dispatch(), "single-occupancy: busy until acked");
        fu.commit();
        fu.commit();
        assert!(fu.peek_output().is_some(), "output persists across cycles");
        fu.ack_output();
        assert!(fu.can_dispatch());
    }

    #[test]
    #[should_panic(expected = "dispatch to busy")]
    fn double_dispatch_panics() {
        let mut fu = LatencyFu::new("u", 1, 2);
        fu.dispatch(pkt(1, 1, 0));
        fu.dispatch(pkt(2, 2, 1));
    }

    #[test]
    fn reset_clears_work() {
        let mut fu = LatencyFu::new("u", 1, 2);
        fu.dispatch(pkt(1, 1, 0));
        fu.commit();
        fu.reset();
        assert!(fu.is_idle());
        assert!(fu.peek_output().is_none());
    }

    #[test]
    fn wake_hint_and_advance_busy_match_commits() {
        let mk = || {
            let mut fu = LatencyFu::new("u", 1, 7);
            fu.dispatch(pkt(3, 4, 2));
            fu
        };
        let (mut skipped, mut stepped) = (mk(), mk());
        let h = skipped.wake_hint().expect("busy unit hints");
        assert_eq!(h, 7);
        skipped.advance_busy(h);
        for _ in 0..h {
            assert!(stepped.peek_output().is_none());
            stepped.commit();
        }
        assert!(skipped.peek_output().is_some());
        assert_eq!(skipped.ack_output().data, stepped.ack_output().data);
        assert!(skipped.wake_hint().is_none(), "idle unit has no hint");
        // A stuck unit hints "forever" and a bulk advance is a no-op.
        let mut stuck = StuckFu::new("s", 9);
        stuck.dispatch(pkt(0, 0, 0));
        assert_eq!(stuck.wake_hint(), Some(u64::MAX));
        stuck.advance_busy(1 << 20);
        assert!(stuck.is_stuck());
    }

    #[test]
    fn flags_reflect_result() {
        let mut fu = LatencyFu::new("u", 1, 1);
        fu.dispatch(pkt(0xffff_ffff, 1, 0));
        fu.commit();
        let out = fu.ack_output();
        let (_, f) = out.flags.unwrap();
        assert!(f.carry() && f.zero());
    }
}
