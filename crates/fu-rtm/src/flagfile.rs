//! The secondary flag register file.
//!
//! "There is a secondary register file holding vectors of flags, which are
//! often useful for controlling the functional units." Same port
//! discipline as [`crate::regfile::RegFile`], but over 8-bit
//! [`fu_isa::Flags`] vectors.

use fu_isa::Flags;
use rtl_sim::{AreaEstimate, Clocked, SatCounter};

/// A file of `n` flag vectors.
#[derive(Debug, Clone)]
pub struct FlagFile {
    regs: Vec<Flags>,
    staged: Vec<(u8, Flags)>,
    reads: SatCounter,
    writes: SatCounter,
}

impl FlagFile {
    /// A zero-initialised flag file.
    pub fn new(n: u16) -> FlagFile {
        assert!(
            (1..=256).contains(&n),
            "flag register count must be in 1..=256"
        );
        FlagFile {
            regs: vec![Flags::NONE; n as usize],
            staged: Vec::with_capacity(4),
            reads: SatCounter::default(),
            writes: SatCounter::default(),
        }
    }

    /// Number of flag registers.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// True when empty (construction enforces at least one).
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// True when `r` names an existing flag register.
    pub fn in_range(&self, r: u8) -> bool {
        (r as usize) < self.regs.len()
    }

    /// Combinational read port.
    pub fn read(&mut self, r: u8) -> Flags {
        self.reads.bump();
        self.regs[r as usize]
    }

    /// Read without counting.
    pub fn peek(&self, r: u8) -> Flags {
        self.regs[r as usize]
    }

    /// Registered write port.
    ///
    /// # Panics
    /// Panics on out-of-range registers or a double write in one cycle.
    pub fn write(&mut self, r: u8, v: Flags) {
        assert!(self.in_range(r), "flag register {r} out of range");
        assert!(
            !self.staged.iter().any(|(sr, _)| *sr == r),
            "double write to f{r} in one cycle"
        );
        self.writes.bump();
        self.staged.push((r, v));
    }

    /// `(reads, writes)` since reset.
    pub fn port_counts(&self) -> (u64, u64) {
        (self.reads.get(), self.writes.get())
    }

    /// Area estimate.
    pub fn area(&self) -> AreaEstimate {
        AreaEstimate::regfile(self.regs.len() as u64, 8, 2, 2)
    }
}

impl Clocked for FlagFile {
    fn commit(&mut self) {
        for (r, v) in self.staged.drain(..) {
            self.regs[r as usize] = v;
        }
    }

    fn reset(&mut self) {
        for r in &mut self.regs {
            *r = Flags::NONE;
        }
        self.staged.clear();
        self.reads = SatCounter::default();
        self.writes = SatCounter::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_write() {
        let mut ff = FlagFile::new(4);
        ff.write(1, Flags::CARRY);
        assert_eq!(ff.read(1), Flags::NONE);
        ff.commit();
        assert_eq!(ff.read(1), Flags::CARRY);
    }

    #[test]
    #[should_panic(expected = "double write")]
    fn double_write_panics() {
        let mut ff = FlagFile::new(4);
        ff.write(1, Flags::CARRY);
        ff.write(1, Flags::ZERO);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut ff = FlagFile::new(4);
        ff.write(4, Flags::NONE);
    }

    #[test]
    fn reset_and_counters() {
        let mut ff = FlagFile::new(2);
        ff.write(0, Flags::ERROR);
        ff.commit();
        let _ = ff.read(0);
        assert_eq!(ff.port_counts(), (1, 1));
        ff.reset();
        assert_eq!(ff.peek(0), Flags::NONE);
        assert_eq!(ff.port_counts(), (0, 0));
    }

    #[test]
    fn single_flag_register_config() {
        let ff = FlagFile::new(1);
        assert!(ff.in_range(0));
        assert!(!ff.in_range(1));
        assert_eq!(ff.len(), 1);
    }
}
