//! The secondary flag register file.
//!
//! "There is a secondary register file holding vectors of flags, which are
//! often useful for controlling the functional units." Same port
//! discipline as [`crate::regfile::RegFile`], but over 8-bit
//! [`fu_isa::Flags`] vectors.

use fu_isa::Flags;
use rtl_sim::{AreaEstimate, Clocked, SatCounter};

/// A file of `n` flag vectors.
#[derive(Debug, Clone)]
pub struct FlagFile {
    regs: Vec<Flags>,
    staged: Vec<(u8, Flags)>,
    reads: SatCounter,
    writes: SatCounter,
    /// Per-entry even-parity bit, maintained at commit time (see
    /// [`crate::regfile::RegFile`] for the detection model).
    parity: Vec<bool>,
    parity_enabled: bool,
    parity_errors: Vec<u8>,
}

impl FlagFile {
    /// A zero-initialised flag file.
    pub fn new(n: u16) -> FlagFile {
        assert!(
            (1..=256).contains(&n),
            "flag register count must be in 1..=256"
        );
        FlagFile {
            regs: vec![Flags::NONE; n as usize],
            staged: Vec::with_capacity(4),
            reads: SatCounter::default(),
            writes: SatCounter::default(),
            parity: vec![false; n as usize],
            parity_enabled: false,
            parity_errors: Vec::new(),
        }
    }

    /// Enable or disable parity protection, recomputing stored parity.
    pub fn set_parity_enabled(&mut self, enabled: bool) {
        self.parity_enabled = enabled;
        for (i, r) in self.regs.iter().enumerate() {
            self.parity[i] = r.0.count_ones() & 1 == 1;
        }
    }

    /// Flip bit `bit % 8` of flag register `r`, leaving parity stale.
    pub fn seu_flip(&mut self, r: u8, bit: u8) {
        self.regs[r as usize].0 ^= 1 << (bit % 8);
    }

    /// Drain flag registers that failed their parity check.
    pub fn take_parity_errors(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.parity_errors)
    }

    /// True when every flag register agrees with its parity bit (no
    /// latent upset); trivially true with parity disabled.
    pub fn parity_clean(&self) -> bool {
        if !self.parity_enabled {
            return true;
        }
        self.regs
            .iter()
            .zip(&self.parity)
            .all(|(r, p)| (r.0.count_ones() & 1 == 1) == *p)
    }

    /// Number of flag registers.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// True when empty (construction enforces at least one).
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// True when `r` names an existing flag register.
    pub fn in_range(&self, r: u8) -> bool {
        (r as usize) < self.regs.len()
    }

    /// Combinational read port.
    pub fn read(&mut self, r: u8) -> Flags {
        self.reads.bump();
        if self.parity_enabled {
            let got = self.regs[r as usize].0.count_ones() & 1 == 1;
            if got != self.parity[r as usize] {
                self.parity_errors.push(r);
                self.parity[r as usize] = got;
            }
        }
        self.regs[r as usize]
    }

    /// Read without counting.
    pub fn peek(&self, r: u8) -> Flags {
        self.regs[r as usize]
    }

    /// Registered write port.
    ///
    /// # Panics
    /// Panics on out-of-range registers or a double write in one cycle.
    pub fn write(&mut self, r: u8, v: Flags) {
        assert!(self.in_range(r), "flag register {r} out of range");
        assert!(
            !self.staged.iter().any(|(sr, _)| *sr == r),
            "double write to f{r} in one cycle"
        );
        self.writes.bump();
        self.staged.push((r, v));
    }

    /// `(reads, writes)` since reset.
    pub fn port_counts(&self) -> (u64, u64) {
        (self.reads.get(), self.writes.get())
    }

    /// Area estimate.
    pub fn area(&self) -> AreaEstimate {
        AreaEstimate::regfile(self.regs.len() as u64, 8, 2, 2)
    }
}

impl Clocked for FlagFile {
    fn commit(&mut self) {
        for (r, v) in self.staged.drain(..) {
            if self.parity_enabled {
                self.parity[r as usize] = v.0.count_ones() & 1 == 1;
            }
            self.regs[r as usize] = v;
        }
    }

    fn reset(&mut self) {
        for r in &mut self.regs {
            *r = Flags::NONE;
        }
        self.staged.clear();
        self.reads = SatCounter::default();
        self.writes = SatCounter::default();
        self.parity.fill(false);
        self.parity_errors.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_write() {
        let mut ff = FlagFile::new(4);
        ff.write(1, Flags::CARRY);
        assert_eq!(ff.read(1), Flags::NONE);
        ff.commit();
        assert_eq!(ff.read(1), Flags::CARRY);
    }

    #[test]
    #[should_panic(expected = "double write")]
    fn double_write_panics() {
        let mut ff = FlagFile::new(4);
        ff.write(1, Flags::CARRY);
        ff.write(1, Flags::ZERO);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut ff = FlagFile::new(4);
        ff.write(4, Flags::NONE);
    }

    #[test]
    fn reset_and_counters() {
        let mut ff = FlagFile::new(2);
        ff.write(0, Flags::ERROR);
        ff.commit();
        let _ = ff.read(0);
        assert_eq!(ff.port_counts(), (1, 1));
        ff.reset();
        assert_eq!(ff.peek(0), Flags::NONE);
        assert_eq!(ff.port_counts(), (0, 0));
    }

    #[test]
    fn parity_catches_flag_flip() {
        let mut ff = FlagFile::new(4);
        ff.set_parity_enabled(true);
        ff.write(2, Flags::CARRY);
        ff.commit();
        let _ = ff.read(2);
        assert!(ff.take_parity_errors().is_empty());
        ff.seu_flip(2, 3);
        let _ = ff.read(2);
        assert_eq!(ff.take_parity_errors(), vec![2]);
        let _ = ff.read(2);
        assert!(ff.take_parity_errors().is_empty(), "scrubbed: reports once");
    }

    #[test]
    fn single_flag_register_config() {
        let ff = FlagFile::new(1);
        assert!(ff.in_range(0));
        assert!(!ff.in_range(1));
        assert_eq!(ff.len(), 1);
    }
}
