//! The functional unit table.
//!
//! Figure 4 of the paper shows a *Functional Unit Table* feeding the
//! decoder ("lookup tables are implicitly synthesised into decoder;
//! external table module definitions alleviate customisation"). It maps
//! the function-code field of a user instruction to the attached unit and
//! records the static per-unit metadata the decoder and dispatcher need
//! (how the aux field is interpreted, display name).

use crate::protocol::{AuxRole, FunctionalUnit};
use rtl_sim::SimError;

/// One table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuEntry {
    /// Function code this unit answers to.
    pub func_code: u8,
    /// Index into the coprocessor's unit vector.
    pub index: usize,
    /// Interpretation of the instruction's aux field.
    pub aux_role: AuxRole,
    /// Unit display name.
    pub name: &'static str,
}

/// The functional unit table (indexed by function code).
#[derive(Debug, Clone, Default)]
pub struct FuTable {
    entries: Vec<FuEntry>,
    /// Units quarantined by the dispatch watchdog, by unit index. A
    /// quarantined unit is never clocked or dispatched to again; the
    /// decoder answers instructions naming it with `FuQuarantined`.
    quarantined: Vec<bool>,
}

impl FuTable {
    /// Build the table from the attached units.
    ///
    /// # Errors
    /// Returns a configuration error when two units claim the same
    /// function code — the VHDL generics would fail elaboration the same
    /// way.
    pub fn build(units: &[Box<dyn FunctionalUnit>]) -> Result<FuTable, SimError> {
        let mut entries: Vec<FuEntry> = Vec::with_capacity(units.len());
        for (index, u) in units.iter().enumerate() {
            let code = u.func_code();
            if let Some(prev) = entries.iter().find(|e| e.func_code == code) {
                return Err(SimError::Config(format!(
                    "function code {code} claimed by both `{}` and `{}`",
                    prev.name,
                    u.name()
                )));
            }
            entries.push(FuEntry {
                func_code: code,
                index,
                aux_role: u.aux_role(),
                name: u.name(),
            });
        }
        let quarantined = vec![false; units.len()];
        Ok(FuTable {
            entries,
            quarantined,
        })
    }

    /// Look up the unit for a function code.
    pub fn lookup(&self, func_code: u8) -> Option<&FuEntry> {
        self.entries.iter().find(|e| e.func_code == func_code)
    }

    /// Number of attached units.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no units are attached (a legal, if useless,
    /// configuration: the RTM still executes management primitives).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries, in unit order.
    pub fn entries(&self) -> &[FuEntry] {
        &self.entries
    }

    /// Mark a unit (by index into the unit vector) as quarantined.
    pub fn quarantine(&mut self, index: usize) {
        self.quarantined[index] = true;
    }

    /// True when the unit at `index` has been quarantined by the watchdog.
    pub fn is_quarantined(&self, index: usize) -> bool {
        self.quarantined.get(index).copied().unwrap_or(false)
    }

    /// Number of quarantined units.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.iter().filter(|&&q| q).count()
    }

    /// Lift all quarantines (used by `reset`).
    pub fn clear_quarantine(&mut self) {
        self.quarantined.fill(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{DispatchPacket, FuOutput};
    use rtl_sim::{AreaEstimate, Clocked, CriticalPath};

    /// A do-nothing unit for table tests.
    struct Dummy(u8, AuxRole);

    impl Clocked for Dummy {
        fn commit(&mut self) {}
        fn reset(&mut self) {}
    }

    impl FunctionalUnit for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn func_code(&self) -> u8 {
            self.0
        }
        fn aux_role(&self) -> AuxRole {
            self.1
        }
        fn can_dispatch(&self) -> bool {
            false
        }
        fn dispatch(&mut self, _pkt: DispatchPacket) {
            unreachable!()
        }
        fn peek_output(&self) -> Option<&FuOutput> {
            None
        }
        fn ack_output(&mut self) -> FuOutput {
            unreachable!()
        }
        fn is_idle(&self) -> bool {
            true
        }
        fn area(&self) -> AreaEstimate {
            AreaEstimate::ZERO
        }
        fn critical_path(&self) -> CriticalPath {
            CriticalPath::of(0)
        }
    }

    fn boxed(code: u8, role: AuxRole) -> Box<dyn FunctionalUnit> {
        Box::new(Dummy(code, role))
    }

    #[test]
    fn lookup_finds_units() {
        let units = vec![boxed(16, AuxRole::FlagSource), boxed(32, AuxRole::Unused)];
        let t = FuTable::build(&units).unwrap();
        assert_eq!(t.len(), 2);
        let e = t.lookup(16).unwrap();
        assert_eq!(e.index, 0);
        assert_eq!(e.aux_role, AuxRole::FlagSource);
        assert_eq!(t.lookup(32).unwrap().index, 1);
        assert!(t.lookup(99).is_none());
    }

    #[test]
    fn duplicate_codes_rejected() {
        let units = vec![boxed(16, AuxRole::Unused), boxed(16, AuxRole::Unused)];
        let err = FuTable::build(&units).unwrap_err();
        assert!(err.to_string().contains("function code 16"));
    }

    #[test]
    fn empty_table_is_legal() {
        let t = FuTable::build(&[]).unwrap();
        assert!(t.is_empty());
        assert!(t.lookup(0).is_none());
    }
}
