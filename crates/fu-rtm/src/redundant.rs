//! Redundant execution: dual/triple modular redundancy over whole
//! functional units, with voting at retire time.
//!
//! The paper leaves the unit's internals to the designer; the framework
//! can therefore replicate any unit that knows how to clone itself
//! ([`FunctionalUnit::clone_unit`]) and run N copies in lock-step. Every
//! dispatch fans out to all replicas and every clock edge advances them
//! together, so in a fault-free run the replicas are bit-identical state
//! machines. At acknowledgement time the wrapper compares the replica
//! outputs:
//!
//! * **DMR** (2 replicas) *detects*: a disagreement latches a
//!   [`SoftEvent::Detected`], which the coprocessor reports as an in-band
//!   `SoftError` so the host can roll back to a checkpoint.
//! * **TMR** (3 replicas) *corrects*: the majority output retires, a
//!   [`SoftEvent::Corrected`] is latched, and execution continues with no
//!   architectural damage.
//!
//! SEU strikes on a wrapped unit's result latch ([`FunctionalUnit::
//! seu_flip_result`]) are latched here and applied to replica 0's output
//! when it is acknowledged — modelling an upset in one physical copy of
//! the datapath.

use crate::protocol::{AuxRole, DispatchPacket, FuOutput, FunctionalUnit, SoftEvent};
use fu_isa::Word;
use rtl_sim::{AreaEstimate, Clocked, CriticalPath};

/// How many copies of each functional unit execute every instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Redundancy {
    /// Single copy, no voting (the baseline machine).
    #[default]
    None,
    /// Two copies; disagreement is detected but not correctable.
    Dmr,
    /// Three copies; a single faulty replica is outvoted.
    Tmr,
}

impl Redundancy {
    /// Number of replicas executing each instruction.
    #[must_use]
    pub fn replicas(self) -> usize {
        match self {
            Redundancy::None => 1,
            Redundancy::Dmr => 2,
            Redundancy::Tmr => 3,
        }
    }
}

/// N replicas of one functional unit, voting at retire.
pub struct RedundantFu {
    replicas: Vec<Box<dyn FunctionalUnit>>,
    mode: Redundancy,
    /// Bit flip pending against replica 0's next acknowledged output.
    pending_flip: Option<u8>,
    /// Vote outcome awaiting collection by the coprocessor.
    event: Option<SoftEvent>,
}

fn flip_output_bit(out: &mut FuOutput, bit: u8) {
    // Route the flip to whichever result field exists: data first, then
    // the second result, then flags. A result latch holds exactly the
    // fields the unit produced.
    if let Some((_, w)) = &mut out.data {
        let bit = u32::from(bit) % w.bits();
        let mut limbs: Vec<u32> = w.limbs().to_vec();
        limbs[(bit / 32) as usize] ^= 1 << (bit % 32);
        *w = Word::from_limbs(&limbs);
    } else if let Some((_, w)) = &mut out.data2 {
        let bit = u32::from(bit) % w.bits();
        let mut limbs: Vec<u32> = w.limbs().to_vec();
        limbs[(bit / 32) as usize] ^= 1 << (bit % 32);
        *w = Word::from_limbs(&limbs);
    } else if let Some((_, f)) = &mut out.flags {
        f.0 ^= 1 << (bit % 8);
    }
}

impl RedundantFu {
    /// Wrap `unit` in `mode.replicas()` lock-step copies.
    ///
    /// Returns `None` when the unit cannot clone itself (see
    /// [`FunctionalUnit::clone_unit`]) — the caller keeps the original,
    /// unprotected.
    pub fn wrap(
        unit: Box<dyn FunctionalUnit>,
        mode: Redundancy,
    ) -> Option<Box<dyn FunctionalUnit>> {
        assert!(
            !matches!(mode, Redundancy::None),
            "wrapping with Redundancy::None is the identity; keep the unit"
        );
        let mut replicas = Vec::with_capacity(mode.replicas());
        for _ in 1..mode.replicas() {
            replicas.push(unit.clone_unit()?);
        }
        replicas.insert(0, unit);
        Some(Box::new(RedundantFu {
            replicas,
            mode,
            pending_flip: None,
            event: None,
        }))
    }
}

impl Clocked for RedundantFu {
    fn commit(&mut self) {
        for r in &mut self.replicas {
            r.commit();
        }
    }

    fn reset(&mut self) {
        for r in &mut self.replicas {
            r.reset();
        }
        self.pending_flip = None;
        self.event = None;
    }
}

impl FunctionalUnit for RedundantFu {
    fn name(&self) -> &'static str {
        self.replicas[0].name()
    }

    fn func_code(&self) -> u8 {
        self.replicas[0].func_code()
    }

    fn aux_role(&self) -> AuxRole {
        self.replicas[0].aux_role()
    }

    fn can_dispatch(&self) -> bool {
        self.replicas[0].can_dispatch()
    }

    fn dispatch(&mut self, pkt: DispatchPacket) {
        for r in &mut self.replicas {
            r.dispatch(pkt.clone());
        }
    }

    fn peek_output(&self) -> Option<&FuOutput> {
        self.replicas[0].peek_output()
    }

    fn ack_output(&mut self) -> FuOutput {
        let mut first = self.replicas[0].ack_output();
        let mut others: Vec<FuOutput> = self.replicas[1..]
            .iter_mut()
            .map(|r| r.ack_output())
            .collect();
        if let Some(bit) = self.pending_flip.take() {
            flip_output_bit(&mut first, bit);
        }
        match self.mode {
            Redundancy::None => first,
            Redundancy::Dmr => {
                if first != others[0] {
                    self.event = Some(SoftEvent::Detected);
                }
                // Detection without correction: the (possibly corrupt)
                // primary output retires; recovery is the host's rollback.
                first
            }
            Redundancy::Tmr => {
                let (b, c) = (others.remove(0), others.remove(0));
                if first == b || first == c {
                    first
                } else if b == c {
                    self.event = Some(SoftEvent::Corrected);
                    b
                } else {
                    // Three-way split: more than one upset in flight.
                    // Detect (uncorrectable), retire the primary.
                    self.event = Some(SoftEvent::Detected);
                    first
                }
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.replicas[0].is_idle()
    }

    fn needs_clock_when_idle(&self) -> bool {
        self.replicas[0].needs_clock_when_idle()
    }

    fn advance_idle(&mut self, cycles: u64) {
        for r in &mut self.replicas {
            r.advance_idle(cycles);
        }
    }

    fn wake_hint(&self) -> Option<u64> {
        self.replicas[0].wake_hint()
    }

    fn advance_busy(&mut self, cycles: u64) {
        for r in &mut self.replicas {
            r.advance_busy(cycles);
        }
    }

    fn variety_writes_data(&self, variety: u8) -> bool {
        self.replicas[0].variety_writes_data(variety)
    }

    fn variety_writes_flags(&self, variety: u8) -> bool {
        self.replicas[0].variety_writes_flags(variety)
    }

    fn variety_reads_flags(&self, variety: u8) -> bool {
        self.replicas[0].variety_reads_flags(variety)
    }

    fn variety_reads_srcs(&self, variety: u8) -> [bool; 3] {
        self.replicas[0].variety_reads_srcs(variety)
    }

    fn clone_unit(&self) -> Option<Box<dyn FunctionalUnit>> {
        let mut replicas = Vec::with_capacity(self.replicas.len());
        for r in &self.replicas {
            replicas.push(r.clone_unit()?);
        }
        Some(Box::new(RedundantFu {
            replicas,
            mode: self.mode,
            // A latched-but-not-yet-voted strike is an SEU artefact, not
            // architectural state: a checkpoint taken from this clone must
            // not re-apply the flip after every rollback (which would make
            // the rollback loop forever on its own checkpoint).
            pending_flip: None,
            event: None,
        }))
    }

    fn seu_flip_result(&mut self, bit: u8) -> bool {
        // A flip lands only when replica 0 holds live work whose result
        // will still be acknowledged; an idle unit has no latch to hit.
        if self.replicas[0].is_idle() {
            return false;
        }
        self.pending_flip = Some(bit);
        true
    }

    fn take_soft_event(&mut self) -> Option<SoftEvent> {
        self.event.take()
    }

    fn area(&self) -> AreaEstimate {
        let mut a = AreaEstimate::ZERO;
        for r in &self.replicas {
            a += r.area();
        }
        // The voter itself: a word-wide comparator per extra replica.
        a
    }

    fn critical_path(&self) -> CriticalPath {
        self.replicas[0].critical_path()
    }
}

/// Wrap every clone-capable unit in the list with the given redundancy.
/// Units that cannot clone themselves are kept unwrapped (unprotected);
/// `Redundancy::None` is the identity.
pub fn protect_units(
    units: Vec<Box<dyn FunctionalUnit>>,
    mode: Redundancy,
) -> Vec<Box<dyn FunctionalUnit>> {
    if matches!(mode, Redundancy::None) {
        return units;
    }
    units
        .into_iter()
        .map(|u| match u.clone_unit().is_some() {
            true => RedundantFu::wrap(u, mode).expect("clone_unit succeeded above"),
            false => u,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::LockTicket;
    use crate::testing::LatencyFu;
    use fu_isa::Flags;

    fn pkt(a: u64, b: u64, dst: u8) -> DispatchPacket {
        DispatchPacket {
            variety: 0,
            ops: [Word::from_u64(a, 32), Word::from_u64(b, 32), Word::zero(32)],
            flags_in: Flags::NONE,
            dst_reg: dst,
            dst2_reg: None,
            dst_flag: 0,
            imm8: 0,
            ticket: LockTicket::new(Some(dst), None, Some(0)),
            seq: 0,
        }
    }

    fn tmr_adder() -> Box<dyn FunctionalUnit> {
        RedundantFu::wrap(Box::new(LatencyFu::new("add", 1, 2)), Redundancy::Tmr)
            .expect("LatencyFu clones")
    }

    #[test]
    fn lockstep_replicas_agree_when_fault_free() {
        let mut fu = tmr_adder();
        fu.dispatch(pkt(5, 7, 3));
        fu.commit();
        fu.commit();
        let out = fu.ack_output();
        assert_eq!(out.data.unwrap().1.as_u64(), 12);
        assert!(fu.take_soft_event().is_none());
        assert!(fu.is_idle());
    }

    #[test]
    fn tmr_outvotes_a_flipped_primary() {
        let mut fu = tmr_adder();
        fu.dispatch(pkt(5, 7, 3));
        assert!(fu.seu_flip_result(0), "busy unit accepts the strike");
        fu.commit();
        fu.commit();
        let out = fu.ack_output();
        assert_eq!(out.data.unwrap().1.as_u64(), 12, "majority wins");
        assert_eq!(fu.take_soft_event(), Some(SoftEvent::Corrected));
        assert!(fu.take_soft_event().is_none(), "event reported once");
    }

    #[test]
    fn dmr_detects_but_does_not_correct() {
        let mut fu = RedundantFu::wrap(Box::new(LatencyFu::new("add", 1, 2)), Redundancy::Dmr)
            .expect("clones");
        fu.dispatch(pkt(5, 7, 3));
        assert!(fu.seu_flip_result(0));
        fu.commit();
        fu.commit();
        let out = fu.ack_output();
        assert_eq!(out.data.unwrap().1.as_u64(), 13, "corrupt primary retires");
        assert_eq!(fu.take_soft_event(), Some(SoftEvent::Detected));
    }

    #[test]
    fn idle_unit_absorbs_result_strikes() {
        let mut fu = tmr_adder();
        assert!(!fu.seu_flip_result(4), "no work in flight, no latch");
        fu.dispatch(pkt(1, 2, 0));
        fu.commit();
        fu.commit();
        assert_eq!(fu.ack_output().data.unwrap().1.as_u64(), 3);
        assert!(fu.take_soft_event().is_none());
    }

    #[test]
    fn protect_units_wraps_cloneable_units() {
        let units: Vec<Box<dyn FunctionalUnit>> = vec![
            Box::new(LatencyFu::new("a", 1, 1)),
            Box::new(LatencyFu::new("b", 2, 4)),
        ];
        let wrapped = protect_units(units, Redundancy::Tmr);
        assert_eq!(wrapped.len(), 2);
        assert_eq!(wrapped[0].func_code(), 1);
        assert_eq!(wrapped[1].func_code(), 2);
        // Triple the register area of a bare unit (voter adds none here).
        let bare = LatencyFu::new("a", 1, 1).area();
        assert_eq!(wrapped[0].area().ffs, 3 * bare.ffs);
    }
}
