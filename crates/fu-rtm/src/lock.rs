//! The lock manager and register usage table.
//!
//! Figure 4 of the paper shows a *Lock Manager* and a *Register Usage
//! Table* beside the register files. Together they are the scoreboard that
//! lets user instructions complete **out of order** while keeping the
//! machine's architectural state consistent:
//!
//! * at dispatch, the destination registers of an instruction are locked
//!   (a [`crate::protocol::LockTicket`]);
//! * an instruction whose *sources or destinations* are locked stalls in
//!   the dispatcher (RAW and WAW hazards; WAR cannot occur because
//!   operands are read at dispatch);
//! * when the write arbiter acknowledges the instruction's completion the
//!   ticket is released.
//!
//! The table also counts in-flight user instructions so FENCE/SYNC can
//! wait for quiescence.

use crate::protocol::LockTicket;
use rtl_sim::SatCounter;

/// Scoreboard over the two register files.
///
/// The lock bits are duplicated (`shadow_*`): the scoreboard is the one
/// piece of device state where a silent upset wedges the whole machine
/// (a phantom lock stalls the dispatcher forever; a dropped lock breaks
/// the release invariants), so it is protected by duplication-with-
/// comparison rather than parity — an SEU strike is detected *and*
/// repaired in place by [`LockManager::seu_strike`].
#[derive(Debug, Clone)]
pub struct LockManager {
    data: Vec<bool>,
    flags: Vec<bool>,
    shadow_data: Vec<bool>,
    shadow_flags: Vec<bool>,
    in_flight: usize,
    acquires: SatCounter,
    stall_checks: SatCounter,
}

impl LockManager {
    /// A lock manager covering `data_regs` main and `flag_regs` flag
    /// registers.
    pub fn new(data_regs: u16, flag_regs: u16) -> LockManager {
        LockManager {
            data: vec![false; data_regs as usize],
            flags: vec![false; flag_regs as usize],
            shadow_data: vec![false; data_regs as usize],
            shadow_flags: vec![false; flag_regs as usize],
            in_flight: 0,
            acquires: SatCounter::default(),
            stall_checks: SatCounter::default(),
        }
    }

    /// An SEU strike on lock bit `idx` of the combined (data ++ flags)
    /// bit space: the primary copy flips, the duplicate comparison fires
    /// immediately, and the primary is restored from the shadow. Returns
    /// the register index struck (for the trace). Always corrected —
    /// that is the point of duplicating the scoreboard.
    pub fn seu_strike(&mut self, idx: usize) -> u8 {
        let n_data = self.data.len();
        let idx = idx % (n_data + self.flags.len());
        if idx < n_data {
            self.data[idx] = !self.data[idx];
            debug_assert_ne!(self.data[idx], self.shadow_data[idx]);
            self.data[idx] = self.shadow_data[idx];
            idx as u8
        } else {
            let f = idx - n_data;
            self.flags[f] = !self.flags[f];
            self.flags[f] = self.shadow_flags[f];
            f as u8
        }
    }

    /// Is a main register locked?
    pub fn data_locked(&self, r: u8) -> bool {
        self.data[r as usize]
    }

    /// Is a flag register locked?
    pub fn flag_locked(&self, r: u8) -> bool {
        self.flags[r as usize]
    }

    /// Would the ticket's registers all be acquirable (i.e. no WAW hazard)?
    pub fn can_acquire(&self, t: &LockTicket) -> bool {
        t.data.iter().flatten().all(|&r| !self.data[r as usize])
            && t.flag.is_none_or(|r| !self.flags[r as usize])
    }

    /// Acquire all registers of the ticket and count one in-flight
    /// instruction.
    ///
    /// # Panics
    /// Panics when any register is already locked (callers check
    /// [`LockManager::can_acquire`] first) or when the ticket names the
    /// same data register twice (an instruction may not target one
    /// register with both results).
    pub fn acquire(&mut self, t: &LockTicket) {
        if let [Some(a), Some(b)] = t.data {
            assert_ne!(a, b, "ticket locks data register r{a} twice");
        }
        for &r in t.data.iter().flatten() {
            assert!(!self.data[r as usize], "data register r{r} already locked");
            self.data[r as usize] = true;
            self.shadow_data[r as usize] = true;
        }
        if let Some(r) = t.flag {
            assert!(!self.flags[r as usize], "flag register f{r} already locked");
            self.flags[r as usize] = true;
            self.shadow_flags[r as usize] = true;
        }
        self.in_flight += 1;
        self.acquires.bump();
    }

    /// Release all registers of the ticket and retire one in-flight
    /// instruction.
    ///
    /// # Panics
    /// Panics when a register was not locked (a double release is a
    /// framework bug).
    pub fn release(&mut self, t: &LockTicket) {
        for &r in t.data.iter().flatten() {
            assert!(
                self.data[r as usize],
                "release of unlocked data register r{r}"
            );
            self.data[r as usize] = false;
            self.shadow_data[r as usize] = false;
        }
        if let Some(r) = t.flag {
            assert!(
                self.flags[r as usize],
                "release of unlocked flag register f{r}"
            );
            self.flags[r as usize] = false;
            self.shadow_flags[r as usize] = false;
        }
        assert!(self.in_flight > 0, "release with no instruction in flight");
        self.in_flight -= 1;
    }

    /// Record that the dispatcher consulted the table and had to stall.
    pub fn note_stall(&mut self) {
        self.stall_checks.bump();
    }

    /// Record `n` fast-forwarded stall cycles at once. Equivalent to `n`
    /// calls of [`LockManager::note_stall`]; used by the event-scheduled
    /// kernel when it skips a span in which the dispatcher head provably
    /// stalls on the same lock every cycle.
    pub fn note_stalls(&mut self, n: u64) {
        self.stall_checks.add(n);
    }

    /// Number of instructions dispatched but not yet completed.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// True when nothing is locked and nothing is in flight (the FENCE
    /// condition).
    pub fn quiescent(&self) -> bool {
        self.in_flight == 0
    }

    /// `(acquires, stalls)` since reset.
    pub fn counters(&self) -> (u64, u64) {
        (self.acquires.get(), self.stall_checks.get())
    }

    /// Return to the power-on state.
    pub fn reset(&mut self) {
        self.data.iter_mut().for_each(|b| *b = false);
        self.flags.iter_mut().for_each(|b| *b = false);
        self.shadow_data.iter_mut().for_each(|b| *b = false);
        self.shadow_flags.iter_mut().for_each(|b| *b = false);
        self.in_flight = 0;
        self.acquires = SatCounter::default();
        self.stall_checks = SatCounter::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(d1: Option<u8>, d2: Option<u8>, f: Option<u8>) -> LockTicket {
        LockTicket::new(d1, d2, f)
    }

    #[test]
    fn acquire_release_cycle() {
        let mut lm = LockManager::new(8, 4);
        let ticket = t(Some(3), None, Some(1));
        assert!(lm.can_acquire(&ticket));
        lm.acquire(&ticket);
        assert!(lm.data_locked(3));
        assert!(lm.flag_locked(1));
        assert!(!lm.quiescent());
        assert_eq!(lm.in_flight(), 1);
        lm.release(&ticket);
        assert!(!lm.data_locked(3));
        assert!(!lm.flag_locked(1));
        assert!(lm.quiescent());
    }

    #[test]
    fn waw_hazard_detected() {
        let mut lm = LockManager::new(8, 4);
        lm.acquire(&t(Some(3), None, None));
        assert!(!lm.can_acquire(&t(Some(3), None, None)), "same data dest");
        assert!(lm.can_acquire(&t(Some(4), None, None)), "different dest ok");
        lm.acquire(&t(None, None, Some(0)));
        assert!(
            !lm.can_acquire(&t(Some(5), None, Some(0))),
            "same flag dest"
        );
    }

    #[test]
    fn second_destination_participates() {
        let mut lm = LockManager::new(8, 4);
        lm.acquire(&t(Some(1), Some(2), None));
        assert!(lm.data_locked(1) && lm.data_locked(2));
        assert!(!lm.can_acquire(&t(Some(2), None, None)));
        lm.release(&t(Some(1), Some(2), None));
        assert!(lm.quiescent());
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn duplicate_destination_rejected() {
        let mut lm = LockManager::new(8, 4);
        lm.acquire(&t(Some(1), Some(1), None));
    }

    #[test]
    #[should_panic(expected = "already locked")]
    fn double_acquire_panics() {
        let mut lm = LockManager::new(8, 4);
        lm.acquire(&t(Some(1), None, None));
        lm.acquire(&t(Some(1), None, None));
    }

    #[test]
    #[should_panic(expected = "release of unlocked")]
    fn double_release_panics() {
        let mut lm = LockManager::new(8, 4);
        lm.acquire(&t(Some(1), None, None));
        lm.release(&t(Some(1), None, None));
        lm.release(&t(Some(1), None, None));
    }

    #[test]
    fn empty_ticket_counts_in_flight() {
        // Even an instruction with no destinations (e.g. a unit used only
        // for its side effects) participates in the FENCE condition.
        let mut lm = LockManager::new(8, 4);
        lm.acquire(&LockTicket::default());
        assert!(!lm.quiescent());
        lm.release(&LockTicket::default());
        assert!(lm.quiescent());
    }

    #[test]
    fn seu_strike_is_always_repaired() {
        let mut lm = LockManager::new(8, 4);
        lm.acquire(&t(Some(3), None, Some(1)));
        // Strike a held lock, a free lock, and a flag lock: each flip is
        // caught by the duplicate comparison and restored, so the
        // scoreboard's observable state never changes.
        for idx in [3usize, 5, 8 + 1, 8 + 2] {
            lm.seu_strike(idx);
        }
        assert!(lm.data_locked(3) && !lm.data_locked(5));
        assert!(lm.flag_locked(1) && !lm.flag_locked(2));
        lm.release(&t(Some(3), None, Some(1)));
        assert!(lm.quiescent());
    }

    #[test]
    fn counters_and_reset() {
        let mut lm = LockManager::new(8, 4);
        lm.acquire(&t(Some(1), None, None));
        lm.note_stall();
        lm.note_stall();
        assert_eq!(lm.counters(), (1, 2));
        lm.reset();
        assert!(lm.quiescent());
        assert!(!lm.data_locked(1));
        assert_eq!(lm.counters(), (0, 0));
    }
}
