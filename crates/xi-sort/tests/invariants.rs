//! χ-sort invariant property tests.
//!
//! The index-interval representation carries strong invariants the paper
//! relies on implicitly; these tests state them explicitly and check them
//! after *arbitrary* operation sequences:
//!
//! 1. the multiset of loaded data values never changes (cells only ever
//!    rewrite their interval registers);
//! 2. every loaded cell's interval stays within `⟨0, m-1⟩`;
//! 3. refinement only ever *shrinks* intervals (monotone information);
//! 4. cells sharing an interval form a contiguous value group: any two
//!    cells with disjoint intervals are correctly ordered relative to
//!    each other (`hi_a < lo_b ⇒ data_a ≤ data_b`);
//! 5. after convergence, reading positions 0..m yields the sorted input.

use proptest::prelude::*;
use xi_sort::{XiConfig, XiOp, XiSortCore};

fn load(core: &mut XiSortCore, values: &[u32]) {
    core.dispatch(XiOp::Reset, 0);
    for &v in values {
        core.dispatch(XiOp::Push, v);
    }
    core.dispatch(XiOp::InitBounds, 0);
    core.run_to_completion(1_000_000);
}

fn op(core: &mut XiSortCore, o: XiOp, operand: u32) -> u32 {
    core.dispatch(o, operand);
    core.run_to_completion(1_000_000_000).unwrap_or(0)
}

/// Check invariants 1–4 against the original input.
fn check_invariants(core: &XiSortCore, original: &[u32]) {
    let m = original.len();
    let cells = &core.cells()[..m];
    // 1. data multiset preserved.
    let mut got: Vec<u32> = cells.iter().map(|c| c.data).collect();
    let mut expect = original.to_vec();
    got.sort_unstable();
    expect.sort_unstable();
    assert_eq!(got, expect, "data multiset changed");
    // 2. intervals in range.
    for (i, c) in cells.iter().enumerate() {
        assert!(
            (c.interval.hi as usize) < m,
            "cell {i} interval {} escapes the array",
            c.interval
        );
    }
    // 4. disjoint intervals imply value ordering.
    for a in cells {
        for b in cells {
            if a.interval.hi < b.interval.lo {
                assert!(
                    a.data <= b.data,
                    "interval order {} < {} contradicts data {} > {}",
                    a.interval,
                    b.interval,
                    a.data,
                    b.data
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn invariants_hold_after_every_refinement_round(
        values in proptest::collection::vec(0u32..10_000, 1..48),
    ) {
        let m = values.len();
        let mut core = XiSortCore::new(XiConfig::new(m as u32));
        load(&mut core, &values);
        check_invariants(&core, &values);
        // 3. monotone shrinking, checked round by round.
        let mut widths: Vec<u32> = core.cells()[..m].iter().map(|c| c.interval.width()).collect();
        let mut budget = 4 * m + 8;
        loop {
            let remaining = op(&mut core, XiOp::SortStep, 0);
            check_invariants(&core, &values);
            let new_widths: Vec<u32> =
                core.cells()[..m].iter().map(|c| c.interval.width()).collect();
            for (i, (old, new)) in widths.iter().zip(&new_widths).enumerate() {
                prop_assert!(new <= old, "cell {i} interval widened: {old} -> {new}");
            }
            widths = new_widths;
            if remaining == 0 {
                break;
            }
            budget -= 1;
            prop_assert!(budget > 0, "sort failed to converge");
        }
        // 5. converged: readout is the sorted input.
        let mut expect = values.clone();
        expect.sort_unstable();
        for (k, &e) in expect.iter().enumerate() {
            prop_assert_eq!(op(&mut core, XiOp::ReadAt, k as u32), e);
        }
    }

    #[test]
    fn selection_preserves_invariants_and_converges(
        values in proptest::collection::vec(0u32..1000, 1..40),
        k_seed: u32,
    ) {
        let m = values.len();
        let k = k_seed % m as u32;
        let mut core = XiSortCore::new(XiConfig::new(m as u32));
        load(&mut core, &values);
        let got = op(&mut core, XiOp::SelectK, k);
        check_invariants(&core, &values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(got, sorted[k as usize]);
    }

    #[test]
    fn interleaved_queries_never_corrupt_state(
        values in proptest::collection::vec(0u32..500, 2..32),
        steps in proptest::collection::vec(0u8..3, 1..20),
    ) {
        let m = values.len();
        let mut core = XiSortCore::new(XiConfig::new(m as u32));
        load(&mut core, &values);
        for s in steps {
            match s {
                0 => {
                    op(&mut core, XiOp::SortStep, 0);
                }
                1 => {
                    let c = op(&mut core, XiOp::CountImprecise, 0);
                    prop_assert!(c as usize <= m);
                }
                _ => {
                    op(&mut core, XiOp::SelectStep, (m as u32) / 2);
                }
            }
            check_invariants(&core, &values);
        }
        // Finishing the sort from any intermediate state must work.
        op(&mut core, XiOp::Sort, 0);
        let mut expect = values.clone();
        expect.sort_unstable();
        for (k, &e) in expect.iter().enumerate() {
            prop_assert_eq!(op(&mut core, XiOp::ReadAt, k as u32), e);
        }
    }
}
