//! The tree network over the SIMD cells (paper Figure 8 / thesis
//! Figure 3.9).
//!
//! "A logarithmic height tree is used to compute the count of SIMD cells
//! whose selection flag register is set and to select a pivot element
//! having an imprecise interval. Both operations are associative and can
//! therefore be realised with logarithmic delay in hardware. … Besides
//! this the tree is able to retrieve a single data value from the array of
//! SIMD cells assuming that only a single selection flag is set."
//!
//! The interior nodes "do not have persistent state, but they do contain
//! simple combinational logic functions that implement parallel scans and
//! folds". [`TreeNetwork`] models the folds (count, leftmost-selected,
//! OR-retrieve) and the scan (prefix count) over a cell slice, and exposes
//! the cost model: combinational trees answer within the issuing cycle;
//! registered trees (ablation A4) add `⌈log2 n⌉` cycles of latency per
//! operation but keep the per-level depth to one node.

use crate::cell::{CellArena, SimdCell};
use rtl_sim::area::log2_ceil;
use rtl_sim::{AreaEstimate, CriticalPath};

/// Result of a leftmost-selected query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Leftmost {
    /// Physical index of the leftmost selected cell.
    pub index: u32,
    /// Its data value.
    pub data: u32,
    /// Its interval lower bound.
    pub lo: u32,
    /// Its interval upper bound.
    pub hi: u32,
}

/// The fold/scan network. The struct itself holds only the configuration
/// (the nodes are stateless); folds take the cell slice.
#[derive(Debug, Clone)]
pub struct TreeNetwork {
    n_leaves: u32,
    registered: bool,
}

impl TreeNetwork {
    /// A tree over `n_leaves` cells; `registered` selects pipelined
    /// levels (extra latency, shorter combinational path — A4).
    pub fn new(n_leaves: u32, registered: bool) -> TreeNetwork {
        assert!(n_leaves >= 1, "tree needs at least one leaf");
        TreeNetwork {
            n_leaves,
            registered,
        }
    }

    /// Number of leaf ports.
    pub fn n_leaves(&self) -> u32 {
        self.n_leaves
    }

    /// Tree height in levels.
    pub fn height(&self) -> u32 {
        log2_ceil(self.n_leaves as u64) as u32
    }

    /// Cycles a fold or scan occupies beyond the issuing microinstruction:
    /// zero when combinational, `height` when the levels are registered.
    pub fn op_latency(&self) -> u32 {
        if self.registered {
            self.height()
        } else {
            0
        }
    }

    /// Fold: number of selected cells.
    pub fn count_selected(&self, cells: &[SimdCell]) -> u32 {
        self.check(cells);
        cells.iter().filter(|c| c.selected).count() as u32
    }

    /// Fold: the leftmost selected cell, if any ("selecting a pivot
    /// element is simply done by selecting the leftmost element of the
    /// sequence whose interval is imprecise" — the controller arranges the
    /// selection flags, the tree picks the leftmost).
    pub fn leftmost_selected(&self, cells: &[SimdCell]) -> Option<Leftmost> {
        self.check(cells);
        cells
            .iter()
            .enumerate()
            .find(|(_, c)| c.selected)
            .map(|(i, c)| Leftmost {
                index: i as u32,
                data: c.data,
                lo: c.interval.lo,
                hi: c.interval.hi,
            })
    }

    /// Fold: retrieve the data value of the single selected cell (an OR
    /// tree in hardware — with several cells selected the result is their
    /// bitwise OR, which is exactly what the schematic's OR network would
    /// produce, so we model that faithfully rather than panic).
    pub fn retrieve(&self, cells: &[SimdCell]) -> u32 {
        self.check(cells);
        cells
            .iter()
            .filter(|c| c.selected)
            .fold(0, |acc, c| acc | c.data)
    }

    /// Scan: for every cell, the number of selected cells strictly to its
    /// left (exclusive prefix count of the selection flags).
    pub fn prefix_count(&self, cells: &[SimdCell]) -> Vec<u32> {
        self.check(cells);
        let mut acc = 0u32;
        cells
            .iter()
            .map(|c| {
                let p = acc;
                acc += c.selected as u32;
                p
            })
            .collect()
    }

    fn check(&self, cells: &[SimdCell]) {
        assert_eq!(
            cells.len() as u32,
            self.n_leaves,
            "cell array size does not match the tree's leaf count"
        );
    }

    /// Fold over the struct-of-arrays arena: selected-cell count. The
    /// live prefix is counted directly and the uniform tail contributes
    /// analytically — identical to [`TreeNetwork::count_selected`] over
    /// the materialised array, without touching the inert cells.
    pub fn count_selected_arena(&self, cells: &CellArena) -> u32 {
        self.check_arena(cells);
        cells.count_selected()
    }

    /// Fold over the arena: leftmost selected cell, if any.
    pub fn leftmost_selected_arena(&self, cells: &CellArena) -> Option<Leftmost> {
        self.check_arena(cells);
        cells.leftmost_selected().map(|(index, c)| Leftmost {
            index,
            data: c.data,
            lo: c.interval.lo,
            hi: c.interval.hi,
        })
    }

    /// Fold over the arena: OR-retrieve of the selected cells' data.
    pub fn retrieve_arena(&self, cells: &CellArena) -> u32 {
        self.check_arena(cells);
        cells.retrieve()
    }

    /// Scan over the arena: the prefix-count network drives the
    /// per-cell scan assignment (`lo ← hi ← base + prefix` for selected
    /// cells). Fused into the arena so a deselected uniform tail is
    /// never walked.
    pub fn scan_assign_arena(&self, cells: &mut CellArena, base: u32) {
        self.check_arena(cells);
        cells.scan_assign(base);
    }

    fn check_arena(&self, cells: &CellArena) {
        assert_eq!(
            cells.len() as u32,
            self.n_leaves,
            "cell array size does not match the tree's leaf count"
        );
    }

    /// Area of the interior nodes: `n-1` nodes, each holding a count
    /// adder, leftmost mux and OR stage (plus level registers when
    /// pipelined).
    pub fn area(&self) -> AreaEstimate {
        let nodes = (self.n_leaves.saturating_sub(1)) as u64;
        let per_node = AreaEstimate::adder(log2_ceil(self.n_leaves.max(2) as u64) + 1)
            + AreaEstimate::mux2(32 + 2 * 16)
            + AreaEstimate {
                les: 32, // OR stage for retrieval
                ffs: if self.registered { 32 + 16 } else { 0 },
                bram_bits: 0,
            };
        AreaEstimate {
            les: per_node.les * nodes,
            ffs: per_node.ffs * nodes,
            bram_bits: 0,
        }
    }

    /// Per-cycle combinational depth of the tree paths.
    pub fn critical_path(&self) -> CriticalPath {
        if self.registered {
            // One node level per cycle.
            CriticalPath::of(3)
        } else {
            CriticalPath::tree(self.n_leaves as u64, 2).then(CriticalPath::of(2))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::IndexInterval;

    fn cells(data: &[u32], selected: &[bool]) -> Vec<SimdCell> {
        data.iter()
            .zip(selected)
            .map(|(&d, &s)| {
                let mut c = SimdCell::new(d, IndexInterval::unknown(data.len() as u32));
                c.selected = s;
                c
            })
            .collect()
    }

    #[test]
    fn count_and_leftmost() {
        let t = TreeNetwork::new(4, false);
        let cs = cells(&[9, 8, 7, 6], &[false, true, false, true]);
        assert_eq!(t.count_selected(&cs), 2);
        let l = t.leftmost_selected(&cs).unwrap();
        assert_eq!((l.index, l.data), (1, 8));
        let none = cells(&[1, 2, 3, 4], &[false; 4]);
        assert!(t.leftmost_selected(&none).is_none());
        assert_eq!(t.count_selected(&none), 0);
    }

    #[test]
    fn retrieve_single_and_or_semantics() {
        let t = TreeNetwork::new(3, false);
        let cs = cells(&[0b001, 0b010, 0b100], &[false, true, false]);
        assert_eq!(t.retrieve(&cs), 0b010);
        let multi = cells(&[0b001, 0b010, 0b100], &[true, false, true]);
        assert_eq!(t.retrieve(&multi), 0b101, "OR tree semantics");
        assert_eq!(t.retrieve(&cells(&[5, 6, 7], &[false; 3])), 0);
    }

    #[test]
    fn prefix_count_is_exclusive() {
        let t = TreeNetwork::new(5, false);
        let cs = cells(&[0; 5], &[true, false, true, true, false]);
        assert_eq!(t.prefix_count(&cs), vec![0, 1, 1, 2, 3]);
    }

    #[test]
    fn latency_model() {
        assert_eq!(TreeNetwork::new(64, false).op_latency(), 0);
        assert_eq!(TreeNetwork::new(64, true).op_latency(), 6);
        assert_eq!(TreeNetwork::new(1, true).op_latency(), 0);
        assert_eq!(TreeNetwork::new(1000, true).op_latency(), 10);
    }

    #[test]
    fn registered_tree_has_flat_depth_and_growing_area() {
        let comb_small = TreeNetwork::new(8, false).critical_path();
        let comb_big = TreeNetwork::new(1024, false).critical_path();
        assert!(comb_big > comb_small, "combinational depth grows with n");
        let reg_small = TreeNetwork::new(8, true).critical_path();
        let reg_big = TreeNetwork::new(1024, true).critical_path();
        assert_eq!(
            reg_small, reg_big,
            "registered depth is per-level, flat in n"
        );
        assert!(
            TreeNetwork::new(1024, false).area().components()
                > TreeNetwork::new(8, false).area().components()
        );
    }

    #[test]
    fn arena_folds_match_slice_folds() {
        use crate::cell::{Broadcast, CellArena, CellCmd};
        let t = TreeNetwork::new(8, false);
        let inert = SimdCell::new(0, IndexInterval::precise(u32::MAX));
        let mut arena = CellArena::new(8, inert);
        for v in [0b100u32, 0b010, 0b001] {
            arena.push_front(SimdCell::new(v, IndexInterval::new(0, 2)));
        }
        arena.apply_all(CellCmd::SelectImprecise, Broadcast::default());
        let slice = arena.cells();
        assert_eq!(t.count_selected_arena(&arena), t.count_selected(&slice));
        assert_eq!(
            t.leftmost_selected_arena(&arena),
            t.leftmost_selected(&slice)
        );
        assert_eq!(t.retrieve_arena(&arena), t.retrieve(&slice));
        // The fused scan matches the prefix-count + per-cell path.
        let mut reference = slice.clone();
        let prefixes = t.prefix_count(&reference);
        for (c, p) in reference.iter_mut().zip(prefixes) {
            c.apply(
                CellCmd::AssignScanPosition,
                Broadcast {
                    data: 0,
                    lo: 3,
                    hi: 0,
                },
                p,
            );
        }
        t.scan_assign_arena(&mut arena, 3);
        assert_eq!(arena.cells(), reference);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn size_mismatch_panics() {
        let t = TreeNetwork::new(4, false);
        t.count_selected(&cells(&[1, 2], &[false, false]));
    }
}
