//! The SIMD cell (paper Figure 9 / thesis Figure 3.12).
//!
//! "A cell corresponds to a word of memory, but it contains a small amount
//! of computational hardware as well as storage. … The cell circuit
//! contains a small amount of storage, enough to hold one data element and
//! its index interval. The cell also contains a simple arithmetic circuit
//! that can perform comparisons and additions."
//!
//! Registers (from the schematic): `reg_data`, `reg_lower_bound`,
//! `reg_upper_bound`, `reg_selected`, `reg_saved_state`. Command inputs:
//! `cmd_load`, `cmd_save`, `cmd_restore`, `cmd_select_all`,
//! `cmd_select_imprecise`, `cmd_match_data_{lt,eq,gt}`,
//! `cmd_match_{lower,upper}_bound[_i]`, `cmd_set_{lower,upper}_bound`,
//! `cmd_set_bounds`, plus broadcast data/bound inputs.
//!
//! Every cell executes the same command in the same cycle — "the entire
//! set of cells comprises an extremely fine grain data parallel
//! architecture". The `_i` bound matches are reconstructed as inequality
//! matches (see the crate docs).

use crate::interval::IndexInterval;

/// One broadcast command, applied to every cell in a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellCmd {
    /// Shift-load: cell 0 takes `data` with interval `bounds`; every other
    /// cell takes its left neighbour's state (handled by the array).
    Load,
    /// `saved_state ← selected`.
    Save,
    /// `selected ← saved_state`.
    Restore,
    /// `selected ← true`.
    SelectAll,
    /// `selected ← (lo ≠ hi)` — the imprecise-interval flag.
    SelectImprecise,
    /// `selected ← selected ∧ (data < broadcast)`.
    MatchDataLt,
    /// `selected ← selected ∧ (data = broadcast)`.
    MatchDataEq,
    /// `selected ← selected ∧ (data > broadcast)`.
    MatchDataGt,
    /// `selected ← selected ∧ (lo = broadcast)`.
    MatchLowerBound,
    /// `selected ← selected ∧ (hi = broadcast)`.
    MatchUpperBound,
    /// `selected ← selected ∧ (lo ≤ broadcast)` (inequality form).
    MatchLowerBoundLe,
    /// `selected ← selected ∧ (hi ≥ broadcast)` (inequality form).
    MatchUpperBoundGe,
    /// Selected cells: `lo ← broadcast_lo`.
    SetLowerBound,
    /// Selected cells: `hi ← broadcast_hi`.
    SetUpperBound,
    /// Selected cells: `lo ← broadcast_lo; hi ← broadcast_hi`.
    SetBounds,
    /// Selected cells: `lo ← hi ← broadcast_lo + prefix`, where `prefix`
    /// is the tree's prefix count of selection flags strictly to the
    /// cell's left (the scan-based duplicate resolution).
    AssignScanPosition,
}

/// Broadcast operands accompanying a [`CellCmd`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Broadcast {
    /// Data comparand (`input_data` in the schematic).
    pub data: u32,
    /// Lower-bound operand (`load_lower_bound`).
    pub lo: u32,
    /// Upper-bound operand (`load_upper_bound`).
    pub hi: u32,
}

/// One SIMD cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimdCell {
    /// The stored data element.
    pub data: u32,
    /// Its index interval.
    pub interval: IndexInterval,
    /// The selection flag.
    pub selected: bool,
    /// The saved selection state.
    pub saved: bool,
}

impl SimdCell {
    /// A cell holding `data` with the given interval, deselected.
    pub fn new(data: u32, interval: IndexInterval) -> SimdCell {
        SimdCell {
            data,
            interval,
            selected: false,
            saved: false,
        }
    }

    /// Apply one command. `prefix` is this cell's scan input (prefix
    /// count of selection flags to its left), used only by
    /// [`CellCmd::AssignScanPosition`]; [`CellCmd::Load`] is handled by
    /// the array's shift chain, not here.
    pub fn apply(&mut self, cmd: CellCmd, b: Broadcast, prefix: u32) {
        match cmd {
            CellCmd::Load => unreachable!("Load is applied by the cell array's shift chain"),
            CellCmd::Save => self.saved = self.selected,
            CellCmd::Restore => self.selected = self.saved,
            CellCmd::SelectAll => self.selected = true,
            CellCmd::SelectImprecise => self.selected = !self.interval.is_precise(),
            CellCmd::MatchDataLt => self.selected &= self.data < b.data,
            CellCmd::MatchDataEq => self.selected &= self.data == b.data,
            CellCmd::MatchDataGt => self.selected &= self.data > b.data,
            CellCmd::MatchLowerBound => self.selected &= self.interval.lo == b.lo,
            CellCmd::MatchUpperBound => self.selected &= self.interval.hi == b.hi,
            CellCmd::MatchLowerBoundLe => self.selected &= self.interval.lo <= b.lo,
            CellCmd::MatchUpperBoundGe => self.selected &= self.interval.hi >= b.hi,
            CellCmd::SetLowerBound => {
                if self.selected {
                    self.interval = IndexInterval::new(b.lo, self.interval.hi);
                }
            }
            CellCmd::SetUpperBound => {
                if self.selected {
                    self.interval = IndexInterval::new(self.interval.lo, b.hi);
                }
            }
            CellCmd::SetBounds => {
                if self.selected {
                    self.interval = IndexInterval::new(b.lo, b.hi);
                }
            }
            CellCmd::AssignScanPosition => {
                if self.selected {
                    self.interval = IndexInterval::precise(b.lo + prefix);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(data: u32, lo: u32, hi: u32) -> SimdCell {
        SimdCell::new(data, IndexInterval::new(lo, hi))
    }

    fn b(data: u32, lo: u32, hi: u32) -> Broadcast {
        Broadcast { data, lo, hi }
    }

    #[test]
    fn select_and_match_chain() {
        let mut c = cell(10, 0, 7);
        c.apply(CellCmd::SelectAll, b(0, 0, 0), 0);
        assert!(c.selected);
        c.apply(CellCmd::MatchDataLt, b(20, 0, 0), 0);
        assert!(c.selected, "10 < 20");
        c.apply(CellCmd::MatchDataGt, b(10, 0, 0), 0);
        assert!(!c.selected, "10 > 10 is false — match chains AND");
        // Once deselected, further matches cannot reselect.
        c.apply(CellCmd::MatchDataEq, b(10, 0, 0), 0);
        assert!(!c.selected);
    }

    #[test]
    fn select_imprecise_reads_interval() {
        let mut c = cell(5, 3, 3);
        c.apply(CellCmd::SelectImprecise, b(0, 0, 0), 0);
        assert!(!c.selected, "precise interval");
        let mut c = cell(5, 3, 4);
        c.apply(CellCmd::SelectImprecise, b(0, 0, 0), 0);
        assert!(c.selected);
    }

    #[test]
    fn bound_matches_equality_and_inequality() {
        let mut c = cell(1, 2, 6);
        c.apply(CellCmd::SelectAll, b(0, 0, 0), 0);
        c.apply(CellCmd::MatchLowerBound, b(0, 2, 0), 0);
        assert!(c.selected);
        c.apply(CellCmd::MatchUpperBound, b(0, 0, 6), 0);
        assert!(c.selected);
        c.apply(CellCmd::MatchLowerBoundLe, b(0, 4, 0), 0);
        assert!(c.selected, "2 <= 4");
        c.apply(CellCmd::MatchUpperBoundGe, b(0, 0, 4), 0);
        assert!(c.selected, "6 >= 4");
        c.apply(CellCmd::MatchUpperBoundGe, b(0, 0, 7), 0);
        assert!(!c.selected, "6 >= 7 fails");
    }

    #[test]
    fn set_bounds_only_affect_selected() {
        let mut c = cell(1, 0, 7);
        c.apply(CellCmd::SetBounds, b(0, 2, 3), 0);
        assert_eq!(
            c.interval,
            IndexInterval::new(0, 7),
            "deselected cell unchanged"
        );
        c.apply(CellCmd::SelectAll, b(0, 0, 0), 0);
        c.apply(CellCmd::SetLowerBound, b(0, 1, 0), 0);
        c.apply(CellCmd::SetUpperBound, b(0, 0, 5), 0);
        assert_eq!(c.interval, IndexInterval::new(1, 5));
        c.apply(CellCmd::SetBounds, b(0, 2, 2), 0);
        assert!(c.interval.is_precise());
    }

    #[test]
    fn save_restore_roundtrip() {
        let mut c = cell(1, 0, 3);
        c.apply(CellCmd::SelectAll, b(0, 0, 0), 0);
        c.apply(CellCmd::Save, b(0, 0, 0), 0);
        c.apply(CellCmd::MatchDataEq, b(99, 0, 0), 0);
        assert!(!c.selected);
        c.apply(CellCmd::Restore, b(0, 0, 0), 0);
        assert!(c.selected, "saved state restored");
    }

    #[test]
    fn scan_position_assignment() {
        let mut c = cell(1, 4, 9);
        c.apply(CellCmd::SelectAll, b(0, 0, 0), 0);
        c.apply(CellCmd::AssignScanPosition, b(0, 4, 0), 2);
        assert_eq!(c.interval, IndexInterval::precise(6), "base 4 + prefix 2");
        // Deselected cells ignore the scan.
        let mut d = cell(1, 4, 9);
        d.apply(CellCmd::AssignScanPosition, b(0, 4, 0), 2);
        assert_eq!(d.interval, IndexInterval::new(4, 9));
    }
}
