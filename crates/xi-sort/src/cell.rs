//! The SIMD cell (paper Figure 9 / thesis Figure 3.12).
//!
//! "A cell corresponds to a word of memory, but it contains a small amount
//! of computational hardware as well as storage. … The cell circuit
//! contains a small amount of storage, enough to hold one data element and
//! its index interval. The cell also contains a simple arithmetic circuit
//! that can perform comparisons and additions."
//!
//! Registers (from the schematic): `reg_data`, `reg_lower_bound`,
//! `reg_upper_bound`, `reg_selected`, `reg_saved_state`. Command inputs:
//! `cmd_load`, `cmd_save`, `cmd_restore`, `cmd_select_all`,
//! `cmd_select_imprecise`, `cmd_match_data_{lt,eq,gt}`,
//! `cmd_match_{lower,upper}_bound[_i]`, `cmd_set_{lower,upper}_bound`,
//! `cmd_set_bounds`, plus broadcast data/bound inputs.
//!
//! Every cell executes the same command in the same cycle — "the entire
//! set of cells comprises an extremely fine grain data parallel
//! architecture". The `_i` bound matches are reconstructed as inequality
//! matches (see the crate docs).

use crate::interval::IndexInterval;

/// One broadcast command, applied to every cell in a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellCmd {
    /// Shift-load: cell 0 takes `data` with interval `bounds`; every other
    /// cell takes its left neighbour's state (handled by the array).
    Load,
    /// `saved_state ← selected`.
    Save,
    /// `selected ← saved_state`.
    Restore,
    /// `selected ← true`.
    SelectAll,
    /// `selected ← (lo ≠ hi)` — the imprecise-interval flag.
    SelectImprecise,
    /// `selected ← selected ∧ (data < broadcast)`.
    MatchDataLt,
    /// `selected ← selected ∧ (data = broadcast)`.
    MatchDataEq,
    /// `selected ← selected ∧ (data > broadcast)`.
    MatchDataGt,
    /// `selected ← selected ∧ (lo = broadcast)`.
    MatchLowerBound,
    /// `selected ← selected ∧ (hi = broadcast)`.
    MatchUpperBound,
    /// `selected ← selected ∧ (lo ≤ broadcast)` (inequality form).
    MatchLowerBoundLe,
    /// `selected ← selected ∧ (hi ≥ broadcast)` (inequality form).
    MatchUpperBoundGe,
    /// Selected cells: `lo ← broadcast_lo`.
    SetLowerBound,
    /// Selected cells: `hi ← broadcast_hi`.
    SetUpperBound,
    /// Selected cells: `lo ← broadcast_lo; hi ← broadcast_hi`.
    SetBounds,
    /// Selected cells: `lo ← hi ← broadcast_lo + prefix`, where `prefix`
    /// is the tree's prefix count of selection flags strictly to the
    /// cell's left (the scan-based duplicate resolution).
    AssignScanPosition,
}

/// Broadcast operands accompanying a [`CellCmd`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Broadcast {
    /// Data comparand (`input_data` in the schematic).
    pub data: u32,
    /// Lower-bound operand (`load_lower_bound`).
    pub lo: u32,
    /// Upper-bound operand (`load_upper_bound`).
    pub hi: u32,
}

/// One SIMD cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimdCell {
    /// The stored data element.
    pub data: u32,
    /// Its index interval.
    pub interval: IndexInterval,
    /// The selection flag.
    pub selected: bool,
    /// The saved selection state.
    pub saved: bool,
}

impl SimdCell {
    /// A cell holding `data` with the given interval, deselected.
    pub fn new(data: u32, interval: IndexInterval) -> SimdCell {
        SimdCell {
            data,
            interval,
            selected: false,
            saved: false,
        }
    }

    /// Apply one command. `prefix` is this cell's scan input (prefix
    /// count of selection flags to its left), used only by
    /// [`CellCmd::AssignScanPosition`]; [`CellCmd::Load`] is handled by
    /// the array's shift chain, not here.
    pub fn apply(&mut self, cmd: CellCmd, b: Broadcast, prefix: u32) {
        match cmd {
            CellCmd::Load => unreachable!("Load is applied by the cell array's shift chain"),
            CellCmd::Save => self.saved = self.selected,
            CellCmd::Restore => self.selected = self.saved,
            CellCmd::SelectAll => self.selected = true,
            CellCmd::SelectImprecise => self.selected = !self.interval.is_precise(),
            CellCmd::MatchDataLt => self.selected &= self.data < b.data,
            CellCmd::MatchDataEq => self.selected &= self.data == b.data,
            CellCmd::MatchDataGt => self.selected &= self.data > b.data,
            CellCmd::MatchLowerBound => self.selected &= self.interval.lo == b.lo,
            CellCmd::MatchUpperBound => self.selected &= self.interval.hi == b.hi,
            CellCmd::MatchLowerBoundLe => self.selected &= self.interval.lo <= b.lo,
            CellCmd::MatchUpperBoundGe => self.selected &= self.interval.hi >= b.hi,
            CellCmd::SetLowerBound => {
                if self.selected {
                    self.interval = IndexInterval::new(b.lo, self.interval.hi);
                }
            }
            CellCmd::SetUpperBound => {
                if self.selected {
                    self.interval = IndexInterval::new(self.interval.lo, b.hi);
                }
            }
            CellCmd::SetBounds => {
                if self.selected {
                    self.interval = IndexInterval::new(b.lo, b.hi);
                }
            }
            CellCmd::AssignScanPosition => {
                if self.selected {
                    self.interval = IndexInterval::precise(b.lo + prefix);
                }
            }
        }
    }
}

/// Struct-of-arrays arena for the whole cell array.
///
/// The hardware broadcasts every command to all `n` cells at once; a
/// faithful software model that loops over `n` `SimdCell` structs pays
/// for that breadth on every microinstruction, even though most cells of
/// a lightly-loaded array are *inert* — they all hold the identical
/// never-pushed state and every broadcast command maps identical states
/// to identical states. `CellArena` exploits exactly that invariant:
///
/// * The **live prefix** (cells that have diverged since the last reset)
///   is stored as parallel `data` / `lo` / `hi` / `selected` / `saved`
///   arrays, so each command touches only the one or two arrays it
///   actually reads and writes — cache-dense, branch-light loops instead
///   of 16-byte struct strides.
/// * The **uniform tail** is represented by a single [`SimdCell`]
///   summary plus its population count. Broadcast commands apply to the
///   summary once — O(1) for the entire tail — and the tree folds add
///   the tail's contribution analytically.
///
/// One wrinkle: the `init_bounds` microprogram scan-numbers *every*
/// cell by physical position, which makes the tail non-uniform — but
/// only in a structured way: tail cell `i` holds the precise interval
/// `⟨i + offset⟩`. The summary therefore tracks the interval either as
/// a shared [`IndexInterval`] or as that *affine* form, and every
/// broadcast command is resolved against the summary in O(1). Commands
/// whose outcome genuinely differs from cell to cell (e.g. a scan
/// assignment over a partially-selected tail, or an equality bound
/// match landing inside an affine tail) materialise the tail first, so
/// the observable state is bit-identical to the cell-by-cell model in
/// every case. [`CellArena::push_front`] models the shift-load chain
/// and grows the live prefix by exactly one — the paper's "shifting the
/// data of all SIMD cells" costs O(live), not O(n), because a shift
/// maps a uniform tail onto itself and an affine tail onto
/// `offset - 1`.
#[derive(Debug, Clone)]
pub struct CellArena {
    n: usize,
    data: Vec<u32>,
    lo: Vec<u32>,
    hi: Vec<u32>,
    selected: Vec<bool>,
    saved: Vec<bool>,
    /// Shared state of every cell at index `>= live()`.
    tail: TailState,
}

/// Interval summary of the uniform tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TailInterval {
    /// Every tail cell holds the same interval.
    Uniform(IndexInterval),
    /// Tail cell at absolute index `i` holds `precise(i + offset)`
    /// (wrapping) — the state `init_bounds`' position-numbering scan
    /// leaves behind.
    Affine { offset: u32 },
}

/// Summary state shared by every cell beyond the live prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TailState {
    data: u32,
    interval: TailInterval,
    selected: bool,
    saved: bool,
}

/// Outcome of resolving one broadcast command against the tail summary.
enum TailPlan {
    /// The whole tail moves to this summary state.
    Set(TailState),
    /// The command's outcome differs between tail cells; expand the
    /// summary into the live prefix first.
    Materialize,
}

impl TailState {
    fn interval_at(&self, i: usize) -> IndexInterval {
        match self.interval {
            TailInterval::Uniform(iv) => iv,
            TailInterval::Affine { offset } => {
                IndexInterval::precise(offset.wrapping_add(i as u32))
            }
        }
    }

    fn cell_at(&self, i: usize) -> SimdCell {
        SimdCell {
            data: self.data,
            interval: self.interval_at(i),
            selected: self.selected,
            saved: self.saved,
        }
    }
}

impl CellArena {
    /// An arena of `n` cells, all holding `inert`.
    pub fn new(n: usize, inert: SimdCell) -> CellArena {
        assert!(n >= 1, "the cell array needs at least one cell");
        CellArena {
            n,
            data: Vec::new(),
            lo: Vec::new(),
            hi: Vec::new(),
            selected: Vec::new(),
            saved: Vec::new(),
            tail: TailState {
                data: inert.data,
                interval: TailInterval::Uniform(inert.interval),
                selected: inert.selected,
                saved: inert.saved,
            },
        }
    }

    /// Total number of cells (live prefix + uniform tail).
    pub fn len(&self) -> usize {
        self.n
    }

    /// An arena is never empty (`n >= 1`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Length of the materialised (diverged) prefix. Everything at or
    /// beyond this index is summarised by one shared cell state.
    pub fn live(&self) -> usize {
        self.data.len()
    }

    /// Reset every cell to `cell` — collapses the arena back to a pure
    /// tail summary in O(1) array work.
    pub fn fill(&mut self, cell: SimdCell) {
        self.data.clear();
        self.lo.clear();
        self.hi.clear();
        self.selected.clear();
        self.saved.clear();
        self.tail = TailState {
            data: cell.data,
            interval: TailInterval::Uniform(cell.interval),
            selected: cell.selected,
            saved: cell.saved,
        };
    }

    /// The state of cell `i`.
    pub fn get(&self, i: usize) -> SimdCell {
        assert!(i < self.n, "cell index {i} out of range (n = {})", self.n);
        if i < self.data.len() {
            SimdCell {
                data: self.data[i],
                interval: IndexInterval::new(self.lo[i], self.hi[i]),
                selected: self.selected[i],
                saved: self.saved[i],
            }
        } else {
            self.tail.cell_at(i)
        }
    }

    /// Materialise the full array (tests, diagnostics, and tree-fold
    /// reference checks).
    pub fn cells(&self) -> Vec<SimdCell> {
        (0..self.n).map(|i| self.get(i)).collect()
    }

    /// The shift-load chain: cell 0 takes `cell`, every other cell takes
    /// its left neighbour. A uniform tail shifts onto itself and an
    /// affine tail's position values all move one index right (offset
    /// decrement), so only the live prefix (plus its new boundary cell)
    /// is physically moved.
    pub fn push_front(&mut self, cell: SimdCell) {
        let m = self.data.len();
        if m == self.n {
            // Full prefix: the rightmost cell's state falls off the end.
            self.data.pop();
            self.lo.pop();
            self.hi.pop();
            self.selected.pop();
            self.saved.pop();
        } else if let TailInterval::Affine { offset } = self.tail.interval {
            self.tail.interval = TailInterval::Affine {
                offset: offset.wrapping_sub(1),
            };
        }
        self.data.insert(0, cell.data);
        self.lo.insert(0, cell.interval.lo);
        self.hi.insert(0, cell.interval.hi);
        self.selected.insert(0, cell.selected);
        self.saved.insert(0, cell.saved);
    }

    fn materialize_tail(&mut self) {
        while self.data.len() < self.n {
            let c = self.tail.cell_at(self.data.len());
            self.data.push(c.data);
            self.lo.push(c.interval.lo);
            self.hi.push(c.interval.hi);
            self.selected.push(c.selected);
            self.saved.push(c.saved);
        }
    }

    /// Broadcast one command to every cell. The live prefix is updated
    /// with per-command struct-of-arrays loops (each touches only the
    /// arrays the command reads/writes); the tail is resolved once
    /// through its summary — materialised only when the command's
    /// outcome genuinely differs between tail cells.
    ///
    /// # Panics
    /// [`CellCmd::Load`] travels through [`CellArena::push_front`] and
    /// [`CellCmd::AssignScanPosition`] through [`CellArena::scan_assign`];
    /// passing either here panics, mirroring [`SimdCell::apply`].
    pub fn apply_all(&mut self, cmd: CellCmd, b: Broadcast) {
        if self.data.len() < self.n {
            match Self::plan_tail(
                self.tail,
                cmd,
                b,
                self.data.len() as u32,
                (self.n - 1) as u32,
            ) {
                TailPlan::Set(t) => self.tail = t,
                TailPlan::Materialize => self.materialize_tail(),
            }
        }
        let m = self.data.len();
        match cmd {
            CellCmd::Load => unreachable!("Load is applied by the shift chain (push_front)"),
            CellCmd::AssignScanPosition => {
                unreachable!("the scan assignment is applied by scan_assign")
            }
            CellCmd::Save => self.saved[..m].copy_from_slice(&self.selected[..m]),
            CellCmd::Restore => self.selected[..m].copy_from_slice(&self.saved[..m]),
            CellCmd::SelectAll => self.selected[..m].fill(true),
            CellCmd::SelectImprecise => {
                for i in 0..m {
                    self.selected[i] = self.lo[i] != self.hi[i];
                }
            }
            CellCmd::MatchDataLt => {
                for i in 0..m {
                    self.selected[i] &= self.data[i] < b.data;
                }
            }
            CellCmd::MatchDataEq => {
                for i in 0..m {
                    self.selected[i] &= self.data[i] == b.data;
                }
            }
            CellCmd::MatchDataGt => {
                for i in 0..m {
                    self.selected[i] &= self.data[i] > b.data;
                }
            }
            CellCmd::MatchLowerBound => {
                for i in 0..m {
                    self.selected[i] &= self.lo[i] == b.lo;
                }
            }
            CellCmd::MatchUpperBound => {
                for i in 0..m {
                    self.selected[i] &= self.hi[i] == b.hi;
                }
            }
            CellCmd::MatchLowerBoundLe => {
                for i in 0..m {
                    self.selected[i] &= self.lo[i] <= b.lo;
                }
            }
            CellCmd::MatchUpperBoundGe => {
                for i in 0..m {
                    self.selected[i] &= self.hi[i] >= b.hi;
                }
            }
            CellCmd::SetLowerBound => {
                for i in 0..m {
                    if self.selected[i] {
                        let iv = IndexInterval::new(b.lo, self.hi[i]);
                        self.lo[i] = iv.lo;
                    }
                }
            }
            CellCmd::SetUpperBound => {
                for i in 0..m {
                    if self.selected[i] {
                        let iv = IndexInterval::new(self.lo[i], b.hi);
                        self.hi[i] = iv.hi;
                    }
                }
            }
            CellCmd::SetBounds => {
                for i in 0..m {
                    if self.selected[i] {
                        let iv = IndexInterval::new(b.lo, b.hi);
                        self.lo[i] = iv.lo;
                        self.hi[i] = iv.hi;
                    }
                }
            }
        }
    }

    /// Resolve one broadcast command against the tail summary for tail
    /// cells `live..=last`. Pure decision function: either the whole
    /// tail moves to one new summary state, or the command's outcome
    /// varies across tail cells and the tail must be materialised.
    fn plan_tail(mut t: TailState, cmd: CellCmd, b: Broadcast, live: u32, last: u32) -> TailPlan {
        // An affine tail's positions stay within u32 in every reachable
        // program (they are array indices); a wrap across the tail span
        // would make the monotone threshold tests below invalid, so
        // fall back to materialising in that (unreachable) case.
        let affine_span = |offset: u32| -> Option<(u32, u32)> {
            let first = offset.checked_add(live)?;
            let end = offset.checked_add(last)?;
            Some((first, end))
        };
        match cmd {
            CellCmd::Load => unreachable!("Load is applied by the shift chain (push_front)"),
            CellCmd::AssignScanPosition => {
                unreachable!("the scan assignment is applied by scan_assign")
            }
            CellCmd::Save => t.saved = t.selected,
            CellCmd::Restore => t.selected = t.saved,
            CellCmd::SelectAll => t.selected = true,
            CellCmd::SelectImprecise => {
                t.selected = match t.interval {
                    TailInterval::Uniform(iv) => !iv.is_precise(),
                    TailInterval::Affine { .. } => false,
                };
            }
            CellCmd::MatchDataLt => t.selected &= t.data < b.data,
            CellCmd::MatchDataEq => t.selected &= t.data == b.data,
            CellCmd::MatchDataGt => t.selected &= t.data > b.data,
            CellCmd::MatchLowerBound | CellCmd::MatchUpperBound => {
                let want = if cmd == CellCmd::MatchLowerBound {
                    b.lo
                } else {
                    b.hi
                };
                if t.selected {
                    match t.interval {
                        TailInterval::Uniform(iv) => {
                            let v = if cmd == CellCmd::MatchLowerBound {
                                iv.lo
                            } else {
                                iv.hi
                            };
                            t.selected = v == want;
                        }
                        TailInterval::Affine { offset } => {
                            // precise(i + offset) == want for exactly one
                            // index; if it lies inside the tail, that one
                            // cell diverges from its neighbours.
                            let idx = want.wrapping_sub(offset);
                            if (live..=last).contains(&idx) {
                                return TailPlan::Materialize;
                            }
                            t.selected = false;
                        }
                    }
                }
            }
            CellCmd::MatchLowerBoundLe => {
                if t.selected {
                    match t.interval {
                        TailInterval::Uniform(iv) => t.selected = iv.lo <= b.lo,
                        TailInterval::Affine { offset } => match affine_span(offset) {
                            Some((_, end)) if end <= b.lo => {}
                            Some((first, _)) if first > b.lo => t.selected = false,
                            _ => return TailPlan::Materialize,
                        },
                    }
                }
            }
            CellCmd::MatchUpperBoundGe => {
                if t.selected {
                    match t.interval {
                        TailInterval::Uniform(iv) => t.selected = iv.hi >= b.hi,
                        TailInterval::Affine { offset } => match affine_span(offset) {
                            Some((first, _)) if first >= b.hi => {}
                            Some((_, end)) if end < b.hi => t.selected = false,
                            _ => return TailPlan::Materialize,
                        },
                    }
                }
            }
            CellCmd::SetLowerBound => {
                if t.selected {
                    match t.interval {
                        TailInterval::Uniform(iv) => {
                            t.interval = TailInterval::Uniform(IndexInterval::new(b.lo, iv.hi));
                        }
                        // lo becomes shared while hi keeps varying:
                        // neither uniform nor affine.
                        TailInterval::Affine { .. } => return TailPlan::Materialize,
                    }
                }
            }
            CellCmd::SetUpperBound => {
                if t.selected {
                    match t.interval {
                        TailInterval::Uniform(iv) => {
                            t.interval = TailInterval::Uniform(IndexInterval::new(iv.lo, b.hi));
                        }
                        TailInterval::Affine { .. } => return TailPlan::Materialize,
                    }
                }
            }
            CellCmd::SetBounds => {
                if t.selected {
                    t.interval = TailInterval::Uniform(IndexInterval::new(b.lo, b.hi));
                }
            }
        }
        TailPlan::Set(t)
    }

    /// The scan assignment: every selected cell's interval becomes the
    /// precise position `base + (selected cells strictly to its left)`.
    /// The tail is all-or-nothing selected; when selected, consecutive
    /// tail cells receive consecutive positions, which is exactly the
    /// affine summary — so even the position-numbering scan of
    /// `init_bounds` keeps the tail O(1). A deselected tail contributes
    /// nothing to any prefix count and is untouched.
    pub fn scan_assign(&mut self, base: u32) {
        if self.tail.selected && self.data.len() < self.n {
            let prefix_live = self.selected.iter().filter(|&&s| s).count() as u32;
            let live = self.data.len() as u32;
            self.tail.interval = TailInterval::Affine {
                offset: base.wrapping_add(prefix_live).wrapping_sub(live),
            };
        }
        let mut prefix = 0u32;
        for i in 0..self.data.len() {
            if self.selected[i] {
                let iv = IndexInterval::precise(base + prefix);
                self.lo[i] = iv.lo;
                self.hi[i] = iv.hi;
                prefix += 1;
            }
        }
    }

    /// Fold: number of selected cells (prefix popcount plus the tail's
    /// analytic contribution).
    pub fn count_selected(&self) -> u32 {
        let prefix = self.selected.iter().filter(|&&s| s).count();
        let tail = if self.tail.selected {
            self.n - self.data.len()
        } else {
            0
        };
        (prefix + tail) as u32
    }

    /// Fold: index of the leftmost selected cell, if any.
    pub fn leftmost_selected(&self) -> Option<(u32, SimdCell)> {
        if let Some(i) = self.selected.iter().position(|&s| s) {
            return Some((i as u32, self.get(i)));
        }
        if self.tail.selected && self.data.len() < self.n {
            return Some((self.data.len() as u32, self.tail.cell_at(self.data.len())));
        }
        None
    }

    /// Fold: bitwise OR of the selected cells' data (the OR-tree).
    pub fn retrieve(&self) -> u32 {
        let mut acc = 0u32;
        for i in 0..self.data.len() {
            if self.selected[i] {
                acc |= self.data[i];
            }
        }
        if self.tail.selected && self.data.len() < self.n {
            acc |= self.tail.data;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(data: u32, lo: u32, hi: u32) -> SimdCell {
        SimdCell::new(data, IndexInterval::new(lo, hi))
    }

    fn b(data: u32, lo: u32, hi: u32) -> Broadcast {
        Broadcast { data, lo, hi }
    }

    #[test]
    fn select_and_match_chain() {
        let mut c = cell(10, 0, 7);
        c.apply(CellCmd::SelectAll, b(0, 0, 0), 0);
        assert!(c.selected);
        c.apply(CellCmd::MatchDataLt, b(20, 0, 0), 0);
        assert!(c.selected, "10 < 20");
        c.apply(CellCmd::MatchDataGt, b(10, 0, 0), 0);
        assert!(!c.selected, "10 > 10 is false — match chains AND");
        // Once deselected, further matches cannot reselect.
        c.apply(CellCmd::MatchDataEq, b(10, 0, 0), 0);
        assert!(!c.selected);
    }

    #[test]
    fn select_imprecise_reads_interval() {
        let mut c = cell(5, 3, 3);
        c.apply(CellCmd::SelectImprecise, b(0, 0, 0), 0);
        assert!(!c.selected, "precise interval");
        let mut c = cell(5, 3, 4);
        c.apply(CellCmd::SelectImprecise, b(0, 0, 0), 0);
        assert!(c.selected);
    }

    #[test]
    fn bound_matches_equality_and_inequality() {
        let mut c = cell(1, 2, 6);
        c.apply(CellCmd::SelectAll, b(0, 0, 0), 0);
        c.apply(CellCmd::MatchLowerBound, b(0, 2, 0), 0);
        assert!(c.selected);
        c.apply(CellCmd::MatchUpperBound, b(0, 0, 6), 0);
        assert!(c.selected);
        c.apply(CellCmd::MatchLowerBoundLe, b(0, 4, 0), 0);
        assert!(c.selected, "2 <= 4");
        c.apply(CellCmd::MatchUpperBoundGe, b(0, 0, 4), 0);
        assert!(c.selected, "6 >= 4");
        c.apply(CellCmd::MatchUpperBoundGe, b(0, 0, 7), 0);
        assert!(!c.selected, "6 >= 7 fails");
    }

    #[test]
    fn set_bounds_only_affect_selected() {
        let mut c = cell(1, 0, 7);
        c.apply(CellCmd::SetBounds, b(0, 2, 3), 0);
        assert_eq!(
            c.interval,
            IndexInterval::new(0, 7),
            "deselected cell unchanged"
        );
        c.apply(CellCmd::SelectAll, b(0, 0, 0), 0);
        c.apply(CellCmd::SetLowerBound, b(0, 1, 0), 0);
        c.apply(CellCmd::SetUpperBound, b(0, 0, 5), 0);
        assert_eq!(c.interval, IndexInterval::new(1, 5));
        c.apply(CellCmd::SetBounds, b(0, 2, 2), 0);
        assert!(c.interval.is_precise());
    }

    #[test]
    fn save_restore_roundtrip() {
        let mut c = cell(1, 0, 3);
        c.apply(CellCmd::SelectAll, b(0, 0, 0), 0);
        c.apply(CellCmd::Save, b(0, 0, 0), 0);
        c.apply(CellCmd::MatchDataEq, b(99, 0, 0), 0);
        assert!(!c.selected);
        c.apply(CellCmd::Restore, b(0, 0, 0), 0);
        assert!(c.selected, "saved state restored");
    }

    /// Cell-by-cell reference model the arena must shadow exactly.
    struct Reference {
        cells: Vec<SimdCell>,
    }

    impl Reference {
        fn push_front(&mut self, cell: SimdCell) {
            for i in (1..self.cells.len()).rev() {
                self.cells[i] = self.cells[i - 1];
            }
            self.cells[0] = cell;
        }

        fn apply_all(&mut self, cmd: CellCmd, b: Broadcast) {
            for c in &mut self.cells {
                c.apply(cmd, b, 0);
            }
        }

        fn scan_assign(&mut self, base: u32) {
            let mut prefix = 0u32;
            for c in &mut self.cells {
                let p = prefix;
                prefix += c.selected as u32;
                c.apply(
                    CellCmd::AssignScanPosition,
                    Broadcast {
                        data: 0,
                        lo: base,
                        hi: 0,
                    },
                    p,
                );
            }
        }
    }

    const BROADCAST_CMDS: [CellCmd; 14] = [
        CellCmd::Save,
        CellCmd::Restore,
        CellCmd::SelectAll,
        CellCmd::SelectImprecise,
        CellCmd::MatchDataLt,
        CellCmd::MatchDataEq,
        CellCmd::MatchDataGt,
        CellCmd::MatchLowerBound,
        CellCmd::MatchUpperBound,
        CellCmd::MatchLowerBoundLe,
        CellCmd::MatchUpperBoundGe,
        CellCmd::SetLowerBound,
        CellCmd::SetUpperBound,
        CellCmd::SetBounds,
    ];

    #[test]
    fn arena_shadows_cell_by_cell_model_over_a_command_tape() {
        // A deterministic pseudo-random tape over every broadcast
        // command, interleaved with shift-loads and scan assignments;
        // after each operation the arena must materialise to exactly
        // the reference array.
        let n = 12usize;
        let inert = SimdCell::new(0, IndexInterval::precise(u32::MAX));
        let mut arena = CellArena::new(n, inert);
        let mut reference = Reference {
            cells: vec![inert; n],
        };
        let mut x = 0x2468_ACE1u32;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            x
        };
        for step in 0..400 {
            let roll = rng() % 20;
            if roll < 4 {
                let c = SimdCell::new(rng() % 32, IndexInterval::precise(u32::MAX));
                arena.push_front(c);
                reference.push_front(c);
            } else if roll < 6 {
                // Keep scan inputs inside an interval every selected
                // cell can legally take (bounds only shrink, so base 0
                // works with the unknown-interval selections below).
                arena.scan_assign(0);
                reference.scan_assign(0);
            } else {
                let cmd = BROADCAST_CMDS[(rng() % 14) as usize];
                // Bound-setting commands need lo <= hi against every
                // selected cell; SelectAll beforehand makes the mix
                // exercise the selected path, and the interval panic
                // guard stays live because b.lo <= b.hi <= u32::MAX.
                let b = match cmd {
                    CellCmd::SetLowerBound => Broadcast {
                        data: 0,
                        lo: 0,
                        hi: 0,
                    },
                    CellCmd::SetUpperBound | CellCmd::SetBounds => Broadcast {
                        data: 0,
                        lo: rng() % 4,
                        hi: u32::MAX,
                    },
                    _ => Broadcast {
                        data: rng() % 32,
                        lo: rng() % 16,
                        hi: u32::MAX - rng() % 16,
                    },
                };
                arena.apply_all(cmd, b);
                reference.apply_all(cmd, b);
            }
            assert_eq!(
                arena.cells(),
                reference.cells,
                "arena diverged at step {step}"
            );
            assert_eq!(
                arena.count_selected(),
                reference.cells.iter().filter(|c| c.selected).count() as u32
            );
            assert_eq!(
                arena.retrieve(),
                reference
                    .cells
                    .iter()
                    .filter(|c| c.selected)
                    .fold(0, |a, c| a | c.data)
            );
            let expect_leftmost = reference
                .cells
                .iter()
                .enumerate()
                .find(|(_, c)| c.selected)
                .map(|(i, c)| (i as u32, *c));
            assert_eq!(arena.leftmost_selected(), expect_leftmost);
        }
    }

    #[test]
    fn scan_assign_keeps_a_selected_tail_affine() {
        let n = 6usize;
        let inert = SimdCell::new(7, IndexInterval::new(0, 5));
        let mut arena = CellArena::new(n, inert);
        arena.push_front(SimdCell::new(1, IndexInterval::new(0, 5)));
        assert_eq!(arena.live(), 1, "one diverged cell");
        arena.apply_all(CellCmd::SelectAll, Broadcast::default());
        assert_eq!(arena.count_selected(), 6, "tail counted analytically");
        // Every selected cell gets a distinct but *consecutive*
        // position — the tail becomes affine, not materialised.
        arena.scan_assign(0);
        assert_eq!(arena.live(), 1, "tail summarised as an affine span");
        let positions: Vec<u32> = arena.cells().iter().map(|c| c.interval.lo).collect();
        assert_eq!(positions, vec![0, 1, 2, 3, 4, 5]);
        assert!(arena.cells().iter().all(|c| c.interval.is_precise()));
        // A later shift moves every affine position one cell right.
        arena.push_front(SimdCell::new(2, IndexInterval::precise(0)));
        let shifted: Vec<u32> = arena.cells().iter().map(|c| c.interval.lo).collect();
        assert_eq!(shifted, vec![0, 0, 1, 2, 3, 4]);
    }

    #[test]
    fn equality_bound_match_into_an_affine_tail_materialises() {
        // `ReadAt k` with k pointing into the never-loaded region
        // selects exactly one tail cell — the only state the summary
        // cannot express.
        let n = 5usize;
        let inert = SimdCell::new(0, IndexInterval::precise(u32::MAX));
        let mut arena = CellArena::new(n, inert);
        arena.push_front(SimdCell::new(9, IndexInterval::precise(0)));
        arena.apply_all(CellCmd::SelectAll, Broadcast::default());
        arena.scan_assign(0);
        assert_eq!(arena.live(), 1);
        arena.apply_all(CellCmd::SelectAll, Broadcast::default());
        arena.apply_all(
            CellCmd::MatchLowerBound,
            Broadcast {
                data: 0,
                lo: 3,
                hi: 0,
            },
        );
        assert_eq!(arena.live(), n, "single-cell selection forced expansion");
        assert_eq!(arena.count_selected(), 1);
        assert_eq!(arena.leftmost_selected().map(|(i, _)| i), Some(3));
    }

    #[test]
    fn inert_tail_stays_summarised_through_broadcasts() {
        let n = 1 << 16;
        let inert = SimdCell::new(0, IndexInterval::precise(u32::MAX));
        let mut arena = CellArena::new(n, inert);
        for v in [5u32, 9, 1] {
            arena.push_front(SimdCell::new(v, IndexInterval::precise(u32::MAX)));
        }
        // A realistic refinement round's worth of broadcasts: none of
        // them may materialise the 65k inert cells.
        arena.apply_all(CellCmd::SelectImprecise, Broadcast::default());
        arena.apply_all(
            CellCmd::MatchDataLt,
            Broadcast {
                data: 9,
                lo: 0,
                hi: 0,
            },
        );
        arena.apply_all(CellCmd::Save, Broadcast::default());
        arena.scan_assign(0);
        assert_eq!(arena.live(), 3, "tail never materialised");
        assert_eq!(arena.get(n - 1), inert, "tail state untouched");
    }

    #[test]
    fn scan_position_assignment() {
        let mut c = cell(1, 4, 9);
        c.apply(CellCmd::SelectAll, b(0, 0, 0), 0);
        c.apply(CellCmd::AssignScanPosition, b(0, 4, 0), 2);
        assert_eq!(c.interval, IndexInterval::precise(6), "base 4 + prefix 2");
        // Deselected cells ignore the scan.
        let mut d = cell(1, 4, 9);
        d.apply(CellCmd::AssignScanPosition, b(0, 4, 0), 2);
        assert_eq!(d.interval, IndexInterval::new(4, 9));
    }
}
