//! Index intervals — the χ-sort array representation.
//!
//! "With the index-interval representation, an approximate index can be
//! specified. An element with index interval ⟨p, q⟩ belongs in the array
//! at some index i such that p ≤ i ≤ q."

/// An index interval `⟨lo, hi⟩` with `lo ≤ hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IndexInterval {
    /// Lower bound (inclusive).
    pub lo: u32,
    /// Upper bound (inclusive).
    pub hi: u32,
}

impl IndexInterval {
    /// The interval `⟨lo, hi⟩`.
    ///
    /// # Panics
    /// Panics when `lo > hi` — an empty interval cannot describe an
    /// element's position.
    pub fn new(lo: u32, hi: u32) -> IndexInterval {
        assert!(lo <= hi, "index interval ⟨{lo}, {hi}⟩ is empty");
        IndexInterval { lo, hi }
    }

    /// The fully-unknown interval for an `n`-element array: `⟨0, n-1⟩`.
    pub fn unknown(n: u32) -> IndexInterval {
        assert!(n > 0, "empty arrays have no intervals");
        IndexInterval { lo: 0, hi: n - 1 }
    }

    /// A precise interval `⟨i, i⟩`.
    pub fn precise(i: u32) -> IndexInterval {
        IndexInterval { lo: i, hi: i }
    }

    /// Is the element's final position known exactly?
    pub fn is_precise(&self) -> bool {
        self.lo == self.hi
    }

    /// Does this interval contain index `i`?
    pub fn contains(&self, i: u32) -> bool {
        self.lo <= i && i <= self.hi
    }

    /// Number of candidate positions.
    pub fn width(&self) -> u32 {
        self.hi - self.lo + 1
    }
}

impl std::fmt::Display for IndexInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨{}, {}⟩", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_predicates() {
        let i = IndexInterval::new(2, 5);
        assert!(!i.is_precise());
        assert!(i.contains(2) && i.contains(5) && i.contains(3));
        assert!(!i.contains(1) && !i.contains(6));
        assert_eq!(i.width(), 4);
        assert_eq!(i.to_string(), "⟨2, 5⟩");
    }

    #[test]
    fn unknown_covers_everything() {
        let u = IndexInterval::unknown(8);
        assert_eq!(u, IndexInterval::new(0, 7));
        assert!((0..8).all(|i| u.contains(i)));
    }

    #[test]
    fn precise_interval() {
        let p = IndexInterval::precise(3);
        assert!(p.is_precise());
        assert_eq!(p.width(), 1);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn inverted_interval_rejected() {
        IndexInterval::new(5, 2);
    }

    #[test]
    #[should_panic(expected = "empty arrays")]
    fn zero_length_array_rejected() {
        IndexInterval::unknown(0);
    }
}
