//! The χ-sort core: cell array + tree + microcode controller.
//!
//! "The controller is implemented as a simple finite state machine having
//! only two states" (thesis Figure 3.10): **Idle**, waiting for a
//! dispatch, and **Run**, executing a microcode program. The controller
//! also owns the shift-load path: "It is able to load a single value
//! received from the functional unit adapter … into the first SIMD cell,
//! at the same time shifting the data of all SIMD cells to the respective
//! following \[cell\]."
//!
//! [`XiSortCore::step`] executes one microinstruction per clock cycle;
//! tree folds and scans additionally wait out the tree's latency when the
//! levels are registered (ablation A4). Cycle counts reported by
//! [`XiSortCore::op_cycles`] are therefore the numbers experiment E6
//! tabulates.

use crate::cell::{Broadcast, CellArena, CellCmd, SimdCell};
use crate::interval::IndexInterval;
use crate::microcode::{self, MicroInstr, OperandSel, Scratch, N_SCRATCH};
use crate::tree::TreeNetwork;
use rtl_sim::{AreaEstimate, CriticalPath, SatCounter};

/// Configuration of one χ-sort core (the VHDL generics of the case
/// study).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XiConfig {
    /// Number of SIMD cells (array capacity).
    pub n_cells: u32,
    /// Pipeline the tree levels (latency for clock rate — A4).
    pub registered_tree: bool,
}

impl XiConfig {
    /// A combinational-tree core with `n_cells` cells.
    pub fn new(n_cells: u32) -> XiConfig {
        assert!(n_cells >= 1, "the cell array needs at least one cell");
        XiConfig {
            n_cells,
            registered_tree: false,
        }
    }

    /// Builder-style registered-tree toggle.
    pub fn with_registered_tree(mut self, on: bool) -> XiConfig {
        self.registered_tree = on;
        self
    }
}

/// Operations the core accepts (the functional unit's variety codes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XiOp {
    /// Clear the array: all cells inert, load counter zero.
    Reset,
    /// Shift-load one value (the operand) into the array.
    Push,
    /// Give the loaded prefix the unknown interval `⟨0, m-1⟩` (operand
    /// ignored; uses the internal load counter).
    InitBounds,
    /// One sort refinement round; result = remaining imprecise cells.
    SortStep,
    /// Sort to completion inside the controller; result = rounds used.
    Sort,
    /// One selection refinement round for index `k` (operand); result =
    /// imprecise cells still containing `k`.
    SelectStep,
    /// Full selection of index `k` (operand); result = the k-th smallest
    /// element.
    SelectK,
    /// Read the element whose final position is `k` (operand); requires
    /// that position to be precise.
    ReadAt,
    /// Count imprecise intervals.
    CountImprecise,
}

impl XiOp {
    /// Variety-code encoding of the operation (for the instruction word).
    pub fn variety(&self) -> u8 {
        match self {
            XiOp::Reset => 0,
            XiOp::Push => 1,
            XiOp::InitBounds => 2,
            XiOp::SortStep => 3,
            XiOp::Sort => 4,
            XiOp::SelectStep => 5,
            XiOp::SelectK => 6,
            XiOp::ReadAt => 7,
            XiOp::CountImprecise => 8,
        }
    }

    /// Decode a variety code.
    pub fn from_variety(v: u8) -> Option<XiOp> {
        Some(match v {
            0 => XiOp::Reset,
            1 => XiOp::Push,
            2 => XiOp::InitBounds,
            3 => XiOp::SortStep,
            4 => XiOp::Sort,
            5 => XiOp::SelectStep,
            6 => XiOp::SelectK,
            7 => XiOp::ReadAt,
            8 => XiOp::CountImprecise,
            _ => return None,
        })
    }

    /// Does the operation return a data result?
    pub fn returns_data(&self) -> bool {
        !matches!(self, XiOp::Reset | XiOp::Push)
    }
}

/// The two-state controller FSM.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CoreState {
    Idle,
    Run {
        pc: usize,
        /// Remaining wait cycles for a registered-tree operation.
        wait: u32,
    },
}

/// The χ-sort core.
#[derive(Debug, Clone)]
pub struct XiSortCore {
    cfg: XiConfig,
    cells: CellArena,
    tree: TreeNetwork,
    scratch: [u32; N_SCRATCH],
    program: Vec<MicroInstr>,
    state: CoreState,
    /// Completed result (taken by the adapter).
    result: Option<u32>,
    /// Elements shift-loaded since the last reset.
    loaded: u32,
    /// Load overflow happened (reported as the error flag).
    overflow: bool,
    /// Cycles spent in `Run` for the last completed operation.
    last_op_cycles: u64,
    op_cycle_counter: u64,
    micro_executed: SatCounter,
    tree_ops: SatCounter,
}

impl XiSortCore {
    /// A core with every cell inert.
    pub fn new(cfg: XiConfig) -> XiSortCore {
        let inert = SimdCell::new(0, IndexInterval::precise(u32::MAX));
        XiSortCore {
            cells: CellArena::new(cfg.n_cells as usize, inert),
            tree: TreeNetwork::new(cfg.n_cells, cfg.registered_tree),
            scratch: [0; N_SCRATCH],
            program: Vec::new(),
            state: CoreState::Idle,
            result: None,
            loaded: 0,
            overflow: false,
            last_op_cycles: 0,
            op_cycle_counter: 0,
            micro_executed: SatCounter::default(),
            tree_ops: SatCounter::default(),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &XiConfig {
        &self.cfg
    }

    /// Elements currently loaded.
    pub fn loaded(&self) -> u32 {
        self.loaded
    }

    /// Did a load overflow the array?
    pub fn overflow(&self) -> bool {
        self.overflow
    }

    /// Is the controller in `Idle` with no unread result?
    pub fn is_idle(&self) -> bool {
        self.state == CoreState::Idle && self.result.is_none()
    }

    /// Is a microcode program currently executing?
    pub fn is_running(&self) -> bool {
        matches!(self.state, CoreState::Run { .. })
    }

    /// Can a new operation be dispatched?
    pub fn can_dispatch(&self) -> bool {
        self.is_idle()
    }

    /// Take the completed result.
    pub fn take_result(&mut self) -> Option<u32> {
        self.result.take()
    }

    /// Cycles the last completed operation spent in `Run` (E6's metric).
    pub fn op_cycles(&self) -> u64 {
        self.last_op_cycles
    }

    /// Remaining registered-tree wait cycles when the controller is
    /// parked in a `Run` wait state; `0` when it will execute a
    /// microinstruction on its next step (or is idle). During a wait
    /// stretch nothing outside the controller can observe a change, so
    /// this bounds how far an event-scheduled wrapper may skip.
    pub fn wait_cycles(&self) -> u32 {
        match self.state {
            CoreState::Run { wait, .. } => wait,
            CoreState::Idle => 0,
        }
    }

    /// `(microinstructions, tree operations)` executed since creation.
    pub fn counters(&self) -> (u64, u64) {
        (self.micro_executed.get(), self.tree_ops.get())
    }

    /// Materialised view of the cells (tests and diagnostics). The
    /// arena keeps inert cells as a uniform-tail summary; this expands
    /// them back into the cell-by-cell picture.
    pub fn cells(&self) -> Vec<SimdCell> {
        self.cells.cells()
    }

    /// The struct-of-arrays arena itself (diagnostics; `live()` reports
    /// how many cells have diverged from the inert tail).
    pub fn arena(&self) -> &CellArena {
        &self.cells
    }

    /// Dispatch an operation with its operand ("Dispatch / I/O operation"
    /// edge of the FSM).
    ///
    /// # Panics
    /// Panics when the controller is busy — the adapter checks
    /// [`XiSortCore::can_dispatch`] first.
    pub fn dispatch(&mut self, op: XiOp, operand: u32) {
        assert!(self.can_dispatch(), "dispatch to busy χ-sort core");
        self.op_cycle_counter = 0;
        match op {
            XiOp::Reset => {
                let inert = SimdCell::new(0, IndexInterval::precise(u32::MAX));
                self.cells.fill(inert);
                self.loaded = 0;
                self.overflow = false;
                self.result = None;
                self.last_op_cycles = 1;
                // Reset is a single-cycle I/O operation, no program run.
                return;
            }
            XiOp::Push => {
                // Shift chain: each cell takes its left neighbour; cell 0
                // takes the input. One cycle, no program. The arena only
                // moves the live prefix — inert cells shift onto
                // themselves.
                if self.loaded == self.cfg.n_cells {
                    self.overflow = true;
                } else {
                    self.cells
                        .push_front(SimdCell::new(operand, IndexInterval::precise(u32::MAX)));
                    self.loaded += 1;
                }
                self.last_op_cycles = 1;
                return;
            }
            XiOp::InitBounds => {
                self.program = microcode::init_bounds();
                self.scratch[Scratch::K as usize] = self.loaded;
            }
            XiOp::SortStep => {
                self.program = microcode::sort_step();
            }
            XiOp::Sort => {
                self.program = microcode::sort_full();
            }
            XiOp::SelectStep => {
                self.program = microcode::select_step();
                self.scratch[Scratch::K as usize] = operand;
            }
            XiOp::SelectK => {
                self.program = microcode::select_full();
                self.scratch[Scratch::K as usize] = operand;
            }
            XiOp::ReadAt => {
                self.program = microcode::read_at();
                self.scratch[Scratch::K as usize] = operand;
            }
            XiOp::CountImprecise => {
                self.program = microcode::count_imprecise();
            }
        }
        if op == XiOp::InitBounds && self.loaded == 0 {
            // Nothing loaded: complete immediately with zero.
            self.result = Some(0);
            self.last_op_cycles = 1;
            return;
        }
        self.state = CoreState::Run { pc: 0, wait: 0 };
    }

    fn broadcast(&self, sel: OperandSel) -> Broadcast {
        let read = |s: Option<Scratch>| s.map_or(0, |r| self.scratch[r as usize]);
        Broadcast {
            data: read(sel.data),
            lo: read(sel.lo),
            hi: read(sel.hi),
        }
    }

    /// Advance one clock cycle ("Run microcode program").
    pub fn step(&mut self) {
        let CoreState::Run { pc, wait } = self.state.clone() else {
            return;
        };
        self.op_cycle_counter += 1;
        if wait > 0 {
            self.state = CoreState::Run { pc, wait: wait - 1 };
            return;
        }
        let instr = self.program[pc];
        self.micro_executed.bump();
        let mut next_pc = pc + 1;
        let mut tree_wait = 0;
        match instr {
            MicroInstr::Cell(cmd, sel) => {
                let b = self.broadcast(sel);
                debug_assert!(cmd != CellCmd::Load, "Load is not a program instruction");
                self.cells.apply_all(cmd, b);
            }
            MicroInstr::TreeCount(dst) => {
                self.scratch[dst as usize] = self.tree.count_selected_arena(&self.cells);
                self.tree_ops.bump();
                tree_wait = self.tree.op_latency();
            }
            MicroInstr::TreeLeftmost => {
                self.tree_ops.bump();
                tree_wait = self.tree.op_latency();
                match self.tree.leftmost_selected_arena(&self.cells) {
                    Some(l) => {
                        self.scratch[Scratch::PivotData as usize] = l.data;
                        self.scratch[Scratch::PivotLo as usize] = l.lo;
                        self.scratch[Scratch::PivotHi as usize] = l.hi;
                        self.scratch[Scratch::Tmp as usize] = 1;
                    }
                    None => self.scratch[Scratch::Tmp as usize] = 0,
                }
            }
            MicroInstr::TreeRetrieve(dst) => {
                self.scratch[dst as usize] = self.tree.retrieve_arena(&self.cells);
                self.tree_ops.bump();
                tree_wait = self.tree.op_latency();
            }
            MicroInstr::TreeScanAssign => {
                self.tree_ops.bump();
                tree_wait = self.tree.op_latency();
                let base = self.scratch[Scratch::Base as usize];
                self.tree.scan_assign_arena(&mut self.cells, base);
            }
            MicroInstr::Add(dst, a, b) => {
                self.scratch[dst as usize] =
                    self.scratch[a as usize].wrapping_add(self.scratch[b as usize]);
            }
            MicroInstr::AddConst(dst, a, k) => {
                self.scratch[dst as usize] = self.scratch[a as usize].wrapping_add(k as u32);
            }
            MicroInstr::Set(dst, v) => {
                self.scratch[dst as usize] = v;
            }
            MicroInstr::JumpIfZero(reg, target) => {
                if self.scratch[reg as usize] == 0 {
                    next_pc = target;
                }
            }
            MicroInstr::Jump(target) => {
                next_pc = target;
            }
            MicroInstr::Halt => {
                self.result = Some(self.scratch[Scratch::Out as usize]);
                self.last_op_cycles = self.op_cycle_counter;
                self.state = CoreState::Idle;
                return;
            }
        }
        self.state = CoreState::Run {
            pc: next_pc,
            wait: tree_wait,
        };
    }

    /// Advance up to `max` cycles, stopping early at `Idle`; returns the
    /// cycles consumed. Wait states of registered-tree operations are
    /// collapsed in bulk — the counters end up exactly as if [`step`]
    /// had been called once per cycle.
    ///
    /// [`step`]: XiSortCore::step
    pub fn step_n(&mut self, max: u64) -> u64 {
        let mut done = 0;
        while done < max {
            let CoreState::Run { pc, wait } = self.state.clone() else {
                break;
            };
            if wait > 0 {
                // A waiting cycle only decrements `wait` and counts a
                // cycle, so a whole stretch can be retired at once.
                let k = (wait as u64).min(max - done);
                self.op_cycle_counter += k;
                self.state = CoreState::Run {
                    pc,
                    wait: wait - k as u32,
                };
                done += k;
            } else {
                self.step();
                done += 1;
            }
        }
        done
    }

    /// Run until the controller returns to `Idle`; returns the result.
    /// Test/driver convenience — each iteration is one clock cycle.
    pub fn run_to_completion(&mut self, max_cycles: u64) -> Option<u32> {
        let mut budget = max_cycles;
        while !matches!(self.state, CoreState::Idle) {
            assert!(budget > 0, "χ-sort program exceeded {max_cycles} cycles");
            budget -= self.step_n(budget);
        }
        self.take_result()
    }

    /// Area: cells (registers + comparator + muxes each) plus the tree
    /// plus the controller (scratch registers, ROM, FSM).
    pub fn area(&self) -> AreaEstimate {
        let per_cell = AreaEstimate::register(32 + 16 + 16 + 2)
            + AreaEstimate::comparator(32)
            + AreaEstimate::comparator(16)
            + AreaEstimate::mux2(32 + 32);
        let cells = AreaEstimate {
            les: per_cell.les * self.cfg.n_cells as u64,
            ffs: per_cell.ffs * self.cfg.n_cells as u64,
            bram_bits: 0,
        };
        let controller = AreaEstimate::register(N_SCRATCH as u64 * 32)
            + AreaEstimate::adder(32)
            + AreaEstimate {
                les: 60,
                ffs: 8,
                bram_bits: 64 * 40, // microcode ROM
            };
        cells + self.tree.area() + controller
    }

    /// Critical path: the tree (dominant for combinational
    /// configurations) against the cell and controller logic.
    pub fn critical_path(&self) -> CriticalPath {
        self.tree
            .critical_path()
            .max(CriticalPath::adder(32).then(CriticalPath::of(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded_core(values: &[u32]) -> XiSortCore {
        let mut core = XiSortCore::new(XiConfig::new(values.len().max(1) as u32));
        load(&mut core, values);
        core
    }

    fn load(core: &mut XiSortCore, values: &[u32]) {
        core.dispatch(XiOp::Reset, 0);
        for &v in values {
            core.dispatch(XiOp::Push, v);
        }
        core.dispatch(XiOp::InitBounds, 0);
        core.run_to_completion(1000);
    }

    fn op(core: &mut XiSortCore, o: XiOp, operand: u32) -> u32 {
        core.dispatch(o, operand);
        core.run_to_completion(5_000_000).unwrap_or(0)
    }

    fn read_all(core: &mut XiSortCore, n: usize) -> Vec<u32> {
        (0..n).map(|k| op(core, XiOp::ReadAt, k as u32)).collect()
    }

    #[test]
    fn push_shifts_into_cell_zero() {
        let mut core = XiSortCore::new(XiConfig::new(4));
        core.dispatch(XiOp::Push, 10);
        core.dispatch(XiOp::Push, 20);
        assert_eq!(core.cells()[0].data, 20);
        assert_eq!(core.cells()[1].data, 10);
        assert_eq!(core.loaded(), 2);
    }

    #[test]
    fn overflow_flagged() {
        let mut core = XiSortCore::new(XiConfig::new(2));
        core.dispatch(XiOp::Push, 1);
        core.dispatch(XiOp::Push, 2);
        assert!(!core.overflow());
        core.dispatch(XiOp::Push, 3);
        assert!(core.overflow());
        assert_eq!(core.loaded(), 2);
    }

    #[test]
    fn init_bounds_marks_loaded_prefix_unknown() {
        let mut core = XiSortCore::new(XiConfig::new(8));
        load(&mut core, &[5, 6, 7]);
        let cells = core.cells();
        for c in &cells[..3] {
            assert_eq!(c.interval, IndexInterval::new(0, 2));
        }
        for c in &cells[3..] {
            assert!(c.interval.is_precise());
            assert!(
                c.interval.lo >= 3,
                "inert cells sit beyond the loaded prefix"
            );
        }
        assert_eq!(op(&mut core, XiOp::CountImprecise, 0), 3);
    }

    #[test]
    fn sort_step_partitions_leftmost_group() {
        let mut core = loaded_core(&[30, 10, 20]);
        // Pivot = leftmost imprecise = cell 0 (data 30, the last-pushed
        // element is 20 at cell 0 — order after shifting: [20, 10, 30]).
        let remaining = op(&mut core, XiOp::SortStep, 0);
        // Pivot 20: L=1 ({10} -> ⟨0,0⟩ precise), E=1 (20 -> ⟨1,1⟩),
        // G=1 ({30} -> ⟨2,2⟩ precise). Everything resolved in one round.
        assert_eq!(remaining, 0);
        assert_eq!(read_all(&mut core, 3), vec![10, 20, 30]);
    }

    #[test]
    fn full_sort_program() {
        let values = [9, 3, 7, 1, 8, 2, 6, 4];
        let mut core = loaded_core(&values);
        let rounds = op(&mut core, XiOp::Sort, 0);
        assert!(rounds >= 1);
        let mut expect = values.to_vec();
        expect.sort_unstable();
        assert_eq!(read_all(&mut core, values.len()), expect);
        assert_eq!(op(&mut core, XiOp::CountImprecise, 0), 0);
    }

    #[test]
    fn duplicates_resolve_via_scan() {
        let values = [5, 5, 5, 1, 5, 9, 5];
        let mut core = loaded_core(&values);
        op(&mut core, XiOp::Sort, 0);
        let mut expect = values.to_vec();
        expect.sort_unstable();
        assert_eq!(read_all(&mut core, values.len()), expect);
    }

    #[test]
    fn all_equal_sorts_in_one_round() {
        let values = [4, 4, 4, 4];
        let mut core = loaded_core(&values);
        let rounds = op(&mut core, XiOp::Sort, 0);
        assert_eq!(
            rounds, 1,
            "a single scan-assign resolves an all-equal array"
        );
        assert_eq!(read_all(&mut core, 4), vec![4, 4, 4, 4]);
    }

    #[test]
    fn select_k_returns_kth_smallest() {
        let values = [42, 17, 99, 3, 65, 23, 8, 71];
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        for (k, &expect) in sorted.iter().enumerate() {
            let mut core = loaded_core(&values);
            assert_eq!(op(&mut core, XiOp::SelectK, k as u32), expect, "k = {k}");
        }
    }

    #[test]
    fn select_step_host_driven_loop() {
        // The host-driven variant: issue SelectStep until the result
        // reports zero imprecise groups containing k, then ReadAt.
        let values = [42u32, 17, 99, 3, 65, 23, 8, 71];
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let k = 5u32;
        let mut core = loaded_core(&values);
        let mut rounds = 0;
        loop {
            let remaining = op(&mut core, XiOp::SelectStep, k);
            rounds += 1;
            assert!(rounds < 100, "selection failed to converge");
            if remaining == 0 {
                break;
            }
        }
        assert_eq!(op(&mut core, XiOp::ReadAt, k), sorted[k as usize]);
    }

    #[test]
    fn selection_leaves_other_groups_unrefined() {
        // Selection refines only groups containing k, so most intervals
        // stay imprecise — the work saving over a full sort.
        let values: Vec<u32> = (0..32).rev().collect();
        let mut core = loaded_core(&values);
        let v = op(&mut core, XiOp::SelectK, 0);
        assert_eq!(v, 0);
        let imprecise = op(&mut core, XiOp::CountImprecise, 0);
        assert!(
            imprecise > 0,
            "a selection must not have sorted the whole array"
        );
    }

    #[test]
    fn step_cycles_independent_of_n_with_combinational_tree() {
        // E6's core claim: a refinement round costs the same number of
        // cycles at n=8 and n=1024.
        let mut small = loaded_core(&(0..8).rev().collect::<Vec<u32>>());
        op(&mut small, XiOp::SortStep, 0);
        let c_small = small.op_cycles();
        let mut big = loaded_core(&(0..1024).rev().collect::<Vec<u32>>());
        op(&mut big, XiOp::SortStep, 0);
        let c_big = big.op_cycles();
        assert_eq!(
            c_small, c_big,
            "fixed cycles per operation, independent of n"
        );
        assert!(c_small < 40, "a step is a couple dozen cycles");
    }

    #[test]
    fn registered_tree_adds_logarithmic_latency() {
        let values: Vec<u32> = (0..64).rev().collect();
        let mut comb = loaded_core(&values);
        op(&mut comb, XiOp::SortStep, 0);
        let mut reg = XiSortCore::new(XiConfig::new(64).with_registered_tree(true));
        load(&mut reg, &values);
        reg.dispatch(XiOp::SortStep, 0);
        reg.run_to_completion(100_000);
        assert!(
            reg.op_cycles() > comb.op_cycles(),
            "registered tree pays latency per fold"
        );
        // But its combinational depth is flat in n.
        assert!(reg.critical_path() < comb.critical_path());
    }

    #[test]
    fn sort_rounds_scale_linearly() {
        // One group is refined per round, so a random permutation needs
        // Θ(n) rounds (each of O(1) cycles) — the shape behind E7.
        let mk = |n: u32| {
            let mut vals: Vec<u32> = (0..n).collect();
            // Deterministic shuffle.
            for i in 0..n as usize {
                let j = (i * 7 + 3) % n as usize;
                vals.swap(i, j);
            }
            let mut core = loaded_core(&vals);
            op(&mut core, XiOp::Sort, 0) as f64
        };
        let r64 = mk(64);
        let r256 = mk(256);
        let ratio = r256 / r64;
        assert!(
            (2.0..8.0).contains(&ratio),
            "rounds should grow ~linearly: {r64} -> {r256}"
        );
    }

    #[test]
    fn read_at_requires_idle_machine_state() {
        let mut core = loaded_core(&[2, 1]);
        op(&mut core, XiOp::Sort, 0);
        assert_eq!(op(&mut core, XiOp::ReadAt, 0), 1);
        assert_eq!(op(&mut core, XiOp::ReadAt, 1), 2);
    }

    #[test]
    #[should_panic(expected = "busy")]
    fn dispatch_while_running_panics() {
        let mut core = loaded_core(&[3, 1, 2]);
        core.dispatch(XiOp::Sort, 0);
        core.dispatch(XiOp::SortStep, 0);
    }

    #[test]
    fn arena_tail_stays_summarised_through_a_full_sort() {
        // The scheduling claim behind the SoA arena: with a lightly
        // loaded array, the controller's per-microinstruction work is
        // bounded by the live prefix, not the configured capacity — the
        // 16k inert cells are never materialised.
        let mut core = XiSortCore::new(XiConfig::new(1 << 14));
        load(&mut core, &[9, 3, 7, 1]);
        op(&mut core, XiOp::Sort, 0);
        assert_eq!(read_all(&mut core, 4), vec![1, 3, 7, 9]);
        assert!(
            core.arena().live() <= 4,
            "inert tail was materialised: live = {}",
            core.arena().live()
        );
    }

    #[test]
    fn area_scales_with_cells() {
        let small = XiSortCore::new(XiConfig::new(8)).area();
        let big = XiSortCore::new(XiConfig::new(256)).area();
        assert!(big.components() > 10 * small.components());
    }
}
