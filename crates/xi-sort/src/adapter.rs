//! The functional-unit adapter (thesis Figure 3.13/3.14).
//!
//! "The functional unit connected to the coprocessor components is
//! realised using a functional unit adapter component. This adapter module
//! connects the actual ξ-Sort core to the dispatcher and the write arbiter
//! … The idea behind the design is to separate the ξ-Sort controller logic
//! from the interface logic required by the framework. … the adapter
//! buffers the output of the ξ-Sort core since it may be required to wait
//! for the write arbiter to acknowledge output data written to the
//! register file. … Currently, the adapter uses 32-bit data records and
//! transcodes data as needed."
//!
//! [`XiSortAdapter`] implements [`fu_rtm::FunctionalUnit`]: the variety
//! code selects the [`XiOp`], `src1` carries the operand (data word or
//! index k), and the result — when the operation produces one — lands in
//! the destination register, transcoded from the core's 32-bit records to
//! the framework's word size. Load overflow raises the error flag
//! ("if this flag is set, the contents of the destination registers are
//! undefined by specification").

use crate::controller::{XiConfig, XiOp, XiSortCore};
use fu_isa::{funit_codes, Flags, Word};
use fu_rtm::protocol::{AuxRole, DispatchPacket, FuOutput, FunctionalUnit};
use rtl_sim::{AreaEstimate, Clocked, CriticalPath};

/// Adapter FSM states (Figure 3.14 simplified to its observable shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AdapterState {
    /// Ready for a dispatch.
    Idle,
    /// Core running the operation.
    Busy,
    /// Result buffered, waiting for the write arbiter.
    Output,
}

/// The χ-sort functional unit.
#[derive(Debug, Clone)]
pub struct XiSortAdapter {
    core: XiSortCore,
    word_bits: u32,
    state: AdapterState,
    pending: Option<DispatchPacket>,
    out: Option<FuOutput>,
}

impl XiSortAdapter {
    /// Wrap a core for a framework with `word_bits`-wide registers.
    pub fn new(cfg: XiConfig, word_bits: u32) -> XiSortAdapter {
        XiSortAdapter {
            core: XiSortCore::new(cfg),
            word_bits,
            state: AdapterState::Idle,
            pending: None,
            out: None,
        }
    }

    /// The wrapped core (diagnostics, experiment measurements).
    pub fn core(&self) -> &XiSortCore {
        &self.core
    }

    fn finish(&mut self) {
        let pkt = self.pending.take().expect("packet held while busy");
        let op = XiOp::from_variety(pkt.variety).expect("validated at dispatch");
        let result = self.core.take_result();
        let error = self.core.overflow();
        let data = if op.returns_data() {
            // Transcode the core's 32-bit record to the register word.
            result.map(|v| (pkt.dst_reg, Word::from_u64(v as u64, self.word_bits)))
        } else {
            None
        };
        let mut flags = Flags::from_parts(false, result == Some(0), false, false);
        flags.set(Flags::ERROR, error);
        self.out = Some(FuOutput {
            data,
            data2: None,
            flags: Some((pkt.dst_flag, flags)),
            ticket: pkt.ticket,
            seq: pkt.seq,
        });
        self.state = AdapterState::Output;
    }
}

impl Clocked for XiSortAdapter {
    fn commit(&mut self) {
        if self.state == AdapterState::Busy {
            if self.core.is_running() {
                self.core.step();
            }
            if !self.core.is_running() {
                // The controller returned to Idle (Reset/Push complete in
                // the dispatch cycle itself); buffer the result for the
                // write arbiter.
                self.finish();
            }
        }
    }

    fn reset(&mut self) {
        self.core = XiSortCore::new(*self.core.config());
        self.state = AdapterState::Idle;
        self.pending = None;
        self.out = None;
    }
}

impl FunctionalUnit for XiSortAdapter {
    fn name(&self) -> &'static str {
        "xi-sort"
    }

    fn func_code(&self) -> u8 {
        funit_codes::XI_SORT
    }

    fn aux_role(&self) -> AuxRole {
        AuxRole::Unused
    }

    fn can_dispatch(&self) -> bool {
        self.state == AdapterState::Idle
    }

    fn dispatch(&mut self, pkt: DispatchPacket) {
        assert!(self.can_dispatch(), "dispatch to busy χ-sort adapter");
        let Some(op) = XiOp::from_variety(pkt.variety) else {
            // Unknown variety: complete immediately with the error flag.
            let mut flags = Flags::NONE;
            flags.set(Flags::ERROR, true);
            self.out = Some(FuOutput {
                data: None,
                data2: None,
                flags: Some((pkt.dst_flag, flags)),
                ticket: pkt.ticket,
                seq: pkt.seq,
            });
            self.state = AdapterState::Output;
            return;
        };
        // Transcode the operand down to the core's 32-bit records.
        let operand = pkt.ops[0].resize(32).as_u64() as u32;
        self.core.dispatch(op, operand);
        self.pending = Some(pkt);
        self.state = AdapterState::Busy;
    }

    fn peek_output(&self) -> Option<&FuOutput> {
        self.out.as_ref()
    }

    fn ack_output(&mut self) -> FuOutput {
        let out = self.out.take().expect("ack with no pending output");
        self.state = AdapterState::Idle;
        out
    }

    fn is_idle(&self) -> bool {
        self.state == AdapterState::Idle && self.out.is_none()
    }

    fn wake_hint(&self) -> Option<u64> {
        // While the core is parked in a registered-tree wait stretch the
        // adapter's interface cannot change for that many cycles; at an
        // instruction boundary the very next commit may complete the
        // program (Halt → finish), so the bound degrades to one cycle.
        if self.state != AdapterState::Busy {
            return None;
        }
        Some(u64::from(self.core.wait_cycles().max(1)))
    }

    fn advance_busy(&mut self, cycles: u64) {
        // A hint larger than one cycle is always a wait stretch, which
        // the controller collapses in bulk with identical counters; any
        // remainder (the instruction-boundary case) steps normally.
        let bulk = if self.state == AdapterState::Busy && self.core.is_running() {
            cycles.min(u64::from(self.core.wait_cycles()))
        } else {
            0
        };
        if bulk > 0 {
            self.core.step_n(bulk);
        }
        for _ in bulk..cycles {
            self.commit();
        }
    }

    fn variety_writes_data(&self, variety: u8) -> bool {
        XiOp::from_variety(variety).is_some_and(|op| op.returns_data())
    }

    fn variety_reads_srcs(&self, _variety: u8) -> [bool; 3] {
        [true, false, false]
    }

    fn clone_unit(&self) -> Option<Box<dyn FunctionalUnit>> {
        Some(Box::new(self.clone()))
    }

    fn area(&self) -> AreaEstimate {
        self.core.area()
            + AreaEstimate::register(self.word_bits as u64 + 8 + 2)
            + AreaEstimate {
                les: 24,
                ffs: 2,
                bram_bits: 0,
            }
    }

    fn critical_path(&self) -> CriticalPath {
        self.core.critical_path().max(CriticalPath::of(3))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fu_rtm::protocol::LockTicket;

    fn pkt(op: XiOp, operand: u32) -> DispatchPacket {
        DispatchPacket {
            variety: op.variety(),
            ops: [
                Word::from_u64(operand as u64, 32),
                Word::zero(32),
                Word::zero(32),
            ],
            flags_in: Flags::NONE,
            dst_reg: 1,
            dst2_reg: None,
            dst_flag: 0,
            imm8: 0,
            ticket: LockTicket::new(Some(1), None, Some(0)),
            seq: 0,
        }
    }

    fn run_op(fu: &mut XiSortAdapter, op: XiOp, operand: u32) -> (Option<u64>, Flags) {
        assert!(fu.can_dispatch(), "adapter busy before {op:?}");
        fu.dispatch(pkt(op, operand));
        let mut budget = 5_000_000;
        while fu.peek_output().is_none() {
            fu.commit();
            budget -= 1;
            assert!(budget > 0, "{op:?} never completed");
        }
        let out = fu.ack_output();
        (out.data.map(|(_, v)| v.as_u64()), out.flags.unwrap().1)
    }

    #[test]
    fn sort_through_the_adapter() {
        let mut fu = XiSortAdapter::new(XiConfig::new(8), 32);
        run_op(&mut fu, XiOp::Reset, 0);
        for v in [50u32, 20, 40, 10, 30] {
            run_op(&mut fu, XiOp::Push, v);
        }
        run_op(&mut fu, XiOp::InitBounds, 0);
        run_op(&mut fu, XiOp::Sort, 0);
        let sorted: Vec<u64> = (0..5)
            .map(|k| run_op(&mut fu, XiOp::ReadAt, k).0.unwrap())
            .collect();
        assert_eq!(sorted, vec![10, 20, 30, 40, 50]);
        assert!(fu.is_idle());
    }

    #[test]
    fn selection_through_the_adapter() {
        let mut fu = XiSortAdapter::new(XiConfig::new(8), 64);
        run_op(&mut fu, XiOp::Reset, 0);
        for v in [9u32, 1, 8, 2, 7, 3] {
            run_op(&mut fu, XiOp::Push, v);
        }
        run_op(&mut fu, XiOp::InitBounds, 0);
        let (median, flags) = run_op(&mut fu, XiOp::SelectK, 2);
        assert_eq!(median, Some(3));
        assert!(!flags.error());
    }

    #[test]
    fn overflow_raises_error_flag() {
        let mut fu = XiSortAdapter::new(XiConfig::new(2), 32);
        run_op(&mut fu, XiOp::Push, 1);
        run_op(&mut fu, XiOp::Push, 2);
        let (_, f) = run_op(&mut fu, XiOp::Push, 3);
        assert!(f.error(), "third push into a 2-cell array must error");
    }

    #[test]
    fn unknown_variety_errors_immediately() {
        let mut fu = XiSortAdapter::new(XiConfig::new(2), 32);
        let mut p = pkt(XiOp::Reset, 0);
        p.variety = 0x7f;
        fu.dispatch(p);
        let out = fu.ack_output();
        assert!(out.flags.unwrap().1.error());
        assert!(out.data.is_none());
    }

    #[test]
    fn busy_while_program_runs() {
        let mut fu = XiSortAdapter::new(XiConfig::new(8), 32);
        run_op(&mut fu, XiOp::Reset, 0);
        for v in [3u32, 1, 2] {
            run_op(&mut fu, XiOp::Push, v);
        }
        run_op(&mut fu, XiOp::InitBounds, 0);
        fu.dispatch(pkt(XiOp::Sort, 0));
        assert!(!fu.can_dispatch());
        assert!(!fu.is_idle());
        fu.commit();
        assert!(!fu.can_dispatch(), "still busy after one cycle");
    }

    #[test]
    fn push_reports_no_data_write() {
        let fu = XiSortAdapter::new(XiConfig::new(2), 32);
        assert!(!fu.variety_writes_data(XiOp::Push.variety()));
        assert!(!fu.variety_writes_data(XiOp::Reset.variety()));
        assert!(fu.variety_writes_data(XiOp::Sort.variety()));
        assert!(fu.variety_writes_data(XiOp::ReadAt.variety()));
    }

    #[test]
    fn wake_hint_and_advance_busy_match_commits() {
        // A registered tree parks the controller in multi-cycle wait
        // states; hint-driven bulk advancing must complete on the same
        // cycle with the same result and operation cycle count.
        let mk = || {
            let mut fu = XiSortAdapter::new(XiConfig::new(16).with_registered_tree(true), 32);
            run_op(&mut fu, XiOp::Reset, 0);
            for v in [5u32, 9, 1, 7] {
                run_op(&mut fu, XiOp::Push, v);
            }
            run_op(&mut fu, XiOp::InitBounds, 0);
            fu.dispatch(pkt(XiOp::Sort, 0));
            fu
        };
        let (mut skipped, mut stepped) = (mk(), mk());
        let mut saw_long = false;
        let mut guard = 0;
        while skipped.peek_output().is_none() {
            let h = skipped.wake_hint().expect("busy adapter hints");
            saw_long |= h > 1;
            skipped.advance_busy(h);
            for _ in 0..h {
                assert!(stepped.peek_output().is_none(), "no early completion");
                stepped.commit();
            }
            guard += 1;
            assert!(guard < 10_000, "sort never completed");
        }
        assert!(stepped.peek_output().is_some(), "same completion cycle");
        assert!(saw_long, "registered tree produced multi-cycle hints");
        assert_eq!(skipped.ack_output(), stepped.ack_output());
        assert_eq!(skipped.core().op_cycles(), stepped.core().op_cycles());
    }

    #[test]
    fn transcodes_wide_words() {
        // A 128-bit framework word is truncated to the 32-bit record on
        // the way in and zero-extended on the way out.
        let mut fu = XiSortAdapter::new(XiConfig::new(4), 128);
        run_op(&mut fu, XiOp::Reset, 0);
        run_op(&mut fu, XiOp::Push, 7);
        run_op(&mut fu, XiOp::Push, 5);
        run_op(&mut fu, XiOp::InitBounds, 0);
        run_op(&mut fu, XiOp::Sort, 0);
        let (v, _) = run_op(&mut fu, XiOp::ReadAt, 1);
        assert_eq!(v, Some(7));
    }
}
