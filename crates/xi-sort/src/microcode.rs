//! The microcode of the χ-sort controller.
//!
//! "The SIMD processor unit consists of a controller unit, a ROM storing
//! microcode programs controlling the SIMD cells and an array of the
//! actual SIMD cells." High-level operations (partition step, full sort,
//! selection, readout) are microcode programs over three primitive
//! classes:
//!
//! * broadcast **cell commands** with operands routed from the
//!   controller's scratch registers,
//! * **tree operations** (folds and the scan), and
//! * **scratch arithmetic and branches** in the controller itself ("a
//!   simple arithmetic circuit that can perform comparisons and
//!   additions").
//!
//! Each microinstruction costs one clock cycle; a tree operation
//! additionally waits out the tree's pipeline latency when the levels are
//! registered. This module defines the instruction set and the program
//! "ROM" builders; execution lives in [`crate::controller`].

use crate::cell::CellCmd;

/// Scratch registers of the controller datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Scratch {
    /// Count of cells below the pivot.
    L = 0,
    /// Count of cells equal to the pivot.
    E = 1,
    /// Base index for the current group.
    Base = 2,
    /// Pivot data value.
    PivotData = 3,
    /// Pivot interval lower bound.
    PivotLo = 4,
    /// Pivot interval upper bound.
    PivotHi = 5,
    /// Result register (returned to the framework).
    Out = 6,
    /// The operand delivered with the dispatch (data word or index k).
    K = 7,
    /// General temporary.
    Tmp = 8,
}

/// Number of scratch registers.
pub const N_SCRATCH: usize = 9;

/// Broadcast-operand routing for a cell command: which scratch register
/// drives each broadcast input (`None` = drive zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OperandSel {
    /// Drives the data comparand.
    pub data: Option<Scratch>,
    /// Drives the lower-bound operand.
    pub lo: Option<Scratch>,
    /// Drives the upper-bound operand.
    pub hi: Option<Scratch>,
}

/// One microinstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroInstr {
    /// Broadcast a cell command to the whole array.
    Cell(CellCmd, OperandSel),
    /// Tree fold: `dst ← count(selected)`.
    TreeCount(Scratch),
    /// Tree fold: load the leftmost selected cell into
    /// `PivotData/PivotLo/PivotHi`; `Tmp ← 1` if one existed, else 0.
    TreeLeftmost,
    /// Tree fold: `dst ← OR of selected data`.
    TreeRetrieve(Scratch),
    /// Tree scan + cell command: selected cells take
    /// `lo = hi = Base + prefix_count`.
    TreeScanAssign,
    /// `dst ← a + b` (wrapping, as the controller's adder would).
    Add(Scratch, Scratch, Scratch),
    /// `dst ← a + k` (k may be negative).
    AddConst(Scratch, Scratch, i32),
    /// `dst ← value`.
    Set(Scratch, u32),
    /// Branch to `target` when the register is zero.
    JumpIfZero(Scratch, usize),
    /// Unconditional branch.
    Jump(usize),
    /// Finish: present `Out` as the operation's result.
    Halt,
}

use CellCmd::*;
use MicroInstr::*;
use Scratch::*;

fn sel_data(s: Scratch) -> OperandSel {
    OperandSel {
        data: Some(s),
        ..OperandSel::default()
    }
}

fn sel_lo(s: Scratch) -> OperandSel {
    OperandSel {
        lo: Some(s),
        ..OperandSel::default()
    }
}

fn sel_hi(s: Scratch) -> OperandSel {
    OperandSel {
        hi: Some(s),
        ..OperandSel::default()
    }
}

fn sel_bounds(lo: Scratch, hi: Scratch) -> OperandSel {
    OperandSel {
        data: None,
        lo: Some(lo),
        hi: Some(hi),
    }
}

/// Append the partition-step body: refine the group of the pivot held in
/// `PivotData/PivotLo/PivotHi`. Precondition: the pivot registers hold a
/// cell of an imprecise group.
///
/// The step implements the classic χ-sort refinement: with L cells below
/// the pivot, E equal and the rest above (within the pivot's group
/// `⟨lo, hi⟩`), the below-group becomes `⟨lo, lo+L-1⟩`, the equal cells
/// take distinct scan-assigned positions `lo+L .. lo+L+E-1`, and the
/// above-group becomes `⟨lo+L+E, hi⟩`.
fn push_partition_body(p: &mut Vec<MicroInstr>) {
    // Select the pivot's group: exactly the cells sharing its interval.
    p.push(Cell(SelectAll, OperandSel::default()));
    p.push(Cell(MatchLowerBound, sel_lo(PivotLo)));
    p.push(Cell(MatchUpperBound, sel_hi(PivotHi)));
    p.push(Cell(Save, OperandSel::default()));
    // Below-pivot subgroup.
    p.push(Cell(MatchDataLt, sel_data(PivotData)));
    p.push(TreeCount(L));
    // Skip the three below-group instructions when L == 0.
    let skip_lt = p.len() + 4;
    p.push(JumpIfZero(L, skip_lt));
    // hi ← PivotLo + (L-1), computed in two adds so the controller
    // datapath needs only one adder.
    p.push(AddConst(Tmp, L, -1));
    p.push(Add(Tmp, PivotLo, Tmp));
    p.push(Cell(SetUpperBound, sel_hi(Tmp)));
    debug_assert_eq!(p.len(), skip_lt);
    // Equal subgroup: scan-assign distinct precise positions.
    p.push(Cell(Restore, OperandSel::default()));
    p.push(Cell(MatchDataEq, sel_data(PivotData)));
    p.push(TreeCount(E));
    p.push(Add(Base, PivotLo, L)); // Base = lo + L
    p.push(TreeScanAssign);
    // Above-pivot subgroup.
    p.push(Cell(Restore, OperandSel::default()));
    p.push(Cell(MatchDataGt, sel_data(PivotData)));
    p.push(Add(Tmp, Base, E)); // Tmp = lo + L + E
    p.push(Cell(SetLowerBound, sel_lo(Tmp)));
}

/// One sort refinement round: pick the leftmost imprecise cell as pivot,
/// partition its group, return the number of still-imprecise cells in
/// `Out` (0 = sorted).
pub fn sort_step() -> Vec<MicroInstr> {
    let mut p = Vec::with_capacity(32);
    p.push(Cell(SelectImprecise, OperandSel::default()));
    p.push(TreeLeftmost);
    let jz_at = p.len();
    p.push(JumpIfZero(Tmp, usize::MAX)); // patched below
    push_partition_body(&mut p);
    // Report remaining imprecision.
    let done = p.len();
    p[jz_at] = JumpIfZero(Tmp, done);
    p.push(Cell(SelectImprecise, OperandSel::default()));
    p.push(TreeCount(Out));
    p.push(Halt);
    p
}

/// Full sort: loop refinement rounds inside the controller until every
/// interval is precise ("Run microcode program" holds the FSM in `Run`
/// for the whole operation). `Out` reports the number of rounds.
pub fn sort_full() -> Vec<MicroInstr> {
    let mut p = Vec::with_capacity(40);
    p.push(Set(Out, 0));
    let loop_top = p.len();
    p.push(Cell(SelectImprecise, OperandSel::default()));
    p.push(TreeLeftmost);
    let jz_at = p.len();
    p.push(JumpIfZero(Tmp, usize::MAX));
    push_partition_body(&mut p);
    p.push(AddConst(Out, Out, 1)); // count rounds
    p.push(Jump(loop_top));
    let done = p.len();
    p[jz_at] = JumpIfZero(Tmp, done);
    p.push(Halt);
    p
}

/// One selection refinement round for index `K`: refine only a group
/// whose interval still contains `K`. `Out` = number of imprecise cells
/// whose interval contains `K` after the round (0 = position K precise).
pub fn select_step() -> Vec<MicroInstr> {
    let mut p = Vec::with_capacity(32);
    p.push(Cell(SelectImprecise, OperandSel::default()));
    p.push(Cell(MatchLowerBoundLe, sel_lo(K))); // lo ≤ K
    p.push(Cell(MatchUpperBoundGe, sel_hi(K))); // hi ≥ K
    p.push(TreeLeftmost);
    let jz_at = p.len();
    p.push(JumpIfZero(Tmp, usize::MAX));
    push_partition_body(&mut p);
    let done = p.len();
    p[jz_at] = JumpIfZero(Tmp, done);
    p.push(Cell(SelectImprecise, OperandSel::default()));
    p.push(Cell(MatchLowerBoundLe, sel_lo(K)));
    p.push(Cell(MatchUpperBoundGe, sel_hi(K)));
    p.push(TreeCount(Out));
    p.push(Halt);
    p
}

/// Full selection: refine until position `K` is precise, then retrieve
/// the element at `K` into `Out` — the χ-sort "selection operation".
pub fn select_full() -> Vec<MicroInstr> {
    let mut p = Vec::with_capacity(40);
    let loop_top = p.len();
    p.push(Cell(SelectImprecise, OperandSel::default()));
    p.push(Cell(MatchLowerBoundLe, sel_lo(K)));
    p.push(Cell(MatchUpperBoundGe, sel_hi(K)));
    p.push(TreeLeftmost);
    let jz_at = p.len();
    p.push(JumpIfZero(Tmp, usize::MAX));
    push_partition_body(&mut p);
    p.push(Jump(loop_top));
    let read = p.len();
    p[jz_at] = JumpIfZero(Tmp, read);
    p.extend(read_at_body());
    p
}

fn read_at_body() -> Vec<MicroInstr> {
    vec![
        Cell(SelectAll, OperandSel::default()),
        Cell(MatchLowerBound, sel_lo(K)),
        Cell(MatchUpperBound, sel_hi(K)),
        TreeRetrieve(Out),
        Halt,
    ]
}

/// Retrieve the element whose (precise) interval equals `⟨K, K⟩`.
pub fn read_at() -> Vec<MicroInstr> {
    read_at_body()
}

/// Count imprecise intervals into `Out`.
pub fn count_imprecise() -> Vec<MicroInstr> {
    vec![
        Cell(SelectImprecise, OperandSel::default()),
        TreeCount(Out),
        Halt,
    ]
}

/// Initialise bounds after loading `m` elements (delivered in `K`):
/// scan-number every cell by physical position, then give the first `m`
/// cells the unknown interval `⟨0, m-1⟩`. Cells beyond `m` keep precise
/// position-valued intervals ≥ m and therefore never participate.
pub fn init_bounds() -> Vec<MicroInstr> {
    vec![
        Set(Base, 0),
        Cell(SelectAll, OperandSel::default()),
        TreeScanAssign,       // every cell: lo = hi = its index
        AddConst(Tmp, K, -1), // Tmp = m - 1
        Cell(SelectAll, OperandSel::default()),
        Cell(MatchLowerBoundLe, sel_lo(Tmp)), // the first m cells
        Set(Out, 0),
        Cell(SetBounds, sel_bounds(Out, Tmp)), // ⟨0, m-1⟩
        Set(Out, 0),
        Halt,
    ]
}

impl std::fmt::Display for MicroInstr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sel = |s: &OperandSel| -> String {
            let mut parts = Vec::new();
            if let Some(r) = s.data {
                parts.push(format!("data={r:?}"));
            }
            if let Some(r) = s.lo {
                parts.push(format!("lo={r:?}"));
            }
            if let Some(r) = s.hi {
                parts.push(format!("hi={r:?}"));
            }
            if parts.is_empty() {
                String::new()
            } else {
                format!("  [{}]", parts.join(", "))
            }
        };
        match self {
            Cell(cmd, s) => write!(f, "CELL    {cmd:?}{}", sel(s)),
            TreeCount(d) => write!(f, "TCOUNT  -> {d:?}"),
            TreeLeftmost => write!(f, "TLEFT   -> Pivot*, Tmp"),
            TreeRetrieve(d) => write!(f, "TGET    -> {d:?}"),
            TreeScanAssign => write!(f, "TSCAN   lo=hi=Base+prefix (selected)"),
            Add(d, a, b) => write!(f, "ADD     {d:?} = {a:?} + {b:?}"),
            AddConst(d, a, k) => write!(f, "ADDI    {d:?} = {a:?} + {k}"),
            Set(d, v) => write!(f, "SET     {d:?} = {v}"),
            JumpIfZero(r, t) => write!(f, "JZ      {r:?} -> {t}"),
            Jump(t) => write!(f, "JMP     {t}"),
            Halt => write!(f, "HALT    (result = Out)"),
        }
    }
}

/// Render a program as an assembler-style listing (the thesis prints its
/// microcode ROM contents in an appendix; this is the equivalent
/// artefact).
pub fn listing(name: &str, program: &[MicroInstr]) -> String {
    use std::fmt::Write as _;
    let mut out = format!("; microprogram `{name}` ({} words)\n", program.len());
    for (pc, instr) in program.iter().enumerate() {
        let _ = writeln!(out, "{pc:>3}:  {instr}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets_in_range(p: &[MicroInstr]) {
        for (i, instr) in p.iter().enumerate() {
            match instr {
                JumpIfZero(_, t) | Jump(t) => {
                    assert!(*t <= p.len(), "instr {i} jumps to {t} beyond program end");
                    assert_ne!(*t, usize::MAX, "unpatched jump at {i}");
                }
                _ => {}
            }
        }
        assert!(
            matches!(p.last(), Some(Halt)),
            "programs must end with Halt"
        );
    }

    #[test]
    fn all_programs_are_well_formed() {
        for (name, p) in [
            ("sort_step", sort_step()),
            ("sort_full", sort_full()),
            ("select_step", select_step()),
            ("select_full", select_full()),
            ("read_at", read_at()),
            ("count_imprecise", count_imprecise()),
            ("init_bounds", init_bounds()),
        ] {
            assert!(!p.is_empty(), "{name} empty");
            targets_in_range(&p);
        }
    }

    #[test]
    fn step_programs_have_fixed_length() {
        // The per-operation fixed-cycle claim (E6) starts from the fact
        // that the step programs contain no data-dependent iteration —
        // only a forward skip.
        let p = sort_step();
        assert!(p.len() < 32, "sort step stays a small fixed program");
        let jumps_backward = p.iter().enumerate().any(|(i, instr)| match instr {
            Jump(t) | JumpIfZero(_, t) => *t <= i,
            _ => false,
        });
        assert!(!jumps_backward, "a step program must not loop");
    }

    #[test]
    fn listings_render_every_instruction() {
        let p = sort_full();
        let text = listing("sort_full", &p);
        assert_eq!(text.lines().count(), p.len() + 1);
        assert!(text.contains("TSCAN"));
        assert!(text.contains("HALT"));
        assert!(text.contains("JZ"));
    }

    #[test]
    fn full_programs_loop() {
        let p = sort_full();
        let loops = p.iter().enumerate().any(|(i, instr)| match instr {
            Jump(t) => *t <= i,
            _ => false,
        });
        assert!(loops, "the full-sort program iterates internally");
    }
}
