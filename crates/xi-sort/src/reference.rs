//! Software reference implementations — the CPU side of experiments
//! E6/E7.
//!
//! "In sequential algorithms the data structures can be modified only one
//! element at a time as the processor executes load and store
//! instructions. … with a CPU each operation requires an iteration that
//! takes time proportional to the number of data elements."
//!
//! [`SoftwareXiSort`] executes *the same* index-interval algorithm as the
//! hardware core, one element at a time, and counts **element visits**
//! (each pass over the array touches every element, exactly the iteration
//! the paper describes). The visit counter is the CPU-side cost metric
//! for the per-operation comparison; wall-clock baselines (`quicksort`,
//! `std::sort_unstable`) for end-to-end comparisons live here as well.

use crate::interval::IndexInterval;

/// The instrumented software χ-sort.
#[derive(Debug, Clone)]
pub struct SoftwareXiSort {
    data: Vec<u32>,
    intervals: Vec<IndexInterval>,
    /// Total element visits performed (the Θ(n)-per-operation cost).
    pub visits: u64,
}

impl SoftwareXiSort {
    /// Load `values` with fully-unknown intervals.
    pub fn new(values: &[u32]) -> SoftwareXiSort {
        assert!(!values.is_empty(), "empty input");
        SoftwareXiSort {
            data: values.to_vec(),
            intervals: vec![IndexInterval::unknown(values.len() as u32); values.len()],
            visits: 0,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always false (construction rejects empty inputs).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The intervals (diagnostics).
    pub fn intervals(&self) -> &[IndexInterval] {
        &self.intervals
    }

    /// Leftmost element with an imprecise interval, optionally restricted
    /// to intervals containing `k`. One pass: Θ(n) visits.
    pub fn find_pivot(&mut self, containing: Option<u32>) -> Option<usize> {
        for (i, iv) in self.intervals.iter().enumerate() {
            self.visits += 1;
            if !iv.is_precise() && containing.is_none_or(|k| iv.contains(k)) {
                return Some(i);
            }
        }
        None
    }

    /// Count imprecise intervals. One pass.
    pub fn count_imprecise(&mut self) -> u32 {
        let mut n = 0;
        for iv in &self.intervals {
            self.visits += 1;
            if !iv.is_precise() {
                n += 1;
            }
        }
        n
    }

    /// One refinement round on the group of `pivot_idx` — the software
    /// mirror of the hardware partition step: several Θ(n) passes.
    pub fn partition_step(&mut self, pivot_idx: usize) {
        let pivot = self.data[pivot_idx];
        let group = self.intervals[pivot_idx];
        assert!(!group.is_precise(), "pivot group already resolved");
        // Pass 1: count below / equal within the group.
        let (mut l, mut e) = (0u32, 0u32);
        for i in 0..self.data.len() {
            self.visits += 1;
            if self.intervals[i] == group {
                if self.data[i] < pivot {
                    l += 1;
                } else if self.data[i] == pivot {
                    e += 1;
                }
            }
        }
        // Pass 2: assign refined intervals (equal elements positionally,
        // matching the hardware's scan).
        let base = group.lo + l;
        let mut eq_rank = 0u32;
        for i in 0..self.data.len() {
            self.visits += 1;
            if self.intervals[i] == group {
                self.intervals[i] = if self.data[i] < pivot {
                    IndexInterval::new(group.lo, group.lo + l - 1)
                } else if self.data[i] == pivot {
                    let iv = IndexInterval::precise(base + eq_rank);
                    eq_rank += 1;
                    iv
                } else {
                    IndexInterval::new(base + e, group.hi)
                };
            }
        }
    }

    /// Sort to completion; returns the number of refinement rounds.
    pub fn sort(&mut self) -> u32 {
        let mut rounds = 0;
        while let Some(p) = self.find_pivot(None) {
            self.partition_step(p);
            rounds += 1;
        }
        rounds
    }

    /// Select the k-th smallest element (refining only groups containing
    /// `k`); returns `(value, rounds)`.
    pub fn select_k(&mut self, k: u32) -> (u32, u32) {
        assert!((k as usize) < self.data.len(), "k out of range");
        let mut rounds = 0;
        while let Some(p) = self.find_pivot(Some(k)) {
            self.partition_step(p);
            rounds += 1;
        }
        (self.read_at(k), rounds)
    }

    /// Read the element whose final position is `k` (requires precision).
    pub fn read_at(&mut self, k: u32) -> u32 {
        for i in 0..self.data.len() {
            self.visits += 1;
            if self.intervals[i] == IndexInterval::precise(k) {
                return self.data[i];
            }
        }
        panic!("position {k} is not precise yet");
    }

    /// Extract the fully-sorted array (requires a completed sort).
    pub fn into_sorted(mut self) -> Vec<u32> {
        let mut out = vec![0u32; self.data.len()];
        for i in 0..self.data.len() {
            let iv = self.intervals[i];
            assert!(iv.is_precise(), "sort incomplete at element {i}");
            out[iv.lo as usize] = self.data[i];
        }
        self.visits += self.data.len() as u64;
        out
    }
}

/// Plain recursive quicksort (median-free, first-element pivot), the
/// conventional-CPU baseline of E7. Returns the comparison count.
pub fn quicksort(values: &mut [u32]) -> u64 {
    fn go(v: &mut [u32], cmps: &mut u64) {
        if v.len() <= 1 {
            return;
        }
        let pivot = v[0];
        let mut lt = 0;
        let mut gt = v.len();
        let mut i = 1;
        // Three-way partition around the first element.
        while i < gt {
            *cmps += 1;
            if v[i] < pivot {
                v.swap(i, lt);
                lt += 1;
                i += 1;
            } else if v[i] > pivot {
                gt -= 1;
                v.swap(i, gt);
            } else {
                i += 1;
            }
        }
        let (lo, rest) = v.split_at_mut(lt);
        let hi_start = gt - lt;
        go(lo, cmps);
        go(&mut rest[hi_start..], cmps);
    }
    let mut cmps = 0;
    go(values, &mut cmps);
    cmps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{XiConfig, XiOp, XiSortCore};
    use proptest::prelude::*;

    #[test]
    fn software_sort_sorts() {
        let mut s = SoftwareXiSort::new(&[5, 2, 9, 1, 7, 7, 3]);
        let rounds = s.sort();
        assert!(rounds >= 1);
        assert_eq!(s.into_sorted(), vec![1, 2, 3, 5, 7, 7, 9]);
    }

    #[test]
    fn selection_matches_sorted_order() {
        let values = [42, 17, 99, 3, 65];
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        for (k, &expect) in sorted.iter().enumerate() {
            let mut s = SoftwareXiSort::new(&values);
            let (v, _) = s.select_k(k as u32);
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn selection_visits_fewer_than_sort() {
        let values: Vec<u32> = (0..256).map(|i| (i * 97 + 13) % 1009).collect();
        let mut sorter = SoftwareXiSort::new(&values);
        sorter.sort();
        let mut selector = SoftwareXiSort::new(&values);
        selector.select_k(128);
        assert!(
            selector.visits < sorter.visits / 2,
            "selection should do much less work ({} vs {})",
            selector.visits,
            sorter.visits
        );
    }

    #[test]
    fn per_operation_cost_is_linear_in_n() {
        // The claim E6 quantifies: one software partition step costs
        // Θ(n) visits.
        let mut small = SoftwareXiSort::new(&(0..64).rev().collect::<Vec<u32>>());
        let p = small.find_pivot(None).unwrap();
        small.visits = 0;
        small.partition_step(p);
        let v64 = small.visits;
        let mut big = SoftwareXiSort::new(&(0..1024).rev().collect::<Vec<u32>>());
        let p = big.find_pivot(None).unwrap();
        big.visits = 0;
        big.partition_step(p);
        let v1024 = big.visits;
        assert_eq!(v64, 2 * 64, "two passes over 64 elements");
        assert_eq!(v1024, 2 * 1024);
    }

    #[test]
    fn quicksort_baseline_sorts_and_counts() {
        let mut v = vec![3u32, 1, 4, 1, 5, 9, 2, 6];
        let cmps = quicksort(&mut v);
        assert_eq!(v, vec![1, 1, 2, 3, 4, 5, 6, 9]);
        assert!(cmps > 0);
    }

    #[test]
    #[should_panic(expected = "not precise")]
    fn read_before_resolution_panics() {
        let mut s = SoftwareXiSort::new(&[2, 1]);
        s.read_at(0);
    }

    proptest! {
        #[test]
        fn prop_software_matches_std_sort(values in proptest::collection::vec(0u32..1000, 1..80)) {
            let mut s = SoftwareXiSort::new(&values);
            s.sort();
            let mut expect = values.clone();
            expect.sort_unstable();
            prop_assert_eq!(s.into_sorted(), expect);
        }

        #[test]
        fn prop_quicksort_matches_std(values in proptest::collection::vec(any::<u32>(), 0..100)) {
            let mut qs = values.clone();
            quicksort(&mut qs);
            let mut expect = values.clone();
            expect.sort_unstable();
            prop_assert_eq!(qs, expect);
        }

        #[test]
        fn prop_hardware_and_software_agree(values in proptest::collection::vec(0u32..500, 1..24)) {
            // The hardware core and the software reference implement the
            // same algorithm: identical sorted output and identical
            // refinement-round counts.
            // Feed the software the *reversed* input: the hardware's
            // shift-load chain reverses the array, and the leftmost-
            // imprecise pivot policy is order-sensitive, so this makes
            // the two runs pivot-for-pivot identical.
            let reversed: Vec<u32> = values.iter().rev().copied().collect();
            let mut sw = SoftwareXiSort::new(&reversed);
            let sw_rounds = sw.sort();

            let mut hw = XiSortCore::new(XiConfig::new(values.len() as u32));
            hw.dispatch(XiOp::Reset, 0);
            for &v in &values {
                hw.dispatch(XiOp::Push, v);
            }
            hw.dispatch(XiOp::InitBounds, 0);
            hw.run_to_completion(10_000);
            hw.dispatch(XiOp::Sort, 0);
            let hw_rounds = hw.run_to_completion(50_000_000).unwrap();

            let hw_sorted: Vec<u32> = (0..values.len())
                .map(|k| {
                    hw.dispatch(XiOp::ReadAt, k as u32);
                    hw.run_to_completion(10_000).unwrap()
                })
                .collect();
            prop_assert_eq!(hw_sorted, sw.into_sorted());
            // Pivot-for-pivot identical runs use identical round counts.
            prop_assert_eq!(
                hw_rounds, sw_rounds,
                "round counts diverged: sw={} hw={}", sw_rounds, hw_rounds
            );
        }
    }
}
