//! `xi-sort` — the stateful functional-unit case study: the χ-sort
//! data-parallel engine.
//!
//! The paper's second case study (§IV-B) implements the χ-sort suite
//! [O'Donnell 1988], "which performs selection and sorting using an array
//! represented with index intervals":
//!
//! > "An element with index interval ⟨p, q⟩ belongs in the array at some
//! > index i such that p ≤ i ≤ q. An initial array represents the complete
//! > lack of knowledge of where the elements belong by assigning each
//! > element an index interval ⟨0, n−1⟩."
//!
//! Each array element lives in a [`cell::SimdCell`] — "a small amount of
//! storage, enough to hold one data element and its index interval", plus
//! "a simple arithmetic circuit that can perform comparisons" — under a
//! logarithmic-depth [`tree::TreeNetwork`] whose interior nodes "provide
//! communications and support parallel folds and scans on associative
//! operators". A two-state controller (Idle/Run, thesis Figure 3.10)
//! executes [`microcode`] programs against the array; a functional-unit
//! [`adapter`] connects the core to the `fu-rtm` framework, transcoding
//! 32-bit data records exactly as the thesis describes.
//!
//! The performance claim this crate reproduces (experiments E6/E7): "Each
//! operation takes a fixed number of clock cycles with the FPGA; with a
//! CPU each operation requires an iteration that takes time proportional
//! to the number of data elements." [`reference::SoftwareXiSort`] is the
//! instrumented CPU-side implementation of the same algorithm used for
//! that comparison, and [`mod@reference`] also holds plain quicksort baselines.
//!
//! # Algorithm notes (reconstruction details)
//!
//! The excerpt specifies pivot choice ("the leftmost element of the
//! sequence whose interval is imprecise") and the cell/tree capabilities,
//! but not the handling of duplicate keys. We resolve the
//! equal-to-pivot group positionally using the tree's *scan* capability
//! (prefix count of selection flags), which the paper explicitly grants
//! the interior nodes; each equal element receives a distinct final
//! index, making every interval eventually precise. The
//! `match_*_bound_i` commands of the cell schematic are reconstructed as
//! *inequality* matches (`lo ≤ broadcast`, `hi ≥ broadcast`), which is
//! exactly what selection (restricting refinement to groups containing
//! index k) requires.

pub mod adapter;
pub mod cell;
pub mod controller;
pub mod interval;
pub mod microcode;
pub mod reference;
pub mod tree;

pub use adapter::XiSortAdapter;
pub use cell::{CellArena, CellCmd, SimdCell};
pub use controller::{XiConfig, XiOp, XiSortCore};
pub use interval::IndexInterval;
pub use reference::SoftwareXiSort;
pub use tree::TreeNetwork;
