//! Property tests for the simulation-kernel primitives: the handshake
//! and FIFO invariants the whole reproduction rests on, under arbitrary
//! operation sequences.

use proptest::prelude::*;
use rtl_sim::{Clocked, Fifo, HandshakeSlot, StallFuzzer};

proptest! {
    /// A HandshakeSlot never loses, duplicates or reorders items under
    /// any pattern of producer/consumer activity.
    #[test]
    fn handshake_slot_is_a_faithful_channel(
        seed: u64,
        p_produce in 0.1f64..1.0,
        p_consume in 0.1f64..1.0,
        cycles in 10usize..400,
    ) {
        let mut produce = StallFuzzer::new(seed, 1.0 - p_produce);
        let mut consume = StallFuzzer::new(seed ^ 0x9e37, 1.0 - p_consume);
        let mut slot = HandshakeSlot::new();
        let mut next = 0u64;
        let mut got = Vec::new();
        for _ in 0..cycles {
            // sink first (full-throughput convention)
            if !consume.stall() {
                if let Some(v) = slot.take() {
                    got.push(v);
                }
            }
            if !produce.stall() && slot.can_push() {
                slot.push(next);
                next += 1;
            }
            slot.commit();
        }
        // Drain.
        while let Some(v) = slot.take() {
            got.push(v);
            slot.commit();
        }
        let n_got = got.len() as u64;
        prop_assert_eq!(got, (0..n_got).collect::<Vec<_>>());
        prop_assert!(n_got <= next);
        prop_assert!(next - n_got <= 1, "at most one item may remain staged");
    }

    /// A FIFO of any depth behaves as a perfect queue under arbitrary
    /// push/pop interleavings.
    #[test]
    fn fifo_is_a_faithful_queue(
        seed: u64,
        depth in 1usize..16,
        cycles in 10usize..400,
        p_produce in 0.1f64..1.0,
        p_consume in 0.1f64..1.0,
    ) {
        let mut produce = StallFuzzer::new(seed, 1.0 - p_produce);
        let mut consume = StallFuzzer::new(seed ^ 0x1234, 1.0 - p_consume);
        let mut fifo = Fifo::new(depth);
        let mut next = 0u64;
        let mut got = Vec::new();
        for _ in 0..cycles {
            if !consume.stall() {
                if let Some(v) = fifo.pop() {
                    got.push(v);
                }
            }
            if !produce.stall() && fifo.can_push() {
                fifo.push(next);
                next += 1;
            }
            fifo.commit();
            prop_assert!(fifo.len() <= depth, "occupancy bound violated");
        }
        while let Some(v) = fifo.pop() {
            got.push(v);
            fifo.commit();
        }
        let n_got = got.len() as u64;
        prop_assert_eq!(got, (0..n_got).collect::<Vec<_>>());
        prop_assert_eq!(n_got, next, "a drained FIFO returns everything");
        prop_assert!(fifo.high_water() <= depth);
    }

    /// Burst pushes never exceed capacity and preserve order.
    #[test]
    fn fifo_burst_discipline(depth in 1usize..12, bursts in 1usize..40, seed: u64) {
        let mut rng = StallFuzzer::new(seed, 0.0);
        let mut fifo = Fifo::new(depth);
        let mut next = 0u64;
        let mut got = Vec::new();
        for _ in 0..bursts {
            let burst = rng.below(depth as u64 + 2);
            for _ in 0..burst {
                if fifo.can_push() {
                    fifo.push(next);
                    next += 1;
                }
            }
            fifo.commit();
            let drain = rng.below(depth as u64 + 2);
            for _ in 0..drain {
                if let Some(v) = fifo.pop() {
                    got.push(v);
                }
            }
            fifo.commit();
        }
        got.extend(fifo.drain_all());
        prop_assert_eq!(got, (0..next).collect::<Vec<_>>());
    }
}
