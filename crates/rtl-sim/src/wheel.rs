//! A hierarchical timing wheel for event-scheduled simulation.
//!
//! Activity gating (the `Gated` mode of a design) still *walks* every
//! component each simulated cycle to ask "are you busy?". An
//! event-scheduled kernel inverts the relationship: every source of
//! future activity — a pipeline stage with buffered work, a functional
//! unit in a fixed-latency burn, a watchdog deadline, a link-layer
//! retransmit timer — *registers a wake* at the cycle where its state can
//! next change observably, and the scheduler advances the clock directly
//! to the earliest registered wake.
//!
//! [`TimingWheel`] is the classic two-level structure (Varghese & Lauck):
//! a dense ring of near slots, one per cycle within the horizon, plus a
//! min-heap for wakes beyond it. Near wakes cost O(1) to register and
//! fire; far wakes pay the heap's O(log n) but are rare (retransmit
//! deadlines, worst-case watchdog bounds).
//!
//! # Determinism
//!
//! Simulation results must be bit-identical across scheduling modes, so
//! the wheel is rigidly deterministic: wakes due at the same cycle fire
//! in registration order (each entry carries a sequence number; the heap
//! orders by `(cycle, seq)` and ring slots are FIFO vectors). Nothing
//! about firing order depends on the heap's internal layout or on pointer
//! identity.
//!
//! The wheel also keeps [`WheelStats`] — wakes scheduled, wakes fired,
//! and dense slots skipped over — so a speedup is explainable from
//! counters alone, and so CI can gate on deterministic *work counts*
//! rather than flaky wall-clock numbers.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Deterministic work counters maintained by a [`TimingWheel`].
///
/// All three are pure functions of the schedule/advance call sequence —
/// no wall clock, no allocation behaviour — so they are safe to compare
/// bit-for-bit in CI and across traced/untraced runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WheelStats {
    /// Wakes registered via [`TimingWheel::schedule`].
    pub wakes_scheduled: u64,
    /// Wakes popped by [`TimingWheel::advance_to`].
    pub wakes_fired: u64,
    /// Empty dense slots the cursor jumped over while advancing.
    pub slots_skipped: u64,
}

impl WheelStats {
    /// Wakes registered.
    #[must_use]
    pub fn wakes_scheduled(&self) -> u64 {
        self.wakes_scheduled
    }

    /// Wakes fired.
    #[must_use]
    pub fn wakes_fired(&self) -> u64 {
        self.wakes_fired
    }

    /// Empty dense slots skipped.
    #[must_use]
    pub fn slots_skipped(&self) -> u64 {
        self.slots_skipped
    }

    /// Fraction of registered wakes that actually fired (the rest were
    /// superseded by an earlier event or cleared), in `[0, 1]`.
    #[must_use]
    pub fn fire_fraction(&self) -> f64 {
        if self.wakes_scheduled == 0 {
            0.0
        } else {
            self.wakes_fired as f64 / self.wakes_scheduled as f64
        }
    }
}

impl std::ops::AddAssign<&WheelStats> for WheelStats {
    fn add_assign(&mut self, rhs: &WheelStats) {
        self.wakes_scheduled += rhs.wakes_scheduled;
        self.wakes_fired += rhs.wakes_fired;
        self.slots_skipped += rhs.slots_skipped;
    }
}

impl std::ops::AddAssign for WheelStats {
    fn add_assign(&mut self, rhs: WheelStats) {
        *self += &rhs;
    }
}

/// One registered wake: due cycle, registration sequence, payload.
#[derive(Debug, Clone)]
struct Entry<T> {
    at: u64,
    seq: u64,
    payload: T,
}

/// Two-level timing wheel: dense near-slot ring + overflow min-heap.
///
/// `T` is the wake payload — typically a small enum naming the component
/// that asked to be woken. The wheel never interprets it.
///
/// ```
/// use rtl_sim::TimingWheel;
///
/// let mut w: TimingWheel<&'static str> = TimingWheel::new(0, 16);
/// w.schedule(3, "fu0");
/// w.schedule(3, "watchdog");
/// w.schedule(40, "retransmit"); // beyond the horizon -> overflow heap
/// assert_eq!(w.next_wake(), Some(3));
/// assert_eq!(w.advance_to(3), vec!["fu0", "watchdog"]); // FIFO in slot
/// assert_eq!(w.next_wake(), Some(40));
/// ```
#[derive(Debug, Clone)]
pub struct TimingWheel<T> {
    /// Current cycle; wakes strictly before `now` are illegal.
    now: u64,
    /// Dense ring, one slot per cycle in `[now, now + horizon)`.
    ring: Vec<Vec<Entry<T>>>,
    /// Wakes at or beyond `now + horizon`, ordered by `(at, seq)`.
    overflow: BinaryHeap<Reverse<(u64, u64)>>,
    /// Payload store for overflow entries, keyed by seq.
    overflow_payloads: Vec<(u64, T)>,
    /// Monotone registration counter (FIFO tiebreak).
    seq: u64,
    /// Number of live entries (ring + overflow).
    len: usize,
    stats: WheelStats,
}

impl<T> TimingWheel<T> {
    /// An empty wheel at cycle `now` with `horizon` dense slots
    /// (`horizon >= 1`; values beyond a few hundred buy nothing).
    pub fn new(now: u64, horizon: usize) -> TimingWheel<T> {
        assert!(horizon >= 1, "timing wheel needs at least one dense slot");
        TimingWheel {
            now,
            ring: (0..horizon).map(|_| Vec::new()).collect(),
            overflow: BinaryHeap::new(),
            overflow_payloads: Vec::new(),
            seq: 0,
            len: 0,
            stats: WheelStats::default(),
        }
    }

    /// Current cycle.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of dense slots.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.ring.len()
    }

    /// True when no wakes are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Live wake count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Deterministic work counters.
    #[must_use]
    pub fn stats(&self) -> WheelStats {
        self.stats
    }

    fn slot_of(&self, at: u64) -> usize {
        (at % self.ring.len() as u64) as usize
    }

    /// Register a wake at cycle `at` (clamped to `now`; the past is not
    /// addressable). Entries due at the same cycle fire in registration
    /// order.
    pub fn schedule(&mut self, at: u64, payload: T) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.stats.wakes_scheduled += 1;
        self.len += 1;
        if at - self.now < self.ring.len() as u64 {
            let slot = self.slot_of(at);
            self.ring[slot].push(Entry { at, seq, payload });
        } else {
            self.overflow.push(Reverse((at, seq)));
            self.overflow_payloads.push((seq, payload));
        }
    }

    /// Earliest registered wake cycle, if any.
    #[must_use]
    pub fn next_wake(&self) -> Option<u64> {
        let mut best: Option<u64> = self.overflow.peek().map(|Reverse((at, _))| *at);
        let horizon = self.ring.len() as u64;
        for dt in 0..horizon {
            let t = self.now + dt;
            if best.is_some_and(|b| b <= t) {
                break;
            }
            let slot = self.slot_of(t);
            if self.ring[slot].iter().any(|e| e.at == t) {
                best = Some(t);
                break;
            }
        }
        best
    }

    /// Advance the cursor to cycle `t` (`t >= now`) and pop every wake
    /// due at or before `t`, in `(cycle, registration)` order. Dense
    /// slots crossed without firing anything count as `slots_skipped`.
    pub fn advance_to(&mut self, t: u64) -> Vec<T> {
        assert!(t >= self.now, "timing wheel cannot advance backwards");
        let mut fired: Vec<Entry<T>> = Vec::new();
        let horizon = self.ring.len() as u64;
        // Walk dense slots from now to min(t, end-of-ring coverage); any
        // slot index is revisited at most once because t - now may exceed
        // the horizon (then every ring entry is due).
        let span = t - self.now;
        if span >= horizon {
            for slot in self.ring.iter_mut() {
                fired.append(slot);
            }
        } else {
            for dt in 0..=span {
                let slot = self.slot_of(self.now + dt);
                let cur = self.now + dt;
                let v = &mut self.ring[slot];
                let mut i = 0;
                while i < v.len() {
                    if v[i].at <= cur {
                        fired.push(v.swap_remove(i));
                    } else {
                        i += 1;
                    }
                }
            }
        }
        // Drain due overflow entries, migrating none (they fire directly).
        while let Some(&Reverse((at, seq))) = self.overflow.peek() {
            if at > t {
                break;
            }
            self.overflow.pop();
            let idx = self
                .overflow_payloads
                .iter()
                .position(|(s, _)| *s == seq)
                .expect("overflow payload for popped seq");
            let (_, payload) = self.overflow_payloads.swap_remove(idx);
            fired.push(Entry { at, seq, payload });
        }
        fired.sort_by_key(|e| (e.at, e.seq));
        self.len -= fired.len();
        self.stats.wakes_fired += fired.len() as u64;
        // Slots the cursor jumped over without firing anything there.
        let crossed = span.min(horizon);
        let occupied: u64 = {
            let mut times: Vec<u64> = fired.iter().map(|e| e.at).collect();
            times.dedup();
            times.iter().filter(|&&at| at < t).count() as u64
        };
        self.stats.slots_skipped += crossed.saturating_sub(occupied);
        self.now = t;
        fired.into_iter().map(|e| e.payload).collect()
    }

    /// Drop every registered wake without firing it (the scheduler
    /// recomputes its event set). `now` is unchanged.
    pub fn clear(&mut self) {
        for slot in &mut self.ring {
            slot.clear();
        }
        self.overflow.clear();
        self.overflow_payloads.clear();
        self.len = 0;
    }

    /// Reposition the cursor of an **empty** wheel to cycle `now`
    /// without touching the counters.
    ///
    /// [`TimingWheel::advance_to`] charges every crossed quiet slot to
    /// `slots_skipped`; a scheduler that stepped cycles one by one (no
    /// wheel decision involved) uses `seek` to catch the cursor up so
    /// those stepped cycles are not misreported as skipped.
    ///
    /// # Panics
    /// Panics when wakes are still registered (they would silently land
    /// in the past) or when `now` moves backwards.
    pub fn seek(&mut self, now: u64) {
        assert!(self.is_empty(), "seek requires an empty wheel");
        assert!(now >= self.now, "timing wheel cannot seek backwards");
        self.now = now;
    }

    /// Reset to cycle `now` with empty slots and zeroed counters.
    pub fn reset(&mut self, now: u64) {
        self.clear();
        self.now = now;
        self.seq = 0;
        self.stats = WheelStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_cycle_fifo_order() {
        let mut w: TimingWheel<u32> = TimingWheel::new(0, 8);
        w.schedule(2, 10);
        w.schedule(2, 11);
        w.schedule(2, 12);
        assert_eq!(w.next_wake(), Some(2));
        assert_eq!(w.advance_to(2), vec![10, 11, 12]);
        assert!(w.is_empty());
    }

    #[test]
    fn overflow_heap_orders_with_ring() {
        let mut w: TimingWheel<&'static str> = TimingWheel::new(0, 4);
        w.schedule(100, "far");
        w.schedule(1, "near");
        w.schedule(100, "far2");
        assert_eq!(w.next_wake(), Some(1));
        assert_eq!(w.advance_to(1), vec!["near"]);
        assert_eq!(w.next_wake(), Some(100));
        assert_eq!(w.advance_to(100), vec!["far", "far2"], "FIFO across heap");
    }

    #[test]
    fn advance_beyond_horizon_fires_everything_in_order() {
        let mut w: TimingWheel<u32> = TimingWheel::new(0, 4);
        w.schedule(3, 3);
        w.schedule(1, 1);
        w.schedule(9, 9);
        w.schedule(1, 100);
        assert_eq!(w.advance_to(50), vec![1, 100, 3, 9]);
    }

    #[test]
    fn past_schedules_clamp_to_now() {
        let mut w: TimingWheel<u32> = TimingWheel::new(10, 4);
        w.schedule(3, 7);
        assert_eq!(w.next_wake(), Some(10));
        assert_eq!(w.advance_to(10), vec![7]);
    }

    #[test]
    fn stats_count_work_deterministically() {
        let mut w: TimingWheel<u32> = TimingWheel::new(0, 8);
        w.schedule(5, 1);
        w.schedule(5, 2);
        w.schedule(20, 3);
        let fired = w.advance_to(5);
        assert_eq!(fired.len(), 2);
        let s = w.stats();
        assert_eq!(s.wakes_scheduled, 3);
        assert_eq!(s.wakes_fired, 2);
        // Cycles 0..5 crossed, one slot (5) occupied... slot 5 is the
        // target itself, so 5 empty slots were jumped.
        assert_eq!(s.slots_skipped, 5);
        assert!(s.fire_fraction() > 0.6 && s.fire_fraction() < 0.7);
    }

    #[test]
    fn clear_and_reset() {
        let mut w: TimingWheel<u32> = TimingWheel::new(0, 4);
        w.schedule(1, 1);
        w.schedule(50, 2);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.next_wake(), None);
        assert_eq!(w.stats().wakes_scheduled, 2);
        w.reset(7);
        assert_eq!(w.now(), 7);
        assert_eq!(w.stats(), WheelStats::default());
    }

    #[test]
    fn wheel_stats_roll_up() {
        let a = WheelStats {
            wakes_scheduled: 4,
            wakes_fired: 3,
            slots_skipped: 10,
        };
        let mut b = WheelStats::default();
        b += &a;
        b += a;
        assert_eq!(b.wakes_scheduled(), 8);
        assert_eq!(b.wakes_fired(), 6);
        assert_eq!(b.slots_skipped(), 20);
        assert_eq!(WheelStats::default().fire_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "advance backwards")]
    fn backwards_advance_panics() {
        let mut w: TimingWheel<u32> = TimingWheel::new(5, 4);
        w.advance_to(4);
    }
}
