//! Occupancy and flow statistics collected by the pipeline primitives,
//! plus scheduler-level counters ([`SimStats`]) reported by designs that
//! support activity-gated stepping and idle fast-forward.

use std::fmt;
use std::time::Duration;

use crate::wheel::WheelStats;

/// Counters maintained by [`crate::HandshakeSlot`] and [`crate::Fifo`].
///
/// `stall_cycles` is only meaningful when the owning design calls
/// `note_stall` (slots cannot themselves observe that a producer *wanted*
/// to push).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotStats {
    /// Items handed to the slot.
    pub pushes: u64,
    /// Items removed from the slot.
    pub takes: u64,
    /// Clock edges seen since reset.
    pub cycles: u64,
    /// Clock edges at which the slot held data.
    pub occupied_cycles: u64,
    /// Cycles at which a producer reported being blocked.
    pub stall_cycles: u64,
}

impl SlotStats {
    /// Fraction of cycles the slot held data, in `[0, 1]`.
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.occupied_cycles as f64 / self.cycles as f64
        }
    }

    /// Items per cycle actually delivered downstream.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.takes as f64 / self.cycles as f64
        }
    }

    /// Items currently in flight (pushed but not yet taken).
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.pushes - self.takes
    }
}

/// A fixed-size log2-bucket latency histogram.
///
/// Bucket 0 counts zero-cycle latencies; bucket `i` (for `i >= 1`) counts
/// values in `[2^(i-1), 2^i)`. 32 buckets cover every latency below 2^31
/// cycles, far beyond any bounded simulation, and the array is plain
/// integers so the histogram is `Eq` (bit-identical across runs) and merges
/// with element-wise addition for farm rollups.
///
/// Recording is a handful of integer ops with no allocation, cheap enough
/// to stay enabled unconditionally — which keeps [`SimStats`] identical
/// whether event tracing is on or off (the non-perturbation rule).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 32],
    count: u64,
    total: u64,
    max: u64,
}

/// The three headline percentiles of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Percentiles {
    /// Median latency upper bound, in cycles.
    pub p50: u64,
    /// 95th-percentile latency upper bound, in cycles.
    pub p95: u64,
    /// 99th-percentile latency upper bound, in cycles.
    pub p99: u64,
}

/// Percentile snapshot of the three per-instruction latency legs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Decoded-head arrival at the dispatcher → dispatch to a unit.
    pub issue_to_dispatch: Percentiles,
    /// Dispatch to a unit → retirement by the write arbiter.
    pub dispatch_to_retire: Percentiles,
    /// End-to-end: decoded-head arrival → retirement.
    pub issue_to_retire: Percentiles,
}

impl LatencyHistogram {
    fn bucket(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros() as usize).min(31)
        }
    }

    /// Bucket upper bound (inclusive) for index `i`.
    fn upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            (1u64 << i) - 1
        }
    }

    /// Record one latency sample, in cycles.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket(v)] += 1;
        self.count += 1;
        self.total = self.total.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample recorded.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the samples (exact; the total is kept aside).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `p`-th percentile sample
    /// (`p` in `[0, 1]`), clamped to the observed maximum. 0 when empty.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // The last bucket is open-ended; report the observed max.
                if i == self.buckets.len() - 1 {
                    return self.max;
                }
                return Self::upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// p50/p95/p99 in one call.
    #[must_use]
    pub fn percentiles(&self) -> Percentiles {
        Percentiles {
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
        }
    }
}

impl std::ops::AddAssign<&LatencyHistogram> for LatencyHistogram {
    fn add_assign(&mut self, rhs: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(rhs.buckets.iter()) {
            *a += b;
        }
        self.count += rhs.count;
        self.total = self.total.saturating_add(rhs.total);
        self.max = self.max.max(rhs.max);
    }
}

/// Per-tenant serving counters: admission, shedding, completion and the
/// arrival→completion latency histogram for one tenant of a multi-tenant
/// serving front-end.
///
/// Everything here is integer state (the histogram is log2-bucketed), so
/// the struct is `Eq` — bit-identical across runs — and merges with
/// element-wise addition, exactly like [`SimStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantCounters {
    /// Jobs the tenant offered to the service.
    pub submitted: u64,
    /// Jobs accepted into the tenant's queue.
    pub admitted: u64,
    /// Jobs rejected in-band at admission (queue full — load shedding).
    pub shed: u64,
    /// Admitted jobs discarded because the tenant disconnected before
    /// they were dispatched.
    pub cancelled: u64,
    /// Admitted jobs that completed successfully.
    pub completed: u64,
    /// Admitted jobs that completed with a driver error (the error is
    /// data in the completion record, not a lost job).
    pub failed: u64,
    /// Shard cycles consumed executing this tenant's jobs.
    pub work_cycles: u64,
    /// Cost units (job weight) dispatched for this tenant — the quantity
    /// deficit-round-robin fairness is defined over.
    pub work_cost: u64,
    /// Submission→completion latency, in virtual service cycles.
    pub latency: LatencyHistogram,
}

impl TenantCounters {
    /// Fraction of submitted jobs rejected at admission, in `[0, 1]`.
    #[must_use]
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.shed as f64 / self.submitted as f64
        }
    }

    /// Jobs still accounted as queued (admitted but not yet resolved).
    #[must_use]
    pub fn in_queue(&self) -> u64 {
        self.admitted - self.completed - self.failed - self.cancelled
    }
}

impl std::ops::AddAssign<&TenantCounters> for TenantCounters {
    fn add_assign(&mut self, rhs: &TenantCounters) {
        self.submitted += rhs.submitted;
        self.admitted += rhs.admitted;
        self.shed += rhs.shed;
        self.cancelled += rhs.cancelled;
        self.completed += rhs.completed;
        self.failed += rhs.failed;
        self.work_cycles += rhs.work_cycles;
        self.work_cost += rhs.work_cost;
        self.latency += &rhs.latency;
    }
}

/// Tenant-keyed serving statistics: one [`TenantCounters`] per tenant id
/// plus service-wide round/dispatch counters.
///
/// Like `SimStats::stage_evals`, the per-tenant entries merge *by key*:
/// summing two `ServeStats` adds counters for tenants present in both and
/// appends tenants seen only on one side, so rollups across service
/// instances (or time slices) work exactly like farm shard rollups.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Per-tenant counters, keyed by tenant id, in first-seen order.
    pub tenants: Vec<(u32, TenantCounters)>,
    /// Scheduling rounds the service ran.
    pub rounds: u64,
    /// Jobs handed to the farm across all rounds.
    pub dispatched: u64,
}

impl ServeStats {
    /// The counters for tenant `id`, if it has any.
    #[must_use]
    pub fn tenant(&self, id: u32) -> Option<&TenantCounters> {
        self.tenants.iter().find(|(t, _)| *t == id).map(|(_, c)| c)
    }

    /// Mutable counters for tenant `id`, created on first touch.
    pub fn tenant_mut(&mut self, id: u32) -> &mut TenantCounters {
        if let Some(at) = self.tenants.iter().position(|(t, _)| *t == id) {
            return &mut self.tenants[at].1;
        }
        self.tenants.push((id, TenantCounters::default()));
        &mut self.tenants.last_mut().expect("just pushed").1
    }

    /// Counters summed over every tenant.
    #[must_use]
    pub fn totals(&self) -> TenantCounters {
        let mut all = TenantCounters::default();
        for (_, c) in &self.tenants {
            all += c;
        }
        all
    }
}

impl std::ops::AddAssign<&ServeStats> for ServeStats {
    fn add_assign(&mut self, rhs: &ServeStats) {
        for (id, c) in &rhs.tenants {
            *self.tenant_mut(*id) += c;
        }
        self.rounds += rhs.rounds;
        self.dispatched += rhs.dispatched;
    }
}

impl std::ops::AddAssign for ServeStats {
    fn add_assign(&mut self, rhs: ServeStats) {
        *self += &rhs;
    }
}

impl std::ops::Add for ServeStats {
    type Output = ServeStats;

    fn add(mut self, rhs: ServeStats) -> ServeStats {
        self += &rhs;
        self
    }
}

impl std::iter::Sum for ServeStats {
    fn sum<I: Iterator<Item = ServeStats>>(iter: I) -> ServeStats {
        iter.fold(ServeStats::default(), |acc, s| acc + s)
    }
}

impl<'a> std::iter::Sum<&'a ServeStats> for ServeStats {
    fn sum<I: Iterator<Item = &'a ServeStats>>(iter: I) -> ServeStats {
        iter.fold(ServeStats::default(), |mut acc, s| {
            acc += s;
            acc
        })
    }
}

/// Scheduler-level counters for an activity-aware simulation.
///
/// `cycles_simulated` is the authoritative simulated-time clock:
/// `cycles_stepped` of those ran through the full evaluate/commit loop and
/// `cycles_skipped` were fast-forwarded while the design was provably
/// idle. The two partitions always sum to `cycles_simulated`, and all
/// architecturally visible state is identical whether a span of cycles
/// was stepped or skipped.
///
/// `stage_evals` counts how often each named pipeline stage's evaluate
/// function actually ran; with activity gating enabled these fall well
/// below `cycles_stepped` on sparse workloads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total simulated cycles (stepped + skipped).
    pub cycles_simulated: u64,
    /// Cycles run through the full evaluate/commit loop.
    pub cycles_stepped: u64,
    /// Cycles fast-forwarded without evaluating any stage.
    pub cycles_skipped: u64,
    /// Per-stage evaluate counts, in pipeline order.
    pub stage_evals: Vec<(&'static str, u64)>,
    /// Per-stage busy-cycle counts (cycles the stage had work), in
    /// pipeline order. Busy-ness is judged from the same activity
    /// predicates used for gating, so the counts are identical across
    /// `Gated` and `Exhaustive` modes.
    pub stage_busy: Vec<(&'static str, u64)>,
    /// Issue (decoded head visible to the dispatcher) → dispatch latency.
    pub lat_issue_dispatch: LatencyHistogram,
    /// Dispatch → retire (write arbiter ack) latency.
    pub lat_dispatch_retire: LatencyHistogram,
    /// End-to-end issue → retire latency.
    pub lat_issue_retire: LatencyHistogram,
    /// Event-wheel work counters (zero unless the design ran with an
    /// event-scheduled kernel). Like `stage_evals`, these describe *how*
    /// the simulation was driven, not what it computed, so they may
    /// legitimately differ across scheduling modes — but they are exact
    /// deterministic functions of the workload within one mode.
    pub wheel: WheelStats,
    /// Soft-error resilience counters (zero unless SEU injection or
    /// recovery ran). Like `wheel`, these describe the fault history of
    /// the run, not what it computed: a faulty protected run and its
    /// fault-free twin produce identical results and latency histograms
    /// but legitimately differ here. Deterministic within one (seed,
    /// mode) configuration.
    pub recovery: RecoveryStats,
}

/// Counters for the soft-error resilience layer: SEU injection, parity /
/// voting detection, checkpoint rollback and farm-level job failover.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Bit flips the SEU model applied to device state.
    pub seus_injected: u64,
    /// Strikes that landed on state with no live target (e.g. a result
    /// latch with nothing in flight) and vanished without effect.
    pub seus_absorbed: u64,
    /// Upsets caught by a parity check or a DMR vote disagreement.
    pub seus_detected: u64,
    /// Upsets repaired in place (TMR majority vote, scoreboard shadow).
    pub seus_corrected: u64,
    /// Checkpoint restores triggered by uncorrected soft errors.
    pub rollbacks: u64,
    /// Cycles of work discarded across all rollbacks (work lost).
    pub cycles_lost: u64,
    /// Jobs re-executed on a healthy shard after their home shard
    /// panicked or reported an unrecovered soft error.
    pub jobs_failed_over: u64,
    /// Total job retry attempts consumed by the farm's failover pass.
    pub job_retries: u64,
}

impl RecoveryStats {
    /// Mean cycles of work lost per rollback (0 when none occurred).
    #[must_use]
    pub fn mean_cycles_lost(&self) -> f64 {
        if self.rollbacks == 0 {
            0.0
        } else {
            self.cycles_lost as f64 / self.rollbacks as f64
        }
    }
}

impl std::ops::AddAssign<&RecoveryStats> for RecoveryStats {
    fn add_assign(&mut self, rhs: &RecoveryStats) {
        self.seus_injected += rhs.seus_injected;
        self.seus_absorbed += rhs.seus_absorbed;
        self.seus_detected += rhs.seus_detected;
        self.seus_corrected += rhs.seus_corrected;
        self.rollbacks += rhs.rollbacks;
        self.cycles_lost += rhs.cycles_lost;
        self.jobs_failed_over += rhs.jobs_failed_over;
        self.job_retries += rhs.job_retries;
    }
}

impl SimStats {
    /// Fraction of simulated cycles that were fast-forwarded, in `[0, 1]`.
    #[must_use]
    pub fn skip_fraction(&self) -> f64 {
        if self.cycles_simulated == 0 {
            0.0
        } else {
            self.cycles_skipped as f64 / self.cycles_simulated as f64
        }
    }

    /// Simulated cycles per host-wall-clock second over `elapsed`.
    #[must_use]
    pub fn cycles_per_second(&self, elapsed: Duration) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.cycles_simulated as f64 / secs
        }
    }

    /// Per-stage utilization: busy cycles over simulated cycles, in
    /// pipeline order. Empty when no busy counters were collected.
    #[must_use]
    pub fn utilization(&self) -> Vec<(&'static str, f64)> {
        if self.cycles_simulated == 0 {
            return Vec::new();
        }
        self.stage_busy
            .iter()
            .map(|&(name, busy)| (name, busy as f64 / self.cycles_simulated as f64))
            .collect()
    }

    /// Event-wheel work counters (wakes scheduled/fired, slots skipped).
    #[must_use]
    pub fn wheel(&self) -> WheelStats {
        self.wheel
    }

    /// Soft-error resilience counters (injection/detection/recovery).
    #[must_use]
    pub fn recovery(&self) -> RecoveryStats {
        self.recovery
    }

    /// p50/p95/p99 of the three per-instruction latency legs.
    #[must_use]
    pub fn latency_snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            issue_to_dispatch: self.lat_issue_dispatch.percentiles(),
            dispatch_to_retire: self.lat_dispatch_retire.percentiles(),
            issue_to_retire: self.lat_issue_retire.percentiles(),
        }
    }
}

// Shard-level rollups (e.g. a farm of coprocessors) sum per-shard stats.
// Stage-eval counters are merged *by stage name*: homogeneous shards share
// a pipeline and zip cleanly, while heterogeneous shards contribute their
// extra stages at the end in first-seen order.
impl std::ops::AddAssign<&SimStats> for SimStats {
    fn add_assign(&mut self, rhs: &SimStats) {
        self.cycles_simulated += rhs.cycles_simulated;
        self.cycles_stepped += rhs.cycles_stepped;
        self.cycles_skipped += rhs.cycles_skipped;
        for &(name, n) in &rhs.stage_evals {
            match self.stage_evals.iter_mut().find(|(s, _)| *s == name) {
                Some((_, total)) => *total += n,
                None => self.stage_evals.push((name, n)),
            }
        }
        for &(name, n) in &rhs.stage_busy {
            match self.stage_busy.iter_mut().find(|(s, _)| *s == name) {
                Some((_, total)) => *total += n,
                None => self.stage_busy.push((name, n)),
            }
        }
        self.lat_issue_dispatch += &rhs.lat_issue_dispatch;
        self.lat_dispatch_retire += &rhs.lat_dispatch_retire;
        self.lat_issue_retire += &rhs.lat_issue_retire;
        self.wheel += &rhs.wheel;
        self.recovery += &rhs.recovery;
    }
}

impl std::ops::AddAssign for SimStats {
    fn add_assign(&mut self, rhs: SimStats) {
        *self += &rhs;
    }
}

impl std::ops::Add for SimStats {
    type Output = SimStats;

    fn add(mut self, rhs: SimStats) -> SimStats {
        self += &rhs;
        self
    }
}

impl std::iter::Sum for SimStats {
    fn sum<I: Iterator<Item = SimStats>>(iter: I) -> SimStats {
        iter.fold(SimStats::default(), |acc, s| acc + s)
    }
}

impl<'a> std::iter::Sum<&'a SimStats> for SimStats {
    fn sum<I: Iterator<Item = &'a SimStats>>(iter: I) -> SimStats {
        iter.fold(SimStats::default(), |mut acc, s| {
            acc += s;
            acc
        })
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sim: {} cycles ({} stepped, {} skipped, {:.1}% fast-forwarded)",
            self.cycles_simulated,
            self.cycles_stepped,
            self.cycles_skipped,
            self.skip_fraction() * 100.0
        )?;
        if !self.stage_evals.is_empty() {
            write!(f, "; stage evals:")?;
            for (name, n) in &self.stage_evals {
                write!(f, " {name}={n}")?;
            }
        }
        if self.wheel.wakes_scheduled > 0 {
            write!(
                f,
                "; wheel: {} wakes scheduled, {} fired, {} slots skipped",
                self.wheel.wakes_scheduled, self.wheel.wakes_fired, self.wheel.slots_skipped
            )?;
        }
        if self.recovery.seus_injected > 0 || self.recovery.rollbacks > 0 {
            write!(
                f,
                "; seu: {} injected, {} detected, {} corrected, {} rollbacks ({} cycles lost)",
                self.recovery.seus_injected,
                self.recovery.seus_detected,
                self.recovery.seus_corrected,
                self.recovery.rollbacks,
                self.recovery.cycles_lost
            )?;
        }
        if self.lat_issue_retire.count() > 0 {
            let p = self.lat_issue_retire.percentiles();
            write!(
                f,
                "; issue->retire p50<={} p95<={} p99<={} ({} instrs)",
                p.p50,
                p.p95,
                p.p99,
                self.lat_issue_retire.count()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_stats_ratios() {
        let s = SimStats {
            cycles_simulated: 1000,
            cycles_stepped: 250,
            cycles_skipped: 750,
            stage_evals: vec![("decode", 40)],
            ..SimStats::default()
        };
        assert_eq!(s.skip_fraction(), 0.75);
        assert_eq!(s.cycles_per_second(Duration::from_secs(2)), 500.0);
        let text = s.to_string();
        assert!(text.contains("75.0% fast-forwarded"), "{text}");
        assert!(text.contains("decode=40"), "{text}");
    }

    #[test]
    fn sim_stats_sum_merges_stages_by_name() {
        let mut a = SimStats {
            cycles_simulated: 100,
            cycles_stepped: 60,
            cycles_skipped: 40,
            stage_evals: vec![("decode", 10), ("dispatch", 5)],
            stage_busy: vec![("decode", 8), ("dispatch", 4)],
            ..SimStats::default()
        };
        a.lat_issue_retire.record(5);
        let mut b = SimStats {
            cycles_simulated: 50,
            cycles_stepped: 50,
            cycles_skipped: 0,
            stage_evals: vec![("decode", 3), ("encode", 7)],
            stage_busy: vec![("decode", 2), ("encode", 6)],
            ..SimStats::default()
        };
        b.lat_issue_retire.record(9);
        let total: SimStats = [a.clone(), b].into_iter().sum();
        assert_eq!(total.cycles_simulated, 150);
        assert_eq!(total.cycles_stepped, 110);
        assert_eq!(total.cycles_skipped, 40);
        assert_eq!(
            total.stage_evals,
            vec![("decode", 13), ("dispatch", 5), ("encode", 7)]
        );
        assert_eq!(
            total.stage_busy,
            vec![("decode", 10), ("dispatch", 4), ("encode", 6)]
        );
        assert_eq!(total.lat_issue_retire.count(), 2);
        assert_eq!(total.lat_issue_retire.max(), 9);
        // Identity element.
        assert_eq!(a.clone() + SimStats::default(), a);
    }

    #[test]
    fn latency_histogram_buckets_and_percentiles() {
        let mut h = LatencyHistogram::default();
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.percentiles(), Percentiles::default());
        // 90 fast samples, 10 slow ones.
        for _ in 0..90 {
            h.record(3);
        }
        for _ in 0..10 {
            h.record(100);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - (90.0 * 3.0 + 10.0 * 100.0) / 100.0).abs() < 1e-9);
        // 3 lives in bucket [2,4) -> upper bound 3; 100 in [64,128) -> 127,
        // clamped to the observed max of 100.
        assert_eq!(h.percentile(0.50), 3);
        assert_eq!(h.percentile(0.90), 3);
        assert_eq!(h.percentile(0.95), 100);
        assert_eq!(h.percentile(0.99), 100);
        let p = h.percentiles();
        assert!(p.p50 <= p.p95 && p.p95 <= p.p99);
    }

    #[test]
    fn latency_histogram_edge_values() {
        let mut h = LatencyHistogram::default();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        assert_eq!(h.count(), 3);
        // Zero lands in bucket 0; percentile of the first sample is 0.
        assert_eq!(h.percentile(0.01), 0);
        // The overflow bucket clamps to the observed max.
        assert_eq!(h.percentile(1.0), u64::MAX);
        // Merge is element-wise and keeps the max.
        let mut m = LatencyHistogram::default();
        m += &h;
        m += &h;
        assert_eq!(m.count(), 6);
        assert_eq!(m.max(), u64::MAX);
    }

    #[test]
    fn utilization_and_snapshot() {
        let mut s = SimStats {
            cycles_simulated: 100,
            cycles_stepped: 100,
            cycles_skipped: 0,
            stage_busy: vec![("decode", 25), ("dispatch", 50)],
            ..SimStats::default()
        };
        for v in [1u64, 2, 3, 4] {
            s.lat_issue_retire.record(v);
        }
        let u = s.utilization();
        assert_eq!(u, vec![("decode", 0.25), ("dispatch", 0.5)]);
        let snap = s.latency_snapshot();
        assert_eq!(snap.issue_to_dispatch, Percentiles::default());
        assert!(snap.issue_to_retire.p99 >= snap.issue_to_retire.p50);
        assert_eq!(SimStats::default().utilization(), Vec::new());
        let text = s.to_string();
        assert!(text.contains("issue->retire p50<="), "{text}");
    }

    #[test]
    fn wheel_counters_roll_up_and_display() {
        let mut a = SimStats {
            cycles_simulated: 10,
            wheel: WheelStats {
                wakes_scheduled: 4,
                wakes_fired: 3,
                slots_skipped: 100,
            },
            ..SimStats::default()
        };
        let b = SimStats {
            wheel: WheelStats {
                wakes_scheduled: 1,
                wakes_fired: 1,
                slots_skipped: 5,
            },
            ..SimStats::default()
        };
        a += &b;
        assert_eq!(a.wheel().wakes_scheduled(), 5);
        assert_eq!(a.wheel().wakes_fired(), 4);
        assert_eq!(a.wheel().slots_skipped(), 105);
        let text = a.to_string();
        assert!(text.contains("5 wakes scheduled"), "{text}");
        // Modes that never schedule stay silent.
        assert!(!SimStats::default().to_string().contains("wheel"));
    }

    #[test]
    fn serve_stats_merge_by_tenant_id() {
        let mut a = ServeStats::default();
        a.tenant_mut(0).submitted = 10;
        a.tenant_mut(0).shed = 2;
        a.tenant_mut(3).submitted = 4;
        a.tenant_mut(3).latency.record(8);
        a.rounds = 2;
        a.dispatched = 12;
        let mut b = ServeStats::default();
        b.tenant_mut(3).submitted = 6;
        b.tenant_mut(3).latency.record(16);
        b.tenant_mut(7).submitted = 1;
        b.rounds = 1;
        b.dispatched = 7;
        let total: ServeStats = [a.clone(), b].iter().sum();
        assert_eq!(total.rounds, 3);
        assert_eq!(total.dispatched, 19);
        assert_eq!(total.tenant(0).unwrap().submitted, 10);
        assert_eq!(total.tenant(3).unwrap().submitted, 10);
        assert_eq!(total.tenant(3).unwrap().latency.count(), 2);
        assert_eq!(total.tenant(7).unwrap().submitted, 1);
        assert_eq!(total.totals().submitted, 21);
        // Identity element.
        assert_eq!(a.clone() + ServeStats::default(), a);
    }

    #[test]
    fn tenant_counters_ratios() {
        let mut c = TenantCounters {
            submitted: 10,
            admitted: 8,
            shed: 2,
            completed: 5,
            failed: 1,
            cancelled: 1,
            ..TenantCounters::default()
        };
        c.latency.record(4);
        assert_eq!(c.shed_rate(), 0.2);
        assert_eq!(c.in_queue(), 1);
        assert_eq!(TenantCounters::default().shed_rate(), 0.0);
    }

    #[test]
    fn sim_stats_zero_safe() {
        let s = SimStats::default();
        assert_eq!(s.skip_fraction(), 0.0);
        assert_eq!(s.cycles_per_second(Duration::ZERO), 0.0);
    }

    #[test]
    fn ratios_handle_zero_cycles() {
        let s = SlotStats::default();
        assert_eq!(s.occupancy(), 0.0);
        assert_eq!(s.throughput(), 0.0);
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn ratios_compute() {
        let s = SlotStats {
            pushes: 10,
            takes: 8,
            cycles: 16,
            occupied_cycles: 8,
            stall_cycles: 2,
        };
        assert_eq!(s.occupancy(), 0.5);
        assert_eq!(s.throughput(), 0.5);
        assert_eq!(s.in_flight(), 2);
    }
}
