//! Occupancy and flow statistics collected by the pipeline primitives,
//! plus scheduler-level counters ([`SimStats`]) reported by designs that
//! support activity-gated stepping and idle fast-forward.

use std::fmt;
use std::time::Duration;

/// Counters maintained by [`crate::HandshakeSlot`] and [`crate::Fifo`].
///
/// `stall_cycles` is only meaningful when the owning design calls
/// `note_stall` (slots cannot themselves observe that a producer *wanted*
/// to push).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotStats {
    /// Items handed to the slot.
    pub pushes: u64,
    /// Items removed from the slot.
    pub takes: u64,
    /// Clock edges seen since reset.
    pub cycles: u64,
    /// Clock edges at which the slot held data.
    pub occupied_cycles: u64,
    /// Cycles at which a producer reported being blocked.
    pub stall_cycles: u64,
}

impl SlotStats {
    /// Fraction of cycles the slot held data, in `[0, 1]`.
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.occupied_cycles as f64 / self.cycles as f64
        }
    }

    /// Items per cycle actually delivered downstream.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.takes as f64 / self.cycles as f64
        }
    }

    /// Items currently in flight (pushed but not yet taken).
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.pushes - self.takes
    }
}

/// Scheduler-level counters for an activity-aware simulation.
///
/// `cycles_simulated` is the authoritative simulated-time clock:
/// `cycles_stepped` of those ran through the full evaluate/commit loop and
/// `cycles_skipped` were fast-forwarded while the design was provably
/// idle. The two partitions always sum to `cycles_simulated`, and all
/// architecturally visible state is identical whether a span of cycles
/// was stepped or skipped.
///
/// `stage_evals` counts how often each named pipeline stage's evaluate
/// function actually ran; with activity gating enabled these fall well
/// below `cycles_stepped` on sparse workloads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total simulated cycles (stepped + skipped).
    pub cycles_simulated: u64,
    /// Cycles run through the full evaluate/commit loop.
    pub cycles_stepped: u64,
    /// Cycles fast-forwarded without evaluating any stage.
    pub cycles_skipped: u64,
    /// Per-stage evaluate counts, in pipeline order.
    pub stage_evals: Vec<(&'static str, u64)>,
}

impl SimStats {
    /// Fraction of simulated cycles that were fast-forwarded, in `[0, 1]`.
    #[must_use]
    pub fn skip_fraction(&self) -> f64 {
        if self.cycles_simulated == 0 {
            0.0
        } else {
            self.cycles_skipped as f64 / self.cycles_simulated as f64
        }
    }

    /// Simulated cycles per host-wall-clock second over `elapsed`.
    #[must_use]
    pub fn cycles_per_second(&self, elapsed: Duration) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.cycles_simulated as f64 / secs
        }
    }
}

// Shard-level rollups (e.g. a farm of coprocessors) sum per-shard stats.
// Stage-eval counters are merged *by stage name*: homogeneous shards share
// a pipeline and zip cleanly, while heterogeneous shards contribute their
// extra stages at the end in first-seen order.
impl std::ops::AddAssign<&SimStats> for SimStats {
    fn add_assign(&mut self, rhs: &SimStats) {
        self.cycles_simulated += rhs.cycles_simulated;
        self.cycles_stepped += rhs.cycles_stepped;
        self.cycles_skipped += rhs.cycles_skipped;
        for &(name, n) in &rhs.stage_evals {
            match self.stage_evals.iter_mut().find(|(s, _)| *s == name) {
                Some((_, total)) => *total += n,
                None => self.stage_evals.push((name, n)),
            }
        }
    }
}

impl std::ops::AddAssign for SimStats {
    fn add_assign(&mut self, rhs: SimStats) {
        *self += &rhs;
    }
}

impl std::ops::Add for SimStats {
    type Output = SimStats;

    fn add(mut self, rhs: SimStats) -> SimStats {
        self += &rhs;
        self
    }
}

impl std::iter::Sum for SimStats {
    fn sum<I: Iterator<Item = SimStats>>(iter: I) -> SimStats {
        iter.fold(SimStats::default(), |acc, s| acc + s)
    }
}

impl<'a> std::iter::Sum<&'a SimStats> for SimStats {
    fn sum<I: Iterator<Item = &'a SimStats>>(iter: I) -> SimStats {
        iter.fold(SimStats::default(), |mut acc, s| {
            acc += s;
            acc
        })
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sim: {} cycles ({} stepped, {} skipped, {:.1}% fast-forwarded)",
            self.cycles_simulated,
            self.cycles_stepped,
            self.cycles_skipped,
            self.skip_fraction() * 100.0
        )?;
        if !self.stage_evals.is_empty() {
            write!(f, "; stage evals:")?;
            for (name, n) in &self.stage_evals {
                write!(f, " {name}={n}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_stats_ratios() {
        let s = SimStats {
            cycles_simulated: 1000,
            cycles_stepped: 250,
            cycles_skipped: 750,
            stage_evals: vec![("decode", 40)],
        };
        assert_eq!(s.skip_fraction(), 0.75);
        assert_eq!(s.cycles_per_second(Duration::from_secs(2)), 500.0);
        let text = s.to_string();
        assert!(text.contains("75.0% fast-forwarded"), "{text}");
        assert!(text.contains("decode=40"), "{text}");
    }

    #[test]
    fn sim_stats_sum_merges_stages_by_name() {
        let a = SimStats {
            cycles_simulated: 100,
            cycles_stepped: 60,
            cycles_skipped: 40,
            stage_evals: vec![("decode", 10), ("dispatch", 5)],
        };
        let b = SimStats {
            cycles_simulated: 50,
            cycles_stepped: 50,
            cycles_skipped: 0,
            stage_evals: vec![("decode", 3), ("encode", 7)],
        };
        let total: SimStats = [a.clone(), b].into_iter().sum();
        assert_eq!(total.cycles_simulated, 150);
        assert_eq!(total.cycles_stepped, 110);
        assert_eq!(total.cycles_skipped, 40);
        assert_eq!(
            total.stage_evals,
            vec![("decode", 13), ("dispatch", 5), ("encode", 7)]
        );
        // Identity element.
        assert_eq!(a.clone() + SimStats::default(), a);
    }

    #[test]
    fn sim_stats_zero_safe() {
        let s = SimStats::default();
        assert_eq!(s.skip_fraction(), 0.0);
        assert_eq!(s.cycles_per_second(Duration::ZERO), 0.0);
    }

    #[test]
    fn ratios_handle_zero_cycles() {
        let s = SlotStats::default();
        assert_eq!(s.occupancy(), 0.0);
        assert_eq!(s.throughput(), 0.0);
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn ratios_compute() {
        let s = SlotStats {
            pushes: 10,
            takes: 8,
            cycles: 16,
            occupied_cycles: 8,
            stall_cycles: 2,
        };
        assert_eq!(s.occupancy(), 0.5);
        assert_eq!(s.throughput(), 0.5);
        assert_eq!(s.in_flight(), 2);
    }
}
