//! Occupancy and flow statistics collected by the pipeline primitives.

/// Counters maintained by [`crate::HandshakeSlot`] and [`crate::Fifo`].
///
/// `stall_cycles` is only meaningful when the owning design calls
/// `note_stall` (slots cannot themselves observe that a producer *wanted*
/// to push).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotStats {
    /// Items handed to the slot.
    pub pushes: u64,
    /// Items removed from the slot.
    pub takes: u64,
    /// Clock edges seen since reset.
    pub cycles: u64,
    /// Clock edges at which the slot held data.
    pub occupied_cycles: u64,
    /// Cycles at which a producer reported being blocked.
    pub stall_cycles: u64,
}

impl SlotStats {
    /// Fraction of cycles the slot held data, in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.occupied_cycles as f64 / self.cycles as f64
        }
    }

    /// Items per cycle actually delivered downstream.
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.takes as f64 / self.cycles as f64
        }
    }

    /// Items currently in flight (pushed but not yet taken).
    pub fn in_flight(&self) -> u64 {
        self.pushes - self.takes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_cycles() {
        let s = SlotStats::default();
        assert_eq!(s.occupancy(), 0.0);
        assert_eq!(s.throughput(), 0.0);
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn ratios_compute() {
        let s = SlotStats {
            pushes: 10,
            takes: 8,
            cycles: 16,
            occupied_cycles: 8,
            stall_cycles: 2,
        };
        assert_eq!(s.occupancy(), 0.5);
        assert_eq!(s.throughput(), 0.5);
        assert_eq!(s.in_flight(), 2);
    }
}
