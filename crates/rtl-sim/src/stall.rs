//! Deterministic backpressure fuzzing.
//!
//! The paper's pipeline uses purely local handshakes, so its correctness
//! argument is that *any* pattern of stage stalls preserves the instruction
//! stream. Tests exercise that claim by injecting random stalls at module
//! boundaries with a [`StallFuzzer`]: a small, seeded PRNG (SplitMix64 /
//! xorshift*) so the kernel itself needs no external dependencies and every
//! failure is reproducible from its seed.

/// A seeded Bernoulli stall generator.
#[derive(Debug, Clone)]
pub struct StallFuzzer {
    state: u64,
    /// Probability of stalling in a given cycle, as numerator over 2^16.
    stall_num: u32,
}

impl StallFuzzer {
    /// A fuzzer that stalls with probability `p` (clamped to `[0, 1]`).
    pub fn new(seed: u64, p: f64) -> Self {
        let p = p.clamp(0.0, 1.0);
        StallFuzzer {
            // SplitMix64 seeding avoids the all-zeros fixed point.
            state: splitmix64(seed ^ 0x9e37_79b9_7f4a_7c15),
            stall_num: (p * 65536.0) as u32,
        }
    }

    /// A fuzzer that never stalls.
    pub fn never() -> Self {
        StallFuzzer::new(0, 0.0)
    }

    /// Draw the next raw 64-bit value (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// True when this cycle should stall.
    pub fn stall(&mut self) -> bool {
        if self.stall_num == 0 {
            return false;
        }
        ((self.next_u64() >> 16) & 0xffff) < self.stall_num as u64
    }

    /// A uniformly random value in `[0, bound)` (for workload generators).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        // Multiply-shift range reduction; bias is negligible for the test
        // workloads this drives.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_never_stalls() {
        let mut f = StallFuzzer::never();
        assert!((0..1000).all(|_| !f.stall()));
    }

    #[test]
    fn always_always_stalls() {
        let mut f = StallFuzzer::new(42, 1.0);
        assert!((0..1000).all(|_| f.stall()));
    }

    #[test]
    fn rate_is_approximately_honoured() {
        let mut f = StallFuzzer::new(7, 0.25);
        let stalls = (0..100_000).filter(|_| f.stall()).count();
        let rate = stalls as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.02, "observed stall rate {rate}");
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StallFuzzer::new(123, 0.5);
        let mut b = StallFuzzer::new(123, 0.5);
        for _ in 0..100 {
            assert_eq!(a.stall(), b.stall());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StallFuzzer::new(1, 0.5);
        let mut b = StallFuzzer::new(2, 0.5);
        let same = (0..256).filter(|_| a.stall() == b.stall()).count();
        assert!(
            same < 256,
            "distinct seeds must not produce identical streams"
        );
    }

    #[test]
    fn below_respects_bound() {
        let mut f = StallFuzzer::new(9, 0.0);
        for _ in 0..10_000 {
            assert!(f.below(17) < 17);
        }
        // All residues should occur for a small bound.
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[f.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut f = StallFuzzer::new(0, 0.5);
        let v: Vec<u64> = (0..8).map(|_| f.next_u64()).collect();
        assert!(
            v.iter().any(|&x| x != 0),
            "seed 0 must not collapse to zeros"
        );
    }
}
