//! Elastic pipeline registers with local valid/ready handshaking.
//!
//! The RTM pipeline in the paper "was designed with most registers at the
//! end of the pipeline stages" and "handshaking is used to control
//! transmission of data between pipeline stages. This allows local control
//! to stall the transmission when necessary; there is no global control for
//! stalling the pipeline."
//!
//! [`HandshakeSlot`] is exactly one such register: a single-entry elastic
//! buffer sitting between a producer stage and a consumer stage.
//!
//! # Evaluation order and throughput
//!
//! Within one evaluate phase:
//!
//! * the **consumer** calls [`HandshakeSlot::peek`] / [`HandshakeSlot::take`];
//! * the **producer** calls [`HandshakeSlot::can_push`] / [`HandshakeSlot::push`].
//!
//! If the consumer is evaluated *before* the producer (sink-to-source order,
//! the convention used throughout this reproduction), a slot freed in cycle
//! *t* accepts new data in the same cycle, so a linear pipeline sustains one
//! item per cycle — this models the combinational ready chain of the VHDL
//! design. If the producer happens to be evaluated first, the slot behaves
//! like a conservatively registered ready (half throughput under continuous
//! pressure), which is also a legal hardware implementation; designs pick
//! the order they intend and document it.

use crate::component::Clocked;
use crate::stats::SlotStats;

/// A single-entry elastic buffer between two pipeline stages.
///
/// ```
/// use rtl_sim::{Clocked, HandshakeSlot};
///
/// let mut slot = HandshakeSlot::new();
/// slot.push(42u32);              // producer stage, cycle t
/// assert!(slot.peek().is_none()); // not yet visible: the register
/// slot.commit();                  // clock edge
/// assert_eq!(slot.take(), Some(42)); // consumer stage, cycle t+1
/// ```
#[derive(Debug, Clone, Default)]
pub struct HandshakeSlot<T> {
    cur: Option<T>,
    incoming: Option<T>,
    stats: SlotStats,
}

impl<T> HandshakeSlot<T> {
    /// An empty slot.
    pub fn new() -> Self {
        HandshakeSlot {
            cur: None,
            incoming: None,
            stats: SlotStats::default(),
        }
    }

    /// The item currently held, if any (consumer side).
    pub fn peek(&self) -> Option<&T> {
        self.cur.as_ref()
    }

    /// True if the slot holds an item the consumer could take this cycle.
    pub fn has_data(&self) -> bool {
        self.cur.is_some()
    }

    /// Remove and return the held item (consumer side). Returns `None` when
    /// the slot is empty; a stage that polls an empty slot simply idles.
    pub fn take(&mut self) -> Option<T> {
        let v = self.cur.take();
        if v.is_some() {
            self.stats.takes += 1;
        }
        v
    }

    /// Remove the held item only when `pred` accepts it (consumer side).
    /// Useful for stages that must inspect the head before committing to
    /// consume it (e.g. the dispatcher refusing an op whose registers are
    /// locked).
    pub fn take_if(&mut self, pred: impl FnOnce(&T) -> bool) -> Option<T> {
        if self.cur.as_ref().is_some_and(pred) {
            self.take()
        } else {
            None
        }
    }

    /// True if a `push` this cycle will be accepted (producer side).
    pub fn can_push(&self) -> bool {
        self.cur.is_none() && self.incoming.is_none()
    }

    /// Hand an item to the slot (producer side). The item becomes visible
    /// to the consumer after the next [`Clocked::commit`], modelling the
    /// register at the end of the producing stage.
    ///
    /// # Panics
    /// Panics if [`HandshakeSlot::can_push`] is false — pushing into an
    /// occupied register is a design bug, not a runtime condition.
    pub fn push(&mut self, v: T) {
        assert!(
            self.can_push(),
            "HandshakeSlot::push while occupied (missing can_push check)"
        );
        self.stats.pushes += 1;
        self.incoming = Some(v);
    }

    /// Occupancy snapshot: `(held, staged)`.
    pub fn occupancy(&self) -> (bool, bool) {
        (self.cur.is_some(), self.incoming.is_some())
    }

    /// True when neither a held nor a staged item exists — the slot holds
    /// no work at all. A pipeline is drained when every slot is idle.
    pub fn is_idle(&self) -> bool {
        self.cur.is_none() && self.incoming.is_none()
    }

    /// Lifetime statistics (pushes, takes, stall cycles).
    pub fn stats(&self) -> &SlotStats {
        &self.stats
    }

    /// Record one cycle of stall accounting: call once per cycle from the
    /// owning design if the producer had data but `can_push` was false.
    pub fn note_stall(&mut self) {
        self.stats.stall_cycles += 1;
    }

    /// Account for `n` fast-forwarded idle cycles without running commits.
    ///
    /// Equivalent to calling [`Clocked::commit`] `n` times while the slot
    /// is idle: only `stats.cycles` advances (an empty slot accrues no
    /// occupancy). Callers must only invoke this while
    /// [`HandshakeSlot::is_idle`] holds.
    pub fn note_idle_cycles(&mut self, n: u64) {
        debug_assert!(
            self.is_idle(),
            "note_idle_cycles on a non-idle HandshakeSlot"
        );
        self.stats.cycles += n;
    }

    /// Account for `n` fast-forwarded cycles during which the slot held
    /// an item that its consumer provably could not take (a stalled
    /// head). Equivalent to `n` commits with an occupied register and no
    /// staged value: `cycles` and `occupied_cycles` both advance.
    /// Callers must only invoke this while the slot holds data and
    /// nothing is staged.
    pub fn note_held_cycles(&mut self, n: u64) {
        debug_assert!(
            self.cur.is_some() && self.incoming.is_none(),
            "note_held_cycles needs a held item and no staged push"
        );
        self.stats.cycles += n;
        self.stats.occupied_cycles += n;
    }
}

impl<T> Clocked for HandshakeSlot<T> {
    fn commit(&mut self) {
        if self.cur.is_none() {
            self.cur = self.incoming.take();
        }
        // If the consumer did not take this cycle, `cur` stays put and
        // `incoming` is necessarily `None` (push required can_push).
        debug_assert!(self.cur.is_none() || self.incoming.is_none());
        self.stats.cycles += 1;
        if self.cur.is_some() {
            self.stats.occupied_cycles += 1;
        }
    }

    fn reset(&mut self) {
        self.cur = None;
        self.incoming = None;
        self.stats = SlotStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let s: HandshakeSlot<u32> = HandshakeSlot::new();
        assert!(s.can_push());
        assert!(!s.has_data());
        assert!(s.is_idle());
        assert_eq!(s.peek(), None);
    }

    #[test]
    fn push_becomes_visible_after_commit() {
        let mut s = HandshakeSlot::new();
        s.push(7u32);
        assert!(
            !s.has_data(),
            "pushed value must not be combinationally visible"
        );
        assert!(
            !s.is_idle(),
            "a staged value still counts as work in flight"
        );
        s.commit();
        assert_eq!(s.peek(), Some(&7));
        assert_eq!(s.take(), Some(7));
        assert!(s.take().is_none());
    }

    #[test]
    fn sink_first_order_gives_full_throughput() {
        // Consumer evaluated before producer: one item per cycle.
        let mut s = HandshakeSlot::new();
        let mut produced = 0u32;
        let mut consumed = Vec::new();
        for _cycle in 0..10 {
            // consumer
            if let Some(v) = s.take() {
                consumed.push(v);
            }
            // producer
            if s.can_push() {
                s.push(produced);
                produced += 1;
            }
            s.commit();
        }
        // After the 1-cycle fill latency the pipeline moves 1 item/cycle.
        assert_eq!(consumed, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn source_first_order_gives_half_throughput() {
        let mut s = HandshakeSlot::new();
        let mut produced = 0u32;
        let mut consumed = Vec::new();
        for _cycle in 0..10 {
            // producer evaluated first: sees the un-taken value from the
            // previous cycle and stalls.
            if s.can_push() {
                s.push(produced);
                produced += 1;
            }
            if let Some(v) = s.take() {
                consumed.push(v);
            }
            s.commit();
        }
        assert_eq!(consumed.len(), 5, "registered-ready slot halves throughput");
        assert_eq!(consumed, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn stalled_consumer_blocks_producer() {
        let mut s = HandshakeSlot::new();
        s.push(1u32);
        s.commit();
        // Consumer never takes; producer must see a full slot.
        assert!(!s.can_push());
        s.commit();
        assert!(!s.can_push());
        assert_eq!(s.peek(), Some(&1));
    }

    #[test]
    #[should_panic(expected = "HandshakeSlot::push")]
    fn double_push_panics() {
        let mut s = HandshakeSlot::new();
        s.push(1u32);
        s.push(2u32);
    }

    #[test]
    fn take_if_only_consumes_on_predicate() {
        let mut s = HandshakeSlot::new();
        s.push(10u32);
        s.commit();
        assert_eq!(s.take_if(|v| *v > 100), None);
        assert!(s.has_data(), "rejected head must stay in the slot");
        assert_eq!(s.take_if(|v| *v == 10), Some(10));
        assert!(!s.has_data());
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = HandshakeSlot::new();
        s.push(1u32);
        s.commit();
        s.take();
        s.push(2u32);
        s.reset();
        assert!(s.is_idle());
        assert_eq!(s.stats().pushes, 0);
    }

    #[test]
    fn stats_track_occupancy() {
        let mut s = HandshakeSlot::new();
        s.push(1u32);
        s.commit(); // occupied
        s.commit(); // still occupied (no take)
        s.take();
        s.commit(); // empty
        assert_eq!(s.stats().cycles, 3);
        assert_eq!(s.stats().occupied_cycles, 2);
        assert_eq!(s.stats().pushes, 1);
        assert_eq!(s.stats().takes, 1);
    }
}
