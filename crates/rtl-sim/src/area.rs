//! Coarse area and critical-path model.
//!
//! The paper's implementation targets an Altera Cyclone (EP1C-class)
//! device; its introduction argues that "the ratio between the number of
//! components and the critical path depth may be between 10^3 to 10^5",
//! and Section III that pipelining keeps the controller's critical path
//! short so the RTM "should allow the fastest clock speed that the FPGA
//! allows".
//!
//! To let experiments report those quantities, every simulated module
//! exposes an [`AreaEstimate`] (logic elements, flip-flops, block-RAM
//! bits) and a [`CriticalPath`] (4-input-LUT levels of its worst
//! combinational path). The estimates use standard rules of thumb for
//! 4-LUT architectures:
//!
//! * an n-bit ripple/carry-select adder ≈ n LEs, depth ≈ n/4 levels with
//!   dedicated carry chains (Cyclone has hardware carry chains, so depth
//!   counts as `1 + n/16` levels for timing purposes);
//! * an n-bit 2:1 mux ≈ n/2 LEs (two mux bits per 4-LUT), 1 level;
//! * an n-bit comparator ≈ n/2 LEs, depth like an adder;
//! * a k-input reduction tree over n inputs has `ceil(log_k n)` levels.
//!
//! These are *estimates for shape*, not synthesis results: every claim in
//! the experiments depends on ratios and growth rates, never on absolute
//! LE counts.

/// FPGA resource estimate for one module (additive across submodules).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AreaEstimate {
    /// 4-input logic elements (LUT+FF pairs counted as logic).
    pub les: u64,
    /// Flip-flops (registers).
    pub ffs: u64,
    /// Block-RAM bits (M4K blocks on Cyclone).
    pub bram_bits: u64,
}

impl AreaEstimate {
    /// The empty estimate.
    pub const ZERO: AreaEstimate = AreaEstimate {
        les: 0,
        ffs: 0,
        bram_bits: 0,
    };

    /// Component count in the paper's sense: every logic element and
    /// register is a component operating in parallel.
    pub fn components(&self) -> u64 {
        self.les + self.ffs
    }

    /// An n-bit register bank.
    pub fn register(bits: u64) -> AreaEstimate {
        AreaEstimate {
            les: 0,
            ffs: bits,
            bram_bits: 0,
        }
    }

    /// An n-bit adder/subtractor on a carry-chain fabric.
    pub fn adder(bits: u64) -> AreaEstimate {
        AreaEstimate {
            les: bits,
            ffs: 0,
            bram_bits: 0,
        }
    }

    /// An n-bit equality/magnitude comparator.
    pub fn comparator(bits: u64) -> AreaEstimate {
        AreaEstimate {
            les: bits.div_ceil(2).max(1),
            ffs: 0,
            bram_bits: 0,
        }
    }

    /// An n-bit 2:1 multiplexer.
    pub fn mux2(bits: u64) -> AreaEstimate {
        AreaEstimate {
            les: bits.div_ceil(2).max(1),
            ffs: 0,
            bram_bits: 0,
        }
    }

    /// An n-bit wide, d-deep FIFO implemented in block RAM.
    pub fn fifo(bits_wide: u64, depth: u64) -> AreaEstimate {
        AreaEstimate {
            les: 8 + 2 * log2_ceil(depth.max(2)), // pointers + full/empty logic
            ffs: 2 * log2_ceil(depth.max(2)) + 2,
            bram_bits: bits_wide * depth,
        }
    }

    /// A w-wide, n-deep RAM/register file (registers below 64 words on
    /// Cyclone-class devices; the paper's register file is synthesised
    /// from registers so that three reads and two writes per cycle are
    /// possible).
    pub fn regfile(words: u64, bits: u64, read_ports: u64, write_ports: u64) -> AreaEstimate {
        AreaEstimate {
            // read muxes per port + write decoders
            les: read_ports * words * bits.div_ceil(2) / 2 + write_ports * words,
            ffs: words * bits,
            bram_bits: 0,
        }
    }
}

impl std::ops::Add for AreaEstimate {
    type Output = AreaEstimate;
    fn add(self, rhs: AreaEstimate) -> AreaEstimate {
        AreaEstimate {
            les: self.les + rhs.les,
            ffs: self.ffs + rhs.ffs,
            bram_bits: self.bram_bits + rhs.bram_bits,
        }
    }
}

impl std::ops::AddAssign for AreaEstimate {
    fn add_assign(&mut self, rhs: AreaEstimate) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for AreaEstimate {
    fn sum<I: Iterator<Item = AreaEstimate>>(iter: I) -> AreaEstimate {
        iter.fold(AreaEstimate::ZERO, |a, b| a + b)
    }
}

/// Worst-case combinational depth of a module, in 4-LUT levels.
///
/// The clock period a module permits is proportional to its depth; the
/// module with the largest depth bounds the whole design's clock, which is
/// why the paper pipelines the RTM ("the generic controller is designed to
/// minimise the clock period").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct CriticalPath {
    /// LUT levels on the worst register-to-register path.
    pub levels: u64,
}

impl CriticalPath {
    /// A path of `levels` LUT levels.
    pub fn of(levels: u64) -> CriticalPath {
        CriticalPath { levels }
    }

    /// Depth of an n-bit carry-chain adder (hardware chains make carry
    /// almost free; one level of LUT plus chain segments).
    pub fn adder(bits: u64) -> CriticalPath {
        CriticalPath {
            levels: 1 + bits / 16,
        }
    }

    /// Depth of a balanced reduction tree with `fanin`-input operators
    /// over `inputs` leaves.
    pub fn tree(inputs: u64, fanin: u64) -> CriticalPath {
        assert!(fanin >= 2, "reduction tree fan-in must be at least 2");
        let mut levels = 0;
        let mut n = inputs.max(1);
        while n > 1 {
            n = n.div_ceil(fanin);
            levels += 1;
        }
        CriticalPath { levels }
    }

    /// Sequential composition: both blocks traversed in one cycle.
    pub fn then(self, next: CriticalPath) -> CriticalPath {
        CriticalPath {
            levels: self.levels + next.levels,
        }
    }

    /// Parallel composition: the worse of two parallel paths.
    pub fn max(self, other: CriticalPath) -> CriticalPath {
        CriticalPath {
            levels: self.levels.max(other.levels),
        }
    }

    /// Estimated max clock in MHz on a Cyclone-class device, assuming
    /// ~1.1 ns per LUT level + 2 ns of clocking overhead. Used only to
    /// convert depth reports into the paper's "approximately 50 MHz"
    /// vocabulary.
    pub fn fmax_mhz(&self) -> f64 {
        1000.0 / (2.0 + 1.1 * self.levels.max(1) as f64)
    }
}

/// `ceil(log2(n))` for `n >= 1`.
pub fn log2_ceil(n: u64) -> u64 {
    assert!(n >= 1);
    64 - (n - 1).leading_zeros() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_ceil_basics() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(5), 3);
        assert_eq!(log2_ceil(1024), 10);
        assert_eq!(log2_ceil(1025), 11);
    }

    #[test]
    fn area_addition_is_componentwise() {
        let a = AreaEstimate::adder(32) + AreaEstimate::register(32);
        assert_eq!(a.les, 32);
        assert_eq!(a.ffs, 32);
        assert_eq!(a.components(), 64);
    }

    #[test]
    fn area_sum_over_iterator() {
        let total: AreaEstimate = (0..4).map(|_| AreaEstimate::mux2(32)).sum();
        assert_eq!(total.les, 4 * 16);
    }

    #[test]
    fn fifo_area_uses_bram() {
        let a = AreaEstimate::fifo(64, 16);
        assert_eq!(a.bram_bits, 1024);
        assert!(a.les > 0 && a.ffs > 0);
    }

    #[test]
    fn tree_depth_is_logarithmic() {
        assert_eq!(CriticalPath::tree(1, 2).levels, 0);
        assert_eq!(CriticalPath::tree(2, 2).levels, 1);
        assert_eq!(CriticalPath::tree(8, 2).levels, 3);
        assert_eq!(CriticalPath::tree(9, 2).levels, 4);
        assert_eq!(CriticalPath::tree(64, 4).levels, 3);
    }

    #[test]
    fn composition_rules() {
        let p = CriticalPath::of(2).then(CriticalPath::of(3));
        assert_eq!(p.levels, 5);
        let q = CriticalPath::of(7).max(CriticalPath::of(4));
        assert_eq!(q.levels, 7);
    }

    #[test]
    fn fmax_decreases_with_depth() {
        let fast = CriticalPath::of(3).fmax_mhz();
        let slow = CriticalPath::of(12).fmax_mhz();
        assert!(fast > slow);
        // A handful of levels should land in the tens-of-MHz band the
        // paper's Cyclone prototype reports (~50 MHz).
        let proto = CriticalPath::of(15).fmax_mhz();
        assert!(
            (30.0..80.0).contains(&proto),
            "fmax {proto} MHz out of band"
        );
    }

    #[test]
    fn regfile_area_scales_with_ports() {
        let one = AreaEstimate::regfile(16, 32, 1, 1);
        let three = AreaEstimate::regfile(16, 32, 3, 2);
        assert!(three.les > one.les);
        assert_eq!(one.ffs, 16 * 32);
    }
}
