//! Plain registers and counters with two-phase semantics.

use crate::component::Clocked;

/// A D-type register: reads return the value latched at the previous clock
/// edge; writes become visible at the next edge. Equivalent to the
//  `RegisterNE` blocks of the paper's schematics (register with enable —
/// calling [`Reg::set_next`] is asserting the enable for this cycle).
#[derive(Debug, Clone)]
pub struct Reg<T: Clone> {
    cur: T,
    next: Option<T>,
    reset_val: T,
}

impl<T: Clone> Reg<T> {
    /// A register that resets to `reset_val`.
    pub fn new(reset_val: T) -> Self {
        Reg {
            cur: reset_val.clone(),
            next: None,
            reset_val,
        }
    }

    /// Current (registered) value.
    pub fn get(&self) -> &T {
        &self.cur
    }

    /// Schedule `v` to be latched at the next clock edge. A later
    /// `set_next` in the same cycle wins, mirroring last-assignment-wins in
    /// a VHDL clocked process.
    pub fn set_next(&mut self, v: T) {
        self.next = Some(v);
    }

    /// True if a new value is staged for the next edge.
    pub fn pending(&self) -> bool {
        self.next.is_some()
    }
}

impl<T: Clone> Clocked for Reg<T> {
    fn commit(&mut self) {
        if let Some(v) = self.next.take() {
            self.cur = v;
        }
    }

    fn reset(&mut self) {
        self.cur = self.reset_val.clone();
        self.next = None;
    }
}

/// A saturating event counter for statistics (never wraps).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SatCounter(pub u64);

impl SatCounter {
    /// Increment by one, saturating at `u64::MAX`.
    pub fn bump(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Increment by `n`, saturating.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_latches_at_commit() {
        let mut r = Reg::new(0u32);
        r.set_next(5);
        assert_eq!(*r.get(), 0, "write must not be combinationally visible");
        assert!(r.pending());
        r.commit();
        assert_eq!(*r.get(), 5);
        assert!(!r.pending());
    }

    #[test]
    fn last_write_wins_within_cycle() {
        let mut r = Reg::new(0u32);
        r.set_next(1);
        r.set_next(2);
        r.commit();
        assert_eq!(*r.get(), 2);
    }

    #[test]
    fn commit_without_write_holds_value() {
        let mut r = Reg::new(9u8);
        r.commit();
        assert_eq!(*r.get(), 9);
    }

    #[test]
    fn reset_returns_to_reset_value_and_drops_pending() {
        let mut r = Reg::new(3u8);
        r.set_next(7);
        r.commit();
        r.set_next(8);
        r.reset();
        assert_eq!(*r.get(), 3);
        r.commit();
        assert_eq!(*r.get(), 3, "pending write must be discarded by reset");
    }

    #[test]
    fn sat_counter_saturates() {
        let mut c = SatCounter(u64::MAX - 1);
        c.bump();
        c.bump();
        c.add(100);
        assert_eq!(c.get(), u64::MAX);
    }
}
