//! `rtl-sim` — a synchronous, cycle-accurate RTL-style simulation kernel.
//!
//! This crate is the substrate on which the FPGA coprocessor framework of
//! Koltes & O'Donnell (IPDPS 2010) is reproduced in Rust. The original
//! system is a set of generic VHDL modules; here we provide the handful of
//! hardware idioms those modules are built from:
//!
//! * **Two-phase simulation** — every stateful element separates *evaluate*
//!   (compute next state from the currently visible state of the design)
//!   from *commit* (latch next state at the clock edge). A simulation cycle
//!   evaluates all components and then commits all components, exactly like
//!   a synchronous netlist.
//! * **Elastic handshake registers** ([`HandshakeSlot`]) — the paper places
//!   "most registers at the end of the pipeline stages" and uses local
//!   valid/ready handshaking so that "there is no global control for
//!   stalling the pipeline". A `HandshakeSlot` is one such pipeline
//!   register: a single-entry buffer with `push`/`take` semantics that gives
//!   full throughput when stages are evaluated sink-to-source.
//! * **FIFOs** ([`Fifo`]) — the performance-optimised functional-unit
//!   skeleton of the paper buffers operands and results in on-chip SRAM
//!   FIFOs.
//! * **Registers and counters** ([`Reg`], [`SatCounter`]).
//! * **Tracing** ([`trace`]) — an event trace and a minimal VCD writer for
//!   debugging pipelines.
//! * **Area and critical-path model** ([`area`]) — coarse Cyclone-class
//!   LE/FF/BRAM estimates so experiments can report the component counts
//!   and combinational depths the paper reasons about.
//! * **Backpressure fuzzing** ([`stall`]) — seeded random stall generators
//!   used by tests to exercise the local handshake protocol.
//!
//! The kernel deliberately contains **no threads and no global scheduler
//! magic**: a design is an ordinary Rust struct owning its registers, and
//! its `step` method evaluates its stages in an explicit, documented order.
//! This keeps simulations deterministic and borrow-checker friendly while
//! remaining faithful to the cycle-level behaviour of the VHDL original.

pub mod area;
pub mod component;
pub mod fifo;
pub mod handshake;
pub mod reg;
pub mod stall;
pub mod stats;
pub mod trace;
pub mod wheel;

pub use area::{AreaEstimate, CriticalPath};
pub use component::{Clocked, SimError};
pub use fifo::Fifo;
pub use handshake::HandshakeSlot;
pub use reg::{Reg, SatCounter};
pub use stall::StallFuzzer;
pub use stats::{
    LatencyHistogram, LatencySnapshot, Percentiles, RecoveryStats, ServeStats, SimStats, SlotStats,
    TenantCounters,
};
pub use trace::{LinkDir, StallCause, TraceBuffer, TraceEvent, TraceEventKind, VcdWriter};
pub use wheel::{TimingWheel, WheelStats};
