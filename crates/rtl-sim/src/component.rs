//! The two-phase clocking discipline shared by every simulated component.
//!
//! A synchronous circuit computes all next-state values from the *current*
//! state (evaluate phase) and then latches them simultaneously at the clock
//! edge (commit phase). Splitting the two phases is what makes the
//! simulation order-independent for registered signals; for *combinational*
//! paths (handshake `take`/`push` within one cycle) the evaluation order of
//! stages encodes the direction in which ready/valid information flows, and
//! designs document that order explicitly.

use std::fmt;

/// A component driven by the (single) system clock.
///
/// Implementations must only mutate state that is *invisible* to other
/// components during the evaluate phase; externally visible state changes
/// happen in [`Clocked::commit`]. The building blocks in this crate
/// ([`crate::HandshakeSlot`], [`crate::Fifo`], [`crate::Reg`]) already obey
/// the discipline, so a composite component that only mutates through them
/// is automatically well-behaved.
pub trait Clocked {
    /// Latch next-state values (clock edge).
    fn commit(&mut self);

    /// Return to the power-on state (synchronous reset, as in the paper's
    /// functional-unit skeletons where `reset` forces the FSM to `Idle`).
    fn reset(&mut self);
}

/// Errors raised by the simulation kernel when a design violates a
/// protocol invariant (double-push into an occupied slot, FIFO overflow,
/// and similar). These are bugs in the simulated design, not recoverable
/// runtime conditions, so most building blocks panic in debug builds; the
/// error type exists for the checked (`try_*`) entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// `push` on a slot or FIFO that cannot accept data this cycle.
    Overflow(&'static str),
    /// `take`/`pop` on an empty slot or FIFO.
    Underflow(&'static str),
    /// A configuration parameter was out of the range the hardware
    /// generics would accept.
    Config(String),
    /// The simulation ran past a cycle budget without reaching the
    /// expected condition (usually a deadlocked handshake).
    Timeout { cycles: u64, waiting_for: String },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Overflow(what) => write!(f, "overflow: push into full {what}"),
            SimError::Underflow(what) => write!(f, "underflow: take from empty {what}"),
            SimError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::Timeout {
                cycles,
                waiting_for,
            } => write!(f, "timeout after {cycles} cycles waiting for {waiting_for}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_error_display_is_informative() {
        let e = SimError::Overflow("decoder slot");
        assert!(e.to_string().contains("decoder slot"));
        let e = SimError::Timeout {
            cycles: 99,
            waiting_for: "write arbiter ack".into(),
        };
        let s = e.to_string();
        assert!(s.contains("99") && s.contains("write arbiter ack"));
        let e = SimError::Config("word size must be a multiple of 32".into());
        assert!(e.to_string().contains("multiple of 32"));
        let e = SimError::Underflow("fifo");
        assert!(e.to_string().contains("empty fifo"));
    }
}
