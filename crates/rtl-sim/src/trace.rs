//! Event tracing and a minimal VCD (value change dump) writer.
//!
//! Debugging an elastic pipeline is an exercise in watching handshakes; the
//! original framework was debugged with waveform viewers, so the
//! reproduction keeps an equivalent facility. [`TraceBuffer`] is a bounded
//! in-memory event log any component can append to; [`VcdWriter`] emits a
//! standard `.vcd` file that external waveform viewers (GTKWave et al.) can
//! open.

use std::collections::HashMap;
use std::fmt::Write as _;

/// One traced event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation cycle at which the event occurred.
    pub cycle: u64,
    /// Originating module (static so tracing stays allocation-light).
    pub module: &'static str,
    /// Human-readable description.
    pub detail: String,
}

/// A bounded ring buffer of [`TraceEvent`]s.
///
/// When full, the oldest events are discarded: the interesting part of a
/// failed simulation is almost always its tail.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    events: std::collections::VecDeque<TraceEvent>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl TraceBuffer {
    /// A trace buffer retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            events: std::collections::VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            enabled: capacity > 0,
            dropped: 0,
        }
    }

    /// A disabled buffer: every `record` is a no-op. Benchmarks use this so
    /// tracing costs nothing on the hot path.
    pub fn disabled() -> Self {
        TraceBuffer::new(0)
    }

    /// True when events are being retained.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Append an event (drops the oldest when at capacity). `detail` is
    /// built lazily so disabled tracing does not format strings.
    pub fn record(&mut self, cycle: u64, module: &'static str, detail: impl FnOnce() -> String) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            cycle,
            module,
            detail: detail(),
        });
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of events discarded due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the retained events as one line per event.
    pub fn dump(&self) -> String {
        let mut s = String::new();
        for e in &self.events {
            let _ = writeln!(s, "[{:>8}] {:<12} {}", e.cycle, e.module, e.detail);
        }
        s
    }

    /// Discard all retained events.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

/// A minimal VCD writer supporting scalar and vector signals.
///
/// Usage: declare signals before the first [`VcdWriter::change`], then feed
/// `(cycle, signal, value)` updates; [`VcdWriter::finish`] returns the
/// complete file contents. Values are deduplicated per signal as VCD
/// requires only changes to be dumped.
#[derive(Debug)]
pub struct VcdWriter {
    header: String,
    body: String,
    ids: HashMap<String, (String, u32)>, // name -> (id code, width)
    last: HashMap<String, u64>,
    next_id: u32,
    declared: bool,
    cur_time: Option<u64>,
}

impl VcdWriter {
    /// Start a VCD document with a `timescale` of 1 ns per cycle.
    pub fn new(top_module: &str) -> Self {
        let mut header = String::new();
        let _ = writeln!(header, "$date reproduction run $end");
        let _ = writeln!(header, "$version rtl-sim 0.1 $end");
        let _ = writeln!(header, "$timescale 1ns $end");
        let _ = writeln!(header, "$scope module {top_module} $end");
        VcdWriter {
            header,
            body: String::new(),
            ids: HashMap::new(),
            last: HashMap::new(),
            next_id: 0,
            declared: false,
            cur_time: None,
        }
    }

    fn id_code(mut n: u32) -> String {
        // VCD identifier codes: printable ASCII 33..=126, base-94.
        let mut s = String::new();
        loop {
            s.push((33 + (n % 94)) as u8 as char);
            n /= 94;
            if n == 0 {
                break;
            }
        }
        s
    }

    /// Declare a signal of `width` bits. Must precede the first `change`.
    ///
    /// # Panics
    /// Panics if called after value changes have been emitted, or when
    /// `width` is 0 or exceeds 64.
    pub fn declare(&mut self, name: &str, width: u32) {
        assert!(!self.declared, "declare() after first change()");
        assert!((1..=64).contains(&width), "signal width must be 1..=64");
        let code = Self::id_code(self.next_id);
        self.next_id += 1;
        let kind = if width == 1 { "wire" } else { "reg" };
        let _ = writeln!(self.header, "$var {kind} {width} {code} {name} $end");
        self.ids.insert(name.to_string(), (code, width));
    }

    /// Record a value change at `cycle`. Unknown signals panic (declare
    /// first); unchanged values are skipped.
    pub fn change(&mut self, cycle: u64, name: &str, value: u64) {
        if !self.declared {
            let _ = writeln!(self.header, "$upscope $end");
            let _ = writeln!(self.header, "$enddefinitions $end");
            self.declared = true;
        }
        let (code, width) = self
            .ids
            .get(name)
            .unwrap_or_else(|| panic!("undeclared VCD signal {name}"))
            .clone();
        if self.last.get(name) == Some(&value) {
            return;
        }
        if self.cur_time != Some(cycle) {
            let _ = writeln!(self.body, "#{cycle}");
            self.cur_time = Some(cycle);
        }
        if width == 1 {
            let _ = writeln!(self.body, "{}{}", value & 1, code);
        } else {
            let _ = writeln!(self.body, "b{:b} {}", value, code);
        }
        self.last.insert(name.to_string(), value);
    }

    /// Complete the document and return its text.
    pub fn finish(mut self) -> String {
        if !self.declared {
            let _ = writeln!(self.header, "$upscope $end");
            let _ = writeln!(self.header, "$enddefinitions $end");
        }
        self.header.push_str(&self.body);
        self.header
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_buffer_retains_tail() {
        let mut t = TraceBuffer::new(3);
        for i in 0..5u64 {
            t.record(i, "dispatch", || format!("op {i}"));
        }
        let kept: Vec<u64> = t.events().map(|e| e.cycle).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert_eq!(t.dropped(), 2);
        assert!(t.dump().contains("op 4"));
        t.clear();
        assert_eq!(t.events().count(), 0);
    }

    #[test]
    fn disabled_buffer_records_nothing() {
        let mut t = TraceBuffer::disabled();
        assert!(!t.is_enabled());
        t.record(1, "x", || {
            panic!("detail closure must not run when disabled")
        });
        assert_eq!(t.events().count(), 0);
    }

    #[test]
    fn vcd_structure_is_valid() {
        let mut v = VcdWriter::new("coproc");
        v.declare("clk", 1);
        v.declare("instr", 64);
        v.change(0, "clk", 0);
        v.change(0, "instr", 0xdead);
        v.change(1, "clk", 1);
        v.change(2, "clk", 1); // unchanged -> skipped
        let text = v.finish();
        assert!(text.contains("$enddefinitions"));
        assert!(text.contains("$var wire 1"));
        assert!(text.contains("$var reg 64"));
        assert!(text.contains("#0"));
        assert!(text.contains("#1"));
        assert!(
            !text.contains("#2"),
            "unchanged values must not emit time marks"
        );
        assert!(text.contains("b1101111010101101"));
    }

    #[test]
    #[should_panic(expected = "undeclared")]
    fn vcd_unknown_signal_panics() {
        let mut v = VcdWriter::new("t");
        v.change(0, "nope", 1);
    }

    #[test]
    fn vcd_id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for n in 0..500 {
            let code = VcdWriter::id_code(n);
            assert!(code.bytes().all(|b| (33..=126).contains(&b)));
            assert!(seen.insert(code));
        }
    }

    #[test]
    fn vcd_empty_document_still_closes_header() {
        let v = VcdWriter::new("empty");
        let text = v.finish();
        assert!(text.contains("$enddefinitions"));
    }
}
