//! Event tracing and a minimal VCD (value change dump) writer.
//!
//! Debugging an elastic pipeline is an exercise in watching handshakes; the
//! original framework was debugged with waveform viewers, so the
//! reproduction keeps an equivalent facility. [`TraceBuffer`] is a bounded
//! in-memory event log any component can append to; [`VcdWriter`] emits a
//! standard `.vcd` file that external waveform viewers (GTKWave et al.) can
//! open, and [`perfetto`] renders a trace as Chrome-trace JSON that opens
//! directly in `ui.perfetto.dev`.
//!
//! Events are a closed enum ([`TraceEventKind`]) of `Copy` payloads rather
//! than free-text strings: recording is a branch plus a fixed-size move
//! into a pre-sized ring, so an *enabled* trace never allocates on the hot
//! path and a *disabled* trace costs a single predictable branch.
//!
//! **Non-perturbation rule:** tracing observes the simulation, it never
//! steers it. No component may branch on trace state, and nothing recorded
//! here feeds back into architecturally visible behaviour — a run with
//! tracing enabled is bit-identical to the same run with tracing disabled
//! (`tests/trace_identity.rs` holds this as a property test).

pub mod perfetto;

use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

/// Direction of a host-link event, viewed from the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkDir {
    /// Host → coprocessor.
    ToDevice,
    /// Coprocessor → host.
    ToHost,
}

impl LinkDir {
    /// Stable lower-case label, used by exporters.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            LinkDir::ToDevice => "to_device",
            LinkDir::ToHost => "to_host",
        }
    }
}

/// Why a pipeline stage could not make progress this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// A destination (or source, RAW) register is locked in the scoreboard.
    Lock,
    /// The execution-op slot toward the encoder is full.
    ExecFull,
    /// A fence is waiting for the machine to drain.
    Fence,
    /// The response path toward the encoder/serialiser is full.
    RespFull,
    /// The write arbiter ran out of register-file ports this cycle.
    WritePort,
}

impl StallCause {
    /// Stable lower-case label, used by exporters.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StallCause::Lock => "lock",
            StallCause::ExecFull => "exec_full",
            StallCause::Fence => "fence",
            StallCause::RespFull => "resp_full",
            StallCause::WritePort => "write_port",
        }
    }
}

/// What happened. Every variant is plain-old-data so a [`TraceEvent`] is
/// `Copy` and recording never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A stage produced an item into its output register.
    StagePush {
        /// Stage name (static, matches `SimStats::stage_evals`).
        stage: &'static str,
    },
    /// A stage consumed the item at its input register.
    StageTake {
        /// Stage name.
        stage: &'static str,
    },
    /// A stage wanted to make progress but could not.
    StageStall {
        /// Stage name.
        stage: &'static str,
        /// Why it could not proceed.
        cause: StallCause,
    },
    /// The dispatcher issued a user instruction to a functional unit.
    FuDispatch {
        /// Functional-unit index.
        unit: u8,
        /// Global dispatch sequence number.
        seq: u64,
    },
    /// A dispatch was blocked because the target unit could not accept it.
    FuBusy {
        /// Functional-unit index.
        unit: u8,
    },
    /// The write arbiter retired a completed instruction.
    FuRetire {
        /// Functional-unit index.
        unit: u8,
        /// Dispatch sequence number of the retired instruction.
        seq: u64,
    },
    /// The watchdog quarantined a hung functional unit.
    FuQuarantined {
        /// Functional-unit index.
        unit: u8,
    },
    /// The scoreboard granted a lock ticket (destination registers).
    LockAcquire {
        /// Up to two data-register destinations.
        data: [Option<u8>; 2],
        /// Flag-register destination.
        flag: Option<u8>,
    },
    /// A lock ticket was released (results visible, registers free).
    LockRelease {
        /// Up to two data-register destinations.
        data: [Option<u8>; 2],
        /// Flag-register destination.
        flag: Option<u8>,
    },
    /// The write arbiter granted write ports to a unit this cycle.
    ArbGrant {
        /// Functional-unit index.
        unit: u8,
        /// Data-register ports consumed by the grant (0, 1 or 2).
        data_writes: u8,
    },
    /// The encoder forwarded a sequenced response toward the serialiser.
    RespForward {
        /// Response sequence number (must be monotone).
        seq: u64,
    },
    /// A frame was presented to the link for transmission.
    LinkTx {
        /// Direction of travel.
        dir: LinkDir,
    },
    /// A frame arrived from the link.
    LinkRx {
        /// Direction of travel.
        dir: LinkDir,
    },
    /// The reliable transport retransmitted `segments` segments.
    LinkRetransmit {
        /// Segments re-sent since the previous retransmit event.
        segments: u32,
    },
    /// The SEU model flipped one bit of device state.
    SeuInjected {
        /// Target class label (static: `"regfile"`, `"flagfile"`,
        /// `"latch"`, `"scoreboard"`).
        target: &'static str,
        /// Register / unit index within the target class.
        index: u8,
        /// Bit position flipped.
        bit: u8,
    },
    /// A parity check caught a corrupted register/flag file entry on read.
    SeuDetected {
        /// Register number that failed its parity check.
        reg: u8,
    },
    /// Redundant state repaired a soft error in place (TMR majority vote
    /// or scoreboard shadow restore) — no rollback needed.
    SeuCorrected {
        /// Functional-unit index (voting) or scoreboard slot (shadow).
        unit: u8,
    },
    /// The host rolled the system back to its last checkpoint after an
    /// uncorrected soft error.
    Rollback {
        /// Cycle the restored checkpoint was taken at.
        to_cycle: u64,
        /// Cycles of work discarded by the rollback.
        lost_cycles: u64,
    },
}

impl fmt::Display for TraceEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn ticket(
            f: &mut fmt::Formatter<'_>,
            verb: &str,
            data: &[Option<u8>; 2],
            flag: &Option<u8>,
        ) -> fmt::Result {
            write!(f, "{verb}")?;
            for r in data.iter().flatten() {
                write!(f, " r{r}")?;
            }
            if let Some(r) = flag {
                write!(f, " f{r}")?;
            }
            Ok(())
        }
        match self {
            TraceEventKind::StagePush { stage } => write!(f, "{stage}: push"),
            TraceEventKind::StageTake { stage } => write!(f, "{stage}: take"),
            TraceEventKind::StageStall { stage, cause } => {
                write!(f, "{stage}: stall ({})", cause.label())
            }
            TraceEventKind::FuDispatch { unit, seq } => {
                write!(f, "fu{unit}: dispatch seq {seq}")
            }
            TraceEventKind::FuBusy { unit } => write!(f, "fu{unit}: busy"),
            TraceEventKind::FuRetire { unit, seq } => write!(f, "fu{unit}: retire seq {seq}"),
            TraceEventKind::FuQuarantined { unit } => write!(f, "fu{unit}: quarantined"),
            TraceEventKind::LockAcquire { data, flag } => ticket(f, "lock: acquire", data, flag),
            TraceEventKind::LockRelease { data, flag } => ticket(f, "lock: release", data, flag),
            TraceEventKind::ArbGrant { unit, data_writes } => {
                write!(f, "arbiter: grant fu{unit} ({data_writes} data ports)")
            }
            TraceEventKind::RespForward { seq } => write!(f, "encoder: forward seq {seq}"),
            TraceEventKind::LinkTx { dir } => write!(f, "link {}: tx", dir.label()),
            TraceEventKind::LinkRx { dir } => write!(f, "link {}: rx", dir.label()),
            TraceEventKind::LinkRetransmit { segments } => {
                write!(f, "link: retransmit {segments} segment(s)")
            }
            TraceEventKind::SeuInjected { target, index, bit } => {
                write!(f, "seu: flip {target}[{index}] bit {bit}")
            }
            TraceEventKind::SeuDetected { reg } => write!(f, "seu: parity mismatch r{reg}"),
            TraceEventKind::SeuCorrected { unit } => write!(f, "seu: corrected at {unit}"),
            TraceEventKind::Rollback {
                to_cycle,
                lost_cycles,
            } => write!(f, "rollback: to cycle {to_cycle} ({lost_cycles} lost)"),
        }
    }
}

/// One traced event: a cycle stamp plus a typed payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation cycle at which the event occurred.
    pub cycle: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>8}] {}", self.cycle, self.kind)
    }
}

/// A bounded ring buffer of [`TraceEvent`]s.
///
/// When full, the oldest events are discarded and counted in
/// [`TraceBuffer::dropped`]: the interesting part of a failed simulation is
/// almost always its tail. A disabled buffer (capacity 0) rejects every
/// record with a single branch, so components can call [`TraceBuffer::record`]
/// unconditionally.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    events: std::collections::VecDeque<TraceEvent>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl TraceBuffer {
    /// A trace buffer retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            events: std::collections::VecDeque::with_capacity(capacity.min(65_536)),
            capacity,
            enabled: capacity > 0,
            dropped: 0,
        }
    }

    /// A disabled buffer: every `record` is a no-op. Benchmarks use this so
    /// tracing costs nothing on the hot path.
    pub fn disabled() -> Self {
        TraceBuffer::new(0)
    }

    /// True when events are being retained.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Append an event, dropping the oldest when at capacity. The payload
    /// is `Copy` and the ring is pre-sized, so an enabled record is a
    /// branch plus a fixed-size move — no allocation, no formatting.
    #[inline]
    pub fn record(&mut self, cycle: u64, kind: TraceEventKind) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent { cycle, kind });
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of events discarded due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the retained events as one line per event.
    pub fn dump(&self) -> String {
        let mut s = String::new();
        for e in &self.events {
            let _ = writeln!(s, "{e}");
        }
        s
    }

    /// Discard all retained events.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

/// A minimal VCD writer supporting scalar and vector signals.
///
/// Usage: declare signals before the first [`VcdWriter::change`], then feed
/// `(cycle, signal, value)` updates; [`VcdWriter::finish`] returns the
/// complete file contents. Values are deduplicated per signal as VCD
/// requires only changes to be dumped.
#[derive(Debug)]
pub struct VcdWriter {
    header: String,
    body: String,
    ids: HashMap<String, (String, u32)>, // name -> (id code, width)
    last: HashMap<String, u64>,
    next_id: u32,
    declared: bool,
    cur_time: Option<u64>,
}

impl VcdWriter {
    /// Start a VCD document with a `timescale` of 1 ns per cycle.
    pub fn new(top_module: &str) -> Self {
        let mut header = String::new();
        let _ = writeln!(header, "$date reproduction run $end");
        let _ = writeln!(header, "$version rtl-sim 0.1 $end");
        let _ = writeln!(header, "$timescale 1ns $end");
        let _ = writeln!(header, "$scope module {top_module} $end");
        VcdWriter {
            header,
            body: String::new(),
            ids: HashMap::new(),
            last: HashMap::new(),
            next_id: 0,
            declared: false,
            cur_time: None,
        }
    }

    fn id_code(mut n: u32) -> String {
        // VCD identifier codes: printable ASCII 33..=126, base-94.
        let mut s = String::new();
        loop {
            s.push((33 + (n % 94)) as u8 as char);
            n /= 94;
            if n == 0 {
                break;
            }
        }
        s
    }

    /// Declare a signal of `width` bits. Must precede the first `change`.
    ///
    /// # Panics
    /// Panics if called after value changes have been emitted, or when
    /// `width` is 0 or exceeds 64.
    pub fn declare(&mut self, name: &str, width: u32) {
        assert!(!self.declared, "declare() after first change()");
        assert!((1..=64).contains(&width), "signal width must be 1..=64");
        let code = Self::id_code(self.next_id);
        self.next_id += 1;
        let kind = if width == 1 { "wire" } else { "reg" };
        let _ = writeln!(self.header, "$var {kind} {width} {code} {name} $end");
        self.ids.insert(name.to_string(), (code, width));
    }

    /// Record a value change at `cycle`. Unknown signals panic (declare
    /// first); unchanged values are skipped.
    pub fn change(&mut self, cycle: u64, name: &str, value: u64) {
        if !self.declared {
            let _ = writeln!(self.header, "$upscope $end");
            let _ = writeln!(self.header, "$enddefinitions $end");
            self.declared = true;
        }
        let (code, width) = self
            .ids
            .get(name)
            .unwrap_or_else(|| panic!("undeclared VCD signal {name}"))
            .clone();
        if self.last.get(name) == Some(&value) {
            return;
        }
        if self.cur_time != Some(cycle) {
            let _ = writeln!(self.body, "#{cycle}");
            self.cur_time = Some(cycle);
        }
        if width == 1 {
            let _ = writeln!(self.body, "{}{}", value & 1, code);
        } else {
            let _ = writeln!(self.body, "b{:b} {}", value, code);
        }
        self.last.insert(name.to_string(), value);
    }

    /// Complete the document and return its text.
    pub fn finish(mut self) -> String {
        if !self.declared {
            let _ = writeln!(self.header, "$upscope $end");
            let _ = writeln!(self.header, "$enddefinitions $end");
        }
        self.header.push_str(&self.body);
        self.header
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_buffer_retains_tail() {
        let mut t = TraceBuffer::new(3);
        for i in 0..5u64 {
            t.record(i, TraceEventKind::StagePush { stage: "decoder" });
        }
        let kept: Vec<u64> = t.events().map(|e| e.cycle).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert_eq!(t.dropped(), 2);
        assert!(t.dump().contains("decoder: push"));
        t.clear();
        assert_eq!(t.events().count(), 0);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn disabled_buffer_records_nothing() {
        let mut t = TraceBuffer::disabled();
        assert!(!t.is_enabled());
        t.record(1, TraceEventKind::FuDispatch { unit: 0, seq: 0 });
        assert_eq!(t.events().count(), 0);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn wraparound_dropped_accounting_is_exact() {
        // Multi-wrap: dropped must equal exactly (recorded - capacity) and
        // the retained window must be the contiguous tail.
        let mut t = TraceBuffer::new(8);
        let total = 1000u64;
        for i in 0..total {
            t.record(i, TraceEventKind::RespForward { seq: i });
        }
        assert_eq!(t.dropped(), total - 8);
        assert_eq!(t.events().count(), 8);
        let cycles: Vec<u64> = t.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, (total - 8..total).collect::<Vec<_>>());
        // Totals reconcile: retained + dropped == recorded.
        assert_eq!(t.events().count() as u64 + t.dropped(), total);
    }

    #[test]
    fn event_display_is_stable() {
        let e = TraceEvent {
            cycle: 7,
            kind: TraceEventKind::LockAcquire {
                data: [Some(3), None],
                flag: Some(1),
            },
        };
        assert_eq!(e.to_string(), "[       7] lock: acquire r3 f1");
        let s = TraceEvent {
            cycle: 12,
            kind: TraceEventKind::StageStall {
                stage: "dispatcher",
                cause: StallCause::Lock,
            },
        };
        assert_eq!(s.to_string(), "[      12] dispatcher: stall (lock)");
    }

    #[test]
    fn vcd_structure_is_valid() {
        let mut v = VcdWriter::new("coproc");
        v.declare("clk", 1);
        v.declare("instr", 64);
        v.change(0, "clk", 0);
        v.change(0, "instr", 0xdead);
        v.change(1, "clk", 1);
        v.change(2, "clk", 1); // unchanged -> skipped
        let text = v.finish();
        assert!(text.contains("$enddefinitions"));
        assert!(text.contains("$var wire 1"));
        assert!(text.contains("$var reg 64"));
        assert!(text.contains("#0"));
        assert!(text.contains("#1"));
        assert!(
            !text.contains("#2"),
            "unchanged values must not emit time marks"
        );
        assert!(text.contains("b1101111010101101"));
    }

    #[test]
    fn vcd_golden_output_is_stable() {
        // Byte-exact golden file for a fixed 3-change trace. If this test
        // fails the VCD emitter changed observably — update deliberately.
        let mut v = VcdWriter::new("top");
        v.declare("valid", 1);
        v.declare("data", 8);
        v.change(0, "valid", 1);
        v.change(0, "data", 0xa5);
        v.change(3, "valid", 0);
        let expect = "$date reproduction run $end\n\
                      $version rtl-sim 0.1 $end\n\
                      $timescale 1ns $end\n\
                      $scope module top $end\n\
                      $var wire 1 ! valid $end\n\
                      $var reg 8 \" data $end\n\
                      $upscope $end\n\
                      $enddefinitions $end\n\
                      #0\n\
                      1!\n\
                      b10100101 \"\n\
                      #3\n\
                      0!\n";
        assert_eq!(v.finish(), expect);
    }

    #[test]
    #[should_panic(expected = "undeclared")]
    fn vcd_unknown_signal_panics() {
        let mut v = VcdWriter::new("t");
        v.change(0, "nope", 1);
    }

    #[test]
    fn vcd_id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for n in 0..500 {
            let code = VcdWriter::id_code(n);
            assert!(code.bytes().all(|b| (33..=126).contains(&b)));
            assert!(seen.insert(code));
        }
    }

    #[test]
    fn vcd_empty_document_still_closes_header() {
        let v = VcdWriter::new("empty");
        let text = v.finish();
        assert!(text.contains("$enddefinitions"));
    }
}
