//! Synchronous FIFOs, modelling the on-chip SRAM buffers of the
//! performance-optimised functional-unit skeleton.
//!
//! The paper's pipelined skeleton "uses a lot of FPGA resources and
//! especially on-chip SRAM blocks consumed by the FIFO buffers"; a unit
//! "becomes only busy towards the dispatcher if the FIFO buffers contained
//! in the functional unit are full", and it is "recommended to configure
//! the FIFO buffers to be able to hold more data elements than there are
//! pipeline stages in the functional unit pipeline."
//!
//! [`Fifo`] follows the same two-phase discipline as
//! [`crate::HandshakeSlot`]: pops are visible immediately within the
//! evaluate phase (fall-through for consumers evaluated earlier in the
//! sink-to-source order), pushes become visible at the next commit.

use std::collections::VecDeque;

use crate::component::Clocked;
use crate::stats::SlotStats;

/// A bounded synchronous FIFO.
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    depth: usize,
    cur: VecDeque<T>,
    staged: VecDeque<T>,
    stats: SlotStats,
    high_water: usize,
}

impl<T> Fifo<T> {
    /// Create a FIFO holding at most `depth` elements.
    ///
    /// # Panics
    /// Panics when `depth == 0`; a zero-depth FIFO cannot exist in hardware
    /// (use a plain wire instead).
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "Fifo depth must be at least 1");
        Fifo {
            depth,
            cur: VecDeque::with_capacity(depth),
            staged: VecDeque::new(),
            stats: SlotStats::default(),
            high_water: 0,
        }
    }

    /// Configured capacity.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of elements currently poppable.
    pub fn len(&self) -> usize {
        self.cur.len()
    }

    /// True when no element is poppable this cycle.
    pub fn is_empty(&self) -> bool {
        self.cur.is_empty()
    }

    /// True when neither current nor staged elements exist.
    pub fn is_idle(&self) -> bool {
        self.cur.is_empty() && self.staged.is_empty()
    }

    /// Head element, if any (consumer side).
    pub fn peek(&self) -> Option<&T> {
        self.cur.front()
    }

    /// Pop the head element (consumer side). Visible immediately to later
    /// evaluations this cycle.
    pub fn pop(&mut self) -> Option<T> {
        let v = self.cur.pop_front();
        if v.is_some() {
            self.stats.takes += 1;
        }
        v
    }

    /// True if a `push` this cycle will be accepted (producer side).
    ///
    /// Occupancy counts elements already staged this cycle, so a producer
    /// can never overflow the FIFO even if it pushes several items per
    /// cycle (the message buffer does this when a link delivers a burst).
    pub fn can_push(&self) -> bool {
        self.cur.len() + self.staged.len() < self.depth
    }

    /// Free slots available for pushes this cycle.
    pub fn space(&self) -> usize {
        self.depth - (self.cur.len() + self.staged.len())
    }

    /// Stage an element for insertion at the next commit (producer side).
    ///
    /// # Panics
    /// Panics when the FIFO is full — see [`Fifo::can_push`].
    pub fn push(&mut self, v: T) {
        assert!(
            self.can_push(),
            "Fifo::push while full (missing can_push check)"
        );
        self.stats.pushes += 1;
        self.staged.push_back(v);
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &SlotStats {
        &self.stats
    }

    /// Maximum occupancy ever observed at a commit (for sizing studies,
    /// ablation A3).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Account for `n` fast-forwarded idle cycles without running commits.
    ///
    /// Equivalent to calling [`Clocked::commit`] `n` times while the FIFO
    /// is idle: only `stats.cycles` advances (an idle FIFO accrues no
    /// occupancy and its high-water mark cannot move). Callers must only
    /// invoke this while [`Fifo::is_idle`] holds.
    pub fn note_idle_cycles(&mut self, n: u64) {
        debug_assert!(self.is_idle(), "note_idle_cycles on a non-idle Fifo");
        self.stats.cycles += n;
    }

    /// Drain every element (current and staged) into a vector, in order.
    /// Test helper; hardware has no such operation.
    pub fn drain_all(&mut self) -> Vec<T> {
        let mut out: Vec<T> = self.cur.drain(..).collect();
        out.extend(self.staged.drain(..));
        out
    }
}

impl<T> Clocked for Fifo<T> {
    fn commit(&mut self) {
        self.cur.extend(self.staged.drain(..));
        debug_assert!(self.cur.len() <= self.depth);
        self.stats.cycles += 1;
        if !self.cur.is_empty() {
            self.stats.occupied_cycles += 1;
        }
        self.high_water = self.high_water.max(self.cur.len());
    }

    fn reset(&mut self) {
        self.cur.clear();
        self.staged.clear();
        self.stats = SlotStats::default();
        self.high_water = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "depth must be at least 1")]
    fn zero_depth_rejected() {
        let _f: Fifo<u8> = Fifo::new(0);
    }

    #[test]
    fn fifo_orders_elements() {
        let mut f = Fifo::new(4);
        f.push(1u32);
        f.push(2);
        assert!(f.is_empty(), "staged pushes invisible before commit");
        f.commit();
        assert_eq!(f.len(), 2);
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn capacity_counts_staged_elements() {
        let mut f = Fifo::new(2);
        f.push(1u32);
        f.push(2);
        assert!(!f.can_push(), "two staged items fill a depth-2 FIFO");
        assert_eq!(f.space(), 0);
        f.commit();
        assert!(!f.can_push());
        f.pop();
        assert!(
            f.can_push(),
            "fall-through pop frees space within the cycle"
        );
        f.push(3);
        f.commit();
        assert_eq!(f.drain_all(), vec![2, 3]);
    }

    #[test]
    fn sustains_one_per_cycle_when_sink_first() {
        let mut f = Fifo::new(2);
        let mut next = 0u32;
        let mut got = Vec::new();
        for _ in 0..20 {
            if let Some(v) = f.pop() {
                got.push(v);
            }
            if f.can_push() {
                f.push(next);
                next += 1;
            }
            f.commit();
        }
        assert_eq!(got, (0..19).collect::<Vec<_>>());
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let mut f = Fifo::new(8);
        for i in 0..5 {
            f.push(i);
        }
        f.commit();
        f.pop();
        f.pop();
        f.commit();
        assert_eq!(f.high_water(), 5);
    }

    #[test]
    #[should_panic(expected = "Fifo::push")]
    fn overflow_panics() {
        let mut f = Fifo::new(1);
        f.push(1u8);
        f.push(2u8);
    }

    #[test]
    fn reset_restores_empty_state() {
        let mut f = Fifo::new(3);
        f.push(1u8);
        f.commit();
        f.push(2u8);
        f.reset();
        assert!(f.is_idle());
        assert_eq!(f.high_water(), 0);
        assert_eq!(f.stats().pushes, 0);
    }

    #[test]
    fn burst_push_within_capacity() {
        let mut f = Fifo::new(4);
        // A producer may push several items in one cycle (e.g. a wide link
        // delivering a burst) as long as capacity allows.
        while f.can_push() {
            f.push(0u8);
        }
        assert_eq!(f.space(), 0);
        f.commit();
        assert_eq!(f.len(), 4);
    }
}
