//! Chrome-trace (Perfetto) JSON export for [`TraceEvent`] streams.
//!
//! The emitted document follows the Chrome Trace Event format ("JSON trace")
//! that `ui.perfetto.dev` and `chrome://tracing` open directly: one thread
//! ("track") per pipeline stage and per functional unit, instant events for
//! handshake activity, and complete ("X") spans for every dispatch→retire
//! pair so per-instruction occupancy is visible at a glance. A running
//! `locks_held` counter track shows scoreboard pressure.
//!
//! Output is fully deterministic: tracks are numbered in first-seen order
//! and events are emitted in input order, so identical traces serialize to
//! identical bytes (the golden test below pins this).
//!
//! Timestamps: one simulated cycle is exported as one microsecond (the
//! format's native unit), so "1 µs" in the UI reads as "1 cycle".

use std::fmt::Write as _;

use super::{TraceEvent, TraceEventKind};

/// Track registry: first-seen order, linear scan (track counts are tiny).
struct Tracks {
    names: Vec<String>,
}

impl Tracks {
    fn tid(&mut self, name: &str) -> usize {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return i + 1;
        }
        self.names.push(name.to_string());
        self.names.len()
    }
}

fn track_name(kind: &TraceEventKind) -> String {
    match kind {
        TraceEventKind::StagePush { stage }
        | TraceEventKind::StageTake { stage }
        | TraceEventKind::StageStall { stage, .. } => (*stage).to_string(),
        TraceEventKind::FuDispatch { unit, .. }
        | TraceEventKind::FuBusy { unit }
        | TraceEventKind::FuRetire { unit, .. }
        | TraceEventKind::FuQuarantined { unit }
        | TraceEventKind::ArbGrant { unit, .. } => format!("fu{unit}"),
        TraceEventKind::LockAcquire { .. } | TraceEventKind::LockRelease { .. } => {
            "locks".to_string()
        }
        TraceEventKind::RespForward { .. } => "encoder".to_string(),
        TraceEventKind::LinkTx { dir } | TraceEventKind::LinkRx { dir } => {
            format!("link {}", dir.label())
        }
        TraceEventKind::LinkRetransmit { .. } => "link retransmit".to_string(),
        TraceEventKind::SeuInjected { target, .. } => format!("seu {target}"),
        TraceEventKind::SeuDetected { .. } | TraceEventKind::SeuCorrected { .. } => {
            "seu".to_string()
        }
        TraceEventKind::Rollback { .. } => "recovery".to_string(),
    }
}

fn instant_name(kind: &TraceEventKind) -> String {
    match kind {
        TraceEventKind::StagePush { .. } => "push".to_string(),
        TraceEventKind::StageTake { .. } => "take".to_string(),
        TraceEventKind::StageStall { cause, .. } => format!("stall {}", cause.label()),
        TraceEventKind::FuDispatch { seq, .. } => format!("dispatch seq {seq}"),
        TraceEventKind::FuBusy { .. } => "busy".to_string(),
        TraceEventKind::ArbGrant { data_writes, .. } => format!("grant {data_writes} ports"),
        TraceEventKind::FuRetire { seq, .. } => format!("retire seq {seq}"),
        TraceEventKind::FuQuarantined { .. } => "quarantined".to_string(),
        TraceEventKind::LockAcquire { .. } | TraceEventKind::LockRelease { .. } => {
            // Rendered via the counter track; instants reuse the display form.
            format!("{kind}")
        }
        TraceEventKind::RespForward { seq } => format!("forward seq {seq}"),
        TraceEventKind::LinkTx { .. } => "tx".to_string(),
        TraceEventKind::LinkRx { .. } => "rx".to_string(),
        TraceEventKind::LinkRetransmit { segments } => format!("retransmit {segments}"),
        TraceEventKind::SeuInjected { index, bit, .. } => format!("flip [{index}] bit {bit}"),
        TraceEventKind::SeuDetected { reg } => format!("parity mismatch r{reg}"),
        TraceEventKind::SeuCorrected { unit } => format!("corrected at {unit}"),
        TraceEventKind::Rollback {
            to_cycle,
            lost_cycles,
        } => format!("rollback to {to_cycle} ({lost_cycles} lost)"),
    }
}

/// Serialize a trace as a Chrome-trace JSON document.
///
/// Dispatch→retire pairs (matched by functional unit and sequence number)
/// become duration ("X") spans on the unit's track, emitted at the retire
/// event's position; everything else becomes an instant ("i") event. Lock
/// acquire/release additionally drive a `locks_held` counter track.
#[must_use]
pub fn export<'a>(events: impl IntoIterator<Item = &'a TraceEvent>) -> String {
    let mut tracks = Tracks { names: Vec::new() };
    let mut body = String::new();
    // Outstanding dispatches awaiting their retire: (unit, seq, cycle).
    let mut pending: Vec<(u8, u64, u64)> = Vec::new();
    let mut locks_held: i64 = 0;

    for e in events {
        let tid = tracks.tid(&track_name(&e.kind));
        match e.kind {
            TraceEventKind::FuDispatch { unit, seq } => {
                pending.push((unit, seq, e.cycle));
            }
            TraceEventKind::FuRetire { unit, seq } => {
                if let Some(i) = pending.iter().position(|&(u, s, _)| u == unit && s == seq) {
                    let (_, _, start) = pending.swap_remove(i);
                    let _ = write!(
                        body,
                        ",\n{{\"name\":\"seq {seq}\",\"ph\":\"X\",\"ts\":{start},\
                         \"dur\":{},\"pid\":1,\"tid\":{tid}}}",
                        e.cycle - start
                    );
                } else {
                    let _ = write!(
                        body,
                        ",\n{{\"name\":\"retire seq {seq}\",\"ph\":\"i\",\"ts\":{},\
                         \"pid\":1,\"tid\":{tid},\"s\":\"t\"}}",
                        e.cycle
                    );
                }
            }
            TraceEventKind::LockAcquire { .. } | TraceEventKind::LockRelease { .. } => {
                if matches!(e.kind, TraceEventKind::LockAcquire { .. }) {
                    locks_held += 1;
                } else {
                    locks_held -= 1;
                }
                let _ = write!(
                    body,
                    ",\n{{\"name\":\"locks_held\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\
                     \"tid\":{tid},\"args\":{{\"held\":{locks_held}}}}}",
                    e.cycle
                );
            }
            _ => {
                let _ = write!(
                    body,
                    ",\n{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":1,\
                     \"tid\":{tid},\"s\":\"t\"}}",
                    instant_name(&e.kind),
                    e.cycle
                );
            }
        }
    }
    // Dispatches that never retired (e.g. a quarantined unit) still show up.
    for (unit, seq, cycle) in pending {
        let tid = tracks.tid(&format!("fu{unit}"));
        let _ = write!(
            body,
            ",\n{{\"name\":\"unretired seq {seq}\",\"ph\":\"i\",\"ts\":{cycle},\
             \"pid\":1,\"tid\":{tid},\"s\":\"t\"}}"
        );
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    out.push_str(
        "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"rtl-sim\"}}",
    );
    for (i, name) in tracks.names.iter().enumerate() {
        let _ = write!(
            out,
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"name\":\"{name}\"}}}}",
            i + 1
        );
    }
    out.push_str(&body);
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{StallCause, TraceBuffer, TraceEventKind};

    fn ev(cycle: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent { cycle, kind }
    }

    #[test]
    fn golden_three_event_trace() {
        // Byte-exact golden output for a fixed 3-event trace. A failure
        // here means the exporter's wire format changed — update the
        // expectation deliberately, then re-check in ui.perfetto.dev.
        let events = [
            ev(1, TraceEventKind::StagePush { stage: "decoder" }),
            ev(2, TraceEventKind::FuDispatch { unit: 0, seq: 0 }),
            ev(5, TraceEventKind::FuRetire { unit: 0, seq: 0 }),
        ];
        let expect = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n\
            {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"rtl-sim\"}},\n\
            {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"decoder\"}},\n\
            {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2,\"args\":{\"name\":\"fu0\"}},\n\
            {\"name\":\"push\",\"ph\":\"i\",\"ts\":1,\"pid\":1,\"tid\":1,\"s\":\"t\"},\n\
            {\"name\":\"seq 0\",\"ph\":\"X\",\"ts\":2,\"dur\":3,\"pid\":1,\"tid\":2}\n\
            ]}\n";
        assert_eq!(export(events.iter()), expect);
    }

    #[test]
    fn export_is_deterministic_and_parsable_shaped() {
        let mut t = TraceBuffer::new(64);
        t.record(0, TraceEventKind::StagePush { stage: "msgbuf" });
        t.record(
            1,
            TraceEventKind::StageStall {
                stage: "dispatcher",
                cause: StallCause::Lock,
            },
        );
        t.record(
            1,
            TraceEventKind::LockAcquire {
                data: [Some(2), None],
                flag: Some(0),
            },
        );
        t.record(2, TraceEventKind::FuDispatch { unit: 1, seq: 7 });
        t.record(
            4,
            TraceEventKind::LockRelease {
                data: [Some(2), None],
                flag: Some(0),
            },
        );
        t.record(6, TraceEventKind::FuRetire { unit: 1, seq: 7 });
        let a = export(t.events());
        let b = export(t.events());
        assert_eq!(a, b, "same trace must serialize identically");
        // Structural sanity: balanced braces/brackets, one span, a counter.
        assert_eq!(
            a.matches('{').count(),
            a.matches('}').count(),
            "unbalanced braces:\n{a}"
        );
        assert_eq!(a.matches('[').count(), a.matches(']').count());
        assert!(a.contains("\"ph\":\"X\""), "missing span event:\n{a}");
        assert!(a.contains("\"locks_held\""), "missing counter track:\n{a}");
        assert!(a.contains("\"name\":\"dispatcher\""));
        assert!(a.ends_with("]}\n"));
    }

    #[test]
    fn unmatched_dispatch_is_reported_not_lost() {
        let events = [ev(3, TraceEventKind::FuDispatch { unit: 2, seq: 9 })];
        let out = export(events.iter());
        assert!(out.contains("unretired seq 9"), "{out}");
    }
}
