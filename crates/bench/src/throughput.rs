//! Farm throughput measurement (experiment E13).
//!
//! Sweeps the coprocessor farm over shard count × issue batch size for
//! two workloads — the arithmetic batch and χ-sort — and reports
//! aggregate throughput in *simulated* time: N shards are N boards
//! running concurrently, so the farm finishes when its slowest shard
//! does ([`fu_host::Farm::makespan_cycles`]). Host wall-clock for the
//! serial and threaded runs is reported alongside; on a many-core host
//! the threaded run also wins wall-clock, on a single-core CI box it
//! measures the threading overhead instead.
//!
//! Every measured configuration is *verified*: the parallel run must be
//! bit-identical to the serial run, or the harness panics.

use std::time::Instant;

use fu_host::{Farm, FarmConfig, Job, LinkModel};
use fu_rtm::{CoprocConfig, FunctionalUnit};
use rtl_sim::StallFuzzer;
use xi_sort::{XiConfig, XiSortAdapter};

use crate::FPGA_MHZ;

/// One measured farm configuration.
#[derive(Debug, Clone)]
pub struct FarmRun {
    /// Workload label (`"arith"` or `"xi-sort"`).
    pub workload: &'static str,
    /// Shards (worker threads / simulated boards).
    pub shards: usize,
    /// Operations per job (instructions for arith, elements for χ-sort);
    /// one barrier round-trip per job, so larger batches amortise it.
    pub batch: usize,
    /// Jobs submitted.
    pub jobs: usize,
    /// Total operations across all jobs.
    pub ops: u64,
    /// Simulated makespan: max shard cycles (boards run concurrently).
    pub makespan_cycles: u64,
    /// Summed shard cycles (the serial-equivalent simulated cost).
    pub total_cycles: u64,
    /// Host wall-clock of the threaded run, in milliseconds.
    pub wall_parallel_ms: f64,
    /// Host wall-clock of the single-threaded reference run.
    pub wall_serial_ms: f64,
}

impl FarmRun {
    /// Aggregate operations per second at the modelled FPGA clock.
    pub fn ops_per_sec(&self) -> f64 {
        if self.makespan_cycles == 0 {
            0.0
        } else {
            self.ops as f64 / (self.makespan_cycles as f64 / (FPGA_MHZ * 1e6))
        }
    }

    /// Simulated cycles per operation (CPI for the arith workload).
    pub fn cycles_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.makespan_cycles as f64 / self.ops as f64
        }
    }
}

/// Independent arithmetic jobs: `total` instructions split into
/// `batch`-sized programs (one sync round-trip per program). The stream
/// rotates destinations so instructions within a job overlap in the
/// pipeline instead of serialising on interlocks.
pub fn arith_jobs(total: usize, batch: usize, seed: u64) -> Vec<Job> {
    let mut rng = StallFuzzer::new(seed, 0.0);
    let ops = ["ADD", "SUB", "XOR", "OR", "AND"];
    let mut jobs = Vec::new();
    let mut emitted = 0usize;
    while emitted < total {
        let n = batch.min(total - emitted);
        let mut lines = Vec::with_capacity(n);
        for i in 0..n {
            let op = ops[rng.below(ops.len() as u64) as usize];
            let d = (i % 4) as u8; // rotate r0..r3 as destinations
            let a = 4 + rng.below(4) as u8; // read r4..r7
            let b = 4 + rng.below(4) as u8;
            let f = (i % 4) as u8;
            lines.push(format!("{op} r{d}, r{a}, r{b}, f{f}"));
        }
        emitted += n;
        jobs.push(Job::Program {
            source: lines.join("\n"),
            reads: Vec::new(),
        });
    }
    jobs
}

/// χ-sort jobs: `total` elements split into `batch`-element sorts.
pub fn xi_jobs(total: usize, batch: usize, seed: u64) -> Vec<Job> {
    let mut rng = StallFuzzer::new(seed, 0.0);
    let mut jobs = Vec::new();
    let mut emitted = 0usize;
    while emitted < total {
        let n = batch.min(total - emitted).max(1);
        let values: Vec<u32> = (0..n).map(|_| rng.next_u64() as u32).collect();
        emitted += n;
        jobs.push(Job::XiSort(values));
    }
    jobs
}

/// A farm for the arithmetic workload.
pub fn arith_farm(shards: usize, seed: u64) -> Farm {
    Farm::standard(
        FarmConfig {
            shards,
            seed,
            ..FarmConfig::default()
        },
        CoprocConfig::default(),
        LinkModel::pcie_like(),
    )
}

/// A farm of χ-sort coprocessors with `n_cells`-element sorters.
pub fn xi_farm(shards: usize, n_cells: u32, seed: u64) -> Farm {
    Farm::new(
        FarmConfig {
            shards,
            seed,
            ..FarmConfig::default()
        },
        move |_ctx| {
            let cfg = CoprocConfig::default();
            let units: Vec<Box<dyn FunctionalUnit>> = vec![Box::new(XiSortAdapter::new(
                XiConfig::new(n_cells),
                cfg.word_bits,
            ))];
            fu_host::System::new(cfg, units, LinkModel::pcie_like())
        },
    )
}

/// Run `jobs` through `farm` serially and in parallel, assert the result
/// streams are bit-identical, and return the measurements.
///
/// # Panics
/// Panics when the parallel stream diverges from the serial stream or
/// when any job fails — both are correctness bugs, not data points.
pub fn run_verified(
    farm: &mut Farm,
    workload: &'static str,
    batch: usize,
    jobs: &[Job],
    ops: u64,
) -> FarmRun {
    let t0 = Instant::now();
    let serial = farm.run_serial(jobs).expect("serial farm run");
    let wall_serial_ms = t0.elapsed().as_secs_f64() * 1e3;
    let serial_cycles: Vec<u64> = farm.shard_reports().iter().map(|r| r.cycles).collect();

    let t1 = Instant::now();
    let parallel = farm.run_parallel(jobs).expect("parallel farm run");
    let wall_parallel_ms = t1.elapsed().as_secs_f64() * 1e3;

    assert_eq!(
        serial,
        parallel,
        "parallel result stream diverged from serial ({workload}, {} shards)",
        farm.config().shards
    );
    let parallel_cycles: Vec<u64> = farm.shard_reports().iter().map(|r| r.cycles).collect();
    assert_eq!(serial_cycles, parallel_cycles, "per-shard cycles diverged");
    for r in &parallel {
        assert!(
            r.output.is_ok(),
            "job {} failed on shard {}: {:?}",
            r.job,
            r.shard,
            r.output
        );
    }

    FarmRun {
        workload,
        shards: farm.config().shards,
        batch,
        jobs: jobs.len(),
        ops,
        makespan_cycles: farm.makespan_cycles(),
        total_cycles: farm.total_cycles(),
        wall_parallel_ms,
        wall_serial_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_amortises_the_sync_round_trip() {
        let seed = 11;
        let mut f1 = arith_farm(1, seed);
        let one = run_verified(&mut f1, "arith", 1, &arith_jobs(32, 1, seed), 32);
        let mut f2 = arith_farm(1, seed);
        let big = run_verified(&mut f2, "arith", 32, &arith_jobs(32, 32, seed), 32);
        assert!(
            big.cycles_per_op() < one.cycles_per_op() / 2.0,
            "batch=32 CPI {:.1} should be far below batch=1 CPI {:.1}",
            big.cycles_per_op(),
            one.cycles_per_op()
        );
    }

    #[test]
    fn shards_scale_aggregate_throughput() {
        let seed = 12;
        let jobs = arith_jobs(64, 8, seed);
        let mut f1 = arith_farm(1, seed);
        let one = run_verified(&mut f1, "arith", 8, &jobs, 64);
        let mut f4 = arith_farm(4, seed);
        let four = run_verified(&mut f4, "arith", 8, &jobs, 64);
        assert!(
            four.ops_per_sec() > 2.0 * one.ops_per_sec(),
            "4 shards {:.0} ops/s should double 1 shard {:.0} ops/s",
            four.ops_per_sec(),
            one.ops_per_sec()
        );
    }

    #[test]
    fn xi_farm_sorts_correctly_at_scale() {
        let jobs = xi_jobs(24, 8, 3);
        let mut f = xi_farm(2, 16, 3);
        let out = run_verified(&mut f, "xi-sort", 8, &jobs, 24);
        assert_eq!(out.jobs, jobs.len());
    }
}
