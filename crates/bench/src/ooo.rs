//! Out-of-order-dispatch measurement (experiment E4, ablation A2).
//!
//! "Within the FPGA, the instructions may be executed out of order" — the
//! scoreboard (lock manager + register usage table) lets independent
//! instructions on different units overlap. The A2 ablation replaces the
//! scoreboard's selectivity with a FENCE after every instruction
//! (conservative full-barrier dispatch), which is what a framework
//! *without* a lock manager would have to do for correctness.

use fu_isa::{HostMsg, InstrWord, MgmtOp, UserInstr, Word};
use fu_rtm::testing::LatencyFu;
use fu_rtm::{CoprocConfig, Coprocessor, FunctionalUnit};

/// One measurement: `n` instructions alternating over `unit_latencies`,
/// optionally fenced after every instruction.
pub fn run_mix(unit_latencies: &[u32], n: u32, fenced: bool) -> u64 {
    let units: Vec<Box<dyn FunctionalUnit>> = unit_latencies
        .iter()
        .enumerate()
        .map(|(i, &lat)| {
            Box::new(LatencyFu::new("latfu", (i + 1) as u8, lat)) as Box<dyn FunctionalUnit>
        })
        .collect();
    let n_units = units.len() as u32;
    let mut coproc = Coprocessor::new(
        CoprocConfig {
            rx_frames_per_cycle: 8,
            rx_fifo_depth: 64,
            data_regs: 32,
            flag_regs: 16,
            ..CoprocConfig::default()
        },
        units,
    )
    .expect("valid config");

    let mut msgs = vec![HostMsg::WriteReg {
        reg: 1,
        value: Word::from_u64(3, 32),
    }];
    for i in 0..n {
        let u = i % n_units;
        msgs.push(HostMsg::Instr(InstrWord::user(UserInstr {
            func: (u + 1) as u8,
            variety: 0,
            dst_flag: (u + 1) as u8,
            dst_reg: (2 + u) as u8,
            aux_reg: 0,
            src1: 1,
            src2: 1,
            src3: 0,
        })));
        if fenced {
            msgs.push(HostMsg::Instr(MgmtOp::Fence.encode()));
        }
    }

    let mut frames: std::collections::VecDeque<u32> =
        msgs.iter().flat_map(|m| m.to_frames(32)).collect();
    let mut budget: u64 = 1000 * n as u64 + 100_000;
    loop {
        while let Some(&f) = frames.front() {
            if coproc.push_frame(f) {
                frames.pop_front();
            } else {
                break;
            }
        }
        coproc.step();
        if frames.is_empty() && coproc.is_idle() {
            break;
        }
        budget -= 1;
        assert!(budget > 0, "mix never drained");
    }
    coproc.cycle()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_scales_with_unit_count() {
        let n = 60;
        let one = run_mix(&[12], n, false);
        let three = run_mix(&[12, 12, 12], n, false);
        assert!(
            three * 2 < one,
            "three equal units should overlap ≥2x: one={one}, three={three}"
        );
    }

    #[test]
    fn fences_serialise() {
        let n = 60;
        let ooo = run_mix(&[12, 12], n, false);
        let fenced = run_mix(&[12, 12], n, true);
        assert!(
            fenced as f64 > 1.4 * ooo as f64,
            "A2: scoreboard beats full barriers: ooo={ooo}, fenced={fenced}"
        );
    }

    #[test]
    fn mixed_latencies_hide_fast_work() {
        let n = 40;
        let slow_only = run_mix(&[32], n, false);
        let mixed = run_mix(&[32, 1], n, false);
        // Half the instructions go to the 1-cycle unit and vanish inside
        // the slow unit's shadow.
        assert!(
            mixed < slow_only * 6 / 10,
            "fast-unit work should hide: slow={slow_only}, mixed={mixed}"
        );
    }
}
