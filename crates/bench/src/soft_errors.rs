//! Soft-error resilience sweep (experiment E16): what each protection
//! tier costs, and what it buys, as device-state upsets get more frequent.
//!
//! The wire sweep (E12, `faults.rs`) measures the reliable transport
//! against link faults; this is its device-state counterpart. The same
//! dependent-add batch runs while the seeded SEU model flips bits in
//! register files, result latches and scoreboard tickets, under four
//! protection tiers — no protection, parity-only detection, DMR with
//! checkpoint rollback, and TMR with rollback — across a grid of strike
//! rates and checkpoint intervals. A run *completes* when its response
//! stream is bit-identical to the fault-free reference of the same
//! machine; everything else (silent corruption, in-band `SoftError`s,
//! a blown cycle budget) counts as a miss. The CI smoke pins the fully
//! deterministic counters of one protected run and one farm-failover
//! run in `ci/sim_speed_baseline.json`.

use fu_host::{Farm, FarmConfig, Job, LinkModel, System};
use fu_isa::{DevMsg, HostMsg, InstrWord, UserInstr, Word};
use fu_rtm::testing::{LatencyFu, PoisonFu};
use fu_rtm::{CoprocConfig, FunctionalUnit, Redundancy, SeuConfig};
use rtl_sim::RecoveryStats;

/// Cycle budget for one sweep point; an expiry is scored as a miss, not
/// a panic — an unprotected machine is allowed to wedge.
const POINT_BUDGET: u64 = 20_000_000;

/// The protection tiers E16 compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protection {
    /// Bare machine: strikes land silently.
    None,
    /// Parity on the register/flag files; upsets are detected on read
    /// and surfaced as in-band `SoftError`s, but nothing recovers.
    ParityOnly,
    /// Parity + dual modular redundancy + checkpoint rollback: every
    /// detected upset triggers a deterministic replay.
    DmrRollback,
    /// Parity + triple modular redundancy + checkpoint rollback: latch
    /// upsets are outvoted in place, rollback covers the rest.
    TmrRollback,
}

impl Protection {
    /// Sweep order, weakest first.
    pub const ALL: [Protection; 4] = [
        Protection::None,
        Protection::ParityOnly,
        Protection::DmrRollback,
        Protection::TmrRollback,
    ];

    /// Stable label for tables and JSON.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Protection::None => "none",
            Protection::ParityOnly => "parity",
            Protection::DmrRollback => "dmr+rollback",
            Protection::TmrRollback => "tmr+rollback",
        }
    }

    /// Whether this tier arms checkpoint/rollback recovery.
    #[must_use]
    pub fn recovers(self) -> bool {
        matches!(self, Protection::DmrRollback | Protection::TmrRollback)
    }

    fn apply(self, cfg: CoprocConfig) -> CoprocConfig {
        match self {
            Protection::None => cfg,
            Protection::ParityOnly => cfg.with_parity(),
            Protection::DmrRollback => cfg.with_parity().with_redundancy(Redundancy::Dmr),
            Protection::TmrRollback => cfg.with_parity().with_redundancy(Redundancy::Tmr),
        }
    }
}

/// One sweep point's outcome.
#[derive(Debug, Clone)]
pub struct SoftRun {
    /// Whether the system drained to idle within the cycle budget.
    pub drained: bool,
    /// FPGA cycles until idle (the budget, when `!drained`).
    pub cycles: u64,
    /// Every response the host received, in order.
    pub responses: Vec<DevMsg>,
    /// SEU / rollback accounting for the run.
    pub recovery: RecoveryStats,
}

fn dependent_add() -> HostMsg {
    HostMsg::Instr(InstrWord::user(UserInstr {
        func: 1,
        variety: 0,
        dst_flag: 1,
        dst_reg: 2,
        aux_reg: 0,
        src1: 2,
        src2: 1,
        src3: 0,
    }))
}

/// Run the E16 workload — `n_adds` dependent adds with a read-back every
/// eight, then a final read and sync — on a machine with the given
/// protection tier and optional SEU schedule.
///
/// `ckpt_interval` is the checkpoint cadence in retired instructions;
/// ignored by tiers without recovery. The fault-free reference for a
/// tier is the same call with `seu: None`.
///
/// # Panics
/// On an invalid machine configuration (a harness bug, not a measured
/// outcome).
#[must_use]
pub fn resilience_run(
    protection: Protection,
    seu: Option<SeuConfig>,
    ckpt_interval: u64,
    n_adds: usize,
) -> SoftRun {
    let mut cfg = protection.apply(CoprocConfig::default());
    if let Some(seu) = seu {
        cfg = cfg.with_seu(seu);
    }
    let units: Vec<Box<dyn FunctionalUnit>> = vec![Box::new(LatencyFu::new("add", 1, 3))];
    let mut sys = System::new(cfg, units, LinkModel::pcie_like()).expect("valid E16 config");
    if protection.recovers() {
        sys.enable_recovery(ckpt_interval)
            .expect("LatencyFu is clone-capable");
    }

    sys.send(&HostMsg::WriteReg {
        reg: 1,
        value: Word::from_u64(3, 32),
    });
    sys.send(&HostMsg::WriteReg {
        reg: 2,
        value: Word::from_u64(0, 32),
    });
    let mut tag = 0u16;
    for i in 0..n_adds {
        sys.send(&dependent_add());
        if i % 8 == 7 {
            sys.send(&HostMsg::ReadReg { reg: 2, tag });
            tag += 1;
        }
    }
    sys.send(&HostMsg::ReadReg { reg: 2, tag });
    sys.send(&HostMsg::Sync { tag: tag + 1 });

    let drained = sys.run_until(POINT_BUDGET, System::is_idle).is_ok();
    SoftRun {
        drained,
        cycles: sys.cycle(),
        responses: std::iter::from_fn(|| sys.recv()).collect(),
        recovery: sys.recovery_stats(),
    }
}

/// The deterministic counters CI pins: one protected run plus one
/// farm-failover run, both at fixed seeds. Every field is a pure
/// function of the seeds, so any drift is a behaviour change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftCounts {
    /// Bit flips the SEU model applied in the protected smoke run.
    pub seus_injected: u64,
    /// Upsets a parity check or DMR vote caught.
    pub seus_detected: u64,
    /// Upsets repaired in place (scoreboard shadow / TMR vote).
    pub seus_corrected: u64,
    /// Checkpoint restores the smoke run needed to stay bit-identical.
    pub rollbacks: u64,
    /// Jobs the farm smoke re-ran on a healthy shard.
    pub jobs_failed_over: u64,
}

impl SoftCounts {
    /// Serialize as one baseline JSON object (no surrounding document),
    /// matching the `WorkCounts` baseline idiom.
    #[must_use]
    pub fn json_fields(&self, indent: &str) -> String {
        format!(
            "{{\n{indent}  \"seus_injected\": {},\n\
             {indent}  \"seus_detected\": {},\n\
             {indent}  \"seus_corrected\": {},\n\
             {indent}  \"rollbacks\": {},\n\
             {indent}  \"jobs_failed_over\": {}\n{indent}}}",
            self.seus_injected,
            self.seus_detected,
            self.seus_corrected,
            self.rollbacks,
            self.jobs_failed_over
        )
    }

    /// Parse the counters out of a JSON fragment.
    ///
    /// # Errors
    /// Returns a description of the missing/malformed field.
    pub fn from_json(text: &str) -> Result<SoftCounts, String> {
        let field = |name: &str| -> Result<u64, String> {
            let key = format!("\"{name}\":");
            let at = text
                .find(&key)
                .ok_or_else(|| format!("baseline is missing {name}"))?;
            let rest = text[at + key.len()..].trim_start();
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            digits
                .parse()
                .map_err(|e| format!("bad value for {name}: {e}"))
        };
        Ok(SoftCounts {
            seus_injected: field("seus_injected")?,
            seus_detected: field("seus_detected")?,
            seus_corrected: field("seus_corrected")?,
            rollbacks: field("rollbacks")?,
            jobs_failed_over: field("jobs_failed_over")?,
        })
    }

    /// The resilience gate. The smoke is fully deterministic, so the
    /// strike count and the failover job count must match the baseline
    /// exactly (a change is a behaviour change, not noise); the
    /// detection/recovery counters get the same ≤5% headroom as the
    /// work counters.
    ///
    /// # Errors
    /// Returns a description of the first violated bound.
    pub fn check_against(&self, baseline: &SoftCounts) -> Result<(), String> {
        if self.seus_injected != baseline.seus_injected {
            return Err(format!(
                "seus_injected changed: {} vs baseline {} (strike schedule drifted, re-baseline deliberately)",
                self.seus_injected, baseline.seus_injected
            ));
        }
        if self.jobs_failed_over != baseline.jobs_failed_over {
            return Err(format!(
                "jobs_failed_over changed: {} vs baseline {}",
                self.jobs_failed_over, baseline.jobs_failed_over
            ));
        }
        let within = |name: &str, got: u64, base: u64| -> Result<(), String> {
            if got * 20 > base * 21 {
                Err(format!("{name} regressed >5%: {got} vs baseline {base}"))
            } else {
                Ok(())
            }
        };
        within("seus_detected", self.seus_detected, baseline.seus_detected)?;
        within(
            "seus_corrected",
            self.seus_corrected,
            baseline.seus_corrected,
        )?;
        within("rollbacks", self.rollbacks, baseline.rollbacks)
    }
}

/// Fixed seed for the CI soft-error smoke.
pub const SMOKE_SEED: u64 = 0x0E16_5EED;
/// Strike interval for the smoke: hot enough to force several strikes
/// and at least one rollback in a short run.
pub const SMOKE_INTERVAL: u64 = 50;
/// Checkpoint cadence (instructions) for the smoke.
pub const SMOKE_CKPT: u64 = 8;
/// Adds in the smoke workload.
pub const SMOKE_ADDS: usize = 192;

/// Run the CI soft-error smoke and distil its counters.
///
/// # Panics
/// When the protected run diverges from its fault-free reference, or a
/// failed-over job still errors — either is a resilience regression that
/// must fail the build outright, not just drift a counter.
#[must_use]
pub fn soft_error_smoke() -> SoftCounts {
    // Protected System run: DMR + rollback must reproduce the fault-free
    // stream bit for bit.
    let clean = resilience_run(Protection::DmrRollback, None, SMOKE_CKPT, SMOKE_ADDS);
    let faulty = resilience_run(
        Protection::DmrRollback,
        Some(SeuConfig::all(SMOKE_SEED, SMOKE_INTERVAL)),
        SMOKE_CKPT,
        SMOKE_ADDS,
    );
    assert!(clean.drained && faulty.drained, "E16 smoke failed to drain");
    assert_eq!(
        clean.responses, faulty.responses,
        "E16 smoke: protected run diverged from the fault-free reference"
    );

    // Farm failover run: one poisoned shard, jobs retried elsewhere.
    let mut farm = Farm::new(
        FarmConfig {
            shards: 3,
            seed: SMOKE_SEED,
            max_job_retries: 2,
            ..FarmConfig::default()
        },
        |ctx| {
            let trigger = (ctx.index == 1).then_some(0xDEAD);
            System::new(
                CoprocConfig::default(),
                vec![Box::new(PoisonFu::new("poison", 1, 1, trigger))],
                LinkModel::ideal(),
            )
        },
    );
    let jobs: Vec<Job> = (0..9)
        .map(|i| {
            Job::Requests(vec![
                HostMsg::WriteReg {
                    reg: 1,
                    value: Word::from_u64(0xDEAD, 32),
                },
                HostMsg::Instr(InstrWord::user(UserInstr {
                    func: 1,
                    variety: 0,
                    dst_flag: 1,
                    dst_reg: 3,
                    aux_reg: 0,
                    src1: 1,
                    src2: 1,
                    src3: 0,
                })),
                HostMsg::ReadReg {
                    reg: 3,
                    tag: i as u16,
                },
            ])
        })
        .collect();
    // The poison panics are the point of this run; keep their backtraces
    // out of the CI log (the farm catches and converts every one).
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let results = farm.run_serial(&jobs);
    std::panic::set_hook(hook);
    let results = results.expect("farm smoke run");
    for r in &results {
        assert!(
            r.output.is_ok(),
            "E16 smoke: job {} still failed after failover: {:?}",
            r.job,
            r.output
        );
    }
    let farm_stats = farm.sim_stats();

    let r = &faulty.recovery;
    SoftCounts {
        seus_injected: r.seus_injected,
        seus_detected: r.seus_detected,
        seus_corrected: r.seus_corrected,
        rollbacks: r.rollbacks,
        jobs_failed_over: farm_stats.recovery.jobs_failed_over,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protected_tiers_reproduce_the_fault_free_stream() {
        let seu = SeuConfig::all(0xE16, 120);
        for p in [Protection::DmrRollback, Protection::TmrRollback] {
            let clean = resilience_run(p, None, 8, 128);
            let faulty = resilience_run(p, Some(seu), 8, 128);
            assert!(clean.drained && faulty.drained);
            assert_eq!(clean.responses, faulty.responses, "{} diverged", p.label());
            assert!(faulty.recovery.seus_injected > 0, "no strikes landed");
        }
    }

    #[test]
    fn smoke_counters_are_deterministic() {
        assert_eq!(soft_error_smoke(), soft_error_smoke());
    }

    #[test]
    fn soft_counter_gate_roundtrips_and_rejects_drift() {
        let base = SoftCounts {
            seus_injected: 33,
            seus_detected: 7,
            seus_corrected: 6,
            rollbacks: 1,
            jobs_failed_over: 3,
        };
        assert_eq!(SoftCounts::from_json(&base.json_fields("")), Ok(base));
        assert!(base.check_against(&base).is_ok());
        // Strike schedule and failover counts are pinned exactly.
        let drifted = SoftCounts {
            seus_injected: 34,
            ..base
        };
        assert!(drifted.check_against(&base).is_err());
        let dropped = SoftCounts {
            jobs_failed_over: 0,
            ..base
        };
        assert!(dropped.check_against(&base).is_err());
        // Recovery counters get the 5% headroom, no more.
        let noisy = SoftCounts {
            rollbacks: 2,
            ..base
        };
        assert!(noisy.check_against(&base).is_err());
    }
}
