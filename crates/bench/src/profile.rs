//! Pipeline profiling measurement (experiment E14).
//!
//! Uses the observability layer — always-on latency histograms plus the
//! typed event trace — to profile the arithmetic and χ-sort workloads:
//! per-stage utilization, issue→dispatch→retire latency percentiles, and
//! a Perfetto-loadable trace of one run. Every traced measurement is
//! paired with an untraced twin and the two must agree bit for bit
//! (results *and* `SimStats`): tracing observes the machine, it never
//! steers it.
//!
//! The module also carries the CI regression gate for tracing overhead:
//! a deterministic work-count baseline for the E8 sim-speed smoke
//! configuration (`ci/sim_speed_baseline.json`) that the `exp_profile`
//! binary refuses to exceed by more than 5%.

use std::time::Instant;

use fu_host::{Farm, FarmConfig, Job, LinkModel};
use fu_rtm::{ActivityMode, CoprocConfig};
use rtl_sim::{LatencySnapshot, SimStats};

use crate::links::arith_batch_mode;
use crate::serving::{serving_smoke, ServeCounts};
use crate::soft_errors::{soft_error_smoke, SoftCounts};
use crate::throughput::{arith_jobs, xi_jobs};

/// Trace ring depth used for profiled runs — deep enough that an E14
/// workload's full event stream is retained.
pub const TRACE_DEPTH: usize = 1 << 16;

/// One profiled workload configuration.
#[derive(Debug, Clone)]
pub struct ProfileRun {
    /// Workload label (`"arith"` or `"xi-sort"`).
    pub workload: &'static str,
    /// Operations per job.
    pub batch: usize,
    /// Simulated cycles consumed.
    pub cycles: u64,
    /// User instructions retired (the latency histogram population).
    pub instructions: u64,
    /// Per-stage utilization: fraction of simulated cycles the stage had
    /// work, in pipeline order.
    pub utilization: Vec<(&'static str, f64)>,
    /// Latency percentiles for the three instruction legs.
    pub latency: LatencySnapshot,
    /// Typed events retained in the trace ring.
    pub trace_events: usize,
    /// Events evicted from the ring (0 means the trace is complete).
    pub trace_dropped: u64,
    /// The Perfetto JSON document for this run's trace.
    pub perfetto: String,
}

fn profile_farm(workload: &'static str, seed: u64, trace_depth: usize) -> Farm {
    let cfg = FarmConfig {
        shards: 1,
        seed,
        trace_depth,
        ..FarmConfig::default()
    };
    match workload {
        "arith" => Farm::standard(cfg, CoprocConfig::default(), LinkModel::pcie_like()),
        "xi-sort" => Farm::new(cfg, move |_ctx| {
            let coproc = CoprocConfig::default();
            let units: Vec<Box<dyn fu_rtm::FunctionalUnit>> = vec![Box::new(
                xi_sort::XiSortAdapter::new(xi_sort::XiConfig::new(64), coproc.word_bits),
            )];
            fu_host::System::new(coproc, units, LinkModel::pcie_like())
        }),
        other => panic!("unknown workload {other}"),
    }
}

fn jobs_for(workload: &'static str, total: usize, batch: usize, seed: u64) -> Vec<Job> {
    match workload {
        "arith" => arith_jobs(total, batch, seed),
        "xi-sort" => xi_jobs(total, batch.min(64), seed),
        other => panic!("unknown workload {other}"),
    }
}

/// Profile one workload at one batch size: run it traced, run the
/// identical untraced twin, verify non-perturbation, and distil the
/// traced run's statistics.
///
/// # Panics
/// Panics when the traced run's results or `SimStats` differ from the
/// untraced twin — tracing must never perturb the simulation.
pub fn profile_workload(
    workload: &'static str,
    total: usize,
    batch: usize,
    seed: u64,
) -> ProfileRun {
    let jobs = jobs_for(workload, total, batch, seed);

    let mut traced = profile_farm(workload, seed, TRACE_DEPTH);
    let traced_out = traced.run_serial(&jobs).expect("traced farm run");
    let traced_sim = traced.sim_stats();

    let mut plain = profile_farm(workload, seed, 0);
    let plain_out = plain.run_serial(&jobs).expect("untraced farm run");
    let plain_sim = plain.sim_stats();

    assert_eq!(
        traced_out, plain_out,
        "tracing perturbed the {workload} result stream"
    );
    assert_eq!(
        traced_sim, plain_sim,
        "tracing perturbed the {workload} simulation statistics"
    );

    let report = &traced.shard_reports()[0];
    ProfileRun {
        workload,
        batch,
        cycles: traced_sim.cycles_simulated,
        instructions: traced_sim.lat_issue_retire.count(),
        utilization: traced_sim.utilization(),
        latency: traced_sim.latency_snapshot(),
        trace_events: report.trace.len(),
        trace_dropped: 0,
        perfetto: traced
            .shard_perfetto(0)
            .expect("tracing was enabled on shard 0"),
    }
}

/// The E8-style sim-speed smoke configuration whose work counts the CI
/// baseline pins: the arithmetic batch over the slow prototyping link.
pub fn sim_speed_smoke(mode: ActivityMode) -> SimStats {
    arith_batch_mode(LinkModel::prototyping(), 64, mode).sim
}

/// Deterministic work counters distilled from a [`SimStats`] — the
/// quantities the 5% CI gate compares (no wall clock, so the gate cannot
/// flake on a loaded runner).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkCounts {
    /// Simulated cycles (must match the baseline exactly).
    pub cycles_simulated: u64,
    /// Cycles actually stepped (gated/scheduled modes skip idle and
    /// quiet stretches respectively).
    pub cycles_stepped: u64,
    /// Stage evaluations summed over all stages.
    pub stage_evals_total: u64,
    /// Event-wheel wakes registered (0 outside scheduled mode).
    pub wheel_wakes_scheduled: u64,
    /// Event-wheel wakes actually fired (0 outside scheduled mode).
    pub wheel_wakes_fired: u64,
}

impl WorkCounts {
    /// Distil the work counters from a stats snapshot.
    pub fn of(sim: &SimStats) -> WorkCounts {
        WorkCounts {
            cycles_simulated: sim.cycles_simulated,
            cycles_stepped: sim.cycles_stepped,
            stage_evals_total: sim.stage_evals.iter().map(|&(_, n)| n).sum(),
            wheel_wakes_scheduled: sim.wheel.wakes_scheduled(),
            wheel_wakes_fired: sim.wheel.wakes_fired(),
        }
    }

    /// Serialize as one baseline JSON object (no surrounding document).
    fn json_fields(&self, indent: &str) -> String {
        format!(
            "{{\n{indent}  \"cycles_simulated\": {},\n\
             {indent}  \"cycles_stepped\": {},\n\
             {indent}  \"stage_evals_total\": {},\n\
             {indent}  \"wheel_wakes_scheduled\": {},\n\
             {indent}  \"wheel_wakes_fired\": {}\n{indent}}}",
            self.cycles_simulated,
            self.cycles_stepped,
            self.stage_evals_total,
            self.wheel_wakes_scheduled,
            self.wheel_wakes_fired
        )
    }

    /// Parse one mode's counters out of a JSON fragment (hand-rolled:
    /// the document is integer fields we wrote ourselves; no JSON
    /// dependency needed).
    ///
    /// # Errors
    /// Returns a description of the missing/malformed field.
    pub fn from_json(text: &str) -> Result<WorkCounts, String> {
        let field = |name: &str| -> Result<u64, String> {
            let key = format!("\"{name}\":");
            let at = text
                .find(&key)
                .ok_or_else(|| format!("baseline is missing {name}"))?;
            let rest = text[at + key.len()..].trim_start();
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            digits
                .parse()
                .map_err(|e| format!("bad value for {name}: {e}"))
        };
        Ok(WorkCounts {
            cycles_simulated: field("cycles_simulated")?,
            cycles_stepped: field("cycles_stepped")?,
            stage_evals_total: field("stage_evals_total")?,
            wheel_wakes_scheduled: field("wheel_wakes_scheduled")?,
            wheel_wakes_fired: field("wheel_wakes_fired")?,
        })
    }

    /// The 5% regression gate: simulated cycles must match the baseline
    /// exactly (the workload is deterministic — a cycle-count change is a
    /// behaviour change, not a slowdown) and the work counters may not
    /// exceed the baseline by more than 5%.
    ///
    /// # Errors
    /// Returns a description of the first violated bound.
    pub fn check_against(&self, baseline: &WorkCounts) -> Result<(), String> {
        if self.cycles_simulated != baseline.cycles_simulated {
            return Err(format!(
                "cycles_simulated changed: {} vs baseline {} (behaviour change, re-baseline deliberately)",
                self.cycles_simulated, baseline.cycles_simulated
            ));
        }
        let within = |name: &str, got: u64, base: u64| -> Result<(), String> {
            // got <= base * 1.05, in integers.
            if got * 20 > base * 21 {
                Err(format!("{name} regressed >5%: {got} vs baseline {base}"))
            } else {
                Ok(())
            }
        };
        within(
            "cycles_stepped",
            self.cycles_stepped,
            baseline.cycles_stepped,
        )?;
        within(
            "stage_evals_total",
            self.stage_evals_total,
            baseline.stage_evals_total,
        )?;
        within(
            "wheel_wakes_scheduled",
            self.wheel_wakes_scheduled,
            baseline.wheel_wakes_scheduled,
        )?;
        within(
            "wheel_wakes_fired",
            self.wheel_wakes_fired,
            baseline.wheel_wakes_fired,
        )
    }
}

/// The CI baseline document: the smoke workload's work counters in both
/// skip-capable modes. Gated pins the fast-forward machinery, scheduled
/// pins the event wheel (stepped cycles *and* wake counts — a wheel that
/// silently starts waking too often is a perf regression even when the
/// results stay bit-identical).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmokeBaseline {
    /// Counters from the gated-mode smoke run.
    pub gated: WorkCounts,
    /// Counters from the scheduled-mode smoke run.
    pub scheduled: WorkCounts,
    /// Deterministic counters from the E16 soft-error smoke (a protected
    /// run that must stay bit-identical to its fault-free reference,
    /// plus a farm-failover run).
    pub soft: SoftCounts,
    /// Deterministic counters from the E17 serving smoke (a saturated
    /// multi-tenant run whose admission and completion behaviour is
    /// pinned exactly, with 5% headroom on scheduler efficiency).
    pub serving: ServeCounts,
}

impl SmokeBaseline {
    /// Measure the current smoke counters in both modes.
    pub fn measure() -> SmokeBaseline {
        SmokeBaseline {
            gated: WorkCounts::of(&sim_speed_smoke(ActivityMode::Gated)),
            scheduled: WorkCounts::of(&sim_speed_smoke(ActivityMode::Scheduled)),
            soft: soft_error_smoke(),
            serving: serving_smoke(),
        }
    }

    /// Serialize as the baseline JSON document (gated section first —
    /// the parser relies on the order).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"bench\": \"sim_speed_smoke\",\n  \"gated\": {},\n  \"scheduled\": {},\n  \"soft_errors\": {},\n  \"serving\": {}\n}}\n",
            self.gated.json_fields("  "),
            self.scheduled.json_fields("  "),
            self.soft.json_fields("  "),
            self.serving.json_fields("  ")
        )
    }

    /// Parse the baseline JSON document.
    ///
    /// # Errors
    /// Returns a description of the missing/malformed section or field.
    pub fn from_json(text: &str) -> Result<SmokeBaseline, String> {
        let g_at = text
            .find("\"gated\":")
            .ok_or("baseline is missing the gated section")?;
        let s_at = text
            .find("\"scheduled\":")
            .ok_or("baseline is missing the scheduled section")?;
        let soft_at = text
            .find("\"soft_errors\":")
            .ok_or("baseline is missing the soft_errors section")?;
        let serving_at = text
            .find("\"serving\":")
            .ok_or("baseline is missing the serving section")?;
        if s_at < g_at || soft_at < s_at || serving_at < soft_at {
            return Err(
                "baseline sections out of order (gated, scheduled, soft_errors, serving)".into(),
            );
        }
        Ok(SmokeBaseline {
            gated: WorkCounts::from_json(&text[g_at..s_at])?,
            scheduled: WorkCounts::from_json(&text[s_at..soft_at])?,
            soft: SoftCounts::from_json(&text[soft_at..serving_at])?,
            serving: ServeCounts::from_json(&text[serving_at..])?,
        })
    }

    /// Gate both modes against the baseline, plus the cross-mode
    /// invariant that gated and scheduled simulate identical cycle
    /// counts (the bit-equivalence contract, checked cheaply here).
    ///
    /// # Errors
    /// Returns a description of the first violated bound.
    pub fn check_against(&self, baseline: &SmokeBaseline) -> Result<(), String> {
        if self.gated.cycles_simulated != self.scheduled.cycles_simulated {
            return Err(format!(
                "gated and scheduled smoke runs diverged: {} vs {} simulated cycles",
                self.gated.cycles_simulated, self.scheduled.cycles_simulated
            ));
        }
        self.gated
            .check_against(&baseline.gated)
            .map_err(|e| format!("gated: {e}"))?;
        self.scheduled
            .check_against(&baseline.scheduled)
            .map_err(|e| format!("scheduled: {e}"))?;
        self.soft
            .check_against(&baseline.soft)
            .map_err(|e| format!("soft_errors: {e}"))?;
        self.serving
            .check_against(&baseline.serving)
            .map_err(|e| format!("serving: {e}"))
    }
}

/// Measure wall-clock for the sim-speed smoke with tracing off and on.
/// Returns `(untraced_ms, traced_ms)`. Reported for the record; the CI
/// gate uses the deterministic [`WorkCounts`] instead, because a loaded
/// runner can double any wall-clock number without a real regression.
pub fn overhead_wall_ms(mode: ActivityMode) -> (f64, f64) {
    let t0 = Instant::now();
    let a = arith_batch_mode(LinkModel::prototyping(), 64, mode);
    let untraced = t0.elapsed().as_secs_f64() * 1e3;

    // Same workload on a traced system: System-level, not Farm, to stay
    // identical to the untraced path above.
    let t1 = Instant::now();
    let b = crate::links::arith_batch_mode_traced(LinkModel::prototyping(), 64, mode, TRACE_DEPTH);
    let traced = t1.elapsed().as_secs_f64() * 1e3;
    assert_eq!(a.cycles, b.cycles, "tracing changed the smoke cycle count");
    assert_eq!(a.sim, b.sim, "tracing changed the smoke SimStats");
    (untraced, traced)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn soft() -> SoftCounts {
        SoftCounts {
            seus_injected: 33,
            seus_detected: 7,
            seus_corrected: 6,
            rollbacks: 1,
            jobs_failed_over: 3,
        }
    }

    fn serving() -> ServeCounts {
        ServeCounts {
            jobs_completed: 500,
            jobs_shed: 100,
            rounds: 40,
            clock_cycles: 900_000,
        }
    }

    fn counts(cycles_stepped: u64, stage_evals_total: u64) -> WorkCounts {
        WorkCounts {
            cycles_simulated: 1000,
            cycles_stepped,
            stage_evals_total,
            wheel_wakes_scheduled: 40,
            wheel_wakes_fired: 30,
        }
    }

    #[test]
    fn smoke_baseline_roundtrips_through_json() {
        let b = SmokeBaseline {
            gated: WorkCounts {
                cycles_simulated: 123_456,
                cycles_stepped: 2345,
                stage_evals_total: 9876,
                wheel_wakes_scheduled: 0,
                wheel_wakes_fired: 0,
            },
            scheduled: counts(1234, 8765),
            soft: soft(),
            serving: serving(),
        };
        assert_eq!(SmokeBaseline::from_json(&b.to_json()), Ok(b));
    }

    #[test]
    fn gate_accepts_identical_and_rejects_regressions() {
        let base = counts(100, 400);
        assert!(base.check_against(&base).is_ok());
        // 5% over is allowed, more is not.
        let ok = WorkCounts {
            stage_evals_total: 420,
            ..base
        };
        assert!(ok.check_against(&base).is_ok());
        let bad = WorkCounts {
            stage_evals_total: 421,
            ..base
        };
        assert!(bad.check_against(&base).is_err());
        let drift = WorkCounts {
            cycles_simulated: 1001,
            ..base
        };
        assert!(drift.check_against(&base).is_err());
        // A wheel that wakes too often is a regression too.
        let chatty = WorkCounts {
            wheel_wakes_fired: 32,
            ..base
        };
        assert!(chatty.check_against(&base).is_err());
    }

    #[test]
    fn smoke_gate_requires_cross_mode_cycle_agreement() {
        let b = SmokeBaseline {
            gated: counts(100, 400),
            scheduled: counts(50, 200),
            soft: soft(),
            serving: serving(),
        };
        assert!(b.check_against(&b).is_ok());
        let diverged = SmokeBaseline {
            scheduled: WorkCounts {
                cycles_simulated: 1001,
                ..b.scheduled
            },
            ..b
        };
        assert!(diverged.check_against(&b).is_err());
    }

    #[test]
    fn measured_smoke_counters_show_the_wheel_working() {
        let m = SmokeBaseline::measure();
        assert_eq!(m.gated.cycles_simulated, m.scheduled.cycles_simulated);
        assert_eq!(
            m.gated.wheel_wakes_scheduled, 0,
            "gated never uses the wheel"
        );
        assert!(
            m.scheduled.cycles_stepped <= m.gated.cycles_stepped,
            "the wheel may only reduce stepping: {} vs {}",
            m.scheduled.cycles_stepped,
            m.gated.cycles_stepped
        );
    }

    #[test]
    fn profiled_arith_run_is_unperturbed_and_populated() {
        let run = profile_workload("arith", 16, 8, 0xE14);
        assert_eq!(run.instructions, 16);
        assert!(run.trace_events > 0, "traced run must retain events");
        assert!(run.latency.issue_to_retire.p50 > 0);
        let dispatcher = run
            .utilization
            .iter()
            .find(|(s, _)| *s == "dispatcher")
            .expect("dispatcher utilization present");
        assert!(dispatcher.1 > 0.0 && dispatcher.1 <= 1.0);
        assert!(run.perfetto.contains("\"ph\":\"X\""), "spans expected");
    }
}
