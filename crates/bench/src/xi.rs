//! χ-sort measurements (experiments E6/E7/E9, ablation A4).

use fu_host::baseline::{self, CpuModel};
use fu_host::{Driver, LinkModel, System};
use fu_rtm::CoprocConfig;
use xi_sort::reference::SoftwareXiSort;
use xi_sort::{XiConfig, XiOp, XiSortAdapter, XiSortCore};

/// Per-operation cycle counts for the core primitives (E6 rows).
#[derive(Debug, Clone, Copy)]
pub struct PerOpRow {
    /// Array size.
    pub n: u32,
    /// Cycles for one sort refinement round.
    pub step_cycles: u64,
    /// Cycles for a count-imprecise query.
    pub count_cycles: u64,
    /// Cycles for a positional read.
    pub read_cycles: u64,
    /// Software element-visits for one refinement round.
    pub sw_step_visits: u64,
}

/// Measure the per-operation costs on an `n`-cell core.
pub fn per_op(n: u32, registered_tree: bool) -> PerOpRow {
    let values = baseline::workload(9, n as usize, 1 << 24);
    let cfg = XiConfig::new(n).with_registered_tree(registered_tree);
    let mut core = XiSortCore::new(cfg);
    core.dispatch(XiOp::Reset, 0);
    for &v in &values {
        core.dispatch(XiOp::Push, v);
    }
    core.dispatch(XiOp::InitBounds, 0);
    core.run_to_completion(1_000_000);

    core.dispatch(XiOp::CountImprecise, 0);
    core.run_to_completion(1_000_000);
    let count_cycles = core.op_cycles();

    core.dispatch(XiOp::SortStep, 0);
    core.run_to_completion(1_000_000);
    let step_cycles = core.op_cycles();

    // Finish the sort so a positional read is legal.
    core.dispatch(XiOp::Sort, 0);
    core.run_to_completion(2_000_000_000);
    core.dispatch(XiOp::ReadAt, 0);
    core.run_to_completion(1_000_000);
    let read_cycles = core.op_cycles();

    let mut sw = SoftwareXiSort::new(&values);
    let p = sw.find_pivot(None).expect("imprecise");
    sw.visits = 0;
    sw.partition_step(p);

    PerOpRow {
        n,
        step_cycles,
        count_cycles,
        read_cycles,
        sw_step_visits: sw.visits,
    }
}

/// End-to-end comparison row (E7).
#[derive(Debug, Clone, Copy)]
pub struct EndToEndRow {
    /// Array size.
    pub n: usize,
    /// FPGA cycles for load + sort + readout over the given link.
    pub fpga_cycles: u64,
    /// FPGA time at 50 MHz, µs.
    pub fpga_us: f64,
    /// Software χ-sort element visits.
    pub sw_visits: u64,
    /// Modelled CPU time for the software χ-sort, µs.
    pub sw_xi_us: f64,
    /// Quicksort comparisons (for scale).
    pub quicksort_cmps: u64,
}

/// Measure one end-to-end row.
pub fn end_to_end(n: usize, link: LinkModel, cpu: CpuModel) -> EndToEndRow {
    let values = baseline::workload(n as u64, n, 1 << 24);
    let sys = System::new(
        CoprocConfig::default(),
        vec![Box::new(XiSortAdapter::new(XiConfig::new(n as u32), 32))],
        link,
    )
    .expect("valid config");
    let mut d = Driver::new(sys, 8_000_000_000);
    d.xi_load(&values, 1).expect("load");
    d.xi_sort(2).expect("sort");
    let got = d.xi_read_sorted(n, 1, 2).expect("readout");
    let mut expect = values.clone();
    expect.sort_unstable();
    assert_eq!(got, expect);
    let fpga_cycles = d.cycles();

    let sw = baseline::software_xi_sort(&values);
    let qs = baseline::software_quicksort(&values);

    EndToEndRow {
        n,
        fpga_cycles,
        fpga_us: fpga_cycles as f64 / crate::FPGA_MHZ,
        sw_visits: sw.visits,
        sw_xi_us: cpu.visits_to_us(sw.visits),
        quicksort_cmps: qs,
    }
}

/// Parallelism accounting for E9: components vs critical-path depth.
#[derive(Debug, Clone, Copy)]
pub struct ParallelismRow {
    /// Cell count.
    pub n: u32,
    /// Parallel components (LEs + FFs) of the engine.
    pub components: u64,
    /// Combinational depth in LUT levels.
    pub depth: u64,
    /// The paper's parallelism ratio.
    pub ratio: f64,
}

/// Measure the component/critical-path ratio of an `n`-cell engine.
pub fn parallelism(n: u32) -> ParallelismRow {
    let core = XiSortCore::new(XiConfig::new(n));
    let area = core.area();
    let depth = core.critical_path().levels.max(1);
    ParallelismRow {
        n,
        components: area.components(),
        depth,
        ratio: area.components() as f64 / depth as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_op_fixed_in_n() {
        let a = per_op(16, false);
        let b = per_op(256, false);
        assert_eq!(a.step_cycles, b.step_cycles, "E6: fixed step cost");
        assert_eq!(a.count_cycles, b.count_cycles);
        assert_eq!(a.read_cycles, b.read_cycles);
        assert!(b.sw_step_visits > 10 * a.sw_step_visits, "software is Θ(n)");
    }

    #[test]
    fn registered_tree_costs_log_latency() {
        let comb = per_op(256, false);
        let reg = per_op(256, true);
        assert!(reg.step_cycles > comb.step_cycles);
        assert!(
            reg.step_cycles < comb.step_cycles * 12,
            "latency grows only logarithmically"
        );
    }

    #[test]
    fn end_to_end_row_is_consistent() {
        let row = end_to_end(32, LinkModel::tightly_coupled(), CpuModel::desktop_2010());
        assert!(row.fpga_cycles > 0);
        assert!(row.sw_visits > 32);
        assert!(row.fpga_us > 0.0 && row.sw_xi_us > 0.0);
        assert!(row.quicksort_cmps > 0);
    }

    #[test]
    fn parallelism_ratio_grows_into_papers_band() {
        let small = parallelism(8);
        let big = parallelism(4096);
        assert!(big.ratio > small.ratio);
        assert!(
            big.ratio >= 1000.0,
            "a 4096-cell engine should reach the paper's 10^3..10^5 band, got {}",
            big.ratio
        );
    }
}
