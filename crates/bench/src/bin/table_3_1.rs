//! E1 — regenerate **Table 3.1**: the encoding of the arithmetic unit's
//! instructions from the six variety bits, with a semantics column
//! verified against the live kernel.
//!
//! ```text
//! cargo run -p bench --bin table_3_1
//! ```

use bench::Table;
use fu_isa::variety::{ArithOp, ArithVariety};
use fu_isa::{Flags, Word};

fn bit(v: u8, mask: u8) -> &'static str {
    if v & mask != 0 {
        "1"
    } else {
        "0"
    }
}

fn main() {
    println!("Table 3.1 — Encoding of arithmetic instructions");
    println!("(variety bits: UC=use carry flag, FC=fixed carry, OD=output data,");
    println!(" FZ=first input zero, SZ=second input zero, CS=complement second input)\n");

    let mut t = Table::new([
        "instr",
        "UC",
        "FC",
        "OD",
        "FZ",
        "SZ",
        "CS",
        "variety",
        "semantics",
    ]);
    for op in ArithOp::ALL {
        let v = op.variety().0;
        let sem = match op {
            ArithOp::Add => "d = s1 + s2",
            ArithOp::Adc => "d = s1 + s2 + C",
            ArithOp::Sub => "d = s1 - s2",
            ArithOp::Sbb => "d = s1 - s2 - !C",
            ArithOp::Inc => "d = s1 + 1",
            ArithOp::Dec => "d = s1 - 1",
            ArithOp::Neg => "d = -s2",
            ArithOp::Cmp => "flags(s1 - s2)",
            ArithOp::Cmpb => "flags(s1 - s2 - !C)",
        };
        t.row([
            op.mnemonic().to_string(),
            bit(v, ArithVariety::USE_CARRY).into(),
            bit(v, ArithVariety::FIXED_CARRY).into(),
            bit(v, ArithVariety::OUTPUT_DATA).into(),
            bit(v, ArithVariety::FIRST_ZERO).into(),
            bit(v, ArithVariety::SECOND_ZERO).into(),
            bit(v, ArithVariety::COMPLEMENT_SECOND).into(),
            format!("{v:#04x}"),
            sem.into(),
        ]);
    }
    t.print();

    // Spot-verify each row against the datapath so the printed table can
    // never drift from the implementation.
    println!("\nverification against the adder datapath (s1=100, s2=42, C=1):");
    let a = Word::from_u64(100, 32);
    let b = Word::from_u64(42, 32);
    let mut v = Table::new(["instr", "data result", "flags"]);
    for op in ArithOp::ALL {
        let (data, flags) = op.variety().evaluate(&a, &b, Flags::CARRY);
        v.row([
            op.mnemonic().to_string(),
            data.map_or("-".into(), |d| format!("{}", d.as_u64() as i64 as i32)),
            flags.to_string(),
        ]);
    }
    v.print();
}
