//! E9 — the circuit-parallelism ratio.
//!
//! "Digital circuits contain an extraordinary degree of parallelism. All
//! the components operate in parallel, although the useful parallelism in
//! a synchronous circuit is limited by the critical path depth. The ratio
//! between the number of components and the critical path depth may be
//! between 10^3 to 10^5."
//!
//! ```text
//! cargo run --release -p bench --bin exp_parallelism
//! ```

use bench::xi::parallelism;
use bench::Table;
use fu_rtm::{CoprocConfig, Coprocessor};
use fu_units::standard_units;

fn main() {
    println!("E9 — components vs critical-path depth, chi-sort engine\n");
    let mut t = Table::new(["cells", "components (LE+FF)", "depth (levels)", "ratio"]);
    for n in [8u32, 32, 128, 512, 2048, 4096, 16384] {
        let r = parallelism(n);
        t.row([
            r.n.to_string(),
            r.components.to_string(),
            r.depth.to_string(),
            format!("{:.0}", r.ratio),
        ]);
    }
    t.print();

    let coproc = Coprocessor::new(CoprocConfig::default(), standard_units(32)).unwrap();
    let area = coproc.area();
    let depth = coproc.critical_path().levels;
    println!(
        "\nfor scale — the controller + stateless units: {} components over {} levels\n\
         (ratio {:.0})",
        area.components(),
        depth,
        area.components() as f64 / depth as f64
    );
    println!(
        "\nExpected shape: the ratio grows ~linearly with the cell count (depth\n\
         grows only logarithmically through the tree) and reaches the paper's\n\
         10^3..10^5 band at a few thousand cells."
    );
}
