//! E12 — the reliable transport under injected link faults.
//!
//! The paper's framing layer "is exactly what a different transceiver
//! would replace"; this experiment swaps in the reliable transceiver and
//! measures what loss recovery costs. The same arithmetic batch runs over
//! each link preset while frames are dropped, corrupted and duplicated at
//! a swept rate; every faulty run must reproduce the fault-free response
//! stream bit for bit (the harness panics otherwise — CI runs this binary
//! as the fault-injection smoke test).
//!
//! ```text
//! cargo run --release -p bench --bin exp_faults
//! ```

use bench::faults::fault_sweep_verified;
use bench::Table;
use fu_host::LinkModel;

/// Fault rate per class (drop, corrupt, duplicate), in permille.
const RATES: &[u32] = &[0, 10, 20, 50, 100, 200];
/// Fixed seed so the CI smoke run is reproducible.
const SEED: u64 = 0x00F4_0175;
/// Dependent adds per batch.
const N_ADDS: usize = 32;

fn main() {
    println!("E12 — goodput and completion time vs injected fault rate");
    println!("workload: {N_ADDS} dependent ADDs + read-back + sync, seed {SEED:#x}\n");
    let mut scenarios: Vec<String> = Vec::new();
    for link in [
        LinkModel::tightly_coupled(),
        LinkModel::pcie_like(),
        LinkModel::prototyping(),
    ] {
        println!("link: {}", link.name);
        let mut t = Table::new([
            "faults ‰/class",
            "cycles",
            "retx",
            "dropped",
            "corrupted",
            "dup",
            "wire frames",
            "goodput (frm/kcyc)",
            "efficiency",
        ]);
        for (rate, run) in fault_sweep_verified(link, SEED, N_ADDS, RATES) {
            let s = &run.stats;
            t.row([
                rate.to_string(),
                run.cycles.to_string(),
                s.retransmits.to_string(),
                s.frames_dropped.to_string(),
                s.frames_corrupted.to_string(),
                s.frames_duplicated.to_string(),
                (run.wire_to_dev + run.wire_to_host).to_string(),
                format!("{:.2}", run.goodput_per_kcycle()),
                format!("{:.3}", run.efficiency()),
            ]);
            scenarios.push(format!(
                concat!(
                    "    {{\"link\": \"{}\", \"fault_permille\": {}, ",
                    "\"cycles\": {}, \"retransmits\": {}, \"dropped\": {}, ",
                    "\"corrupted\": {}, \"duplicated\": {}, \"wire_frames\": {}, ",
                    "\"delivered\": {}, \"goodput_per_kcycle\": {:.3}, ",
                    "\"efficiency\": {:.4}}}"
                ),
                link.name,
                rate,
                run.cycles,
                s.retransmits,
                s.frames_dropped,
                s.frames_corrupted,
                s.frames_duplicated,
                run.wire_to_dev + run.wire_to_host,
                s.delivered,
                run.goodput_per_kcycle(),
                run.efficiency(),
            ));
        }
        t.print();
        println!();
    }
    let json = format!(
        "{{\n  \"bench\": \"fault_sweep\",\n  \"seed\": {SEED},\n  \"n_adds\": {N_ADDS},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        scenarios.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fault_sweep.json");
    std::fs::write(path, &json).expect("write BENCH_fault_sweep.json");
    println!(
        "Every faulty run reproduced the fault-free response stream bit for\n\
         bit; reliability costs cycles, never answers. Report: BENCH_fault_sweep.json"
    );
}
