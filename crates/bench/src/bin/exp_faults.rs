//! E12 — the reliable transport under injected link faults.
//!
//! The paper's framing layer "is exactly what a different transceiver
//! would replace"; this experiment swaps in the reliable transceiver and
//! measures what loss recovery costs. The same arithmetic batch runs over
//! each link preset while frames are dropped, corrupted and duplicated at
//! a swept rate; every faulty run must reproduce the fault-free response
//! stream bit for bit (the harness panics otherwise — CI runs this binary
//! as the fault-injection smoke test).
//!
//! ```text
//! cargo run --release -p bench --bin exp_faults [-- --seed N]
//! ```
//!
//! `--seed` (decimal or `0x`-hex) overrides the default seed; CI runs
//! the sweep under a small seed matrix so one lucky schedule cannot
//! hide a recovery bug.

use bench::faults::fault_sweep_verified;
use bench::Table;
use fu_host::LinkModel;

/// Fault rate per class (drop, corrupt, duplicate), in permille.
const RATES: &[u32] = &[0, 10, 20, 50, 100, 200];
/// Default seed (overridable with `--seed`) so runs are reproducible.
const SEED: u64 = 0x00F4_0175;
/// Dependent adds per batch.
const N_ADDS: usize = 32;

fn parse_seed() -> Option<u64> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--seed" {
            let v = args.next().expect("--seed needs a value");
            let parsed = match v.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => v.parse(),
            };
            return Some(parsed.unwrap_or_else(|e| panic!("bad --seed {v:?}: {e}")));
        }
    }
    None
}

fn main() {
    let seed = parse_seed().unwrap_or(SEED);
    println!("E12 — goodput and completion time vs injected fault rate");
    println!("workload: {N_ADDS} dependent ADDs + read-back + sync, seed {seed:#x}\n");
    let mut scenarios: Vec<String> = Vec::new();
    for link in [
        LinkModel::tightly_coupled(),
        LinkModel::pcie_like(),
        LinkModel::prototyping(),
    ] {
        println!("link: {}", link.name);
        let mut t = Table::new([
            "faults ‰/class",
            "cycles",
            "retx",
            "dropped",
            "corrupted",
            "dup",
            "wire frames",
            "goodput (frm/kcyc)",
            "efficiency",
        ]);
        for (rate, run) in fault_sweep_verified(link, seed, N_ADDS, RATES) {
            let s = &run.stats;
            t.row([
                rate.to_string(),
                run.cycles.to_string(),
                s.retransmits.to_string(),
                s.frames_dropped.to_string(),
                s.frames_corrupted.to_string(),
                s.frames_duplicated.to_string(),
                (run.wire_to_dev + run.wire_to_host).to_string(),
                format!("{:.2}", run.goodput_per_kcycle()),
                format!("{:.3}", run.efficiency()),
            ]);
            scenarios.push(format!(
                concat!(
                    "    {{\"link\": \"{}\", \"fault_permille\": {}, ",
                    "\"cycles\": {}, \"retransmits\": {}, \"dropped\": {}, ",
                    "\"corrupted\": {}, \"duplicated\": {}, \"wire_frames\": {}, ",
                    "\"delivered\": {}, \"goodput_per_kcycle\": {:.3}, ",
                    "\"efficiency\": {:.4}}}"
                ),
                link.name,
                rate,
                run.cycles,
                s.retransmits,
                s.frames_dropped,
                s.frames_corrupted,
                s.frames_duplicated,
                run.wire_to_dev + run.wire_to_host,
                s.delivered,
                run.goodput_per_kcycle(),
                run.efficiency(),
            ));
        }
        t.print();
        println!();
    }
    let json = format!(
        "{{\n  \"bench\": \"fault_sweep\",\n  \"seed\": {seed},\n  \"n_adds\": {N_ADDS},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        scenarios.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fault_sweep.json");
    std::fs::write(path, &json).expect("write BENCH_fault_sweep.json");
    println!(
        "Every faulty run reproduced the fault-free response stream bit for\n\
         bit; reliability costs cycles, never answers. Report: BENCH_fault_sweep.json"
    );
}
