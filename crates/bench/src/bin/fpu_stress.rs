//! Exhaustive-style randomized stress of the soft-FPU against the host
//! FPU (FTZ-adjusted): millions of bit patterns for add/mul/cmp.
//!
//! ```text
//! cargo run --release -p bench --bin fpu_stress [n_million]
//! ```

use fu_units::fpu::{fadd, fcmp, fmul};
use rtl_sim::StallFuzzer;

fn flush(v: f32) -> f32 {
    if v.is_subnormal() {
        0.0f32.copysign(v)
    } else {
        v
    }
}

fn main() {
    let millions: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let n = millions * 1_000_000;
    let mut rng = StallFuzzer::new(0xF10A7, 0.0);
    let mut checked = 0u64;
    for i in 0..n {
        let a = rng.next_u64() as u32;
        let b = rng.next_u64() as u32;
        let (fa, fb) = (flush(f32::from_bits(a)), flush(f32::from_bits(b)));

        let ours = fadd(a, b);
        let host = flush(fa + fb).to_bits();
        if f32::from_bits(host).is_nan() {
            assert!(
                f32::from_bits(ours).is_nan(),
                "fadd({a:#x},{b:#x}) expected NaN"
            );
        } else {
            assert_eq!(ours, host, "fadd({a:#x},{b:#x}) at iteration {i}");
        }

        let ours = fmul(a, b);
        let host = flush(fa * fb).to_bits();
        if f32::from_bits(host).is_nan() {
            assert!(
                f32::from_bits(ours).is_nan(),
                "fmul({a:#x},{b:#x}) expected NaN"
            );
        } else {
            assert_eq!(ours, host, "fmul({a:#x},{b:#x}) at iteration {i}");
        }

        let (lt, eq, un) = fcmp(a, b);
        match fa.partial_cmp(&fb) {
            None => assert!(un),
            Some(std::cmp::Ordering::Less) => assert!(lt && !eq),
            Some(std::cmp::Ordering::Equal) => assert!(eq && !lt),
            Some(std::cmp::Ordering::Greater) => assert!(!lt && !eq && !un),
        }
        checked += 1;
    }
    // Phase 2: near-exponent pairs — the catastrophic-cancellation and
    // tie-rounding territory random u32s rarely reach.
    let mut near_checked = 0u64;
    for i in 0..n {
        let ea = 1 + (rng.next_u64() % 253) as u32; // normal exponents
        let diff = (rng.next_u64() % 5) as i32 - 2; // -2..=2
        let eb = (ea as i32 + diff).clamp(1, 254) as u32;
        let a = ((rng.next_u64() as u32) & 0x807f_ffff) | (ea << 23);
        let b = ((rng.next_u64() as u32) & 0x807f_ffff) | (eb << 23);
        let (fa, fb) = (f32::from_bits(a), f32::from_bits(b));

        let ours = fadd(a, b);
        let host = flush(fa + fb).to_bits();
        assert_eq!(ours, host, "near fadd({a:#x},{b:#x}) at iteration {i}");

        let ours = fmul(a, b);
        let host = flush(fa * fb).to_bits();
        assert_eq!(ours, host, "near fmul({a:#x},{b:#x}) at iteration {i}");
        near_checked += 1;
    }
    println!(
        "soft-FPU bit-exact vs host FPU on {checked} random + {near_checked} \
         near-exponent pairs (add, mul, cmp) ✓"
    );
}
