//! E8 — interconnect sensitivity.
//!
//! "Our implementation used a prototyping board … only a very slow
//! connection from the FPGA board to the processor was available.
//! However, this is not a limitation of the approach: there are FPGAs
//! that are tightly integrated with processors, offering extremely high
//! transfer rates."
//!
//! ```text
//! cargo run --release -p bench --bin exp_link
//! ```

use bench::links::{arith_batch, xi_batch};
use bench::Table;
use fu_host::LinkModel;

fn main() {
    println!("E8 — identical workloads across interconnect models\n");
    println!("workload A: 64 dependent ADDs + one result read-back");
    let mut t = Table::new([
        "link",
        "latency (cyc)",
        "cyc/frame",
        "total cycles",
        "µs @50MHz",
        "frames to dev",
    ]);
    for link in LinkModel::presets() {
        let r = arith_batch(link, 64);
        eprintln!("[{}] {}", link.name, r.sim);
        t.row([
            link.name.to_string(),
            link.latency_cycles.to_string(),
            link.cycles_per_frame.to_string(),
            r.cycles.to_string(),
            format!("{:.1}", r.cycles as f64 / bench::FPGA_MHZ),
            r.frames_to_dev.to_string(),
        ]);
    }
    t.print();

    println!("\nworkload B: chi-sort 64 elements (load + sort + readout)");
    let mut t = Table::new(["link", "total cycles", "µs @50MHz", "frames dev/host"]);
    for link in LinkModel::presets() {
        let r = xi_batch(link, 64);
        eprintln!("[{}] {}", link.name, r.sim);
        t.row([
            link.name.to_string(),
            r.cycles.to_string(),
            format!("{:.1}", r.cycles as f64 / bench::FPGA_MHZ),
            format!("{}/{}", r.frames_to_dev, r.frames_to_host),
        ]);
    }
    t.print();

    println!(
        "\nExpected shape: the same frame counts move on every link; total time\n\
         collapses by orders of magnitude from the prototyping link to the\n\
         tightly-coupled fabric — the framework itself is link-agnostic, as\n\
         the paper argues."
    );
}
