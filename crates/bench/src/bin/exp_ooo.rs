//! E4 — out-of-order execution inside the FPGA, plus ablation A2
//! (scoreboard vs conservative full-barrier dispatch).
//!
//! "Within the FPGA, the instructions may be executed out of order, but
//! the stream of results returned to the processor will be consistent
//! with the stream of instructions that were issued."
//!
//! ```text
//! cargo run --release -p bench --bin exp_ooo
//! ```

use bench::ooo::run_mix;
use bench::Table;

fn main() {
    let n = 240;
    println!("E4 — overlap across functional units ({n} instructions)\n");

    let mut t = Table::new([
        "unit latencies",
        "cycles (OoO)",
        "cycles (fenced, A2)",
        "speedup",
    ]);
    for lats in [
        vec![12u32],
        vec![12, 12],
        vec![12, 12, 12],
        vec![12, 12, 12, 12],
        vec![32, 1],
        vec![32, 8, 1],
    ] {
        let ooo = run_mix(&lats, n, false);
        let fenced = run_mix(&lats, n, true);
        t.row([
            format!("{lats:?}"),
            ooo.to_string(),
            fenced.to_string(),
            format!("{:.2}x", fenced as f64 / ooo as f64),
        ]);
    }
    t.print();

    println!("\nscaling with unit count (latency-12 units, {n} instructions):");
    let mut t = Table::new(["units", "cycles", "vs 1 unit"]);
    let base = run_mix(&[12], n, false);
    for k in 1..=6usize {
        let lats = vec![12u32; k];
        let c = run_mix(&lats, n, false);
        t.row([
            k.to_string(),
            c.to_string(),
            format!("{:.2}x", base as f64 / c as f64),
        ]);
    }
    t.print();
    println!(
        "\nExpected shape: near-linear speedup while units are the bottleneck,\n\
         flattening once the one-dispatch-per-cycle front end dominates; the\n\
         fenced (no-scoreboard) ablation forfeits all overlap."
    );
}
