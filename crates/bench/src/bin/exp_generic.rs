//! E10 — framework genericity: one host program, many configurations.
//!
//! "The work aims to improve portability, by providing a generic
//! controller that can be adapted to a wide variety of computer systems."
//! The same unit set and the same host program run across every word
//! size, register-file size and link; the table records cycles and area
//! for each instance — the configuration is *only* a set of generics.
//!
//! ```text
//! cargo run --release -p bench --bin exp_generic
//! ```

use bench::Table;
use fu_host::{Driver, LinkModel, System};
use fu_rtm::{CoprocConfig, Coprocessor};
use fu_units::standard_units;

/// The fixed host program (mirrors tests/generic_configs.rs).
fn program(dev: &mut Driver) -> u64 {
    dev.write_reg(1, 1000);
    dev.write_reg(2, 58);
    dev.exec_program(
        "SUB r3, r1, r2, f1
         XOR r4, r1, r2
         SHL r5, r2, #4
         MUL r6, r7, r1, r2
         POPCNT r8, r1
         DIV r9, r10, r1, r2",
    )
    .expect("assembles");
    assert_eq!(dev.read_reg(3).unwrap().as_u64(), 942);
    assert_eq!(dev.read_reg(4).unwrap().as_u64(), 1000 ^ 58);
    assert_eq!(dev.read_reg(5).unwrap().as_u64(), 58 << 4);
    assert_eq!(dev.read_reg(6).unwrap().as_u64(), 58_000);
    assert_eq!(dev.read_reg(8).unwrap().as_u64(), 6);
    assert_eq!(dev.read_reg(9).unwrap().as_u64(), 17);
    assert_eq!(dev.read_reg(10).unwrap().as_u64(), 14);
    dev.sync().expect("sync");
    dev.cycles()
}

fn main() {
    println!("E10 — one program across framework configurations\n");
    let mut t = Table::new([
        "word bits",
        "data regs",
        "link",
        "result",
        "cycles",
        "area (LE)",
        "area (FF)",
    ]);
    for word_bits in [32u32, 64, 96, 128] {
        for data_regs in [16u16, 64] {
            for link in [LinkModel::prototyping(), LinkModel::tightly_coupled()] {
                let cfg = CoprocConfig::default()
                    .with_word_bits(word_bits)
                    .with_data_regs(data_regs);
                let area = Coprocessor::new(cfg.clone(), standard_units(word_bits))
                    .expect("valid config")
                    .area();
                let sys = System::new(cfg, standard_units(word_bits), link).expect("valid config");
                let mut dev = Driver::new(sys, 100_000_000);
                let cycles = program(&mut dev);
                t.row([
                    word_bits.to_string(),
                    data_regs.to_string(),
                    link.name.to_string(),
                    "ok".to_string(),
                    cycles.to_string(),
                    area.les.to_string(),
                    area.ffs.to_string(),
                ]);
            }
        }
    }
    t.print();
    println!(
        "\nExpected shape: every configuration passes identically; cycles vary\n\
         with the link (and slightly with word size through frame counts);\n\
         area scales with word size and register count — the generics story."
    );
}
