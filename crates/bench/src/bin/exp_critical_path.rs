//! E5 — pipeline depth profile and clock-rate estimate.
//!
//! "The generic controller is designed to minimise the clock period; this
//! is achieved by pipelining, so the critical path in the controller is
//! short. … The main limitation on performance will be the functional
//! unit circuits."
//!
//! The table reports each stage's combinational depth (4-LUT levels) and
//! the resulting f_max estimate; the second part shows how the
//! acknowledge-forwarding option (A1) and a combinational χ-sort tree
//! push the critical path out of the controller and into the units,
//! exactly as the paper warns.
//!
//! ```text
//! cargo run --release -p bench --bin exp_critical_path
//! ```

use bench::Table;
use fu_rtm::{CoprocConfig, Coprocessor, FunctionalUnit};
use fu_units::{ArithKernel, MinimalFu};
use xi_sort::{XiConfig, XiSortAdapter};

fn profile(label: &str, units: Vec<Box<dyn FunctionalUnit>>) {
    let coproc = Coprocessor::new(CoprocConfig::default(), units).expect("valid config");
    println!("\n{label}:");
    let mut t = Table::new(["stage", "LUT levels", "stage f_max (MHz)"]);
    for (name, path) in coproc.stage_critical_paths() {
        t.row([
            name.to_string(),
            path.levels.to_string(),
            format!("{:.0}", path.fmax_mhz()),
        ]);
    }
    t.print();
    let worst = coproc.critical_path();
    println!(
        "design critical path: {} levels -> ~{:.0} MHz  (area: {} LEs, {} FFs)",
        worst.levels,
        worst.fmax_mhz(),
        coproc.area().les,
        coproc.area().ffs,
    );
}

fn main() {
    println!("E5 — per-stage combinational depth and clock estimate");

    profile(
        "controller with the case-study arithmetic unit (minimal skeleton)",
        vec![Box::new(MinimalFu::new(ArithKernel::new(32), false))],
    );

    profile(
        "same unit with acknowledge forwarding (A1) — longer unit path",
        vec![Box::new(MinimalFu::new(ArithKernel::new(32), true))],
    );

    profile(
        "with a 256-cell chi-sort engine, combinational tree",
        vec![Box::new(XiSortAdapter::new(XiConfig::new(256), 32))],
    );

    profile(
        "with a 256-cell chi-sort engine, registered tree (A4)",
        vec![Box::new(XiSortAdapter::new(
            XiConfig::new(256).with_registered_tree(true),
            32,
        ))],
    );

    println!(
        "\nExpected shape: the RTM stages stay shallow (the paper's pipelining\n\
         argument); attached units set the clock — the combinational chi-sort\n\
         tree dominates at large n, and registering its levels (A4) restores\n\
         the controller-bound clock at the cost of per-operation latency.\n\
         The ~50 MHz band matches the paper's Cyclone prototype."
    );
}
