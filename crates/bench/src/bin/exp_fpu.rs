//! X6 — floating-point throughput of the coprocessor FPU.
//!
//! The paper's §I motivates hardware floating point; this experiment
//! reports what the framework delivers: sustained FLOP rate at the
//! 50 MHz prototype clock for independent and dependent f32 streams,
//! per skeleton, plus the FCMP flag path.
//!
//! ```text
//! cargo run --release -p bench --bin exp_fpu
//! ```

use bench::Table;
use fu_isa::{HostMsg, InstrWord, UserInstr, Word};
use fu_rtm::{CoprocConfig, Coprocessor, FunctionalUnit};
use fu_units::fpu::{ops, FpuKernel};
use fu_units::{MinimalFu, PipelinedFu};

fn fpu_instr(variety: u8, dst: u8, s1: u8, s2: u8, flag: u8) -> HostMsg {
    HostMsg::Instr(InstrWord::user(UserInstr {
        func: fu_isa::funit_codes::FPU,
        variety,
        dst_flag: flag,
        dst_reg: dst,
        aux_reg: 0,
        src1: s1,
        src2: s2,
        src3: 0,
    }))
}

/// Run `n` FADDs; independent streams rotate registers, dependent streams
/// accumulate. Returns total cycles.
fn run(unit: Box<dyn FunctionalUnit>, n: u32, dependent: bool) -> u64 {
    let mut coproc = Coprocessor::new(
        CoprocConfig {
            rx_frames_per_cycle: 8,
            rx_fifo_depth: 64,
            ..CoprocConfig::default()
        },
        vec![unit],
    )
    .expect("valid config");
    let mut msgs = vec![
        HostMsg::WriteReg {
            reg: 1,
            value: Word::from_u64(1.0f32.to_bits() as u64, 32),
        },
        HostMsg::WriteReg {
            reg: 2,
            value: Word::from_u64(0.5f32.to_bits() as u64, 32),
        },
    ];
    for i in 0..n {
        if dependent {
            msgs.push(fpu_instr(ops::FADD, 3, 3, 2, 1)); // acc += 0.5
        } else {
            msgs.push(fpu_instr(ops::FADD, 8 + (i % 8) as u8, 1, 2, (i % 8) as u8));
        }
    }
    let out = coproc
        .run_messages(&msgs, 200 * n as u64 + 100_000)
        .unwrap();
    assert!(out.is_empty());
    coproc.cycle()
}

fn main() {
    let n = 2000;
    println!("X6 — f32 FADD throughput at the 50 MHz prototype clock ({n} ops)\n");
    let mut t = Table::new(["skeleton", "stream", "CPI", "MFLOP/s @50MHz"]);
    type UnitMaker = fn() -> Box<dyn FunctionalUnit>;
    let configs: Vec<(&str, UnitMaker)> = vec![
        ("minimal", || {
            Box::new(MinimalFu::new(FpuKernel::new(32), false))
        }),
        ("minimal+fwd", || {
            Box::new(MinimalFu::new(FpuKernel::new(32), true))
        }),
        ("pipelined(k=4)", || {
            Box::new(PipelinedFu::new(FpuKernel::new(32), 4, 8))
        }),
    ];
    for (name, mk) in &configs {
        for dependent in [false, true] {
            let cycles = run(mk(), n, dependent);
            let cpi = cycles as f64 / n as f64;
            t.row([
                name.to_string(),
                if dependent {
                    "dependent"
                } else {
                    "independent"
                }
                .to_string(),
                format!("{cpi:.2}"),
                format!("{:.1}", bench::FPGA_MHZ / cpi),
            ]);
        }
    }
    t.print();
    println!(
        "\nExpected shape: the pipelined FPU sustains ~1 op/cycle on independent\n\
         work (≈50 MFLOP/s at the prototype clock — competitive with 2010-era\n\
         soft floating point on embedded CPUs); dependent accumulation pays the\n\
         pipeline's dispatch→unlock latency per op, the trade the lock manager\n\
         makes for programmability."
    );
}
