//! X1 — per-operation costs of the paper's stateful-unit examples
//! ("histogram calculators, pseudorandom number generators, and
//! associative memories").
//!
//! The table makes the circuit-parallelism trade explicit: a CAM search
//! is one cycle at any capacity because every entry compares in parallel
//! — the cost moves into area; BRAM-sweep operations (histogram clear/
//! total, CAM clear) scale with the memory because a block RAM has one
//! port; the LFSR advances one state per cycle.
//!
//! ```text
//! cargo run --release -p bench --bin exp_stateful
//! ```

use bench::Table;
use fu_isa::{Flags, Word};
use fu_rtm::protocol::{DispatchPacket, FunctionalUnit, LockTicket};
use fu_units::stateful::{cam, histogram, prng, CamFu, HistogramFu, PrngFu};

fn pkt(variety: u8, a: u64, b: u64) -> DispatchPacket {
    DispatchPacket {
        variety,
        ops: [Word::from_u64(a, 32), Word::from_u64(b, 32), Word::zero(32)],
        flags_in: Flags::NONE,
        dst_reg: 1,
        dst2_reg: None,
        dst_flag: 0,
        imm8: 0,
        ticket: LockTicket::default(),
        seq: 0,
    }
}

/// Dispatch one op on a raw unit, count cycles to data_ready.
fn cycles_of(fu: &mut dyn FunctionalUnit, variety: u8, a: u64, b: u64) -> u64 {
    assert!(fu.can_dispatch());
    fu.dispatch(pkt(variety, a, b));
    let mut cycles = 0;
    while fu.peek_output().is_none() {
        fu.commit();
        cycles += 1;
        assert!(cycles < 1_000_000);
    }
    fu.ack_output();
    cycles
}

fn main() {
    println!("X1 — stateful-unit operation costs (cycles to data_ready)\n");

    println!("histogram (BRAM bins):");
    let mut t = Table::new([
        "bins",
        "accumulate",
        "read",
        "clear",
        "total",
        "area (components)",
    ]);
    for bins in [8usize, 64, 512] {
        let mut fu = HistogramFu::new(bins, 32);
        let acc = cycles_of(&mut fu, histogram::HIST_ACCUM, 1, 1);
        let read = cycles_of(&mut fu, histogram::HIST_READ, 1, 0);
        let clear = cycles_of(&mut fu, histogram::HIST_CLEAR, 0, 0);
        let total = cycles_of(&mut fu, histogram::HIST_TOTAL, 0, 0);
        t.row([
            bins.to_string(),
            acc.to_string(),
            read.to_string(),
            clear.to_string(),
            total.to_string(),
            fu.area().components().to_string(),
        ]);
    }
    t.print();

    println!("\nassociative memory (parallel compare):");
    let mut t = Table::new([
        "entries",
        "write",
        "search",
        "invalidate",
        "clear",
        "area (components)",
    ]);
    for entries in [4usize, 64, 1024] {
        let mut fu = CamFu::new(entries, 32);
        let write = cycles_of(&mut fu, cam::CAM_WRITE, 7, 70);
        let search = cycles_of(&mut fu, cam::CAM_SEARCH, 7, 0);
        let inval = cycles_of(&mut fu, cam::CAM_INVALIDATE, 7, 0);
        let clear = cycles_of(&mut fu, cam::CAM_CLEAR, 0, 0);
        t.row([
            entries.to_string(),
            write.to_string(),
            search.to_string(),
            inval.to_string(),
            clear.to_string(),
            fu.area().components().to_string(),
        ]);
    }
    t.print();

    println!("\npseudorandom number generator (32-bit Galois LFSR):");
    let mut t = Table::new(["operation", "cycles"]);
    let mut fu = PrngFu::new(32);
    t.row([
        "seed".to_string(),
        cycles_of(&mut fu, prng::PRNG_SEED, 99, 0).to_string(),
    ]);
    t.row([
        "next".to_string(),
        cycles_of(&mut fu, prng::PRNG_NEXT, 0, 0).to_string(),
    ]);
    t.row([
        "skip(100)".to_string(),
        cycles_of(&mut fu, prng::PRNG_SKIP, 100, 0).to_string(),
    ]);
    t.print();

    println!(
        "\nExpected shape: search/accumulate are O(1) cycles at any capacity\n\
         (area grows instead — the CAM's component count explodes with its\n\
         entry count); memory sweeps and LFSR skips pay one cycle per element,\n\
         because a BRAM has one port and an LFSR one state register."
    );
}
