//! Print the χ-sort controller's microcode ROM — the reproduction's
//! counterpart to the thesis appendix that lists the reference
//! implementation.
//!
//! ```text
//! cargo run -p bench --bin xi_microcode
//! ```

use xi_sort::microcode;

fn main() {
    println!("χ-sort controller microcode ROM\n");
    println!("scratch registers: L, E, Base, PivotData, PivotLo, PivotHi, Out, K, Tmp");
    println!("tree ops: TCOUNT (fold count), TLEFT (leftmost selected),");
    println!("          TGET (OR-retrieve), TSCAN (prefix-count scan assign)\n");
    for (name, program) in [
        ("init_bounds", microcode::init_bounds()),
        ("sort_step", microcode::sort_step()),
        ("sort_full", microcode::sort_full()),
        ("select_step", microcode::select_step()),
        ("select_full", microcode::select_full()),
        ("read_at", microcode::read_at()),
        ("count_imprecise", microcode::count_imprecise()),
    ] {
        println!("{}", microcode::listing(name, &program));
    }
    let total: usize = [
        microcode::init_bounds().len(),
        microcode::sort_step().len(),
        microcode::sort_full().len(),
        microcode::select_step().len(),
        microcode::select_full().len(),
        microcode::read_at().len(),
        microcode::count_imprecise().len(),
    ]
    .iter()
    .sum();
    println!("total ROM size: {total} microinstructions");
}
