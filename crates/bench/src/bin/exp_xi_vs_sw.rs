//! E7 — end-to-end χ-sort: 50 MHz FPGA vs conventional-CPU software.
//!
//! "Circuit parallelism enables χ-sort to execute significantly faster
//! than can be achieved with software on a conventional process\[or\]."
//!
//! The comparison is honest about what wins where: per *operation* the
//! FPGA is flat in n while software pays Θ(n); end to end, the FPGA's
//! O(n) refinement rounds of O(1) cycles compete against an O(n log n)
//! quicksort running at a 50× higher clock, so the interesting output is
//! the shape — where the algorithmic advantage overtakes the clock
//! deficit — not a single headline number.
//!
//! ```text
//! cargo run --release -p bench --bin exp_xi_vs_sw
//! ```

use bench::xi::end_to_end;
use bench::Table;
use fu_host::baseline::{software_xi_select, CpuModel};
use fu_host::LinkModel;
use xi_sort::{XiConfig, XiOp, XiSortCore};

fn main() {
    let cpu = CpuModel::desktop_2010();
    println!(
        "E7 — end-to-end sort: FPGA (50 MHz, tightly-coupled link) vs software\n\
         (CPU model: {} at {} GHz)\n",
        cpu.name, cpu.ghz
    );
    let mut t = Table::new([
        "n",
        "FPGA cycles",
        "FPGA µs",
        "sw xi-sort visits",
        "sw xi-sort µs",
        "FPGA speedup vs sw xi",
        "quicksort cmps",
    ]);
    for n in [16usize, 32, 64, 128, 256, 512] {
        let row = end_to_end(n, LinkModel::tightly_coupled(), cpu);
        t.row([
            n.to_string(),
            row.fpga_cycles.to_string(),
            format!("{:.1}", row.fpga_us),
            row.sw_visits.to_string(),
            format!("{:.1}", row.sw_xi_us),
            format!("{:.2}x", row.sw_xi_us / row.fpga_us),
            row.quicksort_cmps.to_string(),
        ]);
    }
    t.print();

    println!("\nselection (k = n/2): FPGA cycles vs software visits");
    let mut t = Table::new([
        "n",
        "FPGA cycles (SelectK)",
        "sw visits",
        "sw µs",
        "FPGA µs",
    ]);
    for n in [64u32, 256, 1024] {
        let values = fu_host::baseline::workload(n as u64, n as usize, 1 << 24);
        let mut core = XiSortCore::new(XiConfig::new(n));
        core.dispatch(XiOp::Reset, 0);
        for &v in &values {
            core.dispatch(XiOp::Push, v);
        }
        core.dispatch(XiOp::InitBounds, 0);
        core.run_to_completion(1_000_000);
        core.dispatch(XiOp::SelectK, n / 2);
        core.run_to_completion(2_000_000_000);
        let fpga_cycles = core.op_cycles();
        let (_, sw) = software_xi_select(&values, n / 2);
        t.row([
            n.to_string(),
            fpga_cycles.to_string(),
            sw.visits.to_string(),
            format!("{:.1}", cpu.visits_to_us(sw.visits)),
            format!("{:.1}", fpga_cycles as f64 / bench::FPGA_MHZ),
        ]);
    }
    t.print();

    println!(
        "\nExpected shape: the FPGA's advantage over the *same algorithm* in\n\
         software grows with n (fixed-cycle rounds vs Θ(n) passes. The paper's\n\
         per-operation claim); against an O(n log n) quicksort at GHz clocks\n\
         the 50 MHz prototype wins on per-operation latency and on selection,\n\
         which touches only the groups containing rank k."
    );
}
