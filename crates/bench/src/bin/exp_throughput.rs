//! E13 — farm throughput: shards × batch size.
//!
//! The ROADMAP's north star is a system that scales like hardware: more
//! boards, more throughput. This experiment sweeps the coprocessor farm
//! over shard count and issue batch size for the arithmetic and χ-sort
//! workloads, verifying on every configuration that the threaded run is
//! bit-identical to the serial run (the harness panics otherwise — CI
//! runs this binary as the farm smoke test with `--smoke`).
//!
//! Throughput is aggregate *simulated* operations per second at the
//! 50 MHz prototype clock: N shards are N boards running concurrently,
//! so the farm's makespan is its slowest shard. Host wall-clock for both
//! runs is recorded alongside (threading wins it on many-core hosts).
//!
//! ```text
//! cargo run --release -p bench --bin exp_throughput [-- --smoke]
//! ```

use bench::throughput::{arith_farm, arith_jobs, run_verified, xi_farm, xi_jobs, FarmRun};
use bench::Table;

/// Fixed seed so runs (and the CI smoke job) are reproducible.
const SEED: u64 = 0x7489_0075;
const SHARDS: &[usize] = &[1, 2, 4, 8];
const BATCHES: &[usize] = &[1, 8, 64];

fn sweep(smoke: bool) -> Vec<FarmRun> {
    // Total operations per configuration; the χ-sort cell count bounds
    // its batch (a sort job must fit the sorter).
    let (arith_total, xi_total, xi_cells) = if smoke {
        (128, 48, 64)
    } else {
        (1024, 192, 64)
    };
    let mut runs = Vec::new();
    for &shards in SHARDS {
        for &batch in BATCHES {
            let jobs = arith_jobs(arith_total, batch, SEED);
            let mut farm = arith_farm(shards, SEED);
            runs.push(run_verified(
                &mut farm,
                "arith",
                batch,
                &jobs,
                arith_total as u64,
            ));

            let jobs = xi_jobs(xi_total, batch, SEED);
            let mut farm = xi_farm(shards, xi_cells, SEED);
            runs.push(run_verified(
                &mut farm,
                "xi-sort",
                batch,
                &jobs,
                xi_total as u64,
            ));
        }
    }
    runs
}

/// Makespan of the 1-shard run with the same workload and batch — the
/// serial baseline every other shard count is compared against.
fn baseline_makespan(runs: &[FarmRun], workload: &str, batch: usize) -> u64 {
    runs.iter()
        .find(|r| r.workload == workload && r.batch == batch && r.shards == 1)
        .expect("the sweep always includes shards=1")
        .makespan_cycles
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!(
        "E13 — farm throughput, shards {SHARDS:?} × batch {BATCHES:?}, seed {SEED:#x}{}",
        if smoke { " (smoke)" } else { "" }
    );
    println!(
        "aggregate ops/sec in simulated time at 50 MHz; every cell verified parallel == serial\n"
    );

    let runs = sweep(smoke);

    let mut scenarios = Vec::new();
    for workload in ["arith", "xi-sort"] {
        println!("workload: {workload}");
        let mut t = Table::new([
            "shards",
            "batch",
            "jobs",
            "ops",
            "makespan cyc",
            "cyc/op",
            "Mops/s",
            "speedup",
            "wall par ms",
            "wall ser ms",
        ]);
        for r in runs.iter().filter(|r| r.workload == workload) {
            let speedup =
                baseline_makespan(&runs, workload, r.batch) as f64 / r.makespan_cycles as f64;
            t.row([
                r.shards.to_string(),
                r.batch.to_string(),
                r.jobs.to_string(),
                r.ops.to_string(),
                r.makespan_cycles.to_string(),
                format!("{:.1}", r.cycles_per_op()),
                format!("{:.3}", r.ops_per_sec() / 1e6),
                format!("{speedup:.2}x"),
                format!("{:.1}", r.wall_parallel_ms),
                format!("{:.1}", r.wall_serial_ms),
            ]);
            scenarios.push(format!(
                concat!(
                    "    {{\"workload\": \"{}\", \"shards\": {}, \"batch\": {}, ",
                    "\"jobs\": {}, \"ops\": {}, \"makespan_cycles\": {}, ",
                    "\"total_cycles\": {}, \"cycles_per_op\": {:.2}, ",
                    "\"ops_per_sec\": {:.1}, \"speedup_vs_serial\": {:.3}, ",
                    "\"wall_parallel_ms\": {:.2}, \"wall_serial_ms\": {:.2}, ",
                    "\"identical\": true}}"
                ),
                r.workload,
                r.shards,
                r.batch,
                r.jobs,
                r.ops,
                r.makespan_cycles,
                r.total_cycles,
                r.cycles_per_op(),
                r.ops_per_sec(),
                speedup,
                r.wall_parallel_ms,
                r.wall_serial_ms,
            ));
        }
        t.print();
        println!();
    }

    // Acceptance gates (also enforced by the CI smoke job).
    let find = |w: &str, s: usize, b: usize| {
        runs.iter()
            .find(|r| r.workload == w && r.shards == s && r.batch == b)
            .expect("swept configuration")
    };
    let arith_speedup =
        find("arith", 1, 8).makespan_cycles as f64 / find("arith", 4, 8).makespan_cycles as f64;
    assert!(
        arith_speedup >= 2.0,
        "4 shards must at least double 1-shard arithmetic throughput, got {arith_speedup:.2}x"
    );
    let cpi_1 = find("arith", 1, 1).cycles_per_op();
    let cpi_64 = find("arith", 1, 64).cycles_per_op();
    assert!(
        cpi_64 < cpi_1,
        "batch=64 must beat batch=1 on single-system CPI ({cpi_64:.1} vs {cpi_1:.1})"
    );
    println!(
        "gates: arith 4-shard speedup {arith_speedup:.2}x (>= 2.0), \
         single-system CPI batch=64 {cpi_64:.1} < batch=1 {cpi_1:.1}"
    );

    let json = format!(
        "{{\n  \"bench\": \"farm_throughput\",\n  \"seed\": {SEED},\n  \"smoke\": {smoke},\n  \
         \"clock_mhz\": 50.0,\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        scenarios.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    std::fs::write(path, &json).expect("write BENCH_throughput.json");
    println!("wrote {path}");
}
