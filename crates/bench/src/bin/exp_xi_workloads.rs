//! E7 supplement — χ-sort across workload distributions, including the
//! first-element-pivot quicksort's adversarial case.
//!
//! Both the χ-sort engine (leftmost-imprecise pivot) and the baseline
//! quicksort (first-element pivot) are sensitive to input order; the
//! interesting comparison is where the shapes diverge: on pre-sorted
//! input the software quicksort degenerates to Θ(n²) comparisons while
//! the χ-sort engine still pays O(1) cycles per round.
//!
//! ```text
//! cargo run --release -p bench --bin exp_xi_workloads
//! ```

use bench::Table;
use fu_host::baseline::{software_quicksort, workload};
use xi_sort::{XiConfig, XiOp, XiSortCore};

fn hw_sort_cycles(values: &[u32]) -> (u64, u64) {
    let mut core = XiSortCore::new(XiConfig::new(values.len() as u32));
    core.dispatch(XiOp::Reset, 0);
    for &v in values {
        core.dispatch(XiOp::Push, v);
    }
    core.dispatch(XiOp::InitBounds, 0);
    core.run_to_completion(1_000_000);
    core.dispatch(XiOp::Sort, 0);
    let rounds = core.run_to_completion(4_000_000_000).unwrap();
    (core.op_cycles(), rounds as u64)
}

fn main() {
    let n = 256usize;
    println!("E7 supplement — workload sensitivity, n = {n}\n");
    let random: Vec<u32> = workload(1, n, 1 << 24);
    let sorted: Vec<u32> = (0..n as u32).collect();
    let reversed: Vec<u32> = (0..n as u32).rev().collect();
    let few_unique: Vec<u32> = workload(2, n, 4);
    let all_equal: Vec<u32> = vec![7; n];

    let mut t = Table::new([
        "workload",
        "FPGA sort cycles",
        "FPGA rounds",
        "quicksort cmps",
        "cmps vs random",
    ]);
    let qs_random = software_quicksort(&random);
    for (name, values) in [
        ("random", &random),
        ("pre-sorted", &sorted),
        ("reverse-sorted", &reversed),
        ("few-unique (4)", &few_unique),
        ("all-equal", &all_equal),
    ] {
        let (cycles, rounds) = hw_sort_cycles(values);
        let cmps = software_quicksort(values);
        t.row([
            name.to_string(),
            cycles.to_string(),
            rounds.to_string(),
            cmps.to_string(),
            format!("{:.2}x", cmps as f64 / qs_random as f64),
        ]);
    }
    t.print();
    println!(
        "\nExpected shape: pre-/reverse-sorted input degenerates the\n\
         first-pivot quicksort toward Θ(n²) comparisons, while the χ-sort\n\
         engine's rounds stay Θ(n) with O(1) cycles each (its pivot is just\n\
         as naive — the parallelism, not pivot cleverness, is what holds its\n\
         cost shape). Few-unique and all-equal inputs collapse to very few\n\
         rounds thanks to the scan-based equal-group resolution."
    );
}
