//! E2 — regenerate **Table 3.2**: the logic unit's instruction encodings.
//! The unit computes an arbitrary 2-input truth table per variety — the
//! natural encoding on a LUT fabric — so the table lists the named
//! operations with their truth-table nibbles, then demonstrates that all
//! 16 tables are reachable.
//!
//! ```text
//! cargo run -p bench --bin table_3_2
//! ```

use bench::Table;
use fu_isa::variety::{LogicOp, LogicVariety};
use fu_isa::Word;

fn main() {
    println!("Table 3.2 — Encoding of logic instructions");
    println!("(truth table bit i = output for inputs a,b with i = 2a + b; OD = output data)\n");

    let mut t = Table::new([
        "instr",
        "t3",
        "t2",
        "t1",
        "t0",
        "OD",
        "variety",
        "semantics",
    ]);
    for op in LogicOp::ALL {
        let v = op.variety();
        let tbl = op.table();
        let sem = match op {
            LogicOp::And => "d = s1 & s2",
            LogicOp::Or => "d = s1 | s2",
            LogicOp::Xor => "d = s1 ^ s2",
            LogicOp::Nand => "d = ~(s1 & s2)",
            LogicOp::Nor => "d = ~(s1 | s2)",
            LogicOp::Xnor => "d = ~(s1 ^ s2)",
            LogicOp::Not => "d = ~s1",
            LogicOp::Andn => "d = s1 & ~s2",
            LogicOp::Copy => "d = s1",
            LogicOp::Test => "flags(s1 & s2)",
        };
        t.row([
            op.mnemonic().to_string(),
            ((tbl >> 3) & 1).to_string(),
            ((tbl >> 2) & 1).to_string(),
            ((tbl >> 1) & 1).to_string(),
            (tbl & 1).to_string(),
            (v.outputs_data() as u8).to_string(),
            format!("{:#04x}", v.0),
            sem.into(),
        ]);
    }
    t.print();

    println!("\nall 16 truth tables evaluated on a=0b1100, b=0b1010 (low nibble):");
    let a = Word::from_u64(0b1100, 32);
    let b = Word::from_u64(0b1010, 32);
    let mut v = Table::new(["table", "result", "named as"]);
    for tbl in 0..16u8 {
        let variety = LogicVariety::from_table(tbl);
        let (data, _) = variety.evaluate(&a, &b);
        let named = LogicOp::ALL
            .into_iter()
            .find(|op| op.table() == tbl && *op != LogicOp::Test)
            .map_or(String::new(), |op| op.mnemonic().to_string());
        v.row([
            format!("{tbl:04b}"),
            format!("{:04b}", data.expect("data enabled").as_u64() & 0xf),
            named,
        ]);
    }
    v.print();
}
