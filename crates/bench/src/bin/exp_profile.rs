//! E14 — pipeline observability: per-stage utilization, instruction
//! latency percentiles, and a Perfetto trace, with the tracing-overhead
//! regression gate.
//!
//! Profiles the arithmetic and χ-sort workloads at batch sizes 1 and 64
//! on a single traced shard. Every traced run is paired with an untraced
//! twin that must match bit for bit (results and `SimStats`) — the
//! non-perturbation rule of `DESIGN.md` §6, enforced at measurement time.
//!
//! The binary is also CI's tracing-overhead gate: it re-runs the E8
//! sim-speed smoke (arith batch over the prototyping link, gated
//! scheduling, tracing off) and compares its deterministic work counters
//! against `ci/sim_speed_baseline.json`, failing on a >5% regression.
//! Wall-clock for traced vs untraced runs is printed for the record but
//! never gated — a loaded runner can double wall-clock without any real
//! regression.
//!
//! ```text
//! cargo run --release -p bench --bin exp_profile [-- --smoke]
//! cargo run --release -p bench --bin exp_profile -- --write-baseline
//! ```

use bench::profile::{overhead_wall_ms, profile_workload, ProfileRun, SmokeBaseline};
use bench::Table;
use fu_rtm::ActivityMode;

/// Fixed seed so runs (and the CI gate) are reproducible.
const SEED: u64 = 0x0E14_5EED;
const BATCHES: &[usize] = &[1, 64];

const BASELINE_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../ci/sim_speed_baseline.json"
);
const BENCH_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../BENCH_pipeline_profile.json"
);
const TRACE_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../TRACE_pipeline_profile.json"
);

fn pct(p: rtl_sim::Percentiles) -> String {
    format!("{}/{}/{}", p.p50, p.p95, p.p99)
}

fn pct_json(p: rtl_sim::Percentiles) -> String {
    format!(
        "{{\"p50\": {}, \"p95\": {}, \"p99\": {}}}",
        p.p50, p.p95, p.p99
    )
}

fn util_json(run: &ProfileRun) -> String {
    let fields: Vec<String> = run
        .utilization
        .iter()
        .map(|(s, u)| format!("\"{s}\": {u:.4}"))
        .collect();
    format!("{{{}}}", fields.join(", "))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let write_baseline = std::env::args().any(|a| a == "--write-baseline");

    println!(
        "E14 — pipeline profile, batches {BATCHES:?}, seed {SEED:#x}{}",
        if smoke { " (smoke)" } else { "" }
    );
    println!("every traced run verified bit-identical to its untraced twin\n");

    // ---- the deterministic overhead gate -----------------------------
    let current = SmokeBaseline::measure();
    if write_baseline {
        std::fs::write(BASELINE_PATH, current.to_json()).expect("write baseline");
        println!("wrote {BASELINE_PATH}: {current:?}");
        return;
    }
    let baseline_text = std::fs::read_to_string(BASELINE_PATH).unwrap_or_else(|e| {
        panic!("missing {BASELINE_PATH} ({e}); run with --write-baseline to create it")
    });
    let baseline = SmokeBaseline::from_json(&baseline_text).expect("parse baseline");
    current
        .check_against(&baseline)
        .expect("sim-speed smoke regressed against ci/sim_speed_baseline.json");
    println!(
        "gate: sim-speed smoke within 5% of baseline \
         (cycles {}; gated stepped {} <= {}, evals {} <= {}; \
         scheduled stepped {} <= {}, wakes {}/{} <= {}/{})",
        current.gated.cycles_simulated,
        current.gated.cycles_stepped,
        baseline.gated.cycles_stepped,
        current.gated.stage_evals_total,
        baseline.gated.stage_evals_total,
        current.scheduled.cycles_stepped,
        baseline.scheduled.cycles_stepped,
        current.scheduled.wheel_wakes_scheduled,
        current.scheduled.wheel_wakes_fired,
        baseline.scheduled.wheel_wakes_scheduled,
        baseline.scheduled.wheel_wakes_fired
    );

    let (untraced_ms, traced_ms) = overhead_wall_ms(ActivityMode::Gated);
    let ratio = if untraced_ms > 0.0 {
        traced_ms / untraced_ms
    } else {
        1.0
    };
    println!(
        "overhead (informational): untraced {untraced_ms:.2} ms, \
         traced {traced_ms:.2} ms, ratio {ratio:.2}\n"
    );

    // ---- the profile sweep -------------------------------------------
    let (arith_total, xi_total) = if smoke { (64, 32) } else { (256, 128) };
    let mut runs: Vec<ProfileRun> = Vec::new();
    for &batch in BATCHES {
        runs.push(profile_workload("arith", arith_total, batch, SEED));
        runs.push(profile_workload("xi-sort", xi_total, batch, SEED));
    }

    let mut t = Table::new([
        "workload",
        "batch",
        "cycles",
        "instrs",
        "iss->disp p50/95/99",
        "disp->ret p50/95/99",
        "iss->ret p50/95/99",
        "disp util",
        "exec util",
        "events",
    ]);
    let util_of = |r: &ProfileRun, stage: &str| {
        r.utilization
            .iter()
            .find(|(s, _)| *s == stage)
            .map_or(0.0, |&(_, u)| u)
    };
    for r in &runs {
        t.row([
            r.workload.to_string(),
            r.batch.to_string(),
            r.cycles.to_string(),
            r.instructions.to_string(),
            pct(r.latency.issue_to_dispatch),
            pct(r.latency.dispatch_to_retire),
            pct(r.latency.issue_to_retire),
            format!("{:.3}", util_of(r, "dispatcher")),
            format!("{:.3}", util_of(r, "execution")),
            r.trace_events.to_string(),
        ]);
    }
    t.print();
    println!();

    // Acceptance sanity: latency populations must match the instruction
    // streams, and batch=64 must overlap instructions (higher dispatcher
    // pressure per cycle than batch=1).
    for r in &runs {
        assert!(
            r.instructions > 0,
            "{}: empty latency histogram",
            r.workload
        );
        assert!(
            r.latency.issue_to_retire.p50 >= r.latency.issue_to_dispatch.p50,
            "{}: retire percentile below dispatch percentile",
            r.workload
        );
    }

    // ---- artifacts ---------------------------------------------------
    let scenarios: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\"workload\": \"{}\", \"batch\": {}, \"cycles\": {}, ",
                    "\"instructions\": {}, \"utilization\": {}, ",
                    "\"issue_to_dispatch\": {}, \"dispatch_to_retire\": {}, ",
                    "\"issue_to_retire\": {}, \"trace_events\": {}, ",
                    "\"identical_untraced\": true}}"
                ),
                r.workload,
                r.batch,
                r.cycles,
                r.instructions,
                util_json(r),
                pct_json(r.latency.issue_to_dispatch),
                pct_json(r.latency.dispatch_to_retire),
                pct_json(r.latency.issue_to_retire),
                r.trace_events,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"pipeline_profile\",\n  \"seed\": {SEED},\n  \"smoke\": {smoke},\n  \
         \"clock_mhz\": 50.0,\n  \"overhead_wall\": {{\"untraced_ms\": {untraced_ms:.3}, \
         \"traced_ms\": {traced_ms:.3}, \"ratio\": {ratio:.3}}},\n  \
         \"work_counts\": {{\"cycles_simulated\": {}, \"cycles_stepped\": {}, \
         \"stage_evals_total\": {}, \"scheduled_cycles_stepped\": {}, \
         \"wheel_wakes_scheduled\": {}, \"wheel_wakes_fired\": {}}},\n  \
         \"scenarios\": [\n{}\n  ]\n}}\n",
        current.gated.cycles_simulated,
        current.gated.cycles_stepped,
        current.gated.stage_evals_total,
        current.scheduled.cycles_stepped,
        current.scheduled.wheel_wakes_scheduled,
        current.scheduled.wheel_wakes_fired,
        scenarios.join(",\n")
    );
    std::fs::write(BENCH_PATH, &json).expect("write BENCH_pipeline_profile.json");
    println!("wrote {BENCH_PATH}");

    // The arith batch=64 trace is the interesting one: deep pipelining,
    // overlapping instructions, visible stalls. Open in ui.perfetto.dev.
    let showcase = runs
        .iter()
        .find(|r| r.workload == "arith" && r.batch == 64)
        .expect("swept configuration");
    std::fs::write(TRACE_PATH, &showcase.perfetto).expect("write TRACE_pipeline_profile.json");
    println!("wrote {TRACE_PATH} ({} events)", showcase.trace_events);
}
