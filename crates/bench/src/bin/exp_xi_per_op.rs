//! E6 — χ-sort per-operation cost, FPGA vs CPU, plus ablation A4
//! (combinational vs registered tree).
//!
//! "Each operation takes a fixed number of clock cycles with the FPGA;
//! with a CPU each operation requires an iteration that takes time
//! proportional to the number of data elements."
//!
//! ```text
//! cargo run --release -p bench --bin exp_xi_per_op
//! ```

use bench::xi::per_op;
use bench::Table;

fn main() {
    println!("E6 — cycles per chi-sort primitive (combinational tree)\n");
    let sizes = [8u32, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];
    let mut t = Table::new([
        "n",
        "partition step",
        "count query",
        "positional read",
        "software visits/step",
    ]);
    for &n in &sizes {
        let r = per_op(n, false);
        t.row([
            n.to_string(),
            r.step_cycles.to_string(),
            r.count_cycles.to_string(),
            r.read_cycles.to_string(),
            r.sw_step_visits.to_string(),
        ]);
    }
    t.print();

    println!("\nA4 — registered tree (pays ⌈log2 n⌉ per fold, shortens the clock path):");
    let mut t = Table::new(["n", "partition step (comb)", "partition step (registered)"]);
    for &n in &[16u32, 64, 256, 1024, 4096] {
        let comb = per_op(n, false);
        let reg = per_op(n, true);
        t.row([
            n.to_string(),
            comb.step_cycles.to_string(),
            reg.step_cycles.to_string(),
        ]);
    }
    t.print();

    println!(
        "\nExpected shape: the FPGA columns are flat in n (fixed cycles per\n\
         operation); the software column grows linearly (Θ(n) per pass); the\n\
         registered tree adds only a logarithmic term."
    );
}
