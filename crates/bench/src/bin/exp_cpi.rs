//! E3 — functional-unit throughput (CPI) for the published construction
//! skeletons, plus ablations A1 (acknowledge forwarding) and A3 (FIFO
//! sizing).
//!
//! Paper claims under test (thesis §3.2.2 / §2.3.4):
//! * simple units "accept an instruction every second clock cycle" →
//!   CPI ≈ 2 for the minimal skeleton;
//! * "a theoretical maximum throughput of one instruction every clock
//!   cycle by intelligent forwarding of the write arbiter acknowledgement
//!   signals" → CPI ≈ 1 for minimal+forwarding;
//! * the pipelined skeleton receives "a new instruction every clock
//!   cycle" until its FIFOs fill → CPI ≈ 1 with adequate FIFO depth.
//!
//! ```text
//! cargo run --release -p bench --bin exp_cpi
//! ```

use bench::cpi::{dependent_stream, independent_stream, measure, measure_skeleton, Skeleton};
use bench::Table;

fn main() {
    let n = 4000;
    println!("E3 — cycles per instruction, independent ADD stream (n = {n})\n");
    let mut t = Table::new(["skeleton", "CPI", "fu-busy stalls", "lock stalls"]);
    for sk in [
        Skeleton::Minimal,
        Skeleton::MinimalForwarding,
        Skeleton::Fsm(1),
        Skeleton::Fsm(4),
        Skeleton::Pipelined(3, 8),
        Skeleton::Pipelined(8, 16),
    ] {
        let r = measure_skeleton(sk, n);
        t.row([
            sk.label(),
            format!("{:.3}", r.cpi()),
            r.fu_busy_stalls.to_string(),
            r.lock_stalls.to_string(),
        ]);
    }
    t.print();

    println!("\nA3 — FIFO-depth sweep for the pipelined skeleton (k = 3 stages):");
    let mut t = Table::new(["fifo depth", "CPI"]);
    for depth in [4usize, 6, 8, 16, 32] {
        let r = measure_skeleton(Skeleton::Pipelined(3, depth), n);
        t.row([depth.to_string(), format!("{:.3}", r.cpi())]);
    }
    t.print();

    println!("\ndependent accumulation chain (RAW-limited, n = 1000):");
    let mut t = Table::new(["skeleton", "CPI"]);
    for sk in [
        Skeleton::Minimal,
        Skeleton::MinimalForwarding,
        Skeleton::Pipelined(3, 8),
        Skeleton::Pipelined(8, 16),
    ] {
        let r = measure(sk.build(32), &dependent_stream(1000), 1000);
        t.row([sk.label(), format!("{:.3}", r.cpi())]);
    }
    t.print();
    println!(
        "\nExpected shape: minimal ≈ 2 CPI, minimal+fwd and pipelined ≈ 1 CPI on\n\
         independent work; dependent chains pay the full dispatch→unlock latency\n\
         (and deeper pipelines pay more), which is why the paper provides the\n\
         lock manager rather than exposing raw pipelines."
    );
    let _ = independent_stream(1); // linked for doc purposes
}
