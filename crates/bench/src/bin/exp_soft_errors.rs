//! E16 — soft-error resilience: completion rate and the cost of each
//! protection tier as the device-state upset rate rises.
//!
//! The link sweep (E12) asks what wire faults cost; this asks the same
//! about SEUs striking coprocessor state. The dependent-add batch runs
//! under four protection tiers — none, parity-only, DMR+rollback,
//! TMR+rollback — across a grid of strike intervals and checkpoint
//! cadences, over several seeds per point. A run *completes* only when
//! its response stream is bit-identical to the fault-free reference of
//! the same machine. Because rollback rewinds the cycle counter, the
//! recovered clock always matches the reference; the real price is the
//! work thrown away, so overhead is reported as
//! `(cycles + cycles_lost) / clean_cycles − 1`.
//!
//! ```text
//! cargo run --release -p bench --bin exp_soft_errors [-- --smoke]
//! ```

use bench::soft_errors::{resilience_run, soft_error_smoke, Protection};
use bench::Table;
use fu_rtm::SeuConfig;

/// Mean cycles between strikes, coldest first (the workload itself runs
/// ~1.4k cycles, so 50 means roughly thirty strikes per run).
const INTERVALS: &[u64] = &[400, 150, 50];
/// Checkpoint cadences (retired instructions) for the recovery tiers.
const CKPTS: &[u64] = &[4, 16, 64];
/// Base seed; per-point seeds are derived by offset.
const SEED: u64 = 0x0E16_0000;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n_seeds, n_adds) = if smoke { (3u64, 96) } else { (8u64, 192) };

    println!(
        "E16 — soft-error resilience sweep{}",
        if smoke { " (smoke)" } else { "" }
    );
    println!(
        "workload: {n_adds} dependent ADDs + periodic read-back, {n_seeds} seeds per point\n\
         completion = response stream bit-identical to the fault-free reference\n"
    );

    let mut scenarios: Vec<String> = Vec::new();
    for &interval in INTERVALS {
        println!("strike interval: mean {interval} cycles");
        let mut t = Table::new([
            "protection",
            "ckpt instrs",
            "completed",
            "work overhead",
            "SEU inj/det/corr",
            "rollbacks",
            "mean lost/rollback",
        ]);
        for p in Protection::ALL {
            let ckpts: &[u64] = if p.recovers() { CKPTS } else { &[0] };
            for &ckpt in ckpts {
                let clean = resilience_run(p, None, ckpt.max(1), n_adds);
                assert!(clean.drained, "fault-free reference failed to drain");
                let mut completed = 0u64;
                let mut overhead_sum = 0.0f64;
                let mut inj = 0u64;
                let mut det = 0u64;
                let mut corr = 0u64;
                let mut rollbacks = 0u64;
                let mut lost = 0u64;
                for s in 0..n_seeds {
                    let seu = SeuConfig::all(SEED + s * 7919 + interval, interval);
                    let run = resilience_run(p, Some(seu), ckpt.max(1), n_adds);
                    if run.drained && run.responses == clean.responses {
                        completed += 1;
                    }
                    let work = run.cycles + run.recovery.cycles_lost;
                    overhead_sum += work as f64 / clean.cycles as f64 - 1.0;
                    inj += run.recovery.seus_injected;
                    det += run.recovery.seus_detected;
                    corr += run.recovery.seus_corrected;
                    rollbacks += run.recovery.rollbacks;
                    lost += run.recovery.cycles_lost;
                }
                let overhead = overhead_sum / n_seeds as f64;
                let mean_lost = if rollbacks == 0 {
                    0.0
                } else {
                    lost as f64 / rollbacks as f64
                };
                t.row([
                    p.label().to_string(),
                    if p.recovers() {
                        ckpt.to_string()
                    } else {
                        "—".to_string()
                    },
                    format!("{completed}/{n_seeds}"),
                    format!("{:+.2}%", overhead * 100.0),
                    format!("{inj}/{det}/{corr}"),
                    rollbacks.to_string(),
                    format!("{mean_lost:.0}"),
                ]);
                scenarios.push(format!(
                    concat!(
                        "    {{\"protection\": \"{}\", \"mean_interval\": {}, ",
                        "\"ckpt_interval\": {}, \"seeds\": {}, \"completed\": {}, ",
                        "\"mean_work_overhead\": {:.4}, \"seus_injected\": {}, ",
                        "\"seus_detected\": {}, \"seus_corrected\": {}, ",
                        "\"rollbacks\": {}, \"cycles_lost\": {}, ",
                        "\"mean_cycles_lost_per_rollback\": {:.1}}}"
                    ),
                    p.label(),
                    interval,
                    ckpt,
                    n_seeds,
                    completed,
                    overhead,
                    inj,
                    det,
                    corr,
                    rollbacks,
                    lost,
                    mean_lost,
                ));
            }
        }
        t.print();
        println!();
    }

    // The deterministic CI counters (also gated by exp_profile through
    // ci/sim_speed_baseline.json); recomputed here so the report is
    // self-contained. Panics on any resilience regression.
    let c = soft_error_smoke();
    println!(
        "smoke counters: injected {} detected {} corrected {} rollbacks {} failed-over {}",
        c.seus_injected, c.seus_detected, c.seus_corrected, c.rollbacks, c.jobs_failed_over
    );

    let json = format!(
        concat!(
            "{{\n  \"bench\": \"soft_errors\",\n  \"seed\": {},\n",
            "  \"n_seeds\": {},\n  \"n_adds\": {},\n",
            "  \"smoke_counters\": {{\"seus_injected\": {}, \"seus_detected\": {}, ",
            "\"seus_corrected\": {}, \"rollbacks\": {}, \"jobs_failed_over\": {}}},\n",
            "  \"scenarios\": [\n{}\n  ]\n}}\n"
        ),
        SEED,
        n_seeds,
        n_adds,
        c.seus_injected,
        c.seus_detected,
        c.seus_corrected,
        c.rollbacks,
        c.jobs_failed_over,
        scenarios.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_soft_errors.json");
    std::fs::write(path, &json).expect("write BENCH_soft_errors.json");
    println!(
        "\nEvery recovery-tier completion above means the protected run reproduced\n\
         the fault-free stream bit for bit. Report: BENCH_soft_errors.json"
    );
}
