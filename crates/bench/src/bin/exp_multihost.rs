//! E11 — multiple host CPUs sharing one coprocessor (paper Figure 1.1).
//!
//! "…providing a common interface to hardware accelerators accessible by
//! one or more host CPUs running standard software."
//!
//! Measures aggregate throughput and per-host completion time as the
//! host count grows, on a shared single-unit coprocessor: the experiment
//! shows how the message-granular arbiter shares the interface and where
//! the single dispatch pipeline saturates.
//!
//! ```text
//! cargo run --release -p bench --bin exp_multihost
//! ```

use bench::Table;
use fu_host::{LinkModel, MultiHostSystem};
use fu_isa::{DevMsg, HostMsg, Word};
use fu_rtm::testing::LatencyFu;
use fu_rtm::{CoprocConfig, FunctionalUnit};

/// Each host performs `per_host` write+read round trips; returns total
/// cycles until every host has all its responses.
fn run(n_hosts: usize, per_host: u64, link: LinkModel) -> u64 {
    let units: Vec<Box<dyn FunctionalUnit>> = vec![Box::new(LatencyFu::new("add", 1, 1))];
    let mut s = MultiHostSystem::new(CoprocConfig::default(), units, link, n_hosts)
        .expect("valid configuration");
    for i in 0..per_host {
        for host in 0..n_hosts {
            let reg = ((host as u64 * 7 + i) % 24) as u8 + 1;
            s.send(
                host,
                &HostMsg::WriteReg {
                    reg,
                    value: Word::from_u64(i, 32),
                },
            );
            s.send(
                host,
                &HostMsg::ReadReg {
                    reg,
                    tag: s.brand_tag(host, i as u16),
                },
            );
        }
    }
    let mut outstanding: Vec<u64> = vec![per_host; n_hosts];
    let mut budget: u64 = 100_000_000;
    while outstanding.iter().any(|&o| o > 0) {
        s.step();
        for (host, left) in outstanding.iter_mut().enumerate() {
            while let Some(resp) = s.recv(host) {
                assert!(matches!(resp, DevMsg::Data { .. }));
                *left -= 1;
            }
        }
        budget -= 1;
        assert!(budget > 0, "multihost run never drained");
    }
    // Scheduler diagnostics go to stderr; the stdout tables stay clean.
    eprintln!("[{} hosts={n_hosts}] {}", link.name, s.sim_stats());
    s.cycle()
}

fn main() {
    println!("E11 — host-count scaling on one shared coprocessor\n");
    let per_host = 64;
    for link in [LinkModel::pcie_like(), LinkModel::tightly_coupled()] {
        println!("link: {} ({} round trips per host)", link.name, per_host);
        let mut t = Table::new([
            "hosts",
            "total cycles",
            "round trips",
            "cycles/round-trip",
            "aggregate speedup",
        ]);
        let base = run(1, per_host, link);
        for n in [1usize, 2, 3, 4, 6, 8] {
            let cycles = run(n, per_host, link);
            let trips = per_host * n as u64;
            t.row([
                n.to_string(),
                cycles.to_string(),
                trips.to_string(),
                format!("{:.1}", cycles as f64 / trips as f64),
                format!("{:.2}x", (base as f64 * n as f64) / cycles as f64),
            ]);
        }
        t.print();
        println!();
    }
    println!(
        "Expected shape: with a slow-ish link, extra hosts overlap their\n\
         link latencies and aggregate throughput scales; on a fast link the\n\
         single decoder/dispatcher saturates and per-round-trip cost levels\n\
         off — the interface is shared, the pipeline is not duplicated."
    );
}
