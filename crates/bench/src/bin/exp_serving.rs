//! E17 — multi-tenant serving: sustained throughput, per-tier latency
//! and shed fraction as shard count, tenant count and offered load vary.
//!
//! A 10k-client open-loop population (Zipf-skewed across tenants,
//! splitmix64-keyed arrivals) submits self-verifying arithmetic jobs
//! through the `fu_host::serve` front-end: bounded per-tenant queues,
//! in-band load shedding, deficit-round-robin scheduling over the shard
//! farm. Every delivered completion is checked against the generator's
//! ground-truth value, so a scheduling bug cannot hide behind a good
//! throughput number. The sweep reports, per point: sustained ops/sec,
//! p50/p99 latency per weight tier (gold/silver/bronze), and the shed
//! fraction.
//!
//! The binary is also CI's serving gate: it runs the deterministic
//! serving smoke and compares its counters against
//! `ci/sim_speed_baseline.json` (completed/shed pinned exactly,
//! rounds/clock within 5%).
//!
//! ```text
//! cargo run --release -p bench --bin exp_serving [-- --smoke]
//! ```
//! (The baseline itself is rewritten by `exp_profile -- --write-baseline`.)

use bench::serving::{serving_run, serving_smoke, ServingRun};
use bench::{Table, FPGA_MHZ};

/// Fixed seed so runs (and the CI gate) are reproducible.
const SEED: u64 = 0x0E17_5EED;
/// Clients in the full sweep (the acceptance workload).
const CLIENTS: usize = 10_000;
/// Per-tenant queue bound for the sweep.
const QUEUE_DEPTH: usize = 32;
/// Mean per-client inter-arrival gaps, lightest first. Offered rate is
/// `clients × jobs / span ≈ 5000 / gap` jobs per cycle at 10k clients,
/// spanning under-saturation to heavy overload for every shard count.
const GAPS: &[u64] = &[200_000, 50_000, 12_500];

const BASELINE_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../ci/sim_speed_baseline.json"
);
const BENCH_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");

fn tier_json(r: &ServingRun) -> String {
    let fields: Vec<String> = r
        .tiers
        .iter()
        .map(|t| {
            let p = t.counters.latency.percentiles();
            format!(
                concat!(
                    "{{\"tier\": \"{}\", \"weight\": {}, \"tenants\": {}, ",
                    "\"submitted\": {}, \"completed\": {}, \"shed\": {}, ",
                    "\"p50_cycles\": {}, \"p99_cycles\": {}, \"shed_rate\": {:.4}}}"
                ),
                t.tier,
                t.weight,
                t.tenants,
                t.counters.submitted,
                t.counters.completed,
                t.counters.shed,
                p.p50,
                p.p99,
                t.counters.shed_rate()
            )
        })
        .collect();
    format!("[{}]", fields.join(", "))
}

fn scenario_json(r: &ServingRun) -> String {
    format!(
        concat!(
            "    {{\"shards\": {}, \"tenants\": {}, \"clients\": {}, ",
            "\"mean_gap_cycles\": {}, \"offered\": {}, \"admitted\": {}, ",
            "\"shed\": {}, \"completed\": {}, \"failed\": {}, ",
            "\"clock_cycles\": {}, \"rounds\": {}, ",
            "\"sustained_ops_per_sec\": {:.0}, \"shed_fraction\": {:.4}, ",
            "\"tiers\": {}}}"
        ),
        r.shards,
        r.tenants,
        r.clients,
        r.mean_gap,
        r.offered,
        r.admitted,
        r.shed,
        r.completed,
        r.failed,
        r.clock_cycles,
        r.rounds,
        r.ops_per_sec,
        r.shed_fraction,
        tier_json(r)
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    // ---- the deterministic serving gate ------------------------------
    let counts = serving_smoke();
    println!(
        "serving smoke: completed {} shed {} rounds {} clock {} cycles",
        counts.jobs_completed, counts.jobs_shed, counts.rounds, counts.clock_cycles
    );
    match std::fs::read_to_string(BASELINE_PATH) {
        Ok(text) => {
            let baseline = bench::profile::SmokeBaseline::from_json(&text).expect("parse baseline");
            counts
                .check_against(&baseline.serving)
                .expect("serving smoke regressed against ci/sim_speed_baseline.json");
            println!(
                "gate: serving smoke matches baseline (completed {} shed {} exact; rounds {} <= {}, clock {} <= {} +5%)\n",
                counts.jobs_completed,
                counts.jobs_shed,
                counts.rounds,
                baseline.serving.rounds,
                counts.clock_cycles,
                baseline.serving.clock_cycles
            );
        }
        Err(e) => println!(
            "gate skipped: {BASELINE_PATH} unreadable ({e}); run exp_profile -- --write-baseline\n"
        ),
    }

    // ---- the sweep ---------------------------------------------------
    let clients = if smoke { 500 } else { CLIENTS };
    let shard_counts: &[usize] = if smoke { &[2] } else { &[1, 2, 4] };
    let tenant_counts: &[u32] = if smoke { &[4] } else { &[4, 16] };
    println!(
        "E17 — serving sweep, {clients} clients x 2 jobs, seed {SEED:#x}{}",
        if smoke { " (smoke)" } else { "" }
    );
    println!("every completion verified against the generator's expected value\n");

    let mut runs: Vec<ServingRun> = Vec::new();
    for &shards in shard_counts {
        let mut t = Table::new([
            "tenants",
            "gap cyc",
            "offered",
            "completed",
            "shed %",
            "ops/sec",
            "gold p50/p99",
            "silver p50/p99",
            "bronze p50/p99",
        ]);
        for &tenants in tenant_counts {
            for &gap in GAPS {
                let r = serving_run(shards, tenants, clients, gap, QUEUE_DEPTH, SEED, true);
                let tier_pcts = |name: &str| {
                    r.tiers
                        .iter()
                        .find(|x| x.tier == name)
                        .map_or("—".to_string(), |x| {
                            let p = x.counters.latency.percentiles();
                            format!("{}/{}", p.p50, p.p99)
                        })
                };
                t.row([
                    tenants.to_string(),
                    gap.to_string(),
                    r.offered.to_string(),
                    r.completed.to_string(),
                    format!("{:.1}", r.shed_fraction * 100.0),
                    format!("{:.0}", r.ops_per_sec),
                    tier_pcts("gold"),
                    tier_pcts("silver"),
                    tier_pcts("bronze"),
                ]);
                runs.push(r);
            }
        }
        println!("shards: {shards}");
        t.print();
        println!();
    }

    // Acceptance sanity: conservation at every point; saturation sheds
    // but the lightest load on the widest farm mostly completes.
    for r in &runs {
        assert_eq!(r.offered, r.completed + r.failed + r.shed, "lost jobs");
        assert_eq!(r.failed, 0, "E17 must not fail jobs");
    }
    // Saturation shape is only meaningful at the full 10k-client load
    // (the smoke sweep is deliberately tiny; its shedding is exercised
    // by `serving_smoke` above).
    if !smoke {
        let widest = runs
            .iter()
            .filter(|r| r.shards == *shard_counts.last().unwrap() && r.mean_gap == GAPS[0])
            .max_by_key(|r| r.completed)
            .expect("swept configuration");
        assert!(
            widest.shed_fraction < 0.05,
            "light load on the widest farm should barely shed, got {:.1}%",
            widest.shed_fraction * 100.0
        );
        assert!(
            runs.iter().any(|r| r.shed > 0),
            "the sweep never saturated — offered loads are mis-tuned"
        );
    }

    // ---- artifact ----------------------------------------------------
    let scenarios: Vec<String> = runs.iter().map(scenario_json).collect();
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"serving\",\n  \"seed\": {},\n  \"smoke\": {},\n",
            "  \"clock_mhz\": {},\n  \"clients\": {},\n  \"queue_depth\": {},\n",
            "  \"smoke_counters\": {{\"jobs_completed\": {}, \"jobs_shed\": {}, ",
            "\"rounds\": {}, \"clock_cycles\": {}}},\n",
            "  \"scenarios\": [\n{}\n  ]\n}}\n"
        ),
        SEED,
        smoke,
        FPGA_MHZ,
        clients,
        QUEUE_DEPTH,
        counts.jobs_completed,
        counts.jobs_shed,
        counts.rounds,
        counts.clock_cycles,
        scenarios.join(",\n")
    );
    std::fs::write(BENCH_PATH, &json).expect("write BENCH_serving.json");
    println!("wrote {BENCH_PATH}");
}
