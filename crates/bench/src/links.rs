//! Link-sensitivity measurement (experiment E8).
//!
//! "The speed of the system is determined by two factors: the latency of
//! the communication interface to the host computer, and the clock speed
//! of the FPGA. … only a very slow connection from the FPGA board to the
//! processor was available. However, this is not a limitation of the
//! approach."
//!
//! The measurement runs identical workloads over each link preset and
//! splits total time into link-dominated and compute-dominated parts.

use fu_host::baseline::workload;
use fu_host::{Driver, LinkModel, System};
use fu_isa::{DevMsg, HostMsg, Word};
use fu_rtm::testing::LatencyFu;
use fu_rtm::{ActivityMode, CoprocConfig, FunctionalUnit};
use fu_units::standard_units;
use rtl_sim::SimStats;
use xi_sort::{XiConfig, XiSortAdapter};

/// Result of one link run.
#[derive(Debug, Clone)]
pub struct LinkRun {
    /// Total FPGA cycles to complete the workload.
    pub cycles: u64,
    /// Frames moved to the device.
    pub frames_to_dev: u64,
    /// Frames moved to the host.
    pub frames_to_host: u64,
    /// Scheduler statistics (fast-forward ratio, stage evaluations).
    pub sim: SimStats,
}

/// Workload 1: an arithmetic batch — write 2 operands, run `n` dependent
/// adds, read the result (one round trip).
pub fn arith_batch(link: LinkModel, n: usize) -> LinkRun {
    arith_batch_mode(link, n, ActivityMode::Gated)
}

/// [`arith_batch`] with an explicit scheduling mode (the wall-clock
/// benchmark compares the two; results are identical by construction).
pub fn arith_batch_mode(link: LinkModel, n: usize, mode: ActivityMode) -> LinkRun {
    arith_batch_mode_traced(link, n, mode, 0)
}

/// [`arith_batch_mode`] with event tracing enabled at `trace_depth`
/// (`0` = off). The profiling experiment (E14) uses this to measure the
/// overhead of a traced run against the identical untraced one.
pub fn arith_batch_mode_traced(
    link: LinkModel,
    n: usize,
    mode: ActivityMode,
    trace_depth: usize,
) -> LinkRun {
    let mut sys =
        System::new(CoprocConfig::default(), standard_units(32), link).expect("valid config");
    sys.set_activity_mode(mode);
    sys.set_trace_depth(trace_depth);
    let mut d = Driver::new(sys, 1_000_000_000);
    d.write_reg(1, 3);
    d.write_reg(2, 0);
    for _ in 0..n {
        d.exec_asm("ADD r2, r2, r1, f1").expect("assembles");
    }
    let v = d.read_reg(2).expect("result").as_u64();
    assert_eq!(v, 3 * n as u64);
    let sys = d.into_system();
    let (to_dev, to_host) = sys.frames_carried();
    LinkRun {
        cycles: sys.cycle(),
        frames_to_dev: to_dev,
        frames_to_host: to_host,
        sim: sys.sim_stats(),
    }
}

/// Workload 2: χ-sort `n` elements end to end (load, sort, read back).
pub fn xi_batch(link: LinkModel, n: usize) -> LinkRun {
    xi_batch_mode(link, n, ActivityMode::Gated)
}

/// [`xi_batch`] with an explicit scheduling mode.
pub fn xi_batch_mode(link: LinkModel, n: usize, mode: ActivityMode) -> LinkRun {
    let mut sys = System::new(
        CoprocConfig::default(),
        vec![Box::new(XiSortAdapter::new(XiConfig::new(n as u32), 32))],
        link,
    )
    .expect("valid config");
    sys.set_activity_mode(mode);
    let mut d = Driver::new(sys, 4_000_000_000);
    let values = workload(3, n, 1 << 20);
    d.xi_load(&values, 1).expect("load");
    d.xi_sort(2).expect("sort");
    let got = d.xi_read_sorted(n, 1, 2).expect("readout");
    let mut expect = values;
    expect.sort_unstable();
    assert_eq!(got, expect);
    let sys = d.into_system();
    let (to_dev, to_host) = sys.frames_carried();
    LinkRun {
        cycles: sys.cycle(),
        frames_to_dev: to_dev,
        frames_to_host: to_host,
        sim: sys.sim_stats(),
    }
}

/// Workload 3: a latency burn — `n` synchronous round trips to a unit
/// with a `latency`-cycle fixed execution time, over `link`. The host
/// waits out each burn before issuing the next instruction (the
/// synchronous offload pattern of the paper's E8 discussion).
///
/// This is the scenario the event wheel exists for. While the unit burns
/// its latency the coprocessor is *quiet* but never *idle*, so
/// [`ActivityMode::Gated`] must step every single cycle of every burn
/// (`≈ n × latency` steps). [`ActivityMode::Scheduled`] registers the
/// unit's completion cycle on the wheel and jumps straight to it, paying
/// a handful of steps per round trip instead.
pub fn latency_burn_mode(link: LinkModel, n: usize, latency: u32, mode: ActivityMode) -> LinkRun {
    let units: Vec<Box<dyn FunctionalUnit>> = vec![Box::new(LatencyFu::new("burn", 1, latency))];
    let mut sys = System::new(CoprocConfig::default(), units, link).expect("valid config");
    sys.set_activity_mode(mode);
    sys.send(&HostMsg::WriteReg {
        reg: 1,
        value: Word::from_u64(21, 32),
    });
    for _ in 0..n {
        sys.send(&HostMsg::Instr(fu_isa::InstrWord::user(
            fu_isa::UserInstr {
                func: 1,
                variety: 0,
                dst_flag: 1,
                dst_reg: 2,
                aux_reg: 0,
                src1: 1,
                src2: 1,
                src3: 0,
            },
        )));
        sys.run_until(4_000_000_000, |s| s.is_idle())
            .expect("burn completes");
    }
    sys.send(&HostMsg::ReadReg { reg: 2, tag: 3 });
    sys.send(&HostMsg::Sync { tag: 4 });
    sys.run_until(4_000_000_000, |s| s.pending_responses() >= 2 && s.is_idle())
        .expect("readback completes");
    let responses: Vec<DevMsg> = std::iter::from_fn(|| sys.recv()).collect();
    assert!(
        matches!(
            responses.as_slice(),
            [DevMsg::Data { .. }, DevMsg::SyncAck { .. }]
        ),
        "unexpected burn responses: {responses:?}"
    );
    let (to_dev, to_host) = sys.frames_carried();
    LinkRun {
        cycles: sys.cycle(),
        frames_to_dev: to_dev,
        frames_to_host: to_host,
        sim: sys.sim_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_ordering_holds_for_arith() {
        let slow = arith_batch(LinkModel::prototyping(), 20);
        let mid = arith_batch(LinkModel::pcie_like(), 20);
        let fast = arith_batch(LinkModel::tightly_coupled(), 20);
        assert!(slow.cycles > mid.cycles);
        assert!(mid.cycles > fast.cycles);
        // The same frames move regardless of the link.
        assert_eq!(slow.frames_to_dev, fast.frames_to_dev);
    }

    #[test]
    fn scheduling_mode_does_not_change_results() {
        for link in [LinkModel::prototyping(), LinkModel::pcie_like()] {
            let g = arith_batch_mode(link, 16, ActivityMode::Gated);
            let e = arith_batch_mode(link, 16, ActivityMode::Exhaustive);
            assert_eq!(g.cycles, e.cycles, "{}", link.name);
            assert_eq!(g.frames_to_dev, e.frames_to_dev);
            assert_eq!(g.frames_to_host, e.frames_to_host);
            assert_eq!(e.sim.cycles_skipped, 0, "exhaustive must not skip");
        }
    }

    #[test]
    fn slow_link_run_is_mostly_fast_forwarded() {
        let r = arith_batch_mode(LinkModel::prototyping(), 16, ActivityMode::Gated);
        assert!(
            r.sim.cycles_skipped > r.sim.cycles_simulated / 3,
            "expected >33% skipped, got {} of {}",
            r.sim.cycles_skipped,
            r.sim.cycles_simulated
        );
    }

    #[test]
    fn latency_burn_agrees_across_modes_and_scheduled_skips_the_burn() {
        let g = latency_burn_mode(LinkModel::prototyping(), 3, 2_000, ActivityMode::Gated);
        let e = latency_burn_mode(LinkModel::prototyping(), 3, 2_000, ActivityMode::Exhaustive);
        let s = latency_burn_mode(LinkModel::prototyping(), 3, 2_000, ActivityMode::Scheduled);
        assert_eq!(g.cycles, e.cycles, "gated vs exhaustive diverged");
        assert_eq!(g.cycles, s.cycles, "gated vs scheduled diverged");
        assert_eq!(g.frames_to_dev, s.frames_to_dev);
        assert_eq!(g.frames_to_host, s.frames_to_host);
        // Gated steps through every cycle of every burn; the wheel jumps
        // them, so scheduled work is at least an order of magnitude less.
        assert!(
            g.sim.cycles_stepped >= 3 * 2_000,
            "gated stepped only {} cycles",
            g.sim.cycles_stepped
        );
        assert!(
            s.sim.cycles_stepped * 10 < g.sim.cycles_stepped,
            "scheduled stepped {} vs gated {}",
            s.sim.cycles_stepped,
            g.sim.cycles_stepped
        );
        assert!(s.sim.wheel.wakes_fired() > 0, "no wheel wakes fired");
    }

    #[test]
    fn xi_batch_runs_on_two_links() {
        let fast = xi_batch(LinkModel::tightly_coupled(), 16);
        let slow = xi_batch(LinkModel::pcie_like(), 16);
        assert!(slow.cycles > fast.cycles);
    }
}
