//! Multi-tenant serving measurement (experiment E17).
//!
//! The farm experiments (E13/E15) measure the shard pool under batch
//! submission: all jobs present at t=0. E17 measures the serving layer
//! (`fu_host::serve`) the way a deployment would see it — an open-loop
//! population of clients, Zipf-skewed across tenants, submitting against
//! per-tenant bounded queues with deficit-round-robin scheduling. The
//! sweep varies shard count, tenant count and offered load, and reports
//! sustained throughput, per-tenant-tier latency percentiles and the
//! shed fraction; every delivered completion is verified against the
//! workload generator's ground-truth expected value.
//!
//! The CI smoke (`serving_smoke`) pins the fully deterministic counters
//! of one saturated configuration in `ci/sim_speed_baseline.json`: the
//! completion and shed counts are behaviour (gated exactly), the round
//! and virtual-clock counts are scheduler efficiency (gated at ≤5%).

use std::collections::HashMap;

use fu_host::serve::workload::{open_loop, WorkloadSpec};
use fu_host::{
    Admission, Farm, FarmConfig, JobOutput, LinkModel, Placement, ServeConfig, Service, TenantSlo,
    TenantSpec,
};
use fu_isa::DevMsg;
use fu_rtm::CoprocConfig;
use rtl_sim::TenantCounters;

use crate::FPGA_MHZ;

/// Tenant weight tiers: the first tenant is "gold" (weight 4), the next
/// three "silver" (weight 2), the rest "bronze" (weight 1). Zipf rank
/// order means the heavy tenants are also the big ones — the cruel case
/// for fairness, since the bronze tail must keep its share under a gold
/// flood.
#[must_use]
pub fn tenant_specs(tenants: u32) -> Vec<TenantSpec> {
    (0..tenants)
        .map(|t| {
            let (tier, weight) = tier_of(t);
            TenantSpec::new(format!("{tier}-{t}"), weight)
        })
        .collect()
}

/// `(tier label, DRR weight)` for a tenant rank.
#[must_use]
pub fn tier_of(tenant: u32) -> (&'static str, u32) {
    match tenant {
        0 => ("gold", 4),
        1..=3 => ("silver", 2),
        _ => ("bronze", 1),
    }
}

/// Aggregate SLO for one weight tier of a run.
#[derive(Debug, Clone)]
pub struct TierSlo {
    /// Tier label (`gold` / `silver` / `bronze`).
    pub tier: &'static str,
    /// DRR weight of the tier's tenants.
    pub weight: u32,
    /// Tenants in the tier.
    pub tenants: u32,
    /// Merged counters (histograms merged element-wise).
    pub counters: TenantCounters,
}

/// One sweep point's outcome.
#[derive(Debug, Clone)]
pub struct ServingRun {
    /// Shards in the farm.
    pub shards: usize,
    /// Tenants in the service.
    pub tenants: u32,
    /// Simulated client sessions.
    pub clients: usize,
    /// Mean per-client inter-arrival gap, cycles (offered load knob).
    pub mean_gap: u64,
    /// Jobs offered / admitted / shed / completed / failed.
    pub offered: u64,
    /// Jobs accepted into queues.
    pub admitted: u64,
    /// Jobs rejected in-band at admission.
    pub shed: u64,
    /// Jobs that completed successfully (all verified).
    pub completed: u64,
    /// Jobs that completed with an error.
    pub failed: u64,
    /// Virtual cycles from first arrival to the last round's end.
    pub clock_cycles: u64,
    /// Scheduling rounds executed.
    pub rounds: u64,
    /// Sustained successful operations per second at [`FPGA_MHZ`].
    pub ops_per_sec: f64,
    /// `shed / offered`, in `[0, 1]`.
    pub shed_fraction: f64,
    /// Per-tenant SLO snapshots.
    pub slo: Vec<TenantSlo>,
    /// Per-tier aggregate SLO.
    pub tiers: Vec<TierSlo>,
}

/// Run one E17 sweep point: generate the open-loop arrival sequence,
/// serve it to completion, verify every delivered result against the
/// generator's expected value, and distil the statistics.
///
/// # Panics
/// On a farm orchestration failure, a lost/duplicated completion, or a
/// completion whose payload differs from ground truth — all harness
/// bugs, not measured outcomes.
#[must_use]
pub fn serving_run(
    shards: usize,
    tenants: u32,
    clients: usize,
    mean_gap: u64,
    queue_depth: usize,
    seed: u64,
    parallel: bool,
) -> ServingRun {
    let spec = WorkloadSpec {
        clients,
        tenants,
        jobs_per_client: 2,
        mean_gap,
        seed,
    };
    let arrivals = open_loop(&spec);
    let farm = Farm::standard(
        FarmConfig {
            shards,
            seed,
            placement: Placement::LeastLoaded,
            ..FarmConfig::default()
        },
        CoprocConfig::default(),
        LinkModel::ideal(),
    );
    let mut svc = Service::new(
        ServeConfig {
            queue_depth,
            quantum: 8,
            round_jobs: 64,
            parallel,
        },
        tenant_specs(tenants),
        farm,
    )
    .expect("valid E17 service");

    let mut expected: HashMap<u64, u64> = HashMap::with_capacity(arrivals.len());
    let mut done = Vec::with_capacity(arrivals.len());
    for a in &arrivals {
        match svc
            .submit(a.tenant, a.tick, a.job.clone())
            .expect("E17 submit")
        {
            Admission::Admitted { seq } => {
                expected.insert(seq, a.expect);
            }
            Admission::Overloaded { .. } => {}
        }
        // Poll as a real front-end would; correctness does not depend on
        // the cadence (the serving test battery proves it).
        done.extend(svc.poll());
    }
    done.extend(svc.drain().expect("E17 drain"));

    for c in &done {
        let want = expected
            .remove(&c.seq)
            .expect("completion for an unadmitted or duplicated seq");
        match &c.output {
            Ok(JobOutput::Msgs(msgs)) => match &msgs[..] {
                [DevMsg::Data { value, .. }] => {
                    assert_eq!(value.as_u64(), want, "seq {} wrong payload", c.seq);
                }
                other => panic!("seq {}: unexpected responses {other:?}", c.seq),
            },
            other => panic!("seq {}: job failed: {other:?}", c.seq),
        }
    }
    assert!(
        expected.is_empty(),
        "{} admitted jobs never completed",
        expected.len()
    );

    let totals = svc.stats().totals();
    let clock = svc.clock();
    let slo = svc.slo(FPGA_MHZ);
    let tiers = tier_slos(&svc, tenants);
    ServingRun {
        shards,
        tenants,
        clients,
        mean_gap,
        offered: totals.submitted,
        admitted: totals.admitted,
        shed: totals.shed,
        completed: totals.completed,
        failed: totals.failed,
        clock_cycles: clock,
        rounds: svc.stats().rounds,
        ops_per_sec: if clock == 0 {
            0.0
        } else {
            totals.completed as f64 / (clock as f64 / (FPGA_MHZ * 1e6))
        },
        shed_fraction: totals.shed_rate(),
        slo,
        tiers,
    }
}

fn tier_slos(svc: &Service, tenants: u32) -> Vec<TierSlo> {
    let mut out: Vec<TierSlo> = Vec::new();
    for t in 0..tenants {
        let (tier, weight) = tier_of(t);
        let Some(c) = svc.stats().tenant(t) else {
            continue;
        };
        match out.iter_mut().find(|x| x.tier == tier) {
            Some(x) => {
                x.tenants += 1;
                x.counters += c;
            }
            None => out.push(TierSlo {
                tier,
                weight,
                tenants: 1,
                counters: c.clone(),
            }),
        }
    }
    out
}

/// Deterministic counters from the serving smoke the CI baseline pins.
/// Everything downstream of the seed is a pure function of it, so any
/// drift in `jobs_completed`/`jobs_shed` is an admission or scheduling
/// behaviour change; `rounds` and `clock_cycles` are scheduler
/// efficiency and get the usual 5% headroom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeCounts {
    /// Jobs that completed successfully (and verified).
    pub jobs_completed: u64,
    /// Jobs shed in-band at admission.
    pub jobs_shed: u64,
    /// Scheduling rounds executed.
    pub rounds: u64,
    /// Virtual cycles to drain the smoke workload.
    pub clock_cycles: u64,
}

impl ServeCounts {
    /// Serialize as one baseline JSON object (no surrounding document),
    /// matching the `WorkCounts` baseline idiom.
    #[must_use]
    pub fn json_fields(&self, indent: &str) -> String {
        format!(
            "{{\n{indent}  \"jobs_completed\": {},\n\
             {indent}  \"jobs_shed\": {},\n\
             {indent}  \"rounds\": {},\n\
             {indent}  \"clock_cycles\": {}\n{indent}}}",
            self.jobs_completed, self.jobs_shed, self.rounds, self.clock_cycles
        )
    }

    /// Parse the counters out of a JSON fragment.
    ///
    /// # Errors
    /// Returns a description of the missing/malformed field.
    pub fn from_json(text: &str) -> Result<ServeCounts, String> {
        let field = |name: &str| -> Result<u64, String> {
            let key = format!("\"{name}\":");
            let at = text
                .find(&key)
                .ok_or_else(|| format!("baseline is missing {name}"))?;
            let rest = text[at + key.len()..].trim_start();
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            digits
                .parse()
                .map_err(|e| format!("bad value for {name}: {e}"))
        };
        Ok(ServeCounts {
            jobs_completed: field("jobs_completed")?,
            jobs_shed: field("jobs_shed")?,
            rounds: field("rounds")?,
            clock_cycles: field("clock_cycles")?,
        })
    }

    /// The serving gate: completion and shed counts are pinned exactly
    /// (the smoke is deterministic — a change is an admission/scheduling
    /// behaviour change, not noise); rounds and the virtual clock get
    /// the same ≤5% headroom as the work counters.
    ///
    /// # Errors
    /// Returns a description of the first violated bound.
    pub fn check_against(&self, baseline: &ServeCounts) -> Result<(), String> {
        if self.jobs_completed != baseline.jobs_completed {
            return Err(format!(
                "jobs_completed changed: {} vs baseline {} (behaviour change, re-baseline deliberately)",
                self.jobs_completed, baseline.jobs_completed
            ));
        }
        if self.jobs_shed != baseline.jobs_shed {
            return Err(format!(
                "jobs_shed changed: {} vs baseline {} (admission behaviour drifted)",
                self.jobs_shed, baseline.jobs_shed
            ));
        }
        let within = |name: &str, got: u64, base: u64| -> Result<(), String> {
            if got * 20 > base * 21 {
                Err(format!("{name} regressed >5%: {got} vs baseline {base}"))
            } else {
                Ok(())
            }
        };
        within("rounds", self.rounds, baseline.rounds)?;
        within("clock_cycles", self.clock_cycles, baseline.clock_cycles)
    }
}

/// Fixed seed for the CI serving smoke.
pub const SMOKE_SEED: u64 = 0x0E17_5EED;
/// Clients in the smoke (kept small; the full sweep runs 10k).
pub const SMOKE_CLIENTS: usize = 300;
/// Mean inter-arrival gap for the smoke: hot enough to saturate the
/// two-shard farm and force shedding through the bounded queues.
pub const SMOKE_GAP: u64 = 2_000;
/// Queue bound for the smoke.
pub const SMOKE_DEPTH: usize = 8;

/// Run the CI serving smoke and distil its counters.
///
/// # Panics
/// When the smoke loses a job, duplicates a completion, returns a wrong
/// payload, or fails to exercise shedding — each fails the build
/// outright rather than drifting a counter.
#[must_use]
pub fn serving_smoke() -> ServeCounts {
    let run = serving_run(
        2,
        4,
        SMOKE_CLIENTS,
        SMOKE_GAP,
        SMOKE_DEPTH,
        SMOKE_SEED,
        false,
    );
    assert!(run.shed > 0, "E17 smoke must exercise load shedding");
    assert!(run.failed == 0, "E17 smoke must not fail jobs");
    assert_eq!(
        run.offered,
        (SMOKE_CLIENTS * 2) as u64,
        "E17 smoke offered-load mismatch"
    );
    ServeCounts {
        jobs_completed: run.completed,
        jobs_shed: run.shed,
        rounds: run.rounds,
        clock_cycles: run.clock_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_counters_are_deterministic() {
        let a = serving_smoke();
        let b = serving_smoke();
        assert_eq!(a, b);
        assert!(a.jobs_completed > 0 && a.jobs_shed > 0);
    }

    #[test]
    fn serve_counter_gate_roundtrips_and_rejects_drift() {
        let base = ServeCounts {
            jobs_completed: 500,
            jobs_shed: 100,
            rounds: 40,
            clock_cycles: 900_000,
        };
        assert_eq!(ServeCounts::from_json(&base.json_fields("")), Ok(base));
        assert!(base.check_against(&base).is_ok());
        // Behaviour counters are pinned exactly.
        let drifted = ServeCounts {
            jobs_completed: 501,
            ..base
        };
        assert!(drifted.check_against(&base).is_err());
        let admission = ServeCounts {
            jobs_shed: 99,
            ..base
        };
        assert!(admission.check_against(&base).is_err());
        // Efficiency counters get the 5% headroom, no more.
        let ok = ServeCounts { rounds: 42, ..base };
        assert!(ok.check_against(&base).is_ok());
        let slow = ServeCounts {
            clock_cycles: 946_000,
            ..base
        };
        assert!(slow.check_against(&base).is_err());
    }

    #[test]
    fn tiers_cover_all_tenants() {
        let specs = tenant_specs(8);
        assert_eq!(specs.len(), 8);
        assert_eq!(specs[0].weight, 4);
        assert_eq!(specs[1].weight, 2);
        assert_eq!(specs[4].weight, 1);
        let run = serving_run(1, 8, 40, 4_000, 16, 7, false);
        let tier_total: u64 = run.tiers.iter().map(|t| t.counters.submitted).sum();
        assert_eq!(tier_total, run.offered);
        assert_eq!(run.completed + run.shed + run.failed, run.offered);
    }
}
