//! CPI measurement for functional-unit skeletons (experiment E3,
//! ablations A1/A3).
//!
//! The thesis claims the case-study units "are able to accept an
//! instruction every second clock cycle", improvable "to a theoretical
//! maximum throughput of one instruction every clock cycle by intelligent
//! forwarding of the write arbiter acknowledgement signals", and that the
//! pipelined skeleton sustains one per cycle until its FIFOs fill. These
//! measurements drive an *independent* arithmetic instruction stream
//! through a full coprocessor (wide frame port, so the link is not the
//! bottleneck) and report cycles per instruction.

use fu_isa::variety::ArithOp;
use fu_isa::{funit_codes, HostMsg, InstrWord, UserInstr, Word};
use fu_rtm::{CoprocConfig, Coprocessor, FunctionalUnit};
use fu_units::{ArithKernel, FsmFu, MinimalFu, PipelinedFu};

/// Skeleton configurations under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Skeleton {
    /// Minimal configuration, registered idle (paper default).
    Minimal,
    /// Minimal configuration with acknowledge forwarding (A1).
    MinimalForwarding,
    /// Area-optimised FSM with the given execute-cycle count.
    Fsm(u32),
    /// Performance-optimised pipeline: `(stages, fifo_depth)` (A3).
    Pipelined(u32, usize),
}

impl Skeleton {
    /// Display label.
    pub fn label(&self) -> String {
        match self {
            Skeleton::Minimal => "minimal".into(),
            Skeleton::MinimalForwarding => "minimal+fwd".into(),
            Skeleton::Fsm(k) => format!("fsm(exec={k})"),
            Skeleton::Pipelined(s, d) => format!("pipelined(k={s},fifo={d})"),
        }
    }

    /// Build the arithmetic unit in this skeleton.
    pub fn build(&self, word_bits: u32) -> Box<dyn FunctionalUnit> {
        let kernel = ArithKernel::new(word_bits);
        match *self {
            Skeleton::Minimal => Box::new(MinimalFu::new(kernel, false)),
            Skeleton::MinimalForwarding => Box::new(MinimalFu::new(kernel, true)),
            Skeleton::Fsm(k) => Box::new(FsmFu::new(kernel, k)),
            Skeleton::Pipelined(s, d) => Box::new(PipelinedFu::new(kernel, s, d)),
        }
    }
}

/// Result of one CPI run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpiResult {
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles from first dispatch opportunity to drain.
    pub cycles: u64,
    /// Cycles stalled because the unit was busy.
    pub fu_busy_stalls: u64,
    /// Cycles stalled on register locks.
    pub lock_stalls: u64,
}

impl CpiResult {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        self.cycles as f64 / self.instructions as f64
    }
}

/// An independent ADD stream: rotates destination registers and flag
/// registers so no data hazards arise — throughput is bounded only by
/// the unit and the framework.
pub fn independent_stream(n: usize) -> Vec<HostMsg> {
    let mut msgs = vec![
        HostMsg::WriteReg {
            reg: 1,
            value: Word::from_u64(5, 32),
        },
        HostMsg::WriteReg {
            reg: 2,
            value: Word::from_u64(7, 32),
        },
    ];
    for i in 0..n {
        msgs.push(HostMsg::Instr(InstrWord::user(UserInstr {
            func: funit_codes::ARITH,
            variety: ArithOp::Add.variety().0,
            dst_flag: (i % 4) as u8 + 1,
            dst_reg: (i % 8) as u8 + 8,
            aux_reg: 0,
            src1: 1,
            src2: 2,
            src3: 0,
        })));
    }
    msgs
}

/// A fully dependent accumulation stream (`r3 += r2` repeatedly): the
/// interlock-latency worst case.
pub fn dependent_stream(n: usize) -> Vec<HostMsg> {
    let mut msgs = vec![
        HostMsg::WriteReg {
            reg: 2,
            value: Word::from_u64(1, 32),
        },
        HostMsg::WriteReg {
            reg: 3,
            value: Word::from_u64(0, 32),
        },
    ];
    for _ in 0..n {
        msgs.push(HostMsg::Instr(InstrWord::user(UserInstr {
            func: funit_codes::ARITH,
            variety: ArithOp::Add.variety().0,
            dst_flag: 1,
            dst_reg: 3,
            aux_reg: 0,
            src1: 3,
            src2: 2,
            src3: 0,
        })));
    }
    msgs
}

/// Drive `msgs` through a coprocessor with the given unit; returns the
/// CPI accounting over the `n_instr` user instructions in the stream.
pub fn measure(unit: Box<dyn FunctionalUnit>, msgs: &[HostMsg], n_instr: u64) -> CpiResult {
    let cfg = CoprocConfig {
        data_regs: 32,
        flag_regs: 8,
        rx_frames_per_cycle: 8,
        rx_fifo_depth: 64,
        ..CoprocConfig::default()
    };
    let mut coproc = Coprocessor::new(cfg, vec![unit]).expect("valid config");
    let mut frames: std::collections::VecDeque<u32> =
        msgs.iter().flat_map(|m| m.to_frames(32)).collect();
    let mut budget: u64 = 200 * n_instr + 100_000;
    loop {
        while let Some(&f) = frames.front() {
            if coproc.push_frame(f) {
                frames.pop_front();
            } else {
                break;
            }
        }
        coproc.step();
        if frames.is_empty() && coproc.is_idle() {
            break;
        }
        budget -= 1;
        assert!(budget > 0, "CPI run never drained");
    }
    let stats = coproc.stats();
    assert_eq!(
        stats.dispatch.user_dispatched, n_instr,
        "all instructions retired"
    );
    CpiResult {
        instructions: n_instr,
        cycles: coproc.cycle(),
        fu_busy_stalls: stats.dispatch.stall_fu_busy,
        lock_stalls: stats.dispatch.stall_lock,
    }
}

/// Convenience: measure a skeleton on the independent stream.
pub fn measure_skeleton(sk: Skeleton, n: usize) -> CpiResult {
    measure(sk.build(32), &independent_stream(n), n as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_is_half_throughput() {
        let r = measure_skeleton(Skeleton::Minimal, 2000);
        assert!(
            (1.9..2.3).contains(&r.cpi()),
            "minimal skeleton should accept every 2nd cycle, got CPI {}",
            r.cpi()
        );
        assert!(r.fu_busy_stalls > 800, "stalls should be unit-busy stalls");
    }

    #[test]
    fn forwarding_reaches_one_per_cycle() {
        let r = measure_skeleton(Skeleton::MinimalForwarding, 2000);
        assert!(
            (0.95..1.3).contains(&r.cpi()),
            "ack forwarding should reach ~1 CPI, got {}",
            r.cpi()
        );
    }

    #[test]
    fn pipelined_reaches_one_per_cycle() {
        let r = measure_skeleton(Skeleton::Pipelined(3, 8), 2000);
        assert!(
            (0.95..1.3).contains(&r.cpi()),
            "pipelined skeleton should sustain ~1 CPI, got {}",
            r.cpi()
        );
    }

    #[test]
    fn fsm_is_slowest() {
        let fsm = measure_skeleton(Skeleton::Fsm(2), 500);
        let min = measure_skeleton(Skeleton::Minimal, 500);
        assert!(
            fsm.cpi() > min.cpi(),
            "FSM walks more states per instruction"
        );
    }

    #[test]
    fn dependent_stream_is_slower_than_independent() {
        let dep = measure(
            Skeleton::Pipelined(3, 8).build(32),
            &dependent_stream(500),
            500,
        );
        let ind = measure_skeleton(Skeleton::Pipelined(3, 8), 500);
        assert!(
            dep.cpi() > ind.cpi() + 1.0,
            "RAW chain must pay the pipeline latency: dep={} ind={}",
            dep.cpi(),
            ind.cpi()
        );
        assert!(dep.lock_stalls > ind.lock_stalls);
    }
}
