//! Fault-injection sweep (experiment E12): completion time and goodput of
//! the reliable transport as the injected fault rate rises.
//!
//! The paper's framing layer assumes an error-free transceiver; the
//! reliable transport drops in where that assumption fails. This module
//! measures what reliability costs: the same arithmetic batch runs over
//! each link preset while the fault model drops, corrupts and duplicates
//! wire frames at a swept rate, and every run's response stream must be
//! **bit-identical** to the fault-free baseline — the protocol may only
//! cost time, never correctness. The CI fault smoke job runs the sweep at
//! a fixed seed and fails on any divergence.

use fu_host::{FaultModel, LinkModel, LinkStats, System};
use fu_isa::transport::TransportConfig;
use fu_isa::{DevMsg, HostMsg, InstrWord, UserInstr, Word};
use fu_rtm::testing::LatencyFu;
use fu_rtm::{CoprocConfig, FunctionalUnit};

/// Result of one fault-rate point.
#[derive(Debug, Clone)]
pub struct FaultRun {
    /// FPGA cycles until the system fully drained (including acks).
    pub cycles: u64,
    /// Every response the host received, in order.
    pub responses: Vec<DevMsg>,
    /// Aggregated fault and transport counters.
    pub stats: LinkStats,
    /// Wire frames carried to the device and to the host.
    pub wire_to_dev: u64,
    /// See `wire_to_dev`.
    pub wire_to_host: u64,
}

impl FaultRun {
    /// Payload frames delivered per thousand cycles — the headline
    /// goodput figure (falls as retransmissions eat link time).
    pub fn goodput_per_kcycle(&self) -> f64 {
        self.stats.delivered as f64 * 1000.0 / self.cycles as f64
    }

    /// Payload frames delivered per wire frame carried — the protocol's
    /// efficiency (1/3 minus ack overhead when nothing goes wrong).
    pub fn efficiency(&self) -> f64 {
        self.stats.delivered as f64 / (self.wire_to_dev + self.wire_to_host) as f64
    }
}

fn dependent_add() -> HostMsg {
    HostMsg::Instr(InstrWord::user(UserInstr {
        func: 1,
        variety: 0,
        dst_flag: 1,
        dst_reg: 2,
        aux_reg: 0,
        src1: 2,
        src2: 1,
        src3: 0,
    }))
}

/// Run the sweep workload — `n` dependent adds bracketed by register
/// writes, a result read-back and a final sync — over `link` with a
/// uniform fault model at `permille` per fault class (0 = fault-free).
///
/// Panics if the system fails to drain or computes a wrong result, so
/// every caller doubles as a correctness check.
pub fn fault_batch(link: LinkModel, permille: u32, seed: u64, n: usize) -> FaultRun {
    let tcfg = TransportConfig::for_link(link.latency_cycles, link.cycles_per_frame);
    let faults = (permille > 0).then(|| FaultModel::uniform(seed, permille));
    let mut sys = System::new_reliable(
        CoprocConfig::default(),
        vec![Box::new(LatencyFu::new("add", 1, 1)) as Box<dyn FunctionalUnit>],
        link,
        tcfg,
        faults,
    )
    .expect("valid config");
    sys.send(&HostMsg::WriteReg {
        reg: 1,
        value: Word::from_u64(3, 32),
    });
    sys.send(&HostMsg::WriteReg {
        reg: 2,
        value: Word::from_u64(0, 32),
    });
    for _ in 0..n {
        sys.send(&dependent_add());
    }
    sys.send(&HostMsg::ReadReg { reg: 2, tag: 1 });
    sys.send(&HostMsg::Sync { tag: 2 });
    sys.run_until(500_000_000, |s| s.is_idle())
        .expect("reliable system must drain");
    let responses: Vec<DevMsg> = std::iter::from_fn(|| sys.recv()).collect();
    assert!(
        responses.contains(&DevMsg::Data {
            tag: 1,
            value: Word::from_u64(3 * n as u64, 32)
        }),
        "wrong arithmetic result at {permille}permille on {}: {responses:?}",
        link.name
    );
    assert_eq!(responses.last(), Some(&DevMsg::SyncAck { tag: 2 }));
    let (wire_to_dev, wire_to_host) = sys.frames_carried();
    FaultRun {
        cycles: sys.cycle(),
        responses,
        stats: sys.link_stats(),
        wire_to_dev,
        wire_to_host,
    }
}

/// Sweep `rates` (permille per fault class) over one link, asserting that
/// every faulty run's response stream is bit-identical to the fault-free
/// baseline. Returns one [`FaultRun`] per rate, in order.
pub fn fault_sweep_verified(
    link: LinkModel,
    seed: u64,
    n: usize,
    rates: &[u32],
) -> Vec<(u32, FaultRun)> {
    let baseline = fault_batch(link, 0, seed, n);
    rates
        .iter()
        .map(|&rate| {
            let run = if rate == 0 {
                baseline.clone()
            } else {
                fault_batch(link, rate, seed, n)
            };
            assert_eq!(
                run.responses, baseline.responses,
                "response stream diverged at {rate}permille on {}",
                link.name
            );
            (rate, run)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_run_never_retransmits() {
        let r = fault_batch(LinkModel::tightly_coupled(), 0, 1, 8);
        assert_eq!(r.stats.retransmits, 0);
        assert_eq!(r.stats.frames_dropped, 0);
        assert!(!r.stats.gave_up);
    }

    #[test]
    fn faulty_run_matches_baseline_and_costs_cycles() {
        let sweep = fault_sweep_verified(LinkModel::tightly_coupled(), 42, 8, &[0, 100]);
        let (_, clean) = &sweep[0];
        let (_, faulty) = &sweep[1];
        assert!(
            faulty.cycles > clean.cycles,
            "recovery must cost time: {} vs {}",
            faulty.cycles,
            clean.cycles
        );
        assert!(faulty.stats.retransmits > 0);
        assert!(faulty.goodput_per_kcycle() < clean.goodput_per_kcycle());
    }

    #[test]
    fn sweep_is_deterministic_for_a_seed() {
        let a = fault_batch(LinkModel::pcie_like(), 150, 7, 8);
        let b = fault_batch(LinkModel::pcie_like(), 150, 7, 8);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.stats, b.stats);
    }
}
