//! Minimal fixed-width table rendering for the experiment binaries.

/// A right-aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Table {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with a separator under the header.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["n", "cycles"]);
        t.row(["8", "120"]).row(["1024", "120"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("cycles"));
        assert!(lines[2].ends_with("120"));
        assert!(lines[3].starts_with("1024"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        Table::new(["a", "b"]).row(["only one"]);
    }
}
