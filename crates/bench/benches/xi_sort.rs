//! E6/E7 as criterion benches: the simulated χ-sort engine against the
//! real software baselines (software χ-sort, plain quicksort,
//! `sort_unstable`) — the wall-clock side of the paper's comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fu_host::baseline::{software_quicksort, software_xi_sort, workload};
use std::hint::black_box;
use xi_sort::{XiConfig, XiOp, XiSortCore};

/// Simulate a full hardware sort of `values`; returns total core cycles.
fn hw_sort(values: &[u32]) -> u64 {
    let mut core = XiSortCore::new(XiConfig::new(values.len() as u32));
    core.dispatch(XiOp::Reset, 0);
    for &v in values {
        core.dispatch(XiOp::Push, v);
    }
    core.dispatch(XiOp::InitBounds, 0);
    core.run_to_completion(1_000_000);
    core.dispatch(XiOp::Sort, 0);
    core.run_to_completion(4_000_000_000);
    core.op_cycles()
}

fn bench_sorts(c: &mut Criterion) {
    for n in [64usize, 256] {
        let values = workload(n as u64, n, 1 << 24);
        let mut g = c.benchmark_group(format!("xi_sort/n={n}"));
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("hw_sim", n), &values, |b, v| {
            b.iter(|| black_box(hw_sort(v)))
        });
        g.bench_with_input(BenchmarkId::new("sw_xi", n), &values, |b, v| {
            b.iter(|| black_box(software_xi_sort(v)))
        });
        g.bench_with_input(BenchmarkId::new("quicksort", n), &values, |b, v| {
            b.iter(|| black_box(software_quicksort(v)))
        });
        g.bench_with_input(BenchmarkId::new("std_sort_unstable", n), &values, |b, v| {
            b.iter(|| {
                let mut w = v.clone();
                w.sort_unstable();
                black_box(w)
            })
        });
        g.finish();
    }
}

fn bench_selection(c: &mut Criterion) {
    let n = 256usize;
    let values = workload(5, n, 1 << 24);
    let mut g = c.benchmark_group("xi_select/n=256");
    g.bench_function("hw_sim_select_median", |b| {
        b.iter(|| {
            let mut core = XiSortCore::new(XiConfig::new(n as u32));
            core.dispatch(XiOp::Reset, 0);
            for &v in &values {
                core.dispatch(XiOp::Push, v);
            }
            core.dispatch(XiOp::InitBounds, 0);
            core.run_to_completion(1_000_000);
            core.dispatch(XiOp::SelectK, (n / 2) as u32);
            black_box(core.run_to_completion(4_000_000_000))
        })
    });
    g.bench_function("sw_select_nth", |b| {
        b.iter(|| {
            let mut w = values.clone();
            let (_, median, _) = w.select_nth_unstable(n / 2);
            black_box(*median)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sorts, bench_selection
}
criterion_main!(benches);
