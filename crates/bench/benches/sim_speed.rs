//! Wall-clock speed of the simulation kernel itself: the event-wheel
//! scheduler (`scheduled`) and the activity-gated scheduler with idle
//! fast-forward (`gated`) against exhaustive per-cycle evaluation.
//! Simulated results are bit-identical in all three modes (asserted here
//! and property-tested in `ff_equivalence` / `wheel_equivalence`); only
//! host wall-clock time differs.
//!
//! Besides the criterion samples, this harness writes
//! `BENCH_sim_speed.json` at the workspace root with simulated
//! cycles/second per scenario and mode. The `fu_latency_burn` scenario
//! is the link/latency-bound case the event wheel targets: gated must
//! step every cycle of every unit burn, the wheel jumps them.

use bench::links::{arith_batch_mode, latency_burn_mode, LinkRun};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fu_host::{LinkModel, MultiHostSystem};
use fu_isa::{DevMsg, HostMsg, Word};
use fu_rtm::testing::LatencyFu;
use fu_rtm::{ActivityMode, CoprocConfig, FunctionalUnit};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// E8's slow-link arithmetic batch: 64 dependent adds over the
/// prototyping link (500-cycle latency, 50 cycles/frame) — dominated by
/// idle link waits.
fn e8_slow_link(mode: ActivityMode) -> LinkRun {
    arith_batch_mode(LinkModel::prototyping(), 64, mode)
}

/// The latency-burn round trips: 8 synchronous instructions on a
/// 20000-cycle unit over the prototyping link. Quiet (unit busy) for
/// ~95% of simulated time — gated steps all of it, the wheel skips it.
fn fu_latency_burn(mode: ActivityMode) -> LinkRun {
    latency_burn_mode(LinkModel::prototyping(), 8, 20_000, mode)
}

/// An idle-heavy multi-host trace: four hosts doing synchronous
/// write+read round trips over the prototyping link, each waiting out
/// the full link latency before issuing the next request.
fn multihost_idle(mode: ActivityMode) -> (u64, u64) {
    let units: Vec<Box<dyn FunctionalUnit>> = vec![Box::new(LatencyFu::new("add", 1, 1))];
    let mut s = MultiHostSystem::new(CoprocConfig::default(), units, LinkModel::prototyping(), 4)
        .expect("valid configuration");
    s.set_activity_mode(mode);
    for round in 0..8u64 {
        for host in 0..4usize {
            let reg = host as u8 + 1;
            let tag = s.brand_tag(host, round as u16);
            s.send(
                host,
                &HostMsg::WriteReg {
                    reg,
                    value: Word::from_u64(round, 32),
                },
            );
            s.send(host, &HostMsg::ReadReg { reg, tag });
        }
        for host in 0..4usize {
            let resp = s.recv_blocking(host, 10_000_000).expect("round trip");
            assert!(matches!(resp, DevMsg::Data { .. }));
        }
    }
    (s.cycle(), s.sim_stats().cycles_skipped)
}

/// Best-of-N wall time of `f`, with one warmup run. Returns the minimum
/// duration and the last result.
fn time_best<T>(reps: u32, mut f: impl FnMut() -> T) -> (Duration, T) {
    let mut out = f();
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        out = f();
        best = best.min(t0.elapsed());
    }
    (best, out)
}

fn rate(cycles: u64, wall: Duration) -> f64 {
    cycles as f64 / wall.as_secs_f64()
}

/// Wall times of the three modes for one scenario.
struct ModeTimes {
    exhaustive: Duration,
    gated: Duration,
    scheduled: Duration,
}

/// Measure all three modes of one scenario and emit a JSON fragment.
fn scenario_json(name: &str, cycles: u64, skipped: u64, t: &ModeTimes) -> String {
    format!(
        concat!(
            "    {{\"name\": \"{}\", \"link\": \"prototyping\", ",
            "\"simulated_cycles\": {}, \"skipped_cycles\": {}, ",
            "\"exhaustive\": {{\"wall_ns\": {}, \"cycles_per_sec\": {:.0}}}, ",
            "\"gated\": {{\"wall_ns\": {}, \"cycles_per_sec\": {:.0}}}, ",
            "\"scheduled\": {{\"wall_ns\": {}, \"cycles_per_sec\": {:.0}}}, ",
            "\"speedup\": {:.2}, ",
            "\"speedup_scheduled\": {:.2}, ",
            "\"scheduled_vs_gated\": {:.2}}}"
        ),
        name,
        cycles,
        skipped,
        t.exhaustive.as_nanos(),
        rate(cycles, t.exhaustive),
        t.gated.as_nanos(),
        rate(cycles, t.gated),
        t.scheduled.as_nanos(),
        rate(cycles, t.scheduled),
        t.exhaustive.as_secs_f64() / t.gated.as_secs_f64(),
        t.exhaustive.as_secs_f64() / t.scheduled.as_secs_f64(),
        t.gated.as_secs_f64() / t.scheduled.as_secs_f64(),
    )
}

/// Time one `LinkRun` scenario in all three modes, asserting that the
/// simulated cycle counts agree.
fn measure_link_run(name: &str, f: impl Fn(ActivityMode) -> LinkRun) -> (u64, u64, ModeTimes) {
    let (t_gated, r_gated) = time_best(5, || f(ActivityMode::Gated));
    let (t_exh, r_exh) = time_best(5, || f(ActivityMode::Exhaustive));
    let (t_sched, r_sched) = time_best(5, || f(ActivityMode::Scheduled));
    assert_eq!(r_gated.cycles, r_exh.cycles, "modes diverged on {name}");
    assert_eq!(r_gated.cycles, r_sched.cycles, "modes diverged on {name}");
    (
        r_gated.cycles,
        r_sched.sim.cycles_skipped,
        ModeTimes {
            exhaustive: t_exh,
            gated: t_gated,
            scheduled: t_sched,
        },
    )
}

fn write_report() {
    let (e8_cycles, e8_skipped, e8_times) = measure_link_run("e8_slow_link_arith", e8_slow_link);
    let (burn_cycles, burn_skipped, burn_times) =
        measure_link_run("fu_latency_burn", fu_latency_burn);

    let (t_mh_gated, (mh_cycles, _)) = time_best(5, || multihost_idle(ActivityMode::Gated));
    let (t_mh_exh, (mh_cycles_exh, _)) = time_best(5, || multihost_idle(ActivityMode::Exhaustive));
    let (t_mh_sched, (mh_cycles_sched, mh_skipped)) =
        time_best(5, || multihost_idle(ActivityMode::Scheduled));
    assert_eq!(mh_cycles, mh_cycles_exh, "modes diverged on multihost");
    assert_eq!(mh_cycles, mh_cycles_sched, "modes diverged on multihost");
    let mh_times = ModeTimes {
        exhaustive: t_mh_exh,
        gated: t_mh_gated,
        scheduled: t_mh_sched,
    };

    let json = format!(
        "{{\n  \"bench\": \"sim_speed\",\n  \"scenarios\": [\n{},\n{},\n{}\n  ]\n}}\n",
        scenario_json("e8_slow_link_arith", e8_cycles, e8_skipped, &e8_times),
        scenario_json("fu_latency_burn", burn_cycles, burn_skipped, &burn_times),
        scenario_json("multihost_idle", mh_cycles, mh_skipped, &mh_times),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim_speed.json");
    std::fs::write(path, &json).expect("write BENCH_sim_speed.json");
    eprintln!(
        "sim_speed: e8 sched/gated {:.2}x, burn sched/gated {:.2}x, \
         multihost sched/gated {:.2}x (report: BENCH_sim_speed.json)",
        e8_times.gated.as_secs_f64() / e8_times.scheduled.as_secs_f64(),
        burn_times.gated.as_secs_f64() / burn_times.scheduled.as_secs_f64(),
        mh_times.gated.as_secs_f64() / mh_times.scheduled.as_secs_f64(),
    );
}

fn bench_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_speed");
    for (label, mode) in [
        ("gated", ActivityMode::Gated),
        ("exhaustive", ActivityMode::Exhaustive),
        ("scheduled", ActivityMode::Scheduled),
    ] {
        g.bench_with_input(BenchmarkId::new("e8_slow_link", label), &mode, |b, &m| {
            b.iter(|| black_box(e8_slow_link(m)))
        });
        g.bench_with_input(
            BenchmarkId::new("fu_latency_burn", label),
            &mode,
            |b, &m| b.iter(|| black_box(fu_latency_burn(m))),
        );
        g.bench_with_input(BenchmarkId::new("multihost_idle", label), &mode, |b, &m| {
            b.iter(|| black_box(multihost_idle(m)))
        });
    }
    g.finish();
    write_report();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_modes
}
criterion_main!(benches);
