//! E3 as a criterion bench: simulating instruction streams through the
//! three functional-unit skeletons. The interesting *architecture*
//! numbers (CPI) come from `exp_cpi`; this bench tracks the wall cost of
//! producing them and guards against performance regressions in the
//! simulator.

use bench::cpi::{measure_skeleton, Skeleton};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_skeletons(c: &mut Criterion) {
    let n = 1000;
    let mut g = c.benchmark_group("fu_throughput");
    g.throughput(Throughput::Elements(n as u64));
    for sk in [
        Skeleton::Minimal,
        Skeleton::MinimalForwarding,
        Skeleton::Fsm(2),
        Skeleton::Pipelined(3, 8),
    ] {
        g.bench_with_input(BenchmarkId::new("stream", sk.label()), &sk, |b, &sk| {
            b.iter(|| black_box(measure_skeleton(sk, n)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_skeletons
}
criterion_main!(benches);
