//! Wall-clock benchmarks of the simulation kernel primitives: how fast
//! the host machine simulates FPGA cycles. Not a paper figure by itself,
//! but the denominator of every other measurement (cycles simulated per
//! second of host time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rtl_sim::{Clocked, Fifo, HandshakeSlot};
use std::hint::black_box;

fn bench_handshake(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_kernel/handshake");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("full_throughput_cycles", |b| {
        b.iter(|| {
            let mut slot = HandshakeSlot::new();
            let mut sum = 0u64;
            let mut next = 0u64;
            for _ in 0..10_000 {
                if let Some(v) = slot.take() {
                    sum += v;
                }
                if slot.can_push() {
                    slot.push(next);
                    next += 1;
                }
                slot.commit();
            }
            black_box(sum)
        })
    });
    g.finish();
}

fn bench_fifo(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_kernel/fifo");
    for depth in [4usize, 64] {
        g.throughput(Throughput::Elements(10_000));
        g.bench_with_input(BenchmarkId::new("stream", depth), &depth, |b, &depth| {
            b.iter(|| {
                let mut fifo = Fifo::new(depth);
                let mut sum = 0u64;
                let mut next = 0u64;
                for _ in 0..10_000 {
                    if let Some(v) = fifo.pop() {
                        sum += v;
                    }
                    if fifo.can_push() {
                        fifo.push(next);
                        next += 1;
                    }
                    fifo.commit();
                }
                black_box(sum)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_handshake, bench_fifo
}
criterion_main!(benches);
