//! E4 as a criterion bench: out-of-order dispatch vs fenced execution
//! over unit-count sweeps.

use bench::ooo::run_mix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_ooo(c: &mut Criterion) {
    let n = 120;
    let mut g = c.benchmark_group("ooo_dispatch");
    for units in [1usize, 2, 4] {
        let lats = vec![12u32; units];
        g.bench_with_input(BenchmarkId::new("ooo", units), &lats, |b, lats| {
            b.iter(|| black_box(run_mix(lats, n, false)))
        });
    }
    g.bench_function("fenced_2units", |b| {
        b.iter(|| black_box(run_mix(&[12, 12], n, true)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ooo
}
criterion_main!(benches);
