//! E8/E10 as criterion benches: full host↔link↔coprocessor round trips
//! across interconnects and configurations.

use bench::links::arith_batch;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fu_host::{Driver, LinkModel, System};
use fu_rtm::CoprocConfig;
use fu_units::standard_units;
use std::hint::black_box;

fn bench_links(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_system/links");
    for link in [
        LinkModel::prototyping(),
        LinkModel::pcie_like(),
        LinkModel::tightly_coupled(),
    ] {
        g.bench_with_input(
            BenchmarkId::new("arith_batch", link.name),
            &link,
            |b, &link| b.iter(|| black_box(arith_batch(link, 32))),
        );
    }
    g.finish();
}

fn bench_word_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_system/word_size");
    for bits in [32u32, 128] {
        g.bench_with_input(BenchmarkId::new("roundtrip", bits), &bits, |b, &bits| {
            b.iter(|| {
                let cfg = CoprocConfig::default().with_word_bits(bits);
                let sys =
                    System::new(cfg, standard_units(bits), LinkModel::tightly_coupled()).unwrap();
                let mut d = Driver::new(sys, 1_000_000);
                d.write_reg(1, 123);
                d.write_reg(2, 456);
                d.exec_asm("ADD r3, r1, r2, f1").unwrap();
                black_box(d.read_reg(3).unwrap().as_u64())
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_links, bench_word_sizes
}
criterion_main!(benches);
