//! CRC-32 primitives shared by the wire-level transport and the CRC
//! functional unit.
//!
//! The polynomial network itself (IEEE, reflected, `0xEDB88320`) is the
//! same whether it guards a link frame or updates a running register value
//! through the CRC functional unit in `fu-units` — exactly the reuse a
//! real design would get by instantiating one CRC core in both the
//! transceiver and the unit library. The functions live here, at the root
//! of the dependency graph, so both layers share one implementation.

/// Update a reflected CRC-32 with one byte.
pub fn crc32_byte(crc: u32, byte: u8) -> u32 {
    let mut crc = crc ^ byte as u32;
    for _ in 0..8 {
        crc = if crc & 1 == 1 {
            (crc >> 1) ^ 0xEDB8_8320
        } else {
            crc >> 1
        };
    }
    crc
}

/// Update a reflected CRC-32 with four little-endian bytes.
pub fn crc32_word(crc: u32, word: u32) -> u32 {
    word.to_le_bytes()
        .iter()
        .fold(crc, |c, &b| crc32_byte(c, b))
}

/// Reference CRC-32 (IEEE) of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    !data.iter().fold(0xffff_ffff, |c, &b| crc32_byte(c, b))
}

/// CRC-32 of a sequence of 32-bit frames (little-endian byte order),
/// as computed by the reliable-transport framing layer.
pub fn crc32_frames(frames: &[u32]) -> u32 {
    !frames.iter().fold(0xffff_ffff, |c, &f| crc32_word(c, f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_known_vector() {
        // The canonical CRC-32 check value: crc32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_crc_equals_byte_crc() {
        let frames = [0x3332_3130u32, 0x3736_3534]; // "01234567" LE
        assert_eq!(crc32_frames(&frames), crc32(b"01234567"));
    }

    #[test]
    fn single_bit_flips_change_the_crc() {
        let base = crc32_frames(&[0xdead_beef, 0x0123_4567]);
        for bit in 0..32 {
            let flipped = crc32_frames(&[0xdead_beef ^ (1 << bit), 0x0123_4567]);
            assert_ne!(base, flipped, "bit {bit} flip must be detected");
        }
    }
}
