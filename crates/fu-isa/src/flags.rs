//! Flag vectors — entries of the secondary flag register file.
//!
//! "There is a secondary register file holding vectors of flags, which are
//! often useful for controlling the functional units." The arithmetic unit
//! of the case study produces a carry (for multi-word operation), and the
//! thesis mentions an error flag signalling "an exceptional condition, e.g.
//! a division by zero. If this flag is set, the contents of the destination
//! registers (if any) are undefined by specification."

use std::fmt;

/// An 8-bit flag vector.
///
/// Bit assignments (this reproduction's convention, documented rather than
/// given in the excerpt):
///
/// | bit | name  | meaning                                   |
/// |-----|-------|-------------------------------------------|
/// | 0   | C     | carry out / no-borrow                     |
/// | 1   | Z     | result was all-zero                       |
/// | 2   | N     | result's most significant bit             |
/// | 3   | V     | signed overflow                           |
/// | 4   | E     | error — destination contents undefined    |
/// | 5-7 | user  | free for functional-unit specific use     |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Flags(pub u8);

impl Flags {
    /// Carry / no-borrow.
    pub const CARRY: Flags = Flags(1 << 0);
    /// Zero result.
    pub const ZERO: Flags = Flags(1 << 1);
    /// Negative (MSB of result).
    pub const NEG: Flags = Flags(1 << 2);
    /// Signed overflow.
    pub const OVERFLOW: Flags = Flags(1 << 3);
    /// Exceptional condition; destination registers undefined.
    pub const ERROR: Flags = Flags(1 << 4);
    /// No flags set.
    pub const NONE: Flags = Flags(0);

    /// Build a vector from individual indications.
    pub fn from_parts(carry: bool, zero: bool, neg: bool, overflow: bool) -> Flags {
        let mut f = Flags::NONE;
        f.set(Flags::CARRY, carry);
        f.set(Flags::ZERO, zero);
        f.set(Flags::NEG, neg);
        f.set(Flags::OVERFLOW, overflow);
        f
    }

    /// True when every bit of `mask` is set.
    pub fn has(&self, mask: Flags) -> bool {
        self.0 & mask.0 == mask.0
    }

    /// Set or clear the bits of `mask`.
    pub fn set(&mut self, mask: Flags, value: bool) {
        if value {
            self.0 |= mask.0;
        } else {
            self.0 &= !mask.0;
        }
    }

    /// The carry bit, as consumed by ADC/SBB/CMPB via the "use carry flag"
    /// variety bit.
    pub fn carry(&self) -> bool {
        self.has(Flags::CARRY)
    }

    /// The zero bit.
    pub fn zero(&self) -> bool {
        self.has(Flags::ZERO)
    }

    /// The negative bit.
    pub fn neg(&self) -> bool {
        self.has(Flags::NEG)
    }

    /// The overflow bit.
    pub fn overflow(&self) -> bool {
        self.has(Flags::OVERFLOW)
    }

    /// The error bit.
    pub fn error(&self) -> bool {
        self.has(Flags::ERROR)
    }
}

impl std::ops::BitOr for Flags {
    type Output = Flags;
    fn bitor(self, rhs: Flags) -> Flags {
        Flags(self.0 | rhs.0)
    }
}

impl std::ops::BitAnd for Flags {
    type Output = Flags;
    fn bitand(self, rhs: Flags) -> Flags {
        Flags(self.0 & rhs.0)
    }
}

impl fmt::Display for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = [
            (Flags::CARRY, 'C'),
            (Flags::ZERO, 'Z'),
            (Flags::NEG, 'N'),
            (Flags::OVERFLOW, 'V'),
            (Flags::ERROR, 'E'),
        ];
        for (mask, ch) in names {
            write!(f, "{}", if self.has(mask) { ch } else { '-' })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_parts_sets_expected_bits() {
        let f = Flags::from_parts(true, false, true, false);
        assert!(f.carry() && f.neg());
        assert!(!f.zero() && !f.overflow() && !f.error());
        assert_eq!(f.to_string(), "C-N--");
    }

    #[test]
    fn set_and_clear() {
        let mut f = Flags::NONE;
        f.set(Flags::ERROR, true);
        assert!(f.error());
        f.set(Flags::ERROR, false);
        assert_eq!(f, Flags::NONE);
    }

    #[test]
    fn bit_operators() {
        let f = Flags::CARRY | Flags::ZERO;
        assert_eq!(f.0, 0b11);
        assert_eq!((f & Flags::ZERO), Flags::ZERO);
        assert!(f.has(Flags::CARRY));
        assert!(!f.has(Flags::CARRY | Flags::NEG), "has() requires all bits");
    }

    #[test]
    fn display_shows_all_set() {
        let f = Flags::CARRY | Flags::ZERO | Flags::NEG | Flags::OVERFLOW | Flags::ERROR;
        assert_eq!(f.to_string(), "CZNVE");
        assert_eq!(Flags::NONE.to_string(), "-----");
    }

    #[test]
    fn user_bits_survive() {
        let mut f = Flags(0b1110_0000);
        assert!(!f.carry());
        f.set(Flags::CARRY, true);
        assert_eq!(f.0, 0b1110_0001);
    }
}
