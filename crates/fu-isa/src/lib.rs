//! `fu-isa` — the instruction-set architecture of the coprocessor framework.
//!
//! This crate reconstructs, from Koltes & O'Donnell (IPDPS 2010) and the
//! companion thesis, everything that travels between the host CPU, the
//! Register Transfer Machine (RTM) and the functional units:
//!
//! * [`word::Word`] — register-file data values. The paper's main register
//!   file has a word size "configurable in multiples of 32 bits"; `Word`
//!   carries up to four 32-bit limbs (32/64/96/128-bit configurations).
//! * [`flags::Flags`] — entries of the secondary *flag register file*
//!   ("vectors of flags, which are often useful for controlling the
//!   functional units").
//! * [`instr`] — the 64-bit instruction word with its field layout
//!   reconstructed from Figure 7 / Table 3.1: user instructions are
//!   dispatched to functional units, management primitives execute in the
//!   RTM's own pipeline.
//! * [`variety`] — the *variety code* (`variety_code[7..0]` in the
//!   minimal-functional-unit schematic): per-unit operation modifiers. For
//!   the arithmetic unit these are the six bits of Table 3.1 (use carry
//!   flag, fixed carry, output data, first input zero, second input zero,
//!   complement second input) from which ADD/ADC/SUB/SBB/INC/DEC/NEG/CMP/
//!   CMPB are all derived; for the logic unit a 4-bit truth table.
//! * [`mgmt`] — RTM management primitives ("general management primitives,
//!   e.g. copying data from one register to another, are provided by the
//!   framework and executed directly in the main pipeline").
//! * [`msg`] — host↔coprocessor messages and their 32-bit wire framing
//!   (the message buffer and message serialiser operate on these).
//! * [`asm`] — a small textual assembler/disassembler for RTM programs,
//!   used by the examples and by tests as an independent path into the
//!   encoder.

pub mod asm;
pub mod crc;
pub mod flags;
pub mod instr;
pub mod mgmt;
pub mod msg;
pub mod transport;
pub mod variety;
pub mod word;

pub use flags::Flags;
pub use instr::{FuncCode, InstrWord, RegNum, UserInstr};
pub use mgmt::MgmtOp;
pub use msg::{DevMsg, HostMsg, Tag};
pub use variety::{ArithOp, ArithVariety, LogicOp, LogicVariety, ShiftVariety};
pub use word::Word;

/// Function codes assigned to the functional units of this reproduction.
/// The thesis gives the arithmetic unit "function code 16"; the remaining
/// assignments are ours (the code space is a framework configuration
/// parameter, part of the functional-unit table).
pub mod funit_codes {
    /// Arithmetic unit (Table 3.1) — code given in the thesis.
    pub const ARITH: u8 = 16;
    /// Logic unit (Table 3.2).
    pub const LOGIC: u8 = 17;
    /// Shift/rotate unit (extension FU used in examples).
    pub const SHIFT: u8 = 18;
    /// Pipelined multiplier (performance-optimised skeleton example).
    pub const MUL: u8 = 19;
    /// Population-count unit (user-defined FU example).
    pub const POPCOUNT: u8 = 20;
    /// Integer divider (multi-cycle FSM-skeleton example; raises the
    /// error flag on division by zero).
    pub const DIV: u8 = 21;
    /// CRC-32 update unit.
    pub const CRC: u8 = 22;
    /// Single-precision floating-point unit (the paper's §I example).
    pub const FPU: u8 = 23;
    /// χ-sort stateful functional unit.
    pub const XI_SORT: u8 = 32;
}
