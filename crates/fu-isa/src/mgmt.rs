//! Management primitives executed directly in the RTM's main pipeline.
//!
//! "General management primitives, e.g. copying data from one register to
//! another, are provided by the framework and executed directly in the
//! main pipeline. User instructions are dispatched to functional units."
//!
//! Management instructions share the [`crate::instr::InstrWord`] layout
//! with the USER flag clear; the function-code field carries one of the
//! opcodes below.

use crate::instr::{FuncCode, InstrWord, RegNum};

/// Decoded management operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MgmtOp {
    /// Do nothing (pipeline bubble; also the encoding of an all-zero word,
    /// so an idle link cannot be mistaken for work).
    Nop,
    /// Copy a main register: `dst ← src`.
    Copy { dst: RegNum, src: RegNum },
    /// Load a 32-bit immediate, zero-extended to the word size.
    LoadImm { dst: RegNum, imm: u32 },
    /// Copy a flag register: `dst ← src`.
    CopyFlags { dst: RegNum, src: RegNum },
    /// Set a flag register to an immediate 8-bit vector.
    SetFlags { dst: RegNum, imm: u8 },
    /// Barrier: stalls until every functional unit is idle and every
    /// register lock has been released. Lets a host program observe a
    /// consistent machine state without knowing unit latencies.
    Fence,
}

/// Opcode values (the function-code field of a management instruction).
pub mod opcodes {
    /// No operation.
    pub const NOP: u8 = 0;
    /// Register copy.
    pub const COPY: u8 = 1;
    /// Load immediate.
    pub const LOADI: u8 = 2;
    /// Flag register copy.
    pub const COPYF: u8 = 3;
    /// Flag register set.
    pub const SETF: u8 = 4;
    /// Completion barrier.
    pub const FENCE: u8 = 5;
}

/// Error for undecodable instruction words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// The opcode that was not recognised.
    pub opcode: FuncCode,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown management opcode {}", self.opcode)
    }
}

impl std::error::Error for DecodeError {}

impl MgmtOp {
    /// Encode into an instruction word.
    pub fn encode(&self) -> InstrWord {
        match *self {
            MgmtOp::Nop => InstrWord::mgmt(opcodes::NOP, 0, 0, 0),
            MgmtOp::Copy { dst, src } => InstrWord::mgmt(opcodes::COPY, 0, dst, (src as u32) << 16),
            MgmtOp::LoadImm { dst, imm } => InstrWord::mgmt(opcodes::LOADI, 0, dst, imm),
            MgmtOp::CopyFlags { dst, src } => {
                InstrWord::mgmt(opcodes::COPYF, dst, 0, (src as u32) << 16)
            }
            MgmtOp::SetFlags { dst, imm } => InstrWord::mgmt(opcodes::SETF, dst, 0, imm as u32),
            MgmtOp::Fence => InstrWord::mgmt(opcodes::FENCE, 0, 0, 0),
        }
    }

    /// Decode from an instruction word (which must have the USER flag
    /// clear).
    ///
    /// # Panics
    /// Panics on user instructions; the decoder stage dispatches on
    /// [`InstrWord::is_user`] before calling this.
    pub fn decode(w: InstrWord) -> Result<MgmtOp, DecodeError> {
        assert!(!w.is_user(), "MgmtOp::decode on a user instruction");
        Ok(match w.func() {
            opcodes::NOP => MgmtOp::Nop,
            opcodes::COPY => MgmtOp::Copy {
                dst: w.dst_reg(),
                src: w.src1(),
            },
            opcodes::LOADI => MgmtOp::LoadImm {
                dst: w.dst_reg(),
                imm: w.imm(),
            },
            opcodes::COPYF => MgmtOp::CopyFlags {
                dst: w.dst_flag(),
                src: w.src1(),
            },
            opcodes::SETF => MgmtOp::SetFlags {
                dst: w.dst_flag(),
                imm: w.imm() as u8,
            },
            opcodes::FENCE => MgmtOp::Fence,
            opcode => return Err(DecodeError { opcode }),
        })
    }

    /// Registers this op reads: `(main_regs, flag_regs)`.
    pub fn reads(&self) -> (Vec<RegNum>, Vec<RegNum>) {
        match *self {
            MgmtOp::Copy { src, .. } => (vec![src], vec![]),
            MgmtOp::CopyFlags { src, .. } => (vec![], vec![src]),
            _ => (vec![], vec![]),
        }
    }

    /// Registers this op writes: `(main_regs, flag_regs)`.
    pub fn writes(&self) -> (Vec<RegNum>, Vec<RegNum>) {
        match *self {
            MgmtOp::Copy { dst, .. } | MgmtOp::LoadImm { dst, .. } => (vec![dst], vec![]),
            MgmtOp::CopyFlags { dst, .. } | MgmtOp::SetFlags { dst, .. } => (vec![], vec![dst]),
            _ => (vec![], vec![]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn all_zero_word_is_nop() {
        assert_eq!(MgmtOp::decode(InstrWord(0)), Ok(MgmtOp::Nop));
        assert_eq!(MgmtOp::Nop.encode().0, 0);
    }

    #[test]
    fn unknown_opcode_is_an_error() {
        let w = InstrWord::mgmt(0x55, 0, 0, 0);
        let err = MgmtOp::decode(w).unwrap_err();
        assert_eq!(err.opcode, 0x55);
        assert!(err.to_string().contains("85"));
    }

    #[test]
    #[should_panic(expected = "user instruction")]
    fn decode_rejects_user_words() {
        let w = InstrWord::user(crate::instr::UserInstr {
            func: 16,
            variety: 0,
            dst_flag: 0,
            dst_reg: 0,
            aux_reg: 0,
            src1: 0,
            src2: 0,
            src3: 0,
        });
        let _ = MgmtOp::decode(w);
    }

    #[test]
    fn read_write_sets() {
        let op = MgmtOp::Copy { dst: 3, src: 5 };
        assert_eq!(op.reads(), (vec![5], vec![]));
        assert_eq!(op.writes(), (vec![3], vec![]));
        let op = MgmtOp::SetFlags { dst: 2, imm: 0xff };
        assert_eq!(op.reads(), (vec![], vec![]));
        assert_eq!(op.writes(), (vec![], vec![2]));
        assert_eq!(MgmtOp::Fence.writes(), (vec![], vec![]));
    }

    proptest! {
        #[test]
        fn prop_encode_decode_roundtrip(op_sel in 0u8..6, a: u8, b: u8, imm: u32) {
            let op = match op_sel {
                0 => MgmtOp::Nop,
                1 => MgmtOp::Copy { dst: a, src: b },
                2 => MgmtOp::LoadImm { dst: a, imm },
                3 => MgmtOp::CopyFlags { dst: a, src: b },
                4 => MgmtOp::SetFlags { dst: a, imm: imm as u8 },
                _ => MgmtOp::Fence,
            };
            prop_assert_eq!(MgmtOp::decode(op.encode()), Ok(op));
        }
    }
}
