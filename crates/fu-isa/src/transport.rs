//! Reliable link transport: go-back-N framing with per-segment sequence
//! numbers, CRC-32 protection and cumulative acknowledgements.
//!
//! The paper's framing layer assumes the transceiver delivers every 32-bit
//! frame intact; this module is the drop-in replacement for lossy links.
//! Each application frame (one 32-bit word of the normal host↔device wire
//! protocol) is wrapped into a three-frame *data segment*:
//!
//! ```text
//! [ 0xD5 << 24 | seq:u16 ]  [ payload:u32 ]  [ crc32(header, payload) ]
//! ```
//!
//! and acknowledged by a two-frame *ack segment* on the reverse link:
//!
//! ```text
//! [ 0xAC << 24 | cum_seq:u16 ]  [ crc32(header) ]
//! ```
//!
//! Both directions run one [`Endpoint`] each; an endpoint transmits its own
//! data segments *and* the acks for the segments it receives, so the
//! protocol is fully symmetric between host and device. Receivers deliver
//! payloads strictly in sequence order and answer every data segment
//! (in-order or not) with a cumulative ack; transmitters resend the whole
//! unacked window on an ack timeout (go-back-N) with exponential backoff,
//! giving up after a configurable retry cap.
//!
//! Everything here is deterministic: no randomness, and the only notion of
//! time is the cycle number threaded in by the caller, so a simulation may
//! fast-forward across an idle span as long as it never skips past
//! [`Endpoint::next_event_cycle`].

use crate::crc::crc32_frames;
use std::collections::VecDeque;

/// Marker byte (bits 31..24) of a data-segment header frame.
pub const DATA_MAGIC: u32 = 0xD5;
/// Marker byte (bits 31..24) of an ack-segment header frame.
pub const ACK_MAGIC: u32 = 0xAC;
/// Frames per data segment: header, payload, CRC.
pub const DATA_SEGMENT_FRAMES: usize = 3;
/// Frames per ack segment: header, CRC.
pub const ACK_SEGMENT_FRAMES: usize = 2;

/// Tuning knobs for one reliable endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportConfig {
    /// Maximum unacked data segments in flight (go-back-N window). Must be
    /// far below 2^15 so 16-bit sequence comparisons stay unambiguous.
    pub window: usize,
    /// Cycles to wait for an ack before resending the window.
    pub ack_timeout: u64,
    /// Cap on the exponential-backoff shift applied to `ack_timeout`.
    pub max_backoff_exp: u32,
    /// Consecutive timeouts without receiving any valid ack before the
    /// endpoint gives up and reports a dead link via
    /// [`TransportStats::gave_up`].
    pub max_retries: u32,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            window: 8,
            ack_timeout: 256,
            max_backoff_exp: 5,
            // Generous: with backoff capped, declaring a peer dead is
            // cheap to delay and expensive to get wrong — a retry round
            // on a 20%-loss link still misses every ack once in ~15
            // rounds, and go-back-N recovers as long as we keep trying.
            max_retries: 512,
        }
    }
}

impl TransportConfig {
    /// A timeout sized for a link with the given one-way latency and
    /// per-frame injection interval: one round trip plus the serialisation
    /// time of a full window, with headroom so a healthy link never
    /// retransmits spuriously.
    pub fn for_link(latency_cycles: u64, cycles_per_frame: u64) -> Self {
        let window = TransportConfig::default().window;
        let serialise = cycles_per_frame * (window as u64) * (DATA_SEGMENT_FRAMES as u64 + 1);
        TransportConfig {
            ack_timeout: 2 * latency_cycles + serialise + 64,
            ..TransportConfig::default()
        }
    }
}

/// Counters exposed alongside `SimStats` for observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Data segments sent for the first time.
    pub segments_sent: u64,
    /// Data segments re-sent after an ack timeout (go-back-N resends).
    pub retransmits: u64,
    /// Ack segments emitted.
    pub acks_sent: u64,
    /// Valid ack segments received (including duplicates).
    pub acks_received: u64,
    /// In-order data segments accepted and delivered.
    pub delivered: u64,
    /// Segments discarded: CRC mismatch, bad magic, or out-of-sequence.
    pub rejected: u64,
    /// Consecutive ack timeouts exceeded `max_retries`; the endpoint has
    /// stopped retransmitting.
    pub gave_up: bool,
}

/// One direction-pair of the reliable protocol: transmits data segments for
/// the local application, receives data segments from the peer, and
/// multiplexes acks for the peer's data onto its own outgoing frame stream.
#[derive(Debug, Clone)]
pub struct Endpoint {
    cfg: TransportConfig,

    // --- transmit side -------------------------------------------------
    /// Unacked payloads, oldest first, tagged with their 64-bit sequence
    /// number (only the low 16 bits travel on the wire).
    unacked: VecDeque<(u64, u32)>,
    /// Sequence number for the next *new* payload.
    next_seq: u64,
    /// Index into `unacked` of the next segment to (re)transmit. Entries
    /// below the cursor have been sent at least once this round.
    send_cursor: usize,
    /// Retransmit deadline, armed while any segment is outstanding.
    deadline: Option<u64>,
    backoff_exp: u32,
    retries: u32,
    dead: bool,

    // --- receive side --------------------------------------------------
    /// Next in-order sequence number expected from the peer.
    expected: u64,
    /// Partially assembled incoming segment (header first).
    rx_buf: Vec<u32>,
    /// A cumulative ack owed to the peer (low 16 bits of the highest
    /// in-order sequence received, i.e. `expected - 1`).
    pending_ack: Option<u16>,
    /// Validated in-order payloads awaiting the application.
    delivered: VecDeque<u32>,

    /// Wire frames staged for transmission (whole segments at a time).
    out_buf: VecDeque<u32>,

    stats: TransportStats,
}

impl Endpoint {
    pub fn new(cfg: TransportConfig) -> Self {
        assert!(cfg.window >= 1, "transport window must be at least 1");
        assert!(
            cfg.window < (1 << 14),
            "transport window must stay far below the 16-bit sequence space"
        );
        assert!(cfg.ack_timeout >= 1, "ack timeout must be at least 1 cycle");
        Endpoint {
            cfg,
            unacked: VecDeque::new(),
            next_seq: 0,
            send_cursor: 0,
            deadline: None,
            backoff_exp: 0,
            retries: 0,
            dead: false,
            expected: 0,
            rx_buf: Vec::with_capacity(DATA_SEGMENT_FRAMES),
            pending_ack: None,
            delivered: VecDeque::new(),
            out_buf: VecDeque::new(),
            stats: TransportStats::default(),
        }
    }

    /// Queue one application frame for reliable delivery to the peer.
    pub fn send(&mut self, payload: u32) {
        self.unacked.push_back((self.next_seq, payload));
        self.next_seq += 1;
    }

    /// Advance the retransmit timer to `now`. On expiry the whole unacked
    /// window is rewound for retransmission (go-back-N) and the timeout
    /// doubles, up to the backoff cap; `max_retries` consecutive timeouts
    /// without ack progress mark the endpoint dead.
    pub fn poll(&mut self, now: u64) {
        if self.unacked.is_empty() {
            self.deadline = None;
            return;
        }
        if self.dead {
            return;
        }
        if let Some(d) = self.deadline {
            if now >= d {
                self.retries += 1;
                if self.retries > self.cfg.max_retries {
                    self.dead = true;
                    self.stats.gave_up = true;
                    self.deadline = None;
                } else {
                    self.send_cursor = 0;
                    self.backoff_exp = (self.backoff_exp + 1).min(self.cfg.max_backoff_exp);
                    self.deadline = Some(now.saturating_add(self.backoff_timeout()));
                }
            }
        }
    }

    /// Next wire frame to put on the outgoing link, if any. Acks take
    /// priority over data so the peer's window reopens as fast as possible.
    pub fn pull_frame(&mut self, now: u64) -> Option<u32> {
        if self.out_buf.is_empty() {
            self.refill(now);
        }
        self.out_buf.pop_front()
    }

    fn refill(&mut self, now: u64) {
        if let Some(ack) = self.pending_ack.take() {
            let header = (ACK_MAGIC << 24) | ack as u32;
            self.out_buf.push_back(header);
            self.out_buf.push_back(crc32_frames(&[header]));
            self.stats.acks_sent += 1;
            return;
        }
        if self.dead {
            return;
        }
        if self.send_cursor < self.unacked.len().min(self.cfg.window) {
            let (seq, payload) = self.unacked[self.send_cursor];
            if seq < self.high_water() {
                self.stats.retransmits += 1;
            } else {
                self.stats.segments_sent += 1;
            }
            let header = (DATA_MAGIC << 24) | (seq as u16) as u32;
            let crc = crc32_frames(&[header, payload]);
            self.out_buf.push_back(header);
            self.out_buf.push_back(payload);
            self.out_buf.push_back(crc);
            self.send_cursor += 1;
            if self.deadline.is_none() {
                self.deadline = Some(now.saturating_add(self.backoff_timeout()));
            }
        }
    }

    /// The current ack timeout with exponential backoff applied. A shift
    /// would overflow once `backoff_exp` (bounded only by the configured
    /// `max_backoff_exp`) reaches 64 minus the timeout's bit width, so the
    /// doubling saturates instead: past that point the deadline clamps to
    /// "never", which is indistinguishable from an astronomically long
    /// backoff and keeps `poll` monotone.
    fn backoff_timeout(&self) -> u64 {
        let scale = 1u64.checked_shl(self.backoff_exp).unwrap_or(u64::MAX);
        self.cfg.ack_timeout.saturating_mul(scale)
    }

    /// Highest sequence number ever transmitted, plus one (i.e. the first
    /// never-sent sequence).
    fn high_water(&self) -> u64 {
        // stats.segments_sent counts exactly the first transmissions, and
        // sequence numbers are allocated densely from zero.
        self.stats.segments_sent
    }

    /// Feed one frame received from the peer's link.
    pub fn on_frame(&mut self, now: u64, frame: u32) {
        if self.rx_buf.is_empty() {
            match frame >> 24 {
                m if m == DATA_MAGIC || m == ACK_MAGIC => self.rx_buf.push(frame),
                _ => self.stats.rejected += 1, // resync: skip until a magic
            }
        } else {
            self.rx_buf.push(frame);
        }
        let want = match self.rx_buf.first() {
            Some(h) if h >> 24 == ACK_MAGIC => ACK_SEGMENT_FRAMES,
            Some(_) => DATA_SEGMENT_FRAMES,
            None => return,
        };
        if self.rx_buf.len() < want {
            return;
        }
        let seg: Vec<u32> = self.rx_buf.drain(..).collect();
        let (body, crc) = seg.split_at(want - 1);
        if crc32_frames(body) != crc[0] {
            self.stats.rejected += 1;
            return;
        }
        let header = body[0];
        if header >> 24 == ACK_MAGIC {
            self.on_ack(now, header as u16);
        } else {
            self.on_data(header as u16, body[1]);
        }
    }

    fn on_ack(&mut self, now: u64, ack16: u16) {
        self.stats.acks_received += 1;
        // Any CRC-valid ack is proof the peer is alive and the reverse
        // path works, even when it acknowledges nothing new (its cumulative
        // ack for our retransmission of data it already holds). The retry
        // cap exists to detect an unreachable peer, so it counts only
        // consecutive timeouts with *no* valid ack in between.
        self.retries = 0;
        let Some(&(base, _)) = self.unacked.front() else {
            return; // duplicate ack for an already-drained window
        };
        let delta = ack16.wrapping_sub(base as u16) as usize;
        if delta >= self.unacked.len() {
            return; // stale duplicate: no progress
        }
        let n_acked = delta + 1;
        self.unacked.drain(..n_acked);
        self.send_cursor = self.send_cursor.saturating_sub(n_acked);
        self.backoff_exp = 0;
        // A late ack revives a declared-dead endpoint, and the give-up
        // flag follows: it reports the endpoint's current state, and idle
        // detection must not treat a revived link as abandoned.
        self.dead = false;
        self.stats.gave_up = false;
        self.deadline = if self.unacked.is_empty() {
            None
        } else {
            Some(now + self.cfg.ack_timeout)
        };
    }

    fn on_data(&mut self, seq16: u16, payload: u32) {
        if seq16 == self.expected as u16 {
            self.delivered.push_back(payload);
            self.expected += 1;
            self.stats.delivered += 1;
        } else {
            self.stats.rejected += 1; // duplicate or out-of-order: re-ack only
        }
        // Cumulative ack for the highest in-order sequence seen. At start
        // of day this is `0u16.wrapping_sub(1)`, which the peer ignores.
        self.pending_ack = Some((self.expected.wrapping_sub(1)) as u16);
    }

    /// Next validated in-order payload for the application.
    pub fn deliver(&mut self) -> Option<u32> {
        self.delivered.pop_front()
    }

    /// True when a call to [`Endpoint::pull_frame`] would emit a frame right
    /// now (staged frames, an owed ack, or sendable window).
    pub fn has_tx_work(&self) -> bool {
        !self.out_buf.is_empty()
            || self.pending_ack.is_some()
            || (!self.dead && self.send_cursor < self.unacked.len().min(self.cfg.window))
    }

    /// True when payloads are waiting in the delivery queue.
    pub fn has_deliverable(&self) -> bool {
        !self.delivered.is_empty()
    }

    /// The retransmit deadline, for event-driven fast-forwarding. A
    /// simulator may skip idle cycles as long as it steps this endpoint at
    /// or before the returned cycle.
    pub fn next_event_cycle(&self) -> Option<u64> {
        self.deadline
    }

    /// All data delivered and acknowledged, nothing staged, nothing owed.
    /// (A partially received segment does not block quiescence: its sender
    /// still holds the unacked payload and will retransmit or give up.)
    pub fn is_quiescent(&self) -> bool {
        self.unacked.is_empty()
            && self.out_buf.is_empty()
            && self.pending_ack.is_none()
            && self.delivered.is_empty()
    }

    /// The retry cap was exceeded; the endpoint no longer retransmits.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    pub fn stats(&self) -> &TransportStats {
        &self.stats
    }

    pub fn config(&self) -> &TransportConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TransportConfig {
        TransportConfig {
            window: 4,
            ack_timeout: 16,
            max_backoff_exp: 3,
            max_retries: 8,
        }
    }

    /// Shuttle frames between two endpoints over perfect zero-latency
    /// wires, with an optional per-frame mutator for fault injection.
    fn shuttle(
        a: &mut Endpoint,
        b: &mut Endpoint,
        cycles: u64,
        mut fault: impl FnMut(u64, u32) -> Option<u32>,
    ) {
        let mut idx = 0u64;
        for now in 0..cycles {
            a.poll(now);
            b.poll(now);
            if let Some(f) = a.pull_frame(now) {
                if let Some(f) = fault(idx, f) {
                    b.on_frame(now, f);
                }
                idx += 1;
            }
            if let Some(f) = b.pull_frame(now) {
                // faults only on the a→b direction in these tests
                a.on_frame(now, f);
            }
        }
    }

    #[test]
    fn lossless_roundtrip_in_order() {
        let mut a = Endpoint::new(cfg());
        let mut b = Endpoint::new(cfg());
        for v in 0..20u32 {
            a.send(v * 3);
        }
        shuttle(&mut a, &mut b, 400, |_, f| Some(f));
        let got: Vec<u32> = std::iter::from_fn(|| b.deliver()).collect();
        assert_eq!(got, (0..20u32).map(|v| v * 3).collect::<Vec<_>>());
        assert!(a.is_quiescent(), "all segments acked: {:?}", a.stats());
        assert!(b.is_quiescent());
        assert_eq!(a.stats().retransmits, 0, "no loss, no retransmit");
        assert_eq!(b.stats().delivered, 20);
    }

    #[test]
    fn dropped_frames_are_retransmitted() {
        let mut a = Endpoint::new(cfg());
        let mut b = Endpoint::new(cfg());
        for v in 0..10u32 {
            a.send(0x1000 + v);
        }
        // Drop every 7th frame on the forward wire.
        shuttle(&mut a, &mut b, 4_000, |i, f| (i % 7 != 3).then_some(f));
        let got: Vec<u32> = std::iter::from_fn(|| b.deliver()).collect();
        assert_eq!(got, (0..10u32).map(|v| 0x1000 + v).collect::<Vec<_>>());
        assert!(a.stats().retransmits > 0, "loss must force resends");
        assert!(a.is_quiescent());
    }

    #[test]
    fn corruption_is_detected_and_recovered() {
        let mut a = Endpoint::new(cfg());
        let mut b = Endpoint::new(cfg());
        for v in 0..10u32 {
            a.send(0xAB00 + v);
        }
        // Flip one bit in every 5th frame.
        shuttle(&mut a, &mut b, 4_000, |i, f| {
            Some(if i % 5 == 2 { f ^ 0x0001_0000 } else { f })
        });
        let got: Vec<u32> = std::iter::from_fn(|| b.deliver()).collect();
        assert_eq!(got, (0..10u32).map(|v| 0xAB00 + v).collect::<Vec<_>>());
        assert!(b.stats().rejected > 0, "corrupt segments must be rejected");
        assert!(a.is_quiescent());
    }

    #[test]
    fn duplicates_are_suppressed() {
        let mut a = Endpoint::new(cfg());
        let mut b = Endpoint::new(cfg());
        for v in 0..8u32 {
            a.send(v);
        }
        // Stash a copy of every 6th forward frame and replay the copies
        // after the run: stale duplicates must be rejected, not redelivered.
        let mut extra: Vec<u32> = Vec::new();
        shuttle(&mut a, &mut b, 4_000, |i, f| {
            if i % 6 == 1 {
                extra.push(f);
            }
            Some(f)
        });
        for f in extra {
            b.on_frame(4_000, f);
        }
        let got: Vec<u32> = std::iter::from_fn(|| b.deliver()).collect();
        assert_eq!(got, (0..8u32).collect::<Vec<_>>());
    }

    #[test]
    fn retry_cap_kills_the_endpoint() {
        let mut a = Endpoint::new(cfg());
        a.send(42);
        // Black-hole wire: pull frames, never deliver, never ack.
        for now in 0..1_000_000u64 {
            a.poll(now);
            let _ = a.pull_frame(now);
            if a.is_dead() {
                break;
            }
        }
        assert!(a.is_dead());
        assert!(a.stats().gave_up);
        assert!(!a.is_quiescent(), "undelivered data is not quiescence");
    }

    #[test]
    fn backoff_saturates_past_32_doublings() {
        // With the backoff cap lifted past 64 the shift `ack_timeout <<
        // backoff_exp` used to overflow (and in release builds wrap to a
        // deadline in the past, retransmitting every cycle). Drive the
        // retry loop far beyond 32 doublings on a black-hole wire and
        // check the deadline stays monotone and saturates instead.
        let cfg = TransportConfig {
            window: 1,
            ack_timeout: 16,
            max_backoff_exp: 90,
            max_retries: u32::MAX,
        };
        let mut a = Endpoint::new(cfg);
        a.send(7);
        let _ = (a.pull_frame(0), a.pull_frame(0), a.pull_frame(0));
        let mut doublings = 0u32;
        let mut last_deadline = a.next_event_cycle().expect("armed");
        while doublings < 70 {
            let d = a.next_event_cycle().expect("still armed");
            assert!(
                d >= last_deadline,
                "deadline went backwards: {last_deadline} -> {d}"
            );
            last_deadline = d;
            a.poll(d); // expire the timer: rewind window, double backoff
            while a.pull_frame(d).is_some() {}
            doublings += 1;
        }
        // 16 << 59 fits in u64; 16 << 60 does not. Past saturation the
        // deadline pins at u64::MAX and the endpoint stays alive.
        assert_eq!(a.next_event_cycle(), Some(u64::MAX));
        assert!(!a.is_dead());
        assert!(a.stats().retransmits >= 32);
        // A late ack still revives the exchange after saturation.
        let header = ACK_MAGIC << 24;
        a.on_frame(last_deadline, header);
        a.on_frame(last_deadline, crc32_frames(&[header]));
        assert!(
            a.is_quiescent(),
            "saturated endpoint must still accept acks"
        );
    }

    #[test]
    fn timer_exposes_next_event_for_fast_forward() {
        let mut a = Endpoint::new(cfg());
        assert_eq!(a.next_event_cycle(), None);
        a.send(1);
        let _ = a.pull_frame(100); // header
        assert_eq!(a.next_event_cycle(), Some(100 + 16));
        // Fast-forward straight to the deadline, then poll: the window
        // rewinds and the segment is retransmitted.
        a.poll(116);
        let _ = (a.pull_frame(116), a.pull_frame(116), a.pull_frame(116));
        // drain the original segment's remaining frames plus the resend
        let mut frames = 0;
        while a.pull_frame(117).is_some() {
            frames += 1;
        }
        let _ = frames;
        assert!(a.stats().retransmits >= 1);
    }

    #[test]
    fn ack_wraps_cleanly_past_u16() {
        let tight = TransportConfig { window: 2, ..cfg() };
        let mut a = Endpoint::new(tight);
        let mut b = Endpoint::new(tight);
        // Push enough traffic through to wrap the 16-bit wire sequence.
        let total = 70_000u32;
        let mut sent = 0u32;
        let mut got = 0u32;
        let mut now = 0u64;
        while got < total {
            while sent < total && sent < got + 64 {
                a.send(sent);
                sent += 1;
            }
            a.poll(now);
            b.poll(now);
            if let Some(f) = a.pull_frame(now) {
                b.on_frame(now, f);
            }
            if let Some(f) = b.pull_frame(now) {
                a.on_frame(now, f);
            }
            while let Some(p) = b.deliver() {
                assert_eq!(p, got);
                got += 1;
            }
            now += 1;
            assert!(now < 3_000_000, "wrap test wedged at {got}/{total}");
        }
        // Let the final acks travel back before checking quiescence.
        for _ in 0..16 {
            a.poll(now);
            b.poll(now);
            if let Some(f) = a.pull_frame(now) {
                b.on_frame(now, f);
            }
            if let Some(f) = b.pull_frame(now) {
                a.on_frame(now, f);
            }
            now += 1;
        }
        assert!(a.is_quiescent());
    }
}
