//! Register-file data words.
//!
//! "The main register file holds data, and its word size is configurable in
//! multiples of 32 bits." [`Word`] models such a value: 1–4 limbs of 32
//! bits (covering the 32/64/96/128-bit configurations the thesis's generics
//! allow without heap allocation). All arithmetic is performed exactly as
//! the hardware adder of the arithmetic unit would: limb-serial with a
//! rippled carry, producing carry-out and signed-overflow indications.

use std::fmt;

/// Maximum number of 32-bit limbs a register word may have.
pub const MAX_LIMBS: usize = 4;

/// A fixed-width data word of 1..=4 × 32 bits.
///
/// Limbs are little-endian (`limbs[0]` is bits 31..0). Two words may only
/// be combined when their widths agree — mixing widths is a wiring error
/// in hardware, and the operations assert accordingly.
///
/// ```
/// use fu_isa::Word;
///
/// // A 64-bit register value on a 64-bit framework configuration.
/// let a = Word::from_u64(0xffff_ffff_ffff_fffe, 64);
/// let b = Word::from_u64(3, 64);
/// let (sum, carry_out, _overflow) = a.adc(&b, false);
/// assert_eq!(sum.as_u64(), 1);
/// assert!(carry_out);
///
/// // Subtraction is addition of the complement with carry-in — the
/// // identity the SUB variety bit-pattern encodes.
/// let (diff, no_borrow, _) = a.adc(&b.not(), true);
/// assert_eq!(diff.as_u64(), 0xffff_ffff_ffff_fffb);
/// assert!(no_borrow);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Word {
    limbs: [u32; MAX_LIMBS],
    n_limbs: u8,
}

impl Word {
    /// A zero word of `bits` width.
    ///
    /// # Panics
    /// Panics unless `bits` is a multiple of 32 in `32..=128` — the same
    /// constraint the VHDL generic imposes.
    pub fn zero(bits: u32) -> Word {
        assert!(
            bits.is_multiple_of(32) && (32..=128).contains(&bits),
            "word size must be a multiple of 32 in 32..=128, got {bits}"
        );
        Word {
            limbs: [0; MAX_LIMBS],
            n_limbs: (bits / 32) as u8,
        }
    }

    /// A word of `bits` width holding the low bits of `v` (truncating).
    pub fn from_u64(v: u64, bits: u32) -> Word {
        let mut w = Word::zero(bits);
        w.limbs[0] = v as u32;
        if w.n_limbs > 1 {
            w.limbs[1] = (v >> 32) as u32;
        }
        w
    }

    /// A word of `bits` width holding the low bits of `v` (truncating).
    pub fn from_u128(v: u128, bits: u32) -> Word {
        let mut w = Word::zero(bits);
        for i in 0..w.n_limbs as usize {
            w.limbs[i] = (v >> (32 * i)) as u32;
        }
        w
    }

    /// A word built from explicit little-endian limbs.
    pub fn from_limbs(limbs: &[u32]) -> Word {
        assert!(
            (1..=MAX_LIMBS).contains(&limbs.len()),
            "1..=4 limbs required"
        );
        let mut w = Word::zero(32 * limbs.len() as u32);
        w.limbs[..limbs.len()].copy_from_slice(limbs);
        w
    }

    /// Width in bits.
    pub fn bits(&self) -> u32 {
        self.n_limbs as u32 * 32
    }

    /// Number of 32-bit limbs.
    pub fn n_limbs(&self) -> usize {
        self.n_limbs as usize
    }

    /// The little-endian limbs.
    pub fn limbs(&self) -> &[u32] {
        &self.limbs[..self.n_limbs as usize]
    }

    /// Value as `u64` (truncates words wider than 64 bits).
    pub fn as_u64(&self) -> u64 {
        let lo = self.limbs[0] as u64;
        if self.n_limbs > 1 {
            lo | ((self.limbs[1] as u64) << 32)
        } else {
            lo
        }
    }

    /// Value as `u128` (exact for every supported width).
    pub fn as_u128(&self) -> u128 {
        let mut v = 0u128;
        for i in (0..self.n_limbs as usize).rev() {
            v = (v << 32) | self.limbs[i] as u128;
        }
        v
    }

    /// True when every bit is zero (drives the Z flag).
    pub fn is_zero(&self) -> bool {
        self.limbs().iter().all(|&l| l == 0)
    }

    /// The most significant bit (drives the N flag).
    pub fn msb(&self) -> bool {
        self.limbs[self.n_limbs as usize - 1] & 0x8000_0000 != 0
    }

    /// The word's value as one `u128`, read branch-free from all four
    /// limbs — valid for every width because the construction invariant
    /// keeps limbs beyond `n_limbs` zero.
    #[inline]
    fn as_u128_full(&self) -> u128 {
        (self.limbs[0] as u128)
            | ((self.limbs[1] as u128) << 32)
            | ((self.limbs[2] as u128) << 64)
            | ((self.limbs[3] as u128) << 96)
    }

    /// Full-adder over the word: `self + other + carry_in`.
    ///
    /// Returns `(sum, carry_out, signed_overflow)` exactly as the
    /// arithmetic unit's adder produces them. This single primitive,
    /// combined with the variety bits (zeroing / complementing inputs,
    /// carry selection), yields the whole Table 3.1 instruction family.
    ///
    /// The hot path of every arithmetic workload: one `u128` carry chain
    /// instead of a limb-serial ripple. [`Word::adc_ripple`] keeps the
    /// hardware-shaped loop as the test oracle.
    pub fn adc(&self, other: &Word, carry_in: bool) -> (Word, bool, bool) {
        assert_eq!(self.n_limbs, other.n_limbs, "word width mismatch");
        let bits = self.bits();
        let (partial, c1) = self.as_u128_full().overflowing_add(other.as_u128_full());
        let (wide, c2) = partial.overflowing_add(carry_in as u128);
        let (sum, carry) = if bits == 128 {
            (wide, c1 | c2)
        } else {
            (wide & ((1u128 << bits) - 1), wide >> bits != 0)
        };
        // Masked high bits keep the zero-limb invariant for narrow widths.
        let out = Word {
            limbs: [
                sum as u32,
                (sum >> 32) as u32,
                (sum >> 64) as u32,
                (sum >> 96) as u32,
            ],
            n_limbs: self.n_limbs,
        };
        let overflow = {
            // Signed overflow: operands share a sign that differs from the
            // result's sign.
            let a = self.msb();
            let b = other.msb();
            let r = out.msb();
            a == b && a != r
        };
        (out, carry, overflow)
    }

    /// The original limb-serial adder, shaped like the VHDL ripple chain.
    /// Kept as the differential oracle for [`Word::adc`].
    #[cfg(test)]
    fn adc_ripple(&self, other: &Word, carry_in: bool) -> (Word, bool, bool) {
        assert_eq!(self.n_limbs, other.n_limbs, "word width mismatch");
        let mut out = Word::zero(self.bits());
        let mut carry = carry_in as u64;
        for i in 0..self.n_limbs as usize {
            let s = self.limbs[i] as u64 + other.limbs[i] as u64 + carry;
            out.limbs[i] = s as u32;
            carry = s >> 32;
        }
        let overflow = {
            let a = self.msb();
            let b = other.msb();
            let r = out.msb();
            a == b && a != r
        };
        (out, carry != 0, overflow)
    }

    /// Bitwise NOT.
    pub fn not(&self) -> Word {
        let mut out = *self;
        for i in 0..self.n_limbs as usize {
            out.limbs[i] = !self.limbs[i];
        }
        out
    }

    /// Limb-wise binary operation (AND/OR/XOR and friends).
    pub fn zip(&self, other: &Word, f: impl Fn(u32, u32) -> u32) -> Word {
        assert_eq!(self.n_limbs, other.n_limbs, "word width mismatch");
        let mut out = Word::zero(self.bits());
        for i in 0..self.n_limbs as usize {
            out.limbs[i] = f(self.limbs[i], other.limbs[i]);
        }
        out
    }

    /// Logical shift left by `sh` bits (`sh >= width` yields zero).
    pub fn shl(&self, sh: u32) -> Word {
        let mut out = Word::zero(self.bits());
        if sh >= self.bits() {
            return out;
        }
        let v = self.as_u128() << sh;
        for i in 0..self.n_limbs as usize {
            out.limbs[i] = (v >> (32 * i)) as u32;
        }
        out
    }

    /// Logical shift right by `sh` bits.
    pub fn shr(&self, sh: u32) -> Word {
        if sh >= self.bits() {
            return Word::zero(self.bits());
        }
        Word::from_u128(self.as_u128() >> sh, self.bits())
    }

    /// Arithmetic shift right by `sh` bits (sign-extending).
    pub fn sar(&self, sh: u32) -> Word {
        let bits = self.bits();
        if sh == 0 {
            return *self;
        }
        let fill = if self.msb() { u128::MAX } else { 0 };
        if sh >= bits {
            return Word::from_u128(fill, bits);
        }
        let mask = if bits == 128 {
            u128::MAX
        } else {
            (1u128 << bits) - 1
        };
        let shifted = (self.as_u128() >> sh) | (fill << (bits - sh));
        Word::from_u128(shifted & mask, bits)
    }

    /// Rotate left by `sh` bits.
    pub fn rol(&self, sh: u32) -> Word {
        let bits = self.bits();
        let sh = sh % bits;
        if sh == 0 {
            return *self;
        }
        let mask = if bits == 128 {
            u128::MAX
        } else {
            (1u128 << bits) - 1
        };
        let v = self.as_u128();
        Word::from_u128(((v << sh) | (v >> (bits - sh))) & mask, bits)
    }

    /// Number of set bits (the popcount functional unit).
    pub fn popcount(&self) -> u32 {
        self.limbs().iter().map(|l| l.count_ones()).sum()
    }

    /// Unsigned comparison.
    pub fn cmp_unsigned(&self, other: &Word) -> std::cmp::Ordering {
        assert_eq!(self.n_limbs, other.n_limbs, "word width mismatch");
        for i in (0..self.n_limbs as usize).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    }

    /// Reinterpret at a different width: truncates or zero-extends.
    /// This is the transcoding the χ-sort functional-unit adapter performs
    /// ("the adapter uses 32-bit data records and transcodes as needed").
    pub fn resize(&self, bits: u32) -> Word {
        let mut out = Word::zero(bits);
        let n = out.n_limbs.min(self.n_limbs) as usize;
        out.limbs[..n].copy_from_slice(&self.limbs[..n]);
        out
    }
}

impl fmt::Debug for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Word{}#", self.bits())?;
        for i in (0..self.n_limbs as usize).rev() {
            write!(f, "{:08x}", self.limbs[i])?;
            if i > 0 {
                write!(f, "_")?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.as_u128())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_views() {
        let w = Word::from_u64(0xdead_beef_cafe_f00d, 64);
        assert_eq!(w.bits(), 64);
        assert_eq!(w.as_u64(), 0xdead_beef_cafe_f00d);
        assert_eq!(w.limbs(), &[0xcafe_f00d, 0xdead_beef]);
        assert_eq!(format!("{w:?}"), "Word64#deadbeef_cafef00d");
        assert_eq!(w.to_string(), "0xdeadbeefcafef00d");
    }

    #[test]
    #[should_panic(expected = "multiple of 32")]
    fn odd_width_rejected() {
        Word::zero(40);
    }

    #[test]
    #[should_panic(expected = "multiple of 32")]
    fn oversize_width_rejected() {
        Word::zero(160);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_rejected() {
        let a = Word::zero(32);
        let b = Word::zero(64);
        let _ = a.adc(&b, false);
    }

    #[test]
    fn adc_32_matches_native() {
        let a = Word::from_u64(0xffff_ffff, 32);
        let b = Word::from_u64(1, 32);
        let (s, c, v) = a.adc(&b, false);
        assert_eq!(s.as_u64(), 0);
        assert!(c, "carry out of the top limb");
        assert!(!v, "0xffffffff + 1 does not overflow signed (-1 + 1 = 0)");
    }

    #[test]
    fn adc_signed_overflow() {
        let a = Word::from_u64(0x7fff_ffff, 32);
        let b = Word::from_u64(1, 32);
        let (s, c, v) = a.adc(&b, false);
        assert_eq!(s.as_u64(), 0x8000_0000);
        assert!(!c);
        assert!(v, "INT_MAX + 1 overflows");
    }

    #[test]
    fn adc_ripples_across_limbs() {
        let a = Word::from_u128(0x0000_0001_ffff_ffff_ffff_ffff, 96);
        let b = Word::from_u128(1, 96);
        let (s, c, _) = a.adc(&b, false);
        assert_eq!(s.as_u128(), 0x0000_0002_0000_0000_0000_0000);
        assert!(!c);
    }

    #[test]
    fn subtraction_via_complement_identity() {
        // a - b == a + !b + 1, the identity the SUB variety uses.
        let a = Word::from_u64(1000, 32);
        let b = Word::from_u64(337, 32);
        let (d, c, _) = a.adc(&b.not(), true);
        assert_eq!(d.as_u64(), 663);
        assert!(c, "no borrow => carry out set");
        let (d2, c2, _) = b.adc(&a.not(), true);
        assert_eq!(d2.as_u64(), (337u64.wrapping_sub(1000)) as u32 as u64);
        assert!(!c2, "borrow => carry out clear");
    }

    #[test]
    fn flags_sources() {
        assert!(Word::zero(64).is_zero());
        assert!(!Word::from_u64(1, 64).is_zero());
        assert!(Word::from_u64(0x8000_0000, 32).msb());
        assert!(
            !Word::from_u64(0x8000_0000, 64).msb(),
            "msb is of the full width"
        );
    }

    #[test]
    fn shifts_and_rotates() {
        let w = Word::from_u64(0x8000_0001, 32);
        assert_eq!(w.shl(1).as_u64(), 2);
        assert_eq!(w.shr(1).as_u64(), 0x4000_0000);
        assert_eq!(w.sar(1).as_u64(), 0xc000_0000);
        assert_eq!(w.rol(1).as_u64(), 3);
        assert_eq!(w.rol(32).as_u64(), w.as_u64(), "full rotate is identity");
        assert_eq!(w.shl(32).as_u64(), 0);
        assert_eq!(w.shl(99).as_u64(), 0);
        assert_eq!(w.sar(40).as_u64(), 0xffff_ffff);
    }

    #[test]
    fn sar_128_bit_edges() {
        let w = Word::from_u128(1u128 << 127, 128);
        assert_eq!(w.sar(127).as_u128(), u128::MAX);
        let p = Word::from_u128(1u128 << 100, 128);
        assert_eq!(p.sar(100).as_u128(), 1);
    }

    #[test]
    fn popcount_counts_all_limbs() {
        let w = Word::from_limbs(&[0xff, 0xff, 0, 0x1]);
        assert_eq!(w.popcount(), 17);
    }

    #[test]
    fn resize_truncates_and_extends() {
        let w = Word::from_u64(0xdead_beef_1234_5678, 64);
        assert_eq!(w.resize(32).as_u64(), 0x1234_5678);
        assert_eq!(w.resize(128).as_u128(), 0xdead_beef_1234_5678);
    }

    #[test]
    fn unsigned_comparison() {
        use std::cmp::Ordering::*;
        let a = Word::from_u128(0x1_0000_0000, 96);
        let b = Word::from_u128(0xffff_ffff, 96);
        assert_eq!(a.cmp_unsigned(&b), Greater);
        assert_eq!(b.cmp_unsigned(&a), Less);
        assert_eq!(a.cmp_unsigned(&a), Equal);
    }

    proptest! {
        #[test]
        fn prop_adc_matches_ripple_oracle_at_every_width(
            a: u128,
            b: u128,
            cin: bool,
            w in 1u32..=4,
        ) {
            // The u128 fast path must be indistinguishable from the
            // hardware-shaped ripple loop on (sum, carry, overflow) for
            // all four register-file widths.
            let bits = w * 32;
            let wa = Word::from_u128(a, bits);
            let wb = Word::from_u128(b, bits);
            prop_assert_eq!(wa.adc(&wb, cin), wa.adc_ripple(&wb, cin));
        }

        #[test]
        fn prop_adc_matches_u64_arithmetic(a: u64, b: u64, cin: bool) {
            let wa = Word::from_u64(a, 64);
            let wb = Word::from_u64(b, 64);
            let (s, c, _) = wa.adc(&wb, cin);
            let (expect, c1) = a.overflowing_add(b);
            let (expect, c2) = expect.overflowing_add(cin as u64);
            prop_assert_eq!(s.as_u64(), expect);
            prop_assert_eq!(c, c1 | c2);
        }

        #[test]
        fn prop_adc_matches_u128_at_128_bits(a: u128, b: u128) {
            let wa = Word::from_u128(a, 128);
            let wb = Word::from_u128(b, 128);
            let (s, c, _) = wa.adc(&wb, false);
            let (expect, carry) = a.overflowing_add(b);
            prop_assert_eq!(s.as_u128(), expect);
            prop_assert_eq!(c, carry);
        }

        #[test]
        fn prop_signed_overflow_matches_i64(a: i64, b: i64) {
            let wa = Word::from_u64(a as u64, 64);
            let wb = Word::from_u64(b as u64, 64);
            let (_, _, v) = wa.adc(&wb, false);
            prop_assert_eq!(v, a.checked_add(b).is_none());
        }

        #[test]
        fn prop_sub_identity(a: u64, b: u64) {
            // a + !b + 1 == a - b (mod 2^64), carry == no-borrow.
            let wa = Word::from_u64(a, 64);
            let wb = Word::from_u64(b, 64);
            let (d, c, _) = wa.adc(&wb.not(), true);
            prop_assert_eq!(d.as_u64(), a.wrapping_sub(b));
            prop_assert_eq!(c, a >= b);
        }

        #[test]
        fn prop_cmp_matches_u128(a: u128, b: u128) {
            let wa = Word::from_u128(a, 128);
            let wb = Word::from_u128(b, 128);
            prop_assert_eq!(wa.cmp_unsigned(&wb), a.cmp(&b));
        }

        #[test]
        fn prop_shift_roundtrip(v: u32, sh in 0u32..32) {
            let w = Word::from_u64(v as u64, 32);
            prop_assert_eq!(w.shl(sh).shr(sh).as_u64(), ((v << sh) >> sh) as u64);
        }

        #[test]
        fn prop_rol_preserves_popcount(v: u64, sh in 0u32..64) {
            let w = Word::from_u64(v, 64);
            prop_assert_eq!(w.rol(sh).popcount(), w.popcount());
        }

        #[test]
        fn prop_not_is_involution(v: u128) {
            let w = Word::from_u128(v, 128);
            prop_assert_eq!(w.not().not(), w);
        }

        #[test]
        fn prop_zip_xor_self_is_zero(v: u128) {
            let w = Word::from_u128(v, 96);
            prop_assert!(w.zip(&w, |a, b| a ^ b).is_zero());
        }
    }
}
