//! The 64-bit RTM instruction word.
//!
//! Reconstructed from Figure 7 / Table 3.1 of the paper ("the instructions
//! follow the formats allowed by the RTM controller, and are similar to
//! arithmetic instructions on a typical RISC processor. Each instruction
//! specifies the operation, the operand registers, and the result
//! registers"), with this field layout:
//!
//! ```text
//!  63  62........56  55......48  47......40  39......32  31......24  23......16  15.......8  7........0
//! USER  function      variety     dest flag   dest reg    aux reg     source      source      source
//! flag  code (7b)     code (8b)   register    #1          (see below) reg #1      reg #2      reg #3
//! ```
//!
//! * `USER = 1`: the instruction is dispatched to the functional unit
//!   selected by the function code (the thesis assigns the arithmetic unit
//!   function code 16). The variety code is forwarded verbatim to the unit
//!   (`variety_code[7..0]` in the minimal-unit schematic).
//! * `USER = 0`: a management primitive executed directly in the RTM's
//!   main pipeline (see [`crate::mgmt`]); bits 31..0 then double as a
//!   32-bit immediate for `LOADI`.
//! * The *aux register* field is the **source flag register** for units
//!   that consume flags (ADC/SBB/CMPB read their carry-in from it) and the
//!   **second destination register** for units producing two results
//!   (e.g. the widening multiplier) — the RTM supports "up to three
//!   operands … and up to two results".

use std::fmt;

/// A register number in the main or flag register file (the framework's
/// generics allow at most 256 of each, hence 8-bit fields).
pub type RegNum = u8;

/// A 7-bit function code selecting a functional unit (user instructions)
/// or a management opcode (management instructions).
pub type FuncCode = u8;

/// The raw 64-bit instruction word as transmitted to the coprocessor.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct InstrWord(pub u64);

/// Field view of a *user* instruction (USER flag set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UserInstr {
    /// Functional-unit selector.
    pub func: FuncCode,
    /// Operation modifier forwarded to the unit.
    pub variety: u8,
    /// Flag register receiving the unit's output flags.
    pub dst_flag: RegNum,
    /// Main register receiving the unit's (first) data result.
    pub dst_reg: RegNum,
    /// Source flag register *or* second destination register (unit
    /// dependent; see module docs).
    pub aux_reg: RegNum,
    /// First data operand.
    pub src1: RegNum,
    /// Second data operand.
    pub src2: RegNum,
    /// Third data operand.
    pub src3: RegNum,
}

impl InstrWord {
    const USER_BIT: u64 = 1 << 63;

    /// Pack a user instruction.
    ///
    /// # Panics
    /// Panics when the function code exceeds 7 bits.
    pub fn user(u: UserInstr) -> InstrWord {
        assert!(u.func < 0x80, "function code is a 7-bit field");
        InstrWord(
            Self::USER_BIT
                | (u.func as u64) << 56
                | (u.variety as u64) << 48
                | (u.dst_flag as u64) << 40
                | (u.dst_reg as u64) << 32
                | (u.aux_reg as u64) << 24
                | (u.src1 as u64) << 16
                | (u.src2 as u64) << 8
                | u.src3 as u64,
        )
    }

    /// Pack a management instruction: opcode in the function-code field,
    /// register operands as for user instructions, `imm` in bits 31..0
    /// (overlapping the source fields — a management op uses one or the
    /// other, exactly like the VHDL decoder's overlapping slices).
    pub fn mgmt(op: FuncCode, dst_flag: RegNum, dst_reg: RegNum, imm: u32) -> InstrWord {
        assert!(op < 0x80, "opcode is a 7-bit field");
        InstrWord((op as u64) << 56 | (dst_flag as u64) << 40 | (dst_reg as u64) << 32 | imm as u64)
    }

    /// True for user (functional-unit) instructions.
    pub fn is_user(&self) -> bool {
        self.0 & Self::USER_BIT != 0
    }

    /// The 7-bit function code / management opcode.
    pub fn func(&self) -> FuncCode {
        ((self.0 >> 56) & 0x7f) as u8
    }

    /// The 8-bit variety code.
    pub fn variety(&self) -> u8 {
        (self.0 >> 48) as u8
    }

    /// Destination flag register field.
    pub fn dst_flag(&self) -> RegNum {
        (self.0 >> 40) as u8
    }

    /// Destination register #1 field.
    pub fn dst_reg(&self) -> RegNum {
        (self.0 >> 32) as u8
    }

    /// Aux register field (source flag register / destination #2).
    pub fn aux_reg(&self) -> RegNum {
        (self.0 >> 24) as u8
    }

    /// Source register #1 field.
    pub fn src1(&self) -> RegNum {
        (self.0 >> 16) as u8
    }

    /// Source register #2 field.
    pub fn src2(&self) -> RegNum {
        (self.0 >> 8) as u8
    }

    /// Source register #3 field.
    pub fn src3(&self) -> RegNum {
        self.0 as u8
    }

    /// The 32-bit immediate of a management instruction.
    pub fn imm(&self) -> u32 {
        self.0 as u32
    }

    /// Unpack the user-instruction field view.
    ///
    /// # Panics
    /// Panics on a management instruction; callers dispatch on
    /// [`InstrWord::is_user`] first, as the decoder stage does.
    pub fn as_user(&self) -> UserInstr {
        assert!(self.is_user(), "as_user on a management instruction");
        UserInstr {
            func: self.func(),
            variety: self.variety(),
            dst_flag: self.dst_flag(),
            dst_reg: self.dst_reg(),
            aux_reg: self.aux_reg(),
            src1: self.src1(),
            src2: self.src2(),
            src3: self.src3(),
        }
    }
}

// `Debug` shows the raw word plus the decoded field view, which makes
// pipeline traces self-describing.
impl fmt::Debug for InstrWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_user() {
            write!(
                f,
                "Instr[{:#018x} user fu={} var={:#04x} df={} d={} aux={} s=({},{},{})]",
                self.0,
                self.func(),
                self.variety(),
                self.dst_flag(),
                self.dst_reg(),
                self.aux_reg(),
                self.src1(),
                self.src2(),
                self.src3()
            )
        } else {
            write!(
                f,
                "Instr[{:#018x} mgmt op={} df={} d={} imm={:#x}]",
                self.0,
                self.func(),
                self.dst_flag(),
                self.dst_reg(),
                self.imm()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> UserInstr {
        UserInstr {
            func: 16,
            variety: 0b0010_1000,
            dst_flag: 3,
            dst_reg: 7,
            aux_reg: 2,
            src1: 11,
            src2: 12,
            src3: 0,
        }
    }

    #[test]
    fn user_roundtrip() {
        let u = sample();
        let w = InstrWord::user(u);
        assert!(w.is_user());
        assert_eq!(w.as_user(), u);
    }

    #[test]
    fn field_positions_match_layout() {
        let w = InstrWord::user(sample());
        // USER bit 63, func 16 at bits 62..56, variety at 55..48, …
        assert_eq!(w.0 >> 63, 1);
        assert_eq!((w.0 >> 56) & 0x7f, 16);
        assert_eq!((w.0 >> 48) & 0xff, 0b0010_1000);
        assert_eq!((w.0 >> 40) & 0xff, 3);
        assert_eq!((w.0 >> 32) & 0xff, 7);
        assert_eq!((w.0 >> 24) & 0xff, 2);
        assert_eq!((w.0 >> 16) & 0xff, 11);
        assert_eq!((w.0 >> 8) & 0xff, 12);
        assert_eq!(w.0 & 0xff, 0);
    }

    #[test]
    fn mgmt_roundtrip() {
        let w = InstrWord::mgmt(2, 0, 9, 0xdead_beef);
        assert!(!w.is_user());
        assert_eq!(w.func(), 2);
        assert_eq!(w.dst_reg(), 9);
        assert_eq!(w.imm(), 0xdead_beef);
    }

    #[test]
    fn mgmt_imm_overlaps_source_fields() {
        let w = InstrWord::mgmt(1, 0, 0, 0x00_0b_0c_00);
        assert_eq!(w.src1(), 11, "imm bits 23..16 read back as src1");
        assert_eq!(w.src2(), 12);
    }

    #[test]
    #[should_panic(expected = "7-bit")]
    fn func_code_range_checked() {
        InstrWord::user(UserInstr {
            func: 0x80,
            ..sample()
        });
    }

    #[test]
    #[should_panic(expected = "as_user on a management")]
    fn as_user_rejects_mgmt() {
        InstrWord::mgmt(0, 0, 0, 0).as_user();
    }

    #[test]
    fn debug_format_is_self_describing() {
        let s = format!("{:?}", InstrWord::user(sample()));
        assert!(s.contains("user") && s.contains("fu=16"));
        let s = format!("{:?}", InstrWord::mgmt(2, 0, 9, 0x10));
        assert!(s.contains("mgmt") && s.contains("imm=0x10"));
    }

    proptest! {
        #[test]
        fn prop_user_fields_roundtrip(
            func in 0u8..0x80, variety: u8, dst_flag: u8, dst_reg: u8,
            aux_reg: u8, src1: u8, src2: u8, src3: u8,
        ) {
            let u = UserInstr { func, variety, dst_flag, dst_reg, aux_reg, src1, src2, src3 };
            prop_assert_eq!(InstrWord::user(u).as_user(), u);
        }

        #[test]
        fn prop_mgmt_fields_roundtrip(op in 0u8..0x80, df: u8, d: u8, imm: u32) {
            let w = InstrWord::mgmt(op, df, d, imm);
            prop_assert!(!w.is_user());
            prop_assert_eq!(w.func(), op);
            prop_assert_eq!(w.dst_flag(), df);
            prop_assert_eq!(w.dst_reg(), d);
            prop_assert_eq!(w.imm(), imm);
        }

        #[test]
        fn prop_user_and_mgmt_words_are_disjoint(func in 0u8..0x80, imm: u32) {
            let m = InstrWord::mgmt(func, 0, 0, imm);
            prop_assert!(!m.is_user());
        }
    }
}
