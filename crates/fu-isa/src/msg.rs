//! Host ↔ coprocessor messages and their 32-bit wire framing.
//!
//! "To perform an accelerated operation, the host sends one or more packets
//! of data to the controller on the FPGA. The controller then coordinates
//! the execution of the operations and returns the final results to the
//! processor." The RTM's first pipeline stage is a *message buffer* that
//! "receives data from the FPGA input port connected to the host processor
//! and converts it to a form usable by the decoder"; symmetrically a
//! *message encoder* multiplexes "several types of message that can be sent
//! from the RTM to the host, including data records and flag vectors" and a
//! *message serialiser* converts them "to the form required by the
//! communication port".
//!
//! This module defines the message types and one concrete wire protocol
//! over 32-bit frames (a header frame followed by payload frames). The
//! framing layer is exactly what a different transceiver would replace;
//! everything above it is framework-fixed.

use crate::flags::Flags;
use crate::instr::{InstrWord, RegNum};
use crate::word::Word;

/// Sequence tag correlating host requests with device responses. The RTM
/// releases responses in tag order so that "the stream of results returned
/// to the processor will be consistent with the stream of instructions
/// that were issued".
pub type Tag = u16;

/// Messages travelling host → coprocessor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostMsg {
    /// Write a data register.
    WriteReg {
        /// Destination register.
        reg: RegNum,
        /// Value (must match the configured word size).
        value: Word,
    },
    /// Write a flag register.
    WriteFlags {
        /// Destination flag register.
        reg: RegNum,
        /// Flag vector.
        flags: Flags,
    },
    /// Execute an instruction (user or management).
    Instr(InstrWord),
    /// Read a data register; answered by [`DevMsg::Data`] with `tag`.
    ReadReg {
        /// Source register.
        reg: RegNum,
        /// Correlation tag.
        tag: Tag,
    },
    /// Read a flag register; answered by [`DevMsg::Flags`] with `tag`.
    ReadFlags {
        /// Source flag register.
        reg: RegNum,
        /// Correlation tag.
        tag: Tag,
    },
    /// Barrier + acknowledgement: answered by [`DevMsg::SyncAck`] once all
    /// earlier messages have fully completed.
    Sync {
        /// Correlation tag.
        tag: Tag,
    },
}

/// Messages travelling coprocessor → host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DevMsg {
    /// A data record (response to [`HostMsg::ReadReg`]).
    Data {
        /// Correlation tag of the read.
        tag: Tag,
        /// Register contents.
        value: Word,
    },
    /// A flag vector (response to [`HostMsg::ReadFlags`]).
    Flags {
        /// Correlation tag of the read.
        tag: Tag,
        /// Flag register contents.
        flags: Flags,
    },
    /// Barrier acknowledgement.
    SyncAck {
        /// Correlation tag of the sync.
        tag: Tag,
    },
    /// The coprocessor rejected a message (unknown opcode, unknown
    /// functional unit, out-of-range register).
    Error {
        /// Error class.
        code: ErrorCode,
        /// Additional information (e.g. the offending opcode).
        info: u32,
    },
}

/// Error classes reported by [`DevMsg::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Management opcode not recognised by the decoder.
    BadOpcode = 1,
    /// User instruction names a function code with no attached unit.
    NoSuchUnit = 2,
    /// Register number outside the configured file size.
    BadRegister = 3,
    /// Malformed frame stream.
    BadFrame = 4,
    /// A functional unit exceeded its dispatch watchdog budget
    /// (`max_busy_cycles`); its in-flight work was abandoned, its register
    /// locks released, and the unit quarantined.
    FuTimeout = 5,
    /// Instruction named a functional unit that was previously quarantined
    /// by the watchdog; it fails fast instead of wedging the dispatcher.
    FuQuarantined = 6,
    /// A soft error (single-event upset) was detected in device state —
    /// a parity mismatch on a register/flag file read or a redundant
    /// execution (DMR) disagreement. `info` carries the register number or
    /// function code involved. When recovery is enabled the host rolls the
    /// system back to the last checkpoint instead of surfacing this.
    SoftError = 7,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::BadOpcode,
            2 => ErrorCode::NoSuchUnit,
            3 => ErrorCode::BadRegister,
            4 => ErrorCode::BadFrame,
            5 => ErrorCode::FuTimeout,
            6 => ErrorCode::FuQuarantined,
            7 => ErrorCode::SoftError,
            _ => return None,
        })
    }
}

// Wire type codes (header bits 31..24).
mod wire {
    pub const WRITE_REG: u8 = 0x01;
    pub const WRITE_FLAGS: u8 = 0x02;
    pub const INSTR: u8 = 0x03;
    pub const READ_REG: u8 = 0x04;
    pub const READ_FLAGS: u8 = 0x05;
    pub const SYNC: u8 = 0x06;
    pub const DATA: u8 = 0x81;
    pub const FLAGS: u8 = 0x82;
    pub const SYNC_ACK: u8 = 0x86;
    pub const ERROR: u8 = 0x8f;
}

fn header(ty: u8, reg: u8, low: u16) -> u32 {
    (ty as u32) << 24 | (reg as u32) << 16 | low as u32
}

/// Allocation-free iterator over a message's wire frames.
///
/// The longest message on either direction of the wire is one header frame
/// plus [`crate::word::MAX_LIMBS`] payload limbs, so the frames fit in a
/// small inline buffer; serialising a message in a per-cycle hot loop
/// (link injection, the RTM serialiser) costs no heap traffic.
#[derive(Debug, Clone)]
pub struct Frames {
    buf: [u32; Frames::MAX],
    len: u8,
    pos: u8,
}

impl Frames {
    /// Upper bound on frames per message (header + maximum payload limbs).
    pub const MAX: usize = 1 + crate::word::MAX_LIMBS;

    fn new(head: u32) -> Frames {
        let mut f = Frames {
            buf: [0; Frames::MAX],
            len: 0,
            pos: 0,
        };
        f.push(head);
        f
    }

    fn push(&mut self, frame: u32) {
        self.buf[self.len as usize] = frame;
        self.len += 1;
    }

    fn extend(&mut self, frames: &[u32]) {
        for &f in frames {
            self.push(f);
        }
    }
}

impl Iterator for Frames {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.pos < self.len {
            let f = self.buf[self.pos as usize];
            self.pos += 1;
            Some(f)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.len - self.pos) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Frames {}

impl HostMsg {
    /// Serialise to 32-bit frames. `word_bits` is the coprocessor's
    /// configured word size ([`HostMsg::WriteReg`] payload length depends
    /// on it).
    ///
    /// # Panics
    /// Panics when a `WriteReg` value's width disagrees with `word_bits` —
    /// the driver must transcode before transmission.
    pub fn to_frames(&self, word_bits: u32) -> Vec<u32> {
        self.frames(word_bits).collect()
    }

    /// Serialise to 32-bit frames without allocating; see
    /// [`HostMsg::to_frames`] for semantics and panics.
    pub fn frames(&self, word_bits: u32) -> Frames {
        match self {
            HostMsg::WriteReg { reg, value } => {
                assert_eq!(value.bits(), word_bits, "WriteReg width mismatch");
                let mut f = Frames::new(header(wire::WRITE_REG, *reg, 0));
                f.extend(value.limbs());
                f
            }
            HostMsg::WriteFlags { reg, flags } => {
                Frames::new(header(wire::WRITE_FLAGS, *reg, flags.0 as u16))
            }
            HostMsg::Instr(w) => {
                let mut f = Frames::new(header(wire::INSTR, 0, 0));
                f.push((w.0 >> 32) as u32);
                f.push(w.0 as u32);
                f
            }
            HostMsg::ReadReg { reg, tag } => Frames::new(header(wire::READ_REG, *reg, *tag)),
            HostMsg::ReadFlags { reg, tag } => Frames::new(header(wire::READ_FLAGS, *reg, *tag)),
            HostMsg::Sync { tag } => Frames::new(header(wire::SYNC, 0, *tag)),
        }
    }

    /// Number of frames this message occupies on the wire.
    pub fn frame_len(&self, word_bits: u32) -> usize {
        match self {
            HostMsg::WriteReg { .. } => 1 + (word_bits / 32) as usize,
            HostMsg::Instr(_) => 3,
            _ => 1,
        }
    }
}

impl DevMsg {
    /// Serialise to 32-bit frames.
    pub fn to_frames(&self, word_bits: u32) -> Vec<u32> {
        self.frames(word_bits).collect()
    }

    /// Serialise to 32-bit frames without allocating; see
    /// [`DevMsg::to_frames`] for semantics and panics.
    pub fn frames(&self, word_bits: u32) -> Frames {
        match self {
            DevMsg::Data { tag, value } => {
                assert_eq!(value.bits(), word_bits, "Data width mismatch");
                let mut f = Frames::new(header(wire::DATA, 0, *tag));
                f.extend(value.limbs());
                f
            }
            DevMsg::Flags { tag, flags } => Frames::new(header(wire::FLAGS, flags.0, *tag)),
            DevMsg::SyncAck { tag } => Frames::new(header(wire::SYNC_ACK, 0, *tag)),
            DevMsg::Error { code, info } => {
                let mut f = Frames::new(header(wire::ERROR, *code as u8, 0));
                f.push(*info);
                f
            }
        }
    }
}

/// Streaming deserialiser for host → coprocessor frames (the stateful part
/// of the RTM's message-buffer stage).
#[derive(Debug, Clone)]
pub struct HostDeframer {
    word_bits: u32,
    pending: Vec<u32>,
    need: usize,
}

/// Framing error: the stream contained an unknown type code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError {
    /// The header frame that could not be interpreted.
    pub header: u32,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown frame header {:#010x}", self.header)
    }
}

impl std::error::Error for FrameError {}

impl HostDeframer {
    /// A deframer for a coprocessor configured with `word_bits`-wide
    /// registers.
    pub fn new(word_bits: u32) -> Self {
        HostDeframer {
            word_bits,
            pending: Vec::new(),
            need: 0,
        }
    }

    /// True while a message is partially received.
    pub fn mid_message(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Feed one frame; returns a complete message when one finishes.
    pub fn push(&mut self, frame: u32) -> Result<Option<HostMsg>, FrameError> {
        if self.pending.is_empty() {
            let ty = (frame >> 24) as u8;
            self.need = match ty {
                wire::WRITE_REG => 1 + (self.word_bits / 32) as usize,
                wire::INSTR => 3,
                wire::WRITE_FLAGS | wire::READ_REG | wire::READ_FLAGS | wire::SYNC => 1,
                _ => return Err(FrameError { header: frame }),
            };
        }
        self.pending.push(frame);
        if self.pending.len() < self.need {
            return Ok(None);
        }
        let frames = std::mem::take(&mut self.pending);
        let h = frames[0];
        let ty = (h >> 24) as u8;
        let reg = (h >> 16) as u8;
        let low = h as u16;
        Ok(Some(match ty {
            wire::WRITE_REG => HostMsg::WriteReg {
                reg,
                value: Word::from_limbs(&frames[1..]),
            },
            wire::WRITE_FLAGS => HostMsg::WriteFlags {
                reg,
                flags: Flags(low as u8),
            },
            wire::INSTR => HostMsg::Instr(InstrWord((frames[1] as u64) << 32 | frames[2] as u64)),
            wire::READ_REG => HostMsg::ReadReg { reg, tag: low },
            wire::READ_FLAGS => HostMsg::ReadFlags { reg, tag: low },
            wire::SYNC => HostMsg::Sync { tag: low },
            _ => unreachable!("type checked at header time"),
        }))
    }
}

/// Streaming deserialiser for coprocessor → host frames (lives in the host
/// driver).
#[derive(Debug, Clone)]
pub struct DevDeframer {
    word_bits: u32,
    pending: Vec<u32>,
    need: usize,
}

impl DevDeframer {
    /// A deframer for a coprocessor configured with `word_bits`-wide
    /// registers.
    pub fn new(word_bits: u32) -> Self {
        DevDeframer {
            word_bits,
            pending: Vec::new(),
            need: 0,
        }
    }

    /// Feed one frame; returns a complete message when one finishes.
    pub fn push(&mut self, frame: u32) -> Result<Option<DevMsg>, FrameError> {
        if self.pending.is_empty() {
            let ty = (frame >> 24) as u8;
            self.need = match ty {
                wire::DATA => 1 + (self.word_bits / 32) as usize,
                wire::ERROR => 2,
                wire::FLAGS | wire::SYNC_ACK => 1,
                _ => return Err(FrameError { header: frame }),
            };
        }
        self.pending.push(frame);
        if self.pending.len() < self.need {
            return Ok(None);
        }
        let frames = std::mem::take(&mut self.pending);
        let h = frames[0];
        let ty = (h >> 24) as u8;
        let mid = (h >> 16) as u8;
        let low = h as u16;
        Ok(Some(match ty {
            wire::DATA => DevMsg::Data {
                tag: low,
                value: Word::from_limbs(&frames[1..]),
            },
            wire::FLAGS => DevMsg::Flags {
                tag: low,
                flags: Flags(mid),
            },
            wire::SYNC_ACK => DevMsg::SyncAck { tag: low },
            wire::ERROR => DevMsg::Error {
                code: ErrorCode::from_u8(mid).ok_or(FrameError { header: h })?,
                info: frames[1],
            },
            _ => unreachable!("type checked at header time"),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip_host(m: HostMsg, word_bits: u32) {
        let frames = m.to_frames(word_bits);
        assert_eq!(frames.len(), m.frame_len(word_bits));
        let mut d = HostDeframer::new(word_bits);
        let mut out = None;
        for (i, f) in frames.iter().enumerate() {
            let r = d.push(*f).expect("frame accepted");
            if i + 1 < frames.len() {
                assert!(r.is_none(), "message completed early");
                assert!(d.mid_message());
            } else {
                out = r;
            }
        }
        assert_eq!(out, Some(m));
        assert!(!d.mid_message());
    }

    #[test]
    fn host_messages_roundtrip_32() {
        roundtrip_host(
            HostMsg::WriteReg {
                reg: 5,
                value: Word::from_u64(0xdead_beef, 32),
            },
            32,
        );
        roundtrip_host(
            HostMsg::WriteFlags {
                reg: 2,
                flags: Flags(0x1f),
            },
            32,
        );
        roundtrip_host(HostMsg::Instr(InstrWord(0x8010_2030_4050_6070)), 32);
        roundtrip_host(HostMsg::ReadReg { reg: 7, tag: 0xabc }, 32);
        roundtrip_host(HostMsg::ReadFlags { reg: 1, tag: 3 }, 32);
        roundtrip_host(HostMsg::Sync { tag: 0xffff }, 32);
    }

    #[test]
    fn host_write_roundtrips_at_wide_words() {
        for bits in [64, 96, 128] {
            roundtrip_host(
                HostMsg::WriteReg {
                    reg: 0,
                    value: Word::from_u128(0x0123_4567_89ab_cdef_1122_3344, bits),
                },
                bits,
            );
        }
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn write_reg_width_checked() {
        HostMsg::WriteReg {
            reg: 0,
            value: Word::from_u64(1, 64),
        }
        .to_frames(32);
    }

    #[test]
    fn dev_messages_roundtrip() {
        let msgs = vec![
            DevMsg::Data {
                tag: 9,
                value: Word::from_u64(0x1234_5678, 32),
            },
            DevMsg::Flags {
                tag: 1,
                flags: Flags(0b10101),
            },
            DevMsg::SyncAck { tag: 0 },
            DevMsg::Error {
                code: ErrorCode::NoSuchUnit,
                info: 42,
            },
        ];
        for m in msgs {
            let frames = m.to_frames(32);
            let mut d = DevDeframer::new(32);
            let mut out = None;
            for f in &frames {
                out = d.push(*f).unwrap();
            }
            assert_eq!(out, Some(m));
        }
    }

    #[test]
    fn unknown_header_is_rejected() {
        let mut d = HostDeframer::new(32);
        let err = d.push(0xff00_0000).unwrap_err();
        assert_eq!(err.header, 0xff00_0000);
        assert!(err.to_string().contains("0xff000000"));
        let mut d = DevDeframer::new(32);
        assert!(d.push(0x7700_0000).is_err());
    }

    #[test]
    fn interleaved_messages_parse_in_sequence() {
        // A realistic stream: write two registers, an instruction, a read.
        let word_bits = 64;
        let stream: Vec<HostMsg> = vec![
            HostMsg::WriteReg {
                reg: 1,
                value: Word::from_u64(10, 64),
            },
            HostMsg::WriteReg {
                reg: 2,
                value: Word::from_u64(20, 64),
            },
            HostMsg::Instr(InstrWord(0x8010_0000_0000_0000)),
            HostMsg::ReadReg { reg: 3, tag: 1 },
        ];
        let mut frames = Vec::new();
        for m in &stream {
            frames.extend(m.to_frames(word_bits));
        }
        let mut d = HostDeframer::new(word_bits);
        let mut parsed = Vec::new();
        for f in frames {
            if let Some(m) = d.push(f).unwrap() {
                parsed.push(m);
            }
        }
        assert_eq!(parsed, stream);
    }

    proptest! {
        #[test]
        fn prop_host_roundtrip_any(sel in 0u8..6, reg: u8, tag: u16, v: u64, raw: u64) {
            let m = match sel {
                0 => HostMsg::WriteReg { reg, value: Word::from_u64(v, 64) },
                1 => HostMsg::WriteFlags { reg, flags: Flags(v as u8) },
                2 => HostMsg::Instr(InstrWord(raw)),
                3 => HostMsg::ReadReg { reg, tag },
                4 => HostMsg::ReadFlags { reg, tag },
                _ => HostMsg::Sync { tag },
            };
            let mut d = HostDeframer::new(64);
            let mut out = None;
            for f in m.to_frames(64) {
                out = d.push(f).unwrap();
            }
            prop_assert_eq!(out, Some(m));
        }

        #[test]
        fn prop_dev_roundtrip_any(sel in 0u8..4, tag: u16, v: u128, info: u32) {
            let m = match sel {
                0 => DevMsg::Data { tag, value: Word::from_u128(v, 96) },
                1 => DevMsg::Flags { tag, flags: Flags(v as u8) },
                2 => DevMsg::SyncAck { tag },
                _ => DevMsg::Error { code: ErrorCode::BadFrame, info },
            };
            let mut d = DevDeframer::new(96);
            let mut out = None;
            for f in m.to_frames(96) {
                out = d.push(f).unwrap();
            }
            prop_assert_eq!(out, Some(m));
        }
    }
}
