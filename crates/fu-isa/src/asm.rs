//! A small textual assembler and disassembler for RTM programs.
//!
//! The RTM has no program counter — the host streams instruction words to
//! the coprocessor — so an "RTM program" is simply a list of instruction
//! words the host will transmit. The examples and tests author these in a
//! tiny assembly dialect rather than raw hex:
//!
//! ```text
//! ; compute (a + b) - c with flags in f1
//! LOADI r1, 100
//! LOADI r2, 23
//! ADD   r3, r1, r2, f1
//! SUB   r3, r3, r4, f1
//! FENCE
//! ```
//!
//! Operand conventions per mnemonic (defaults: flag registers `f0`):
//!
//! | form | syntax |
//! |------|--------|
//! | arithmetic, 2 sources | `ADD rd, rs1, rs2 [, fD [, fS]]` (ADC/SBB/CMPB read carry from `fS`) |
//! | INC/DEC | `INC rd, rs [, fD]` |
//! | NEG (operates on the *second* operand, per the thesis) | `NEG rd, rs [, fD]` |
//! | CMP/CMPB (no data result) | `CMP rs1, rs2 [, fD [, fS]]` |
//! | logic, 2 sources | `AND rd, rs1, rs2 [, fD]` |
//! | NOT / LCOPY | `NOT rd, rs [, fD]` |
//! | TEST | `TEST rs1, rs2 [, fD]` |
//! | shifts | `SHL rd, rs1, rs2` or `SHL rd, rs1, #imm` |
//! | widening multiply | `MUL rlo, rhi, rs1, rs2` |
//! | divide (quotient + remainder) | `DIV rq, rrem, rs1, rs2` |
//! | floating point | `FADD/FSUB/FMUL rd, rs1, rs2 [, fD]`, `FCMP rs1, rs2 [, fD]` |
//! | popcount | `POPCNT rd, rs` |
//! | management | `NOP`, `COPY rd, rs`, `LOADI rd, imm`, `COPYF fd, fs`, `SETF fd, imm`, `FENCE` |

use crate::funit_codes;
use crate::instr::{InstrWord, RegNum, UserInstr};
use crate::mgmt::MgmtOp;
use crate::variety::{ArithOp, LogicOp, ShiftVariety};

/// An assembly error with its source line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

/// Operand kinds after lexing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Operand {
    Data(RegNum),
    Flag(RegNum),
    Imm(u32),
}

fn parse_operand(tok: &str, line: usize) -> Result<Operand, AsmError> {
    let err = |msg: String| AsmError { line, msg };
    let parse_num = |s: &str| -> Result<u32, AsmError> {
        let (digits, radix) = if let Some(hex) = s.strip_prefix("0x").or(s.strip_prefix("0X")) {
            (hex, 16)
        } else if let Some(bin) = s.strip_prefix("0b").or(s.strip_prefix("0B")) {
            (bin, 2)
        } else {
            (s, 10)
        };
        u32::from_str_radix(digits, radix).map_err(|_| err(format!("invalid number `{s}`")))
    };
    let reg_num = |s: &str, kind: &str| -> Result<RegNum, AsmError> {
        let n = parse_num(s)?;
        u8::try_from(n).map_err(|_| err(format!("{kind} register {n} out of range (0..=255)")))
    };
    if let Some(rest) = tok.strip_prefix('r').or(tok.strip_prefix('R')) {
        if rest.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            return Ok(Operand::Data(reg_num(rest, "data")?));
        }
    }
    if let Some(rest) = tok.strip_prefix('f').or(tok.strip_prefix('F')) {
        if rest.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            return Ok(Operand::Flag(reg_num(rest, "flag")?));
        }
    }
    if let Some(rest) = tok.strip_prefix('#') {
        return Ok(Operand::Imm(parse_num(rest)?));
    }
    if tok.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return Ok(Operand::Imm(parse_num(tok)?));
    }
    Err(err(format!("unrecognised operand `{tok}`")))
}

struct Ops<'a> {
    ops: Vec<Operand>,
    idx: usize,
    line: usize,
    mnemonic: &'a str,
}

impl<'a> Ops<'a> {
    fn err(&self, msg: String) -> AsmError {
        AsmError {
            line: self.line,
            msg: format!("{}: {msg}", self.mnemonic),
        }
    }

    fn data(&mut self) -> Result<RegNum, AsmError> {
        match self.ops.get(self.idx) {
            Some(Operand::Data(r)) => {
                self.idx += 1;
                Ok(*r)
            }
            other => Err(self.err(format!(
                "expected data register at operand {}, found {other:?}",
                self.idx + 1
            ))),
        }
    }

    fn flag_or(&mut self, default: RegNum) -> Result<RegNum, AsmError> {
        match self.ops.get(self.idx) {
            Some(Operand::Flag(r)) => {
                self.idx += 1;
                Ok(*r)
            }
            None => Ok(default),
            other => Err(self.err(format!(
                "expected flag register at operand {}, found {other:?}",
                self.idx + 1
            ))),
        }
    }

    fn flag(&mut self) -> Result<RegNum, AsmError> {
        match self.ops.get(self.idx) {
            Some(Operand::Flag(r)) => {
                self.idx += 1;
                Ok(*r)
            }
            other => Err(self.err(format!(
                "expected flag register at operand {}, found {other:?}",
                self.idx + 1
            ))),
        }
    }

    fn imm(&mut self) -> Result<u32, AsmError> {
        match self.ops.get(self.idx) {
            Some(Operand::Imm(v)) => {
                self.idx += 1;
                Ok(*v)
            }
            other => Err(self.err(format!(
                "expected immediate at operand {}, found {other:?}",
                self.idx + 1
            ))),
        }
    }

    fn data_or_imm(&mut self) -> Result<Operand, AsmError> {
        match self.ops.get(self.idx) {
            Some(op @ (Operand::Data(_) | Operand::Imm(_))) => {
                self.idx += 1;
                Ok(*op)
            }
            other => Err(self.err(format!(
                "expected data register or immediate at operand {}, found {other:?}",
                self.idx + 1
            ))),
        }
    }

    fn finish(&self) -> Result<(), AsmError> {
        if self.idx == self.ops.len() {
            Ok(())
        } else {
            Err(self.err(format!(
                "unexpected extra operands after operand {}",
                self.idx
            )))
        }
    }
}

fn user(func: u8, variety: u8) -> UserInstr {
    UserInstr {
        func,
        variety,
        dst_flag: 0,
        dst_reg: 0,
        aux_reg: 0,
        src1: 0,
        src2: 0,
        src3: 0,
    }
}

/// Assemble one instruction line (without comments). `line` is used for
/// error reporting only.
pub fn assemble_line(text: &str, line: usize) -> Result<Option<InstrWord>, AsmError> {
    let text = text.split(';').next().unwrap_or("").trim();
    if text.is_empty() {
        return Ok(None);
    }
    let (mnemonic, rest) = text.split_once(char::is_whitespace).unwrap_or((text, ""));
    let ops: Result<Vec<Operand>, AsmError> = rest
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|t| parse_operand(t, line))
        .collect();
    let mut o = Ops {
        ops: ops?,
        idx: 0,
        line,
        mnemonic,
    };
    let upper = mnemonic.to_ascii_uppercase();

    // Management primitives.
    let mgmt = match upper.as_str() {
        "NOP" => Some(MgmtOp::Nop),
        "COPY" => Some(MgmtOp::Copy {
            dst: o.data()?,
            src: o.data()?,
        }),
        "LOADI" => Some(MgmtOp::LoadImm {
            dst: o.data()?,
            imm: o.imm()?,
        }),
        "COPYF" => Some(MgmtOp::CopyFlags {
            dst: o.flag()?,
            src: o.flag()?,
        }),
        "SETF" => Some(MgmtOp::SetFlags {
            dst: o.flag()?,
            imm: o.imm()? as u8,
        }),
        "FENCE" => Some(MgmtOp::Fence),
        _ => None,
    };
    if let Some(op) = mgmt {
        o.finish()?;
        return Ok(Some(op.encode()));
    }

    // Arithmetic unit.
    if let Some(op) = ArithOp::from_mnemonic(&upper) {
        let mut u = user(funit_codes::ARITH, op.variety().0);
        match op {
            ArithOp::Add | ArithOp::Adc | ArithOp::Sub | ArithOp::Sbb => {
                u.dst_reg = o.data()?;
                u.src1 = o.data()?;
                u.src2 = o.data()?;
                u.dst_flag = o.flag_or(0)?;
                u.aux_reg = o.flag_or(0)?;
            }
            ArithOp::Inc | ArithOp::Dec => {
                u.dst_reg = o.data()?;
                u.src1 = o.data()?;
                u.dst_flag = o.flag_or(0)?;
            }
            ArithOp::Neg => {
                u.dst_reg = o.data()?;
                u.src2 = o.data()?; // NEG works on the second operand
                u.dst_flag = o.flag_or(0)?;
            }
            ArithOp::Cmp | ArithOp::Cmpb => {
                u.src1 = o.data()?;
                u.src2 = o.data()?;
                u.dst_flag = o.flag_or(0)?;
                u.aux_reg = o.flag_or(0)?;
            }
        }
        o.finish()?;
        return Ok(Some(InstrWord::user(u)));
    }

    // Logic unit.
    if let Some(op) = LogicOp::from_mnemonic(&upper) {
        let mut u = user(funit_codes::LOGIC, op.variety().0);
        match op {
            LogicOp::Not | LogicOp::Copy => {
                u.dst_reg = o.data()?;
                u.src1 = o.data()?;
            }
            LogicOp::Test => {
                u.src1 = o.data()?;
                u.src2 = o.data()?;
            }
            _ => {
                u.dst_reg = o.data()?;
                u.src1 = o.data()?;
                u.src2 = o.data()?;
            }
        }
        u.dst_flag = o.flag_or(0)?;
        o.finish()?;
        return Ok(Some(InstrWord::user(u)));
    }

    // Shift unit.
    let shift = match upper.as_str() {
        "SHL" => Some(ShiftVariety::SHL),
        "SHR" => Some(ShiftVariety::SHR),
        "SAR" => Some(ShiftVariety::SAR),
        "ROL" => Some(ShiftVariety::ROL),
        _ => None,
    };
    if let Some(kind) = shift {
        let mut u = user(funit_codes::SHIFT, kind.0);
        u.dst_reg = o.data()?;
        u.src1 = o.data()?;
        match o.data_or_imm()? {
            Operand::Data(r) => u.src2 = r,
            Operand::Imm(v) => {
                if v > 255 {
                    return Err(o.err(format!("shift amount {v} exceeds 8 bits")));
                }
                u.variety |= ShiftVariety::IMM_AMOUNT;
                u.src3 = v as u8;
            }
            Operand::Flag(_) => unreachable!("data_or_imm filters flags"),
        }
        u.dst_flag = o.flag_or(0)?;
        o.finish()?;
        return Ok(Some(InstrWord::user(u)));
    }

    // Floating-point unit.
    let fpu_variety = match upper.as_str() {
        "FADD" => Some(0u8),
        "FSUB" => Some(1),
        "FMUL" => Some(2),
        "FCMP" => Some(3),
        _ => None,
    };
    if let Some(variety) = fpu_variety {
        let mut u = user(funit_codes::FPU, variety);
        if variety == 3 {
            // FCMP rs1, rs2 [, fD] — flags only.
            u.src1 = o.data()?;
            u.src2 = o.data()?;
        } else {
            u.dst_reg = o.data()?;
            u.src1 = o.data()?;
            u.src2 = o.data()?;
        }
        u.dst_flag = o.flag_or(0)?;
        o.finish()?;
        return Ok(Some(InstrWord::user(u)));
    }

    match upper.as_str() {
        "MUL" => {
            let mut u = user(funit_codes::MUL, 0);
            u.dst_reg = o.data()?; // low half
            u.aux_reg = o.data()?; // high half (second destination)
            u.src1 = o.data()?;
            u.src2 = o.data()?;
            u.dst_flag = o.flag_or(0)?;
            o.finish()?;
            Ok(Some(InstrWord::user(u)))
        }
        "DIV" => {
            // DIV rq, rrem, rs1, rs2 — quotient and remainder.
            let mut u = user(funit_codes::DIV, 0);
            u.dst_reg = o.data()?; // quotient
            u.aux_reg = o.data()?; // remainder (second destination)
            u.src1 = o.data()?;
            u.src2 = o.data()?;
            u.dst_flag = o.flag_or(0)?;
            o.finish()?;
            Ok(Some(InstrWord::user(u)))
        }
        "POPCNT" => {
            let mut u = user(funit_codes::POPCOUNT, 0);
            u.dst_reg = o.data()?;
            u.src1 = o.data()?;
            u.dst_flag = o.flag_or(0)?;
            o.finish()?;
            Ok(Some(InstrWord::user(u)))
        }
        _ => Err(AsmError {
            line,
            msg: format!("unknown mnemonic `{mnemonic}`"),
        }),
    }
}

/// Assemble a multi-line program. Blank lines and `;` comments are
/// ignored.
///
/// ```
/// use fu_isa::asm::{assemble, disassemble};
///
/// let program = assemble(
///     "LOADI r1, 100      ; management primitive
///      ADD r3, r1, r2, f1 ; arithmetic unit, flags to f1
///      FENCE",
/// ).unwrap();
/// assert_eq!(program.len(), 3);
/// assert!(!program[0].is_user());
/// assert!(program[1].is_user());
/// assert_eq!(disassemble(program[2]), "FENCE");
/// ```
pub fn assemble(source: &str) -> Result<Vec<InstrWord>, AsmError> {
    let mut out = Vec::new();
    for (i, line) in source.lines().enumerate() {
        if let Some(w) = assemble_line(line, i + 1)? {
            out.push(w);
        }
    }
    Ok(out)
}

/// Disassemble one instruction word back to text (best effort: unknown
/// encodings render as raw `.word` directives).
pub fn disassemble(w: InstrWord) -> String {
    if !w.is_user() {
        return match MgmtOp::decode(w) {
            Ok(MgmtOp::Nop) => "NOP".into(),
            Ok(MgmtOp::Copy { dst, src }) => format!("COPY r{dst}, r{src}"),
            Ok(MgmtOp::LoadImm { dst, imm }) => format!("LOADI r{dst}, {imm:#x}"),
            Ok(MgmtOp::CopyFlags { dst, src }) => format!("COPYF f{dst}, f{src}"),
            Ok(MgmtOp::SetFlags { dst, imm }) => format!("SETF f{dst}, {imm:#x}"),
            Ok(MgmtOp::Fence) => "FENCE".into(),
            Err(_) => format!(".word {:#018x}", w.0),
        };
    }
    let u = w.as_user();
    match u.func {
        funit_codes::ARITH => {
            if let Some(op) = ArithOp::from_variety(crate::variety::ArithVariety(u.variety)) {
                let m = op.mnemonic();
                return match op {
                    ArithOp::Add | ArithOp::Adc | ArithOp::Sub | ArithOp::Sbb => format!(
                        "{m} r{}, r{}, r{}, f{}, f{}",
                        u.dst_reg, u.src1, u.src2, u.dst_flag, u.aux_reg
                    ),
                    ArithOp::Inc | ArithOp::Dec => {
                        format!("{m} r{}, r{}, f{}", u.dst_reg, u.src1, u.dst_flag)
                    }
                    ArithOp::Neg => format!("{m} r{}, r{}, f{}", u.dst_reg, u.src2, u.dst_flag),
                    ArithOp::Cmp | ArithOp::Cmpb => format!(
                        "{m} r{}, r{}, f{}, f{}",
                        u.src1, u.src2, u.dst_flag, u.aux_reg
                    ),
                };
            }
            format!(".word {:#018x}", w.0)
        }
        funit_codes::LOGIC => {
            let v = crate::variety::LogicVariety(u.variety);
            let named = LogicOp::ALL.into_iter().find(|op| op.variety() == v);
            match named {
                Some(op @ (LogicOp::Not | LogicOp::Copy)) => format!(
                    "{} r{}, r{}, f{}",
                    op.mnemonic(),
                    u.dst_reg,
                    u.src1,
                    u.dst_flag
                ),
                Some(LogicOp::Test) => {
                    format!("TEST r{}, r{}, f{}", u.src1, u.src2, u.dst_flag)
                }
                Some(op) => format!(
                    "{} r{}, r{}, r{}, f{}",
                    op.mnemonic(),
                    u.dst_reg,
                    u.src1,
                    u.src2,
                    u.dst_flag
                ),
                None => format!(".word {:#018x}", w.0),
            }
        }
        funit_codes::SHIFT => {
            let m = match u.variety & 0b11 {
                0b00 => "SHL",
                0b01 => "SHR",
                0b10 => "SAR",
                _ => "ROL",
            };
            if u.variety & ShiftVariety::IMM_AMOUNT != 0 {
                format!(
                    "{m} r{}, r{}, #{}, f{}",
                    u.dst_reg, u.src1, u.src3, u.dst_flag
                )
            } else {
                format!(
                    "{m} r{}, r{}, r{}, f{}",
                    u.dst_reg, u.src1, u.src2, u.dst_flag
                )
            }
        }
        funit_codes::MUL => format!(
            "MUL r{}, r{}, r{}, r{}, f{}",
            u.dst_reg, u.aux_reg, u.src1, u.src2, u.dst_flag
        ),
        funit_codes::DIV => format!(
            "DIV r{}, r{}, r{}, r{}, f{}",
            u.dst_reg, u.aux_reg, u.src1, u.src2, u.dst_flag
        ),
        funit_codes::FPU => match u.variety {
            0 => format!(
                "FADD r{}, r{}, r{}, f{}",
                u.dst_reg, u.src1, u.src2, u.dst_flag
            ),
            1 => format!(
                "FSUB r{}, r{}, r{}, f{}",
                u.dst_reg, u.src1, u.src2, u.dst_flag
            ),
            2 => format!(
                "FMUL r{}, r{}, r{}, f{}",
                u.dst_reg, u.src1, u.src2, u.dst_flag
            ),
            3 => format!("FCMP r{}, r{}, f{}", u.src1, u.src2, u.dst_flag),
            _ => format!(".word {:#018x}", w.0),
        },
        funit_codes::POPCOUNT => {
            format!("POPCNT r{}, r{}, f{}", u.dst_reg, u.src1, u.dst_flag)
        }
        _ => format!(".word {:#018x}", w.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_blanks_skipped() {
        let prog = assemble("; header\n\n  ; indented comment\nNOP ; trailing\n").unwrap();
        assert_eq!(prog.len(), 1);
        assert_eq!(prog[0], MgmtOp::Nop.encode());
    }

    #[test]
    fn arithmetic_forms() {
        let w = assemble_line("ADD r3, r1, r2, f1", 1).unwrap().unwrap();
        let u = w.as_user();
        assert_eq!(u.func, funit_codes::ARITH);
        assert_eq!(u.variety, ArithOp::Add.variety().0);
        assert_eq!((u.dst_reg, u.src1, u.src2, u.dst_flag), (3, 1, 2, 1));

        let w = assemble_line("adc r3, r1, r2, f1, f2", 1).unwrap().unwrap();
        let u = w.as_user();
        assert_eq!(u.aux_reg, 2, "ADC's carry source flag register");

        let w = assemble_line("NEG r5, r6", 1).unwrap().unwrap();
        let u = w.as_user();
        assert_eq!(u.src2, 6, "NEG takes the second operand slot");
        assert_eq!(u.src1, 0);

        let w = assemble_line("CMP r1, r2, f3", 1).unwrap().unwrap();
        let u = w.as_user();
        assert_eq!(u.dst_reg, 0, "CMP writes no data register");
        assert_eq!(u.dst_flag, 3);
    }

    #[test]
    fn default_flag_register_is_f0() {
        let u = assemble_line("ADD r1, r2, r3", 1)
            .unwrap()
            .unwrap()
            .as_user();
        assert_eq!(u.dst_flag, 0);
        assert_eq!(u.aux_reg, 0);
    }

    #[test]
    fn logic_and_shift_forms() {
        let u = assemble_line("XOR r1, r2, r3", 1)
            .unwrap()
            .unwrap()
            .as_user();
        assert_eq!(u.func, funit_codes::LOGIC);
        assert_eq!(u.variety, LogicOp::Xor.variety().0);

        let u = assemble_line("NOT r1, r2", 1).unwrap().unwrap().as_user();
        assert_eq!(u.variety, LogicOp::Not.variety().0);

        let u = assemble_line("SHL r1, r2, #5", 1)
            .unwrap()
            .unwrap()
            .as_user();
        assert_eq!(u.func, funit_codes::SHIFT);
        assert!(u.variety & ShiftVariety::IMM_AMOUNT != 0);
        assert_eq!(u.src3, 5);

        let u = assemble_line("SAR r1, r2, r3", 1)
            .unwrap()
            .unwrap()
            .as_user();
        assert_eq!(u.variety & 0b11, ShiftVariety::SAR.0);
        assert_eq!(u.src2, 3);
    }

    #[test]
    fn mul_and_popcnt_forms() {
        let u = assemble_line("MUL r1, r2, r3, r4", 1)
            .unwrap()
            .unwrap()
            .as_user();
        assert_eq!((u.dst_reg, u.aux_reg, u.src1, u.src2), (1, 2, 3, 4));
        let u = assemble_line("POPCNT r9, r8", 1)
            .unwrap()
            .unwrap()
            .as_user();
        assert_eq!((u.dst_reg, u.src1), (9, 8));
    }

    #[test]
    fn mgmt_forms() {
        assert_eq!(
            assemble_line("LOADI r7, 0x1234", 1).unwrap().unwrap(),
            MgmtOp::LoadImm {
                dst: 7,
                imm: 0x1234
            }
            .encode()
        );
        assert_eq!(
            assemble_line("SETF f2, 0b101", 1).unwrap().unwrap(),
            MgmtOp::SetFlags { dst: 2, imm: 0b101 }.encode()
        );
        assert_eq!(
            assemble_line("COPY r1, r2", 1).unwrap().unwrap(),
            MgmtOp::Copy { dst: 1, src: 2 }.encode()
        );
        assert_eq!(
            assemble_line("FENCE", 1).unwrap().unwrap(),
            MgmtOp::Fence.encode()
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("NOP\nFROB r1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("FROB"));

        let err = assemble_line("ADD r1, f2, r3", 7).unwrap_err();
        assert_eq!(err.line, 7);
        assert!(err.msg.contains("expected data register"));

        let err = assemble_line("ADD r1, r2, r3, r4", 1).unwrap_err();
        assert!(err.msg.contains("expected flag register"));

        let err = assemble_line("NOP r1", 1).unwrap_err();
        assert!(err.msg.contains("extra operands"));

        let err = assemble_line("LOADI r1, 99999999999", 1).unwrap_err();
        assert!(err.msg.contains("invalid number"));

        let err = assemble_line("COPY r1, r300", 1).unwrap_err();
        assert!(err.msg.contains("out of range"));

        let err = assemble_line("SHL r1, r2, #300", 1).unwrap_err();
        assert!(err.msg.contains("exceeds 8 bits"));
    }

    #[test]
    fn disassemble_roundtrips_through_assembler() {
        let source = "\
ADD r3, r1, r2, f1, f0
ADC r3, r1, r2, f1, f2
SUB r4, r3, r2, f0, f0
INC r5, r5, f0
NEG r6, r7, f2
CMP r1, r2, f3, f0
CMPB r1, r2, f3, f4
AND r1, r2, r3, f0
NOT r4, r5, f0
TEST r1, r2, f7
SHL r1, r2, #31, f0
ROL r1, r2, r3, f0
MUL r1, r2, r3, r4, f0
DIV r5, r6, r7, r8, f1
FADD r1, r2, r3, f1
FSUB r1, r2, r3, f1
FMUL r1, r2, r3, f2
FCMP r2, r3, f3
POPCNT r9, r8, f0
COPY r1, r2
LOADI r7, 0xff
COPYF f1, f2
SETF f3, 0x15
FENCE
NOP";
        let words = assemble(source).unwrap();
        assert_eq!(words.len(), 25);
        for w in words {
            let text = disassemble(w);
            let again = assemble_line(&text, 1).unwrap().unwrap();
            assert_eq!(again, w, "disassembly `{text}` did not roundtrip");
        }
    }

    #[test]
    fn unknown_words_render_as_directives() {
        let w = InstrWord::user(UserInstr {
            func: 0x7f,
            variety: 0,
            dst_flag: 0,
            dst_reg: 0,
            aux_reg: 0,
            src1: 0,
            src2: 0,
            src3: 0,
        });
        assert!(disassemble(w).starts_with(".word"));
        let w = InstrWord::mgmt(0x70, 0, 0, 0);
        assert!(disassemble(w).starts_with(".word"));
    }
}
