//! Variety codes: per-functional-unit operation modifiers.
//!
//! The framework forwards an 8-bit *variety code* to the functional unit
//! with every dispatch (`variety_code[7..0]` in the minimal-unit
//! schematic). For the arithmetic unit, Table 3.1 of the thesis derives
//! the entire ADD/ADC/SUB/SBB/INC/DEC/NEG/CMP/CMPB family from six
//! modifier bits feeding one adder:
//!
//! > Use carry flag · Fixed carry · Output data · First input zero ·
//! > Second input zero · Complement second input
//!
//! with the semantics
//!
//! ```text
//! a' = first-input-zero  ? 0  : src1
//! b0 = second-input-zero ? 0  : src2
//! b' = complement-second ? ~b0 : b0
//! ci = use-carry-flag ? flags[src_flag].C : fixed-carry
//! (result, carry, overflow) = a' + b' + ci
//! ```
//!
//! "All operations with the exception of the negation instruction are
//! applied to the first and second source operand … The negation
//! instruction is applied to the second operand only, for reasons of logic
//! compactness" — hence NEG = `0 + ~src2 + 1`.
//!
//! For the logic unit (Table 3.2) we encode the operation as a 2-input
//! truth table in the low four bits — precisely how a 4-input LUT fabric
//! implements an arbitrary bitwise function — plus the same
//! output-data bit.

use crate::flags::Flags;
use crate::word::Word;

/// Bit assignments of the arithmetic unit's variety code (Table 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArithVariety(pub u8);

impl ArithVariety {
    /// Carry-in comes from the source flag register.
    pub const USE_CARRY: u8 = 1 << 5;
    /// Carry-in value when `USE_CARRY` is clear.
    pub const FIXED_CARRY: u8 = 1 << 4;
    /// The data result is written to the destination register (clear for
    /// CMP/CMPB, which only produce flags).
    pub const OUTPUT_DATA: u8 = 1 << 3;
    /// Force the first operand to zero.
    pub const FIRST_ZERO: u8 = 1 << 2;
    /// Force the second operand to zero.
    pub const SECOND_ZERO: u8 = 1 << 1;
    /// Complement the (possibly zeroed) second operand.
    pub const COMPLEMENT_SECOND: u8 = 1 << 0;

    /// Does the operation read the source flag register?
    pub fn uses_carry_flag(&self) -> bool {
        self.0 & Self::USE_CARRY != 0
    }

    /// Does the operation write a data result?
    pub fn outputs_data(&self) -> bool {
        self.0 & Self::OUTPUT_DATA != 0
    }

    /// Evaluate the adder datapath on full-width words.
    ///
    /// Returns `(data_result, flags)`; the data result is `None` when the
    /// variety suppresses output (compare instructions).
    pub fn evaluate(&self, src1: &Word, src2: &Word, flags_in: Flags) -> (Option<Word>, Flags) {
        let bits = src1.bits();
        let a = if self.0 & Self::FIRST_ZERO != 0 {
            Word::zero(bits)
        } else {
            *src1
        };
        let b0 = if self.0 & Self::SECOND_ZERO != 0 {
            Word::zero(bits)
        } else {
            *src2
        };
        let b = if self.0 & Self::COMPLEMENT_SECOND != 0 {
            b0.not()
        } else {
            b0
        };
        let ci = if self.uses_carry_flag() {
            flags_in.carry()
        } else {
            self.0 & Self::FIXED_CARRY != 0
        };
        let (sum, carry, overflow) = a.adc(&b, ci);
        let flags = Flags::from_parts(carry, sum.is_zero(), sum.msb(), overflow);
        let data = self.outputs_data().then_some(sum);
        (data, flags)
    }
}

/// The nine named arithmetic instructions of Table 3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// `d = s1 + s2`
    Add,
    /// `d = s1 + s2 + C`
    Adc,
    /// `d = s1 - s2`
    Sub,
    /// `d = s1 - s2 - !C` (borrow chained through the carry flag)
    Sbb,
    /// `d = s1 + 1`
    Inc,
    /// `d = s1 - 1`
    Dec,
    /// `d = -s2` (second operand only, per the thesis)
    Neg,
    /// flags of `s1 - s2`, no data output
    Cmp,
    /// flags of `s1 - s2 - !C`, no data output
    Cmpb,
}

impl ArithOp {
    /// All nine operations, in Table 3.1 order.
    pub const ALL: [ArithOp; 9] = [
        ArithOp::Add,
        ArithOp::Adc,
        ArithOp::Sub,
        ArithOp::Sbb,
        ArithOp::Inc,
        ArithOp::Dec,
        ArithOp::Neg,
        ArithOp::Cmp,
        ArithOp::Cmpb,
    ];

    /// The variety encoding of this operation (one row of Table 3.1).
    pub fn variety(&self) -> ArithVariety {
        use ArithOp::*;
        let v = match self {
            Add => ArithVariety::OUTPUT_DATA,
            Adc => ArithVariety::OUTPUT_DATA | ArithVariety::USE_CARRY,
            Sub => {
                ArithVariety::OUTPUT_DATA
                    | ArithVariety::COMPLEMENT_SECOND
                    | ArithVariety::FIXED_CARRY
            }
            Sbb => {
                ArithVariety::OUTPUT_DATA
                    | ArithVariety::COMPLEMENT_SECOND
                    | ArithVariety::USE_CARRY
            }
            Inc => {
                ArithVariety::OUTPUT_DATA | ArithVariety::SECOND_ZERO | ArithVariety::FIXED_CARRY
            }
            Dec => {
                ArithVariety::OUTPUT_DATA
                    | ArithVariety::SECOND_ZERO
                    | ArithVariety::COMPLEMENT_SECOND
            }
            Neg => {
                ArithVariety::OUTPUT_DATA
                    | ArithVariety::FIRST_ZERO
                    | ArithVariety::COMPLEMENT_SECOND
                    | ArithVariety::FIXED_CARRY
            }
            Cmp => ArithVariety::COMPLEMENT_SECOND | ArithVariety::FIXED_CARRY,
            Cmpb => ArithVariety::COMPLEMENT_SECOND | ArithVariety::USE_CARRY,
        };
        ArithVariety(v)
    }

    /// Identify a variety as one of the named operations, if it is one.
    pub fn from_variety(v: ArithVariety) -> Option<ArithOp> {
        ArithOp::ALL.into_iter().find(|op| op.variety() == v)
    }

    /// The assembler mnemonic.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            ArithOp::Add => "ADD",
            ArithOp::Adc => "ADC",
            ArithOp::Sub => "SUB",
            ArithOp::Sbb => "SBB",
            ArithOp::Inc => "INC",
            ArithOp::Dec => "DEC",
            ArithOp::Neg => "NEG",
            ArithOp::Cmp => "CMP",
            ArithOp::Cmpb => "CMPB",
        }
    }

    /// Parse a mnemonic (case-insensitive).
    pub fn from_mnemonic(s: &str) -> Option<ArithOp> {
        ArithOp::ALL
            .into_iter()
            .find(|op| op.mnemonic().eq_ignore_ascii_case(s))
    }
}

/// Variety code of the logic unit (Table 3.2): a 2-input truth table in
/// bits 3..0 (bit index `2*a + b` gives the output for inputs `(a, b)`),
/// plus the output-data bit at the arithmetic unit's position so compare-
/// style "test" operations are expressible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LogicVariety(pub u8);

impl LogicVariety {
    /// Truth-table mask.
    pub const TABLE: u8 = 0x0f;
    /// Write the data result (same bit position as the arithmetic unit).
    pub const OUTPUT_DATA: u8 = 1 << 4;

    /// Build from a truth table with data output enabled.
    pub fn from_table(table: u8) -> LogicVariety {
        LogicVariety((table & Self::TABLE) | Self::OUTPUT_DATA)
    }

    /// Does the operation write a data result?
    pub fn outputs_data(&self) -> bool {
        self.0 & Self::OUTPUT_DATA != 0
    }

    /// Apply the truth table bitwise across two words.
    pub fn evaluate(&self, src1: &Word, src2: &Word) -> (Option<Word>, Flags) {
        let t = self.0 & Self::TABLE;
        let out = src1.zip(src2, |a, b| {
            let mut r = 0u32;
            // Each output bit selects a truth-table entry by (a_i, b_i).
            // Expressed with masks rather than a bit loop, exactly as a
            // LUT fabric computes it:
            if t & 0b0001 != 0 {
                r |= !a & !b;
            }
            if t & 0b0010 != 0 {
                r |= !a & b;
            }
            if t & 0b0100 != 0 {
                r |= a & !b;
            }
            if t & 0b1000 != 0 {
                r |= a & b;
            }
            r
        });
        let flags = Flags::from_parts(false, out.is_zero(), out.msb(), false);
        let data = self.outputs_data().then_some(out);
        (data, flags)
    }
}

/// Named logic operations (the reconstruction of Table 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicOp {
    /// `d = s1 & s2`
    And,
    /// `d = s1 | s2`
    Or,
    /// `d = s1 ^ s2`
    Xor,
    /// `d = ~(s1 & s2)`
    Nand,
    /// `d = ~(s1 | s2)`
    Nor,
    /// `d = ~(s1 ^ s2)`
    Xnor,
    /// `d = ~s1` (unary: applied to the first operand)
    Not,
    /// `d = s1 & ~s2` (bit clear)
    Andn,
    /// `d = s1` (move through the logic unit)
    Copy,
    /// flags of `s1 & s2`, no data output
    Test,
}

impl LogicOp {
    /// All named logic operations.
    pub const ALL: [LogicOp; 10] = [
        LogicOp::And,
        LogicOp::Or,
        LogicOp::Xor,
        LogicOp::Nand,
        LogicOp::Nor,
        LogicOp::Xnor,
        LogicOp::Not,
        LogicOp::Andn,
        LogicOp::Copy,
        LogicOp::Test,
    ];

    /// Truth table of the operation (output bit for input `(a, b)` at
    /// index `2a + b`).
    pub fn table(&self) -> u8 {
        match self {
            LogicOp::And => 0b1000,
            LogicOp::Or => 0b1110,
            LogicOp::Xor => 0b0110,
            LogicOp::Nand => 0b0111,
            LogicOp::Nor => 0b0001,
            LogicOp::Xnor => 0b1001,
            LogicOp::Not => 0b0011,  // ~a, independent of b
            LogicOp::Andn => 0b0100, // a & ~b
            LogicOp::Copy => 0b1100, // a
            LogicOp::Test => 0b1000, // flags of AND
        }
    }

    /// Variety encoding of this operation.
    pub fn variety(&self) -> LogicVariety {
        let v = LogicVariety::from_table(self.table());
        if matches!(self, LogicOp::Test) {
            LogicVariety(v.0 & !LogicVariety::OUTPUT_DATA)
        } else {
            v
        }
    }

    /// The assembler mnemonic.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            LogicOp::And => "AND",
            LogicOp::Or => "OR",
            LogicOp::Xor => "XOR",
            LogicOp::Nand => "NAND",
            LogicOp::Nor => "NOR",
            LogicOp::Xnor => "XNOR",
            LogicOp::Not => "NOT",
            LogicOp::Andn => "ANDN",
            LogicOp::Copy => "LCOPY",
            LogicOp::Test => "TEST",
        }
    }

    /// Parse a mnemonic (case-insensitive).
    pub fn from_mnemonic(s: &str) -> Option<LogicOp> {
        LogicOp::ALL
            .into_iter()
            .find(|op| op.mnemonic().eq_ignore_ascii_case(s))
    }
}

/// Variety code of the shift unit (an extension FU used by the examples):
/// bits 1..0 select the kind, bit 2 selects the amount source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShiftVariety(pub u8);

impl ShiftVariety {
    /// Logical shift left.
    pub const SHL: ShiftVariety = ShiftVariety(0b00);
    /// Logical shift right.
    pub const SHR: ShiftVariety = ShiftVariety(0b01);
    /// Arithmetic shift right.
    pub const SAR: ShiftVariety = ShiftVariety(0b10);
    /// Rotate left.
    pub const ROL: ShiftVariety = ShiftVariety(0b11);
    /// When set, the amount is the low bits of `src3`'s register number
    /// (an immediate baked into the instruction); otherwise the amount is
    /// `src2`'s value.
    pub const IMM_AMOUNT: u8 = 1 << 2;

    /// Apply the shift.
    pub fn evaluate(&self, value: &Word, amount: u32) -> (Word, Flags) {
        let out = match ShiftVariety(self.0 & 0b11) {
            ShiftVariety::SHL => value.shl(amount),
            ShiftVariety::SHR => value.shr(amount),
            ShiftVariety::SAR => value.sar(amount),
            _ => value.rol(amount),
        };
        let flags = Flags::from_parts(false, out.is_zero(), out.msb(), false);
        (out, flags)
    }

    /// Does the amount come from the instruction's `src3` field?
    pub fn imm_amount(&self) -> bool {
        self.0 & Self::IMM_AMOUNT != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn w(v: u64) -> Word {
        Word::from_u64(v, 32)
    }

    #[test]
    fn table_3_1_varieties_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for op in ArithOp::ALL {
            assert!(seen.insert(op.variety()), "{op:?} duplicates a variety");
        }
    }

    #[test]
    fn table_3_1_semantics() {
        let f0 = Flags::NONE;
        let fc = Flags::CARRY;
        let cases: Vec<(ArithOp, u64, u64, Flags, Option<u64>)> = vec![
            (ArithOp::Add, 5, 3, f0, Some(8)),
            (ArithOp::Adc, 5, 3, fc, Some(9)),
            (ArithOp::Adc, 5, 3, f0, Some(8)),
            (ArithOp::Sub, 5, 3, f0, Some(2)),
            (ArithOp::Sbb, 5, 3, fc, Some(2)), // C=1: no pending borrow
            (ArithOp::Sbb, 5, 3, f0, Some(1)), // C=0: borrow one more
            (ArithOp::Inc, 41, 999, f0, Some(42)), // second operand ignored
            (ArithOp::Dec, 43, 999, f0, Some(42)),
            (
                ArithOp::Neg,
                999,
                5,
                f0,
                Some(5u64.wrapping_neg() as u32 as u64),
            ),
            (ArithOp::Cmp, 5, 3, f0, None),
            (ArithOp::Cmpb, 5, 3, fc, None),
        ];
        for (op, a, b, fin, expect) in cases {
            let (data, _) = op.variety().evaluate(&w(a), &w(b), fin);
            assert_eq!(data.map(|d| d.as_u64()), expect, "{op:?} {a} {b}");
        }
    }

    #[test]
    fn cmp_flags_encode_ordering() {
        // CMP computes s1 - s2: C set (no borrow) iff s1 >= s2, Z iff equal.
        let (_, f) = ArithOp::Cmp.variety().evaluate(&w(7), &w(7), Flags::NONE);
        assert!(f.zero() && f.carry());
        let (_, f) = ArithOp::Cmp.variety().evaluate(&w(3), &w(7), Flags::NONE);
        assert!(!f.zero() && !f.carry());
        let (_, f) = ArithOp::Cmp.variety().evaluate(&w(9), &w(7), Flags::NONE);
        assert!(!f.zero() && f.carry());
    }

    #[test]
    fn only_carry_ops_read_flags() {
        for op in ArithOp::ALL {
            let uses = op.variety().uses_carry_flag();
            let expect = matches!(op, ArithOp::Adc | ArithOp::Sbb | ArithOp::Cmpb);
            assert_eq!(uses, expect, "{op:?}");
        }
    }

    #[test]
    fn only_compares_suppress_data() {
        for op in ArithOp::ALL {
            let outputs = op.variety().outputs_data();
            let expect = !matches!(op, ArithOp::Cmp | ArithOp::Cmpb);
            assert_eq!(outputs, expect, "{op:?}");
        }
    }

    #[test]
    fn variety_roundtrips_to_op() {
        for op in ArithOp::ALL {
            assert_eq!(ArithOp::from_variety(op.variety()), Some(op));
        }
        assert_eq!(ArithOp::from_variety(ArithVariety(0xff)), None);
    }

    #[test]
    fn mnemonics_roundtrip() {
        for op in ArithOp::ALL {
            assert_eq!(ArithOp::from_mnemonic(op.mnemonic()), Some(op));
            assert_eq!(
                ArithOp::from_mnemonic(&op.mnemonic().to_lowercase()),
                Some(op)
            );
        }
        for op in LogicOp::ALL {
            assert_eq!(LogicOp::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(ArithOp::from_mnemonic("FROB"), None);
    }

    #[test]
    fn logic_tables_match_operators() {
        let a = w(0b1100);
        let b = w(0b1010);
        let eval = |op: LogicOp| op.variety().evaluate(&a, &b).0.map(|d| d.as_u64() & 0xf);
        assert_eq!(eval(LogicOp::And), Some(0b1000));
        assert_eq!(eval(LogicOp::Or), Some(0b1110));
        assert_eq!(eval(LogicOp::Xor), Some(0b0110));
        assert_eq!(eval(LogicOp::Copy), Some(0b1100));
        assert_eq!(eval(LogicOp::Andn), Some(0b0100));
        assert_eq!(eval(LogicOp::Test), None);
        // Complemented forms span the full word, not just the low nibble.
        let (d, _) = LogicOp::Nor.variety().evaluate(&a, &b);
        assert_eq!(d.unwrap().as_u64(), !(0b1100u64 | 0b1010) & 0xffff_ffff);
    }

    #[test]
    fn logic_zero_flag() {
        let (_, f) = LogicOp::And.variety().evaluate(&w(0b01), &w(0b10));
        assert!(f.zero());
        let (_, f) = LogicOp::Test.variety().evaluate(&w(0b11), &w(0b10));
        assert!(!f.zero());
    }

    #[test]
    fn shift_varieties() {
        let v = w(0x8000_0001);
        assert_eq!(ShiftVariety::SHL.evaluate(&v, 4).0.as_u64(), 0x10);
        assert_eq!(ShiftVariety::SHR.evaluate(&v, 4).0.as_u64(), 0x0800_0000);
        assert_eq!(ShiftVariety::SAR.evaluate(&v, 4).0.as_u64(), 0xf800_0000);
        assert_eq!(ShiftVariety::ROL.evaluate(&v, 4).0.as_u64(), 0x0000_0018);
        assert!(ShiftVariety(ShiftVariety::SHL.0 | ShiftVariety::IMM_AMOUNT).imm_amount());
    }

    proptest! {
        #[test]
        fn prop_add_sub_inverse(a: u32, b: u32) {
            let (sum, _) = ArithOp::Add.variety().evaluate(&w(a as u64), &w(b as u64), Flags::NONE);
            let (diff, _) = ArithOp::Sub
                .variety()
                .evaluate(&sum.unwrap(), &w(b as u64), Flags::NONE);
            prop_assert_eq!(diff.unwrap().as_u64(), a as u64);
        }

        #[test]
        fn prop_neg_is_two_complement(b: u32) {
            let (d, _) = ArithOp::Neg.variety().evaluate(&w(777), &w(b as u64), Flags::NONE);
            prop_assert_eq!(d.unwrap().as_u64(), (b as u32).wrapping_neg() as u64);
        }

        #[test]
        fn prop_multiword_add_via_adc(a: u64, b: u64) {
            // 64-bit addition on a 32-bit configuration: ADD low halves,
            // ADC high halves — the multi-word idiom Table 3.1 supports
            // "through an externally provided carry bit".
            let (lo, f_lo) = ArithOp::Add
                .variety()
                .evaluate(&w(a & 0xffff_ffff), &w(b & 0xffff_ffff), Flags::NONE);
            let (hi, f_hi) = ArithOp::Adc
                .variety()
                .evaluate(&w(a >> 32), &w(b >> 32), f_lo);
            let got = (hi.unwrap().as_u64() << 32) | lo.unwrap().as_u64();
            prop_assert_eq!(got, a.wrapping_add(b));
            prop_assert_eq!(f_hi.carry(), a.checked_add(b).is_none());
        }

        #[test]
        fn prop_multiword_sub_via_sbb(a: u64, b: u64) {
            let (lo, f_lo) = ArithOp::Sub
                .variety()
                .evaluate(&w(a & 0xffff_ffff), &w(b & 0xffff_ffff), Flags::NONE);
            let (hi, f_hi) = ArithOp::Sbb
                .variety()
                .evaluate(&w(a >> 32), &w(b >> 32), f_lo);
            let got = (hi.unwrap().as_u64() << 32) | lo.unwrap().as_u64();
            prop_assert_eq!(got, a.wrapping_sub(b));
            prop_assert_eq!(f_hi.carry(), a >= b);
        }

        #[test]
        fn prop_logic_truth_tables_exhaustive(a: u32, b: u32, t in 0u8..16) {
            let v = LogicVariety::from_table(t);
            let (d, _) = v.evaluate(&w(a as u64), &w(b as u64));
            let d = d.unwrap().as_u64() as u32;
            // Independently recompute bit by bit.
            for bit in 0..32 {
                let ai = (a >> bit) & 1;
                let bi = (b >> bit) & 1;
                let expect = (t >> (2 * ai + bi)) & 1;
                prop_assert_eq!(((d >> bit) & 1) as u8, expect);
            }
        }
    }
}
