//! Stateful functional units.
//!
//! "A stateful unit has a local persistent memory. Operations performed
//! by the unit may depend on data in the memory, may modify it, and may
//! return part of it to the controller. Examples of stateful functional
//! units are **histogram calculators, pseudorandom number generators, and
//! associative memories**." — paper §IV-B
//!
//! This module implements exactly those three examples (the χ-sort engine,
//! the paper's large worked case study, lives in the `xi-sort` crate):
//!
//! * [`histogram::HistogramFu`] — BRAM-backed bin counters with
//!   single-cycle accumulate and hardware-realistic multi-cycle
//!   clear/total sweeps;
//! * [`prng::PrngFu`] — a 32-bit maximal-length Galois LFSR;
//! * [`cam::CamFu`] — an associative memory (content-addressable store)
//!   with single-cycle parallel search.
//!
//! Each implements [`fu_rtm::FunctionalUnit`] directly (stateful units
//! own their protocol behaviour; the combinational-kernel skeletons do
//! not apply), buffering one result for the write arbiter exactly like
//! the thesis's functional-unit adapter.

pub mod cam;
pub mod histogram;
pub mod prng;

pub use cam::CamFu;
pub use histogram::HistogramFu;
pub use prng::PrngFu;
