//! A histogram calculator — the paper's first stateful-unit example.
//!
//! The unit owns `n_bins` counters in on-chip block RAM. Accumulation is
//! single-cycle (read-modify-write on one BRAM port); `CLEAR` and `TOTAL`
//! sweep the memory at one bin per cycle, which is how real hardware
//! clears or folds a BRAM — the multi-cycle behaviour is part of the
//! model, not a simulation artefact.
//!
//! Varieties: [`HIST_CLEAR`], [`HIST_ACCUM`] (bin `ops[0] & mask` +=
//! `ops[1]`), [`HIST_READ`] (returns bin `ops[0] & mask`), [`HIST_TOTAL`]
//! (returns the sum over all bins).

use fu_isa::{Flags, RegNum, Word};
use fu_rtm::protocol::{AuxRole, DispatchPacket, FuOutput, FunctionalUnit};
use rtl_sim::{AreaEstimate, Clocked, CriticalPath};

/// Clear all bins (multi-cycle: one bin per cycle).
pub const HIST_CLEAR: u8 = 0;
/// `bins[ops[0] & mask] += ops[1]` (single cycle, saturating).
pub const HIST_ACCUM: u8 = 1;
/// Return `bins[ops[0] & mask]`.
pub const HIST_READ: u8 = 2;
/// Return the sum over all bins (multi-cycle sweep).
pub const HIST_TOTAL: u8 = 3;

/// Default function code for the histogram unit.
pub const HIST_FUNC_CODE: u8 = 24;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Work {
    Clear { next: usize },
    Total { next: usize, acc: u64 },
    Finish { result: Option<u32>, error: bool },
}

/// The histogram functional unit.
#[derive(Debug, Clone)]
pub struct HistogramFu {
    func_code: u8,
    bins: Vec<u32>,
    busy: Option<(Work, DispatchPacket)>,
    out: Option<FuOutput>,
    word_bits: u32,
}

impl HistogramFu {
    /// A histogram with `n_bins` bins (power of two) on a
    /// `word_bits`-wide framework.
    pub fn new(n_bins: usize, word_bits: u32) -> HistogramFu {
        assert!(
            n_bins.is_power_of_two() && n_bins >= 2,
            "bin count must be a power of two >= 2"
        );
        HistogramFu {
            func_code: HIST_FUNC_CODE,
            bins: vec![0; n_bins],
            busy: None,
            out: None,
            word_bits,
        }
    }

    /// Number of bins.
    pub fn n_bins(&self) -> usize {
        self.bins.len()
    }

    /// Direct view of the bins (tests/diagnostics).
    pub fn bins(&self) -> &[u32] {
        &self.bins
    }

    fn mask(&self) -> u32 {
        self.bins.len() as u32 - 1
    }

    fn finish(&mut self, pkt: &DispatchPacket, result: Option<u32>, error: bool) {
        let returns_data = self.variety_writes_data(pkt.variety);
        let data: Option<(RegNum, Word)> = match (returns_data, result) {
            (true, Some(v)) => Some((pkt.dst_reg, Word::from_u64(v as u64, self.word_bits))),
            (true, None) => Some((pkt.dst_reg, Word::zero(self.word_bits))),
            _ => None,
        };
        let mut flags = Flags::from_parts(false, result == Some(0), false, false);
        flags.set(Flags::ERROR, error);
        self.out = Some(FuOutput {
            data,
            data2: None,
            flags: Some((pkt.dst_flag, flags)),
            ticket: pkt.ticket,
            seq: pkt.seq,
        });
    }
}

impl Clocked for HistogramFu {
    fn commit(&mut self) {
        let Some((work, pkt)) = self.busy.take() else {
            return;
        };
        let next = match work {
            Work::Clear { next } => {
                self.bins[next] = 0;
                if next + 1 == self.bins.len() {
                    Work::Finish {
                        result: None,
                        error: false,
                    }
                } else {
                    Work::Clear { next: next + 1 }
                }
            }
            Work::Total { next, acc } => {
                let acc = acc + self.bins[next] as u64;
                if next + 1 == self.bins.len() {
                    Work::Finish {
                        // A sum wider than the counter saturates, flagged
                        // through the error bit below.
                        result: Some(acc.min(u32::MAX as u64) as u32),
                        error: acc > u32::MAX as u64,
                    }
                } else {
                    Work::Total {
                        next: next + 1,
                        acc,
                    }
                }
            }
            Work::Finish { result, error } => {
                self.finish(&pkt, result, error);
                return;
            }
        };
        if let Work::Finish { result, error } = next {
            // Single-transition finishes (e.g. last bin) still take the
            // output-register cycle.
            self.busy = Some((Work::Finish { result, error }, pkt));
        } else {
            self.busy = Some((next, pkt));
        }
    }

    fn reset(&mut self) {
        self.bins.iter_mut().for_each(|b| *b = 0);
        self.busy = None;
        self.out = None;
    }
}

impl FunctionalUnit for HistogramFu {
    fn name(&self) -> &'static str {
        "histogram"
    }

    fn func_code(&self) -> u8 {
        self.func_code
    }

    fn aux_role(&self) -> AuxRole {
        AuxRole::Unused
    }

    fn can_dispatch(&self) -> bool {
        self.busy.is_none() && self.out.is_none()
    }

    fn dispatch(&mut self, pkt: DispatchPacket) {
        assert!(self.can_dispatch(), "dispatch to busy histogram unit");
        let work = match pkt.variety {
            HIST_CLEAR => Work::Clear { next: 0 },
            HIST_ACCUM => {
                let bin = (pkt.ops[0].as_u64() as u32 & self.mask()) as usize;
                let add = pkt.ops[1].as_u64() as u32;
                let (sum, sat) = self.bins[bin].overflowing_add(add);
                self.bins[bin] = if sat { u32::MAX } else { sum };
                Work::Finish {
                    result: None,
                    error: sat,
                }
            }
            HIST_READ => {
                let bin = (pkt.ops[0].as_u64() as u32 & self.mask()) as usize;
                Work::Finish {
                    result: Some(self.bins[bin]),
                    error: false,
                }
            }
            HIST_TOTAL => Work::Total { next: 0, acc: 0 },
            _ => Work::Finish {
                result: None,
                error: true, // unknown variety
            },
        };
        self.busy = Some((work, pkt));
    }

    fn peek_output(&self) -> Option<&FuOutput> {
        self.out.as_ref()
    }

    fn ack_output(&mut self) -> FuOutput {
        self.out.take().expect("ack with no pending output")
    }

    fn is_idle(&self) -> bool {
        self.busy.is_none() && self.out.is_none()
    }

    fn variety_writes_data(&self, variety: u8) -> bool {
        matches!(variety, HIST_READ | HIST_TOTAL)
    }

    fn variety_reads_srcs(&self, variety: u8) -> [bool; 3] {
        match variety {
            HIST_ACCUM => [true, true, false],
            HIST_READ => [true, false, false],
            _ => [false, false, false],
        }
    }

    fn clone_unit(&self) -> Option<Box<dyn FunctionalUnit>> {
        Some(Box::new(self.clone()))
    }

    fn area(&self) -> AreaEstimate {
        AreaEstimate::fifo(32, self.bins.len() as u64) // BRAM-resident bins
            + AreaEstimate::adder(32)
            + AreaEstimate::register(64 + 8)
    }

    fn critical_path(&self) -> CriticalPath {
        CriticalPath::adder(32).then(CriticalPath::of(2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fu_rtm::protocol::LockTicket;

    fn pkt(variety: u8, a: u64, b: u64) -> DispatchPacket {
        DispatchPacket {
            variety,
            ops: [Word::from_u64(a, 32), Word::from_u64(b, 32), Word::zero(32)],
            flags_in: Flags::NONE,
            dst_reg: 1,
            dst2_reg: None,
            dst_flag: 0,
            imm8: 0,
            ticket: LockTicket::default(),
            seq: 0,
        }
    }

    fn run(fu: &mut HistogramFu, variety: u8, a: u64, b: u64) -> (Option<u64>, Flags, u32) {
        fu.dispatch(pkt(variety, a, b));
        let mut cycles = 0;
        while fu.peek_output().is_none() {
            fu.commit();
            cycles += 1;
            assert!(cycles < 10_000, "operation never completed");
        }
        let out = fu.ack_output();
        (
            out.data.map(|(_, v)| v.as_u64()),
            out.flags.unwrap().1,
            cycles,
        )
    }

    #[test]
    fn accumulate_and_read() {
        let mut fu = HistogramFu::new(16, 32);
        run(&mut fu, HIST_ACCUM, 3, 1);
        run(&mut fu, HIST_ACCUM, 3, 4);
        run(&mut fu, HIST_ACCUM, 5, 10);
        let (v, f, _) = run(&mut fu, HIST_READ, 3, 0);
        assert_eq!(v, Some(5));
        assert!(!f.zero());
        let (v, f, _) = run(&mut fu, HIST_READ, 7, 0);
        assert_eq!(v, Some(0));
        assert!(f.zero());
    }

    #[test]
    fn bin_index_wraps_by_mask() {
        let mut fu = HistogramFu::new(8, 32);
        run(&mut fu, HIST_ACCUM, 9, 2); // 9 & 7 == 1
        let (v, _, _) = run(&mut fu, HIST_READ, 1, 0);
        assert_eq!(v, Some(2));
    }

    #[test]
    fn total_sweeps_all_bins() {
        let mut fu = HistogramFu::new(8, 32);
        for i in 0..8u64 {
            run(&mut fu, HIST_ACCUM, i, i + 1);
        }
        let (v, _, cycles) = run(&mut fu, HIST_TOTAL, 0, 0);
        assert_eq!(v, Some((1..=8).sum::<u64>()));
        assert!(
            cycles >= 8,
            "a total is a bin-per-cycle sweep, took {cycles}"
        );
    }

    #[test]
    fn clear_is_a_sweep_too() {
        let mut fu = HistogramFu::new(16, 32);
        run(&mut fu, HIST_ACCUM, 0, 100);
        let (_, _, cycles) = run(&mut fu, HIST_CLEAR, 0, 0);
        assert!(cycles >= 16);
        assert!(fu.bins().iter().all(|&b| b == 0));
    }

    #[test]
    fn accumulate_saturates_with_error() {
        let mut fu = HistogramFu::new(2, 32);
        run(&mut fu, HIST_ACCUM, 0, u32::MAX as u64);
        let (_, f, _) = run(&mut fu, HIST_ACCUM, 0, 5);
        assert!(f.error(), "saturation reported");
        let (v, _, _) = run(&mut fu, HIST_READ, 0, 0);
        assert_eq!(v, Some(u32::MAX as u64));
    }

    #[test]
    fn unknown_variety_errors() {
        let mut fu = HistogramFu::new(2, 32);
        let (_, f, _) = run(&mut fu, 0x7f, 0, 0);
        assert!(f.error());
    }

    #[test]
    fn reset_clears_state() {
        let mut fu = HistogramFu::new(4, 32);
        run(&mut fu, HIST_ACCUM, 1, 7);
        fu.reset();
        assert!(fu.is_idle());
        assert!(fu.bins().iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        HistogramFu::new(12, 32);
    }
}
