//! An associative memory (CAM) — the paper's third stateful-unit example.
//!
//! A content-addressable memory holds `(key, value)` entries and answers
//! "which entry holds key k?" by comparing **every entry in parallel in a
//! single cycle** — the canonical circuit-parallelism structure (one
//! comparator per entry, an OR/priority tree to combine). Lookup cost is
//! O(1) cycles regardless of capacity, against a CPU's O(n) scan or
//! O(log n) probe chain.
//!
//! Varieties: [`CAM_WRITE`] (insert or update; error when full),
//! [`CAM_SEARCH`] (value out; carry flag = hit), [`CAM_INVALIDATE`]
//! (delete by key; zero flag = was absent), [`CAM_CLEAR`] (one entry per
//! cycle, a BRAM-valid sweep), [`CAM_COUNT`] (live-entry count from the
//! maintained population counter).

use fu_isa::{Flags, Word};
use fu_rtm::protocol::{AuxRole, DispatchPacket, FuOutput, FunctionalUnit};
use rtl_sim::area::log2_ceil;
use rtl_sim::{AreaEstimate, Clocked, CriticalPath};

/// Insert or update `key = ops[0], value = ops[1]`; error flag when full.
pub const CAM_WRITE: u8 = 0;
/// Search `key = ops[0]`; returns the value, carry flag = hit.
pub const CAM_SEARCH: u8 = 1;
/// Remove `key = ops[0]`; zero flag set when the key was absent.
pub const CAM_INVALIDATE: u8 = 2;
/// Invalidate every entry (multi-cycle sweep).
pub const CAM_CLEAR: u8 = 3;
/// Return the number of live entries.
pub const CAM_COUNT: u8 = 4;

/// Default function code for the CAM unit.
pub const CAM_FUNC_CODE: u8 = 26;

#[derive(Debug, Clone, Copy)]
enum Work {
    Clear { next: usize },
    Finish { result: Option<u32>, flags: Flags },
}

/// The associative-memory functional unit.
#[derive(Debug, Clone)]
pub struct CamFu {
    entries: Vec<Option<(u32, u32)>>,
    live: u32,
    busy: Option<(Work, DispatchPacket)>,
    out: Option<FuOutput>,
    word_bits: u32,
}

impl CamFu {
    /// A CAM with `capacity` entries on a `word_bits`-wide framework.
    pub fn new(capacity: usize, word_bits: u32) -> CamFu {
        assert!(capacity >= 1, "CAM needs at least one entry");
        CamFu {
            entries: vec![None; capacity],
            live: 0,
            busy: None,
            out: None,
            word_bits,
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Live entries.
    pub fn live(&self) -> u32 {
        self.live
    }

    /// Parallel match: index of the entry holding `key` (the priority
    /// encoder behind the comparator bank).
    fn find(&self, key: u32) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.is_some_and(|(k, _)| k == key))
    }

    fn first_free(&self) -> Option<usize> {
        self.entries.iter().position(Option::is_none)
    }
}

impl Clocked for CamFu {
    fn commit(&mut self) {
        let Some((work, pkt)) = self.busy.take() else {
            return;
        };
        match work {
            Work::Clear { next } => {
                if self.entries[next].take().is_some() {
                    self.live -= 1;
                }
                if next + 1 == self.entries.len() {
                    self.busy = Some((
                        Work::Finish {
                            result: None,
                            flags: Flags::NONE,
                        },
                        pkt,
                    ));
                } else {
                    self.busy = Some((Work::Clear { next: next + 1 }, pkt));
                }
            }
            Work::Finish { result, flags } => {
                let data = result
                    .filter(|_| self.variety_writes_data(pkt.variety))
                    .map(|v| (pkt.dst_reg, Word::from_u64(v as u64, self.word_bits)));
                self.out = Some(FuOutput {
                    data,
                    data2: None,
                    flags: Some((pkt.dst_flag, flags)),
                    ticket: pkt.ticket,
                    seq: pkt.seq,
                });
            }
        }
    }

    fn reset(&mut self) {
        self.entries.iter_mut().for_each(|e| *e = None);
        self.live = 0;
        self.busy = None;
        self.out = None;
    }
}

impl FunctionalUnit for CamFu {
    fn name(&self) -> &'static str {
        "cam"
    }

    fn func_code(&self) -> u8 {
        CAM_FUNC_CODE
    }

    fn aux_role(&self) -> AuxRole {
        AuxRole::Unused
    }

    fn can_dispatch(&self) -> bool {
        self.busy.is_none() && self.out.is_none()
    }

    fn dispatch(&mut self, pkt: DispatchPacket) {
        assert!(self.can_dispatch(), "dispatch to busy CAM unit");
        let key = pkt.ops[0].as_u64() as u32;
        let value = pkt.ops[1].as_u64() as u32;
        let work = match pkt.variety {
            CAM_WRITE => match self.find(key).or_else(|| self.first_free()) {
                Some(slot) => {
                    if self.entries[slot].is_none() {
                        self.live += 1;
                    }
                    self.entries[slot] = Some((key, value));
                    Work::Finish {
                        result: None,
                        flags: Flags::NONE,
                    }
                }
                None => {
                    let mut flags = Flags::NONE;
                    flags.set(Flags::ERROR, true);
                    Work::Finish {
                        result: None,
                        flags,
                    }
                }
            },
            CAM_SEARCH => match self.find(key) {
                Some(slot) => {
                    let (_, v) = self.entries[slot].expect("matched entry");
                    Work::Finish {
                        result: Some(v),
                        flags: Flags::from_parts(true, v == 0, false, false),
                    }
                }
                None => Work::Finish {
                    result: Some(0),
                    flags: Flags::from_parts(false, true, false, false),
                },
            },
            CAM_INVALIDATE => match self.find(key) {
                Some(slot) => {
                    self.entries[slot] = None;
                    self.live -= 1;
                    Work::Finish {
                        result: None,
                        flags: Flags::from_parts(false, false, false, false),
                    }
                }
                None => Work::Finish {
                    result: None,
                    flags: Flags::from_parts(false, true, false, false),
                },
            },
            CAM_CLEAR => Work::Clear { next: 0 },
            CAM_COUNT => Work::Finish {
                result: Some(self.live),
                flags: Flags::from_parts(false, self.live == 0, false, false),
            },
            _ => {
                let mut flags = Flags::NONE;
                flags.set(Flags::ERROR, true);
                Work::Finish {
                    result: None,
                    flags,
                }
            }
        };
        self.busy = Some((work, pkt));
    }

    fn peek_output(&self) -> Option<&FuOutput> {
        self.out.as_ref()
    }

    fn ack_output(&mut self) -> FuOutput {
        self.out.take().expect("ack with no pending output")
    }

    fn is_idle(&self) -> bool {
        self.busy.is_none() && self.out.is_none()
    }

    fn variety_writes_data(&self, variety: u8) -> bool {
        matches!(variety, CAM_SEARCH | CAM_COUNT)
    }

    fn variety_reads_srcs(&self, variety: u8) -> [bool; 3] {
        match variety {
            CAM_WRITE => [true, true, false],
            CAM_SEARCH | CAM_INVALIDATE => [true, false, false],
            _ => [false, false, false],
        }
    }

    fn clone_unit(&self) -> Option<Box<dyn FunctionalUnit>> {
        Some(Box::new(self.clone()))
    }

    fn area(&self) -> AreaEstimate {
        // The defining cost: a comparator + key/value registers per
        // entry, plus the priority/OR combine tree.
        let n = self.entries.len() as u64;
        AreaEstimate {
            les: n * (AreaEstimate::comparator(32).les + 2),
            ffs: n * (32 + 32 + 1),
            bram_bits: 0,
        } + AreaEstimate::mux2(32 * log2_ceil(n.max(2)))
    }

    fn critical_path(&self) -> CriticalPath {
        // Key comparators in parallel (an AND-reduce over the key bits),
        // then the combine tree over the entries.
        CriticalPath::tree(32, 4).then(CriticalPath::tree(self.entries.len() as u64, 2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fu_rtm::protocol::LockTicket;

    fn pkt(variety: u8, key: u64, value: u64) -> DispatchPacket {
        DispatchPacket {
            variety,
            ops: [
                Word::from_u64(key, 32),
                Word::from_u64(value, 32),
                Word::zero(32),
            ],
            flags_in: Flags::NONE,
            dst_reg: 1,
            dst2_reg: None,
            dst_flag: 0,
            imm8: 0,
            ticket: LockTicket::default(),
            seq: 0,
        }
    }

    fn run(fu: &mut CamFu, variety: u8, key: u64, value: u64) -> (Option<u64>, Flags, u32) {
        fu.dispatch(pkt(variety, key, value));
        let mut cycles = 0;
        while fu.peek_output().is_none() {
            fu.commit();
            cycles += 1;
            assert!(cycles < 100_000);
        }
        let out = fu.ack_output();
        (
            out.data.map(|(_, v)| v.as_u64()),
            out.flags.unwrap().1,
            cycles,
        )
    }

    #[test]
    fn write_search_roundtrip() {
        let mut fu = CamFu::new(8, 32);
        run(&mut fu, CAM_WRITE, 0xaaaa, 111);
        run(&mut fu, CAM_WRITE, 0xbbbb, 222);
        let (v, f, cycles) = run(&mut fu, CAM_SEARCH, 0xaaaa, 0);
        assert_eq!(v, Some(111));
        assert!(f.carry(), "hit flag");
        assert_eq!(cycles, 1, "a CAM search is single-cycle regardless of size");
        let (v, f, _) = run(&mut fu, CAM_SEARCH, 0xcccc, 0);
        assert_eq!(v, Some(0));
        assert!(!f.carry() && f.zero(), "miss");
    }

    #[test]
    fn search_cost_is_independent_of_capacity() {
        let mut small = CamFu::new(2, 32);
        let mut big = CamFu::new(1024, 32);
        run(&mut small, CAM_WRITE, 1, 1);
        run(&mut big, CAM_WRITE, 1, 1);
        let (_, _, c_small) = run(&mut small, CAM_SEARCH, 1, 0);
        let (_, _, c_big) = run(&mut big, CAM_SEARCH, 1, 0);
        assert_eq!(c_small, c_big, "parallel comparators: O(1) cycles");
        // The cost shows up as area, not time.
        assert!(big.area().components() > 100 * small.area().components());
    }

    #[test]
    fn update_in_place() {
        let mut fu = CamFu::new(4, 32);
        run(&mut fu, CAM_WRITE, 5, 10);
        run(&mut fu, CAM_WRITE, 5, 20);
        assert_eq!(fu.live(), 1, "update must not allocate a second entry");
        let (v, _, _) = run(&mut fu, CAM_SEARCH, 5, 0);
        assert_eq!(v, Some(20));
    }

    #[test]
    fn full_cam_reports_error() {
        let mut fu = CamFu::new(2, 32);
        run(&mut fu, CAM_WRITE, 1, 1);
        run(&mut fu, CAM_WRITE, 2, 2);
        let (_, f, _) = run(&mut fu, CAM_WRITE, 3, 3);
        assert!(f.error());
        assert_eq!(fu.live(), 2);
        // Updating an existing key still works when full.
        let (_, f, _) = run(&mut fu, CAM_WRITE, 1, 99);
        assert!(!f.error());
    }

    #[test]
    fn invalidate_and_count() {
        let mut fu = CamFu::new(4, 32);
        run(&mut fu, CAM_WRITE, 1, 10);
        run(&mut fu, CAM_WRITE, 2, 20);
        let (v, _, _) = run(&mut fu, CAM_COUNT, 0, 0);
        assert_eq!(v, Some(2));
        let (_, f, _) = run(&mut fu, CAM_INVALIDATE, 1, 0);
        assert!(!f.zero(), "found and removed");
        let (_, f, _) = run(&mut fu, CAM_INVALIDATE, 1, 0);
        assert!(f.zero(), "second removal misses");
        let (v, _, _) = run(&mut fu, CAM_COUNT, 0, 0);
        assert_eq!(v, Some(1));
        // The freed slot is reusable.
        run(&mut fu, CAM_WRITE, 7, 70);
        let (v, _, _) = run(&mut fu, CAM_SEARCH, 7, 0);
        assert_eq!(v, Some(70));
    }

    #[test]
    fn clear_sweeps_per_entry() {
        let mut fu = CamFu::new(16, 32);
        for k in 0..10u64 {
            run(&mut fu, CAM_WRITE, k, k);
        }
        let (_, _, cycles) = run(&mut fu, CAM_CLEAR, 0, 0);
        assert!(cycles >= 16, "clear sweeps the valid bits, took {cycles}");
        let (v, _, _) = run(&mut fu, CAM_COUNT, 0, 0);
        assert_eq!(v, Some(0));
    }

    #[test]
    fn unknown_variety_errors() {
        let mut fu = CamFu::new(2, 32);
        let (_, f, _) = run(&mut fu, 0x70, 0, 0);
        assert!(f.error());
    }
}
