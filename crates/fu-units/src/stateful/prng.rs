//! A pseudorandom number generator — the paper's second stateful-unit
//! example.
//!
//! The classic FPGA PRNG is a linear-feedback shift register: one XOR
//! mask and a shift per cycle. [`PrngFu`] implements a 32-bit
//! maximal-length **Galois LFSR** (period 2³²−1) with three varieties:
//! [`PRNG_SEED`], [`PRNG_NEXT`] (one step, returns the new state) and
//! [`PRNG_SKIP`] (advance `ops[0]` steps at one step per cycle — the
//! honest hardware cost of discarding outputs).

use fu_isa::{Flags, Word};
use fu_rtm::protocol::{AuxRole, DispatchPacket, FuOutput, FunctionalUnit};
use rtl_sim::{AreaEstimate, Clocked, CriticalPath};

/// Load the state from `ops[0]` (a zero seed is coerced to 1: the LFSR's
/// zero state is absorbing and excluded from the sequence).
pub const PRNG_SEED: u8 = 0;
/// Step once and return the new state.
pub const PRNG_NEXT: u8 = 1;
/// Step `ops[0]` times (one per cycle), returning the final state.
pub const PRNG_SKIP: u8 = 2;

/// Default function code for the PRNG unit.
pub const PRNG_FUNC_CODE: u8 = 25;

/// Feedback mask of a maximal-length 32-bit Galois LFSR in right-shift
/// form (a standard published tap set; period 2³²−1).
pub const LFSR_MASK: u32 = 0xB4BC_D35C;

/// One Galois-LFSR step (right shift; XOR the taps when the low bit is
/// set — one layer of XOR gates in hardware).
pub fn lfsr_step(state: u32) -> u32 {
    let shifted = state >> 1;
    if state & 1 == 1 {
        shifted ^ LFSR_MASK
    } else {
        shifted
    }
}

/// The PRNG functional unit.
#[derive(Debug, Clone)]
pub struct PrngFu {
    state: u32,
    busy: Option<(u32, DispatchPacket)>, // remaining steps
    out: Option<FuOutput>,
    word_bits: u32,
}

impl PrngFu {
    /// A PRNG seeded with 1 on a `word_bits`-wide framework.
    pub fn new(word_bits: u32) -> PrngFu {
        PrngFu {
            state: 1,
            busy: None,
            out: None,
            word_bits,
        }
    }

    /// Current LFSR state (diagnostics).
    pub fn state(&self) -> u32 {
        self.state
    }

    fn finish(&mut self, pkt: &DispatchPacket, result: Option<u32>) {
        let data = result
            .filter(|_| self.variety_writes_data(pkt.variety))
            .map(|v| (pkt.dst_reg, Word::from_u64(v as u64, self.word_bits)));
        let flags = Flags::from_parts(false, result == Some(0), false, false);
        self.out = Some(FuOutput {
            data,
            data2: None,
            flags: Some((pkt.dst_flag, flags)),
            ticket: pkt.ticket,
            seq: pkt.seq,
        });
    }
}

impl Clocked for PrngFu {
    fn commit(&mut self) {
        let Some((remaining, pkt)) = self.busy.take() else {
            return;
        };
        if remaining == 0 {
            let result = match pkt.variety {
                PRNG_SEED => None,
                _ => Some(self.state),
            };
            self.finish(&pkt, result);
            return;
        }
        self.state = lfsr_step(self.state);
        self.busy = Some((remaining - 1, pkt));
    }

    fn reset(&mut self) {
        self.state = 1;
        self.busy = None;
        self.out = None;
    }
}

impl FunctionalUnit for PrngFu {
    fn name(&self) -> &'static str {
        "prng"
    }

    fn func_code(&self) -> u8 {
        PRNG_FUNC_CODE
    }

    fn aux_role(&self) -> AuxRole {
        AuxRole::Unused
    }

    fn can_dispatch(&self) -> bool {
        self.busy.is_none() && self.out.is_none()
    }

    fn dispatch(&mut self, pkt: DispatchPacket) {
        assert!(self.can_dispatch(), "dispatch to busy PRNG unit");
        let steps = match pkt.variety {
            PRNG_SEED => {
                let seed = pkt.ops[0].as_u64() as u32;
                self.state = if seed == 0 { 1 } else { seed };
                0
            }
            PRNG_NEXT => 1,
            PRNG_SKIP => (pkt.ops[0].as_u64() as u32).max(1),
            _ => 0,
        };
        self.busy = Some((steps, pkt));
    }

    fn peek_output(&self) -> Option<&FuOutput> {
        self.out.as_ref()
    }

    fn ack_output(&mut self) -> FuOutput {
        self.out.take().expect("ack with no pending output")
    }

    fn is_idle(&self) -> bool {
        self.busy.is_none() && self.out.is_none()
    }

    fn variety_writes_data(&self, variety: u8) -> bool {
        variety != PRNG_SEED
    }

    fn variety_reads_srcs(&self, variety: u8) -> [bool; 3] {
        match variety {
            PRNG_SEED | PRNG_SKIP => [true, false, false],
            _ => [false, false, false],
        }
    }

    fn clone_unit(&self) -> Option<Box<dyn FunctionalUnit>> {
        Some(Box::new(self.clone()))
    }

    fn area(&self) -> AreaEstimate {
        // 32 FFs + a handful of XOR taps: famously tiny.
        AreaEstimate {
            les: 6,
            ffs: 32 + 8,
            bram_bits: 0,
        }
    }

    fn critical_path(&self) -> CriticalPath {
        CriticalPath::of(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fu_rtm::protocol::LockTicket;

    fn pkt(variety: u8, a: u64) -> DispatchPacket {
        DispatchPacket {
            variety,
            ops: [Word::from_u64(a, 32), Word::zero(32), Word::zero(32)],
            flags_in: Flags::NONE,
            dst_reg: 1,
            dst2_reg: None,
            dst_flag: 0,
            imm8: 0,
            ticket: LockTicket::default(),
            seq: 0,
        }
    }

    fn run(fu: &mut PrngFu, variety: u8, a: u64) -> (Option<u64>, u32) {
        fu.dispatch(pkt(variety, a));
        let mut cycles = 0;
        while fu.peek_output().is_none() {
            fu.commit();
            cycles += 1;
            assert!(cycles < 10_000_000);
        }
        let out = fu.ack_output();
        (out.data.map(|(_, v)| v.as_u64()), cycles)
    }

    #[test]
    fn deterministic_sequence_from_seed() {
        let mut a = PrngFu::new(32);
        let mut b = PrngFu::new(32);
        run(&mut a, PRNG_SEED, 0xdead_beef);
        run(&mut b, PRNG_SEED, 0xdead_beef);
        for _ in 0..64 {
            assert_eq!(run(&mut a, PRNG_NEXT, 0).0, run(&mut b, PRNG_NEXT, 0).0);
        }
    }

    #[test]
    fn never_reaches_zero_and_no_short_cycle() {
        let mut fu = PrngFu::new(32);
        run(&mut fu, PRNG_SEED, 1);
        let first = run(&mut fu, PRNG_NEXT, 0).0.unwrap();
        let mut seen_first_again = 0;
        for _ in 0..10_000 {
            let v = run(&mut fu, PRNG_NEXT, 0).0.unwrap();
            assert_ne!(v, 0, "LFSR must never reach the absorbing zero state");
            if v == first {
                seen_first_again += 1;
            }
        }
        assert_eq!(
            seen_first_again, 0,
            "period must exceed 10k for a 2^32-1 LFSR"
        );
    }

    #[test]
    fn skip_costs_one_cycle_per_step() {
        let mut fu = PrngFu::new(32);
        run(&mut fu, PRNG_SEED, 7);
        let (_, c100) = run(&mut fu, PRNG_SKIP, 100);
        assert!(
            c100 >= 100,
            "skip(100) must take >= 100 cycles, took {c100}"
        );
        // skip(n) == n × next.
        let mut a = PrngFu::new(32);
        run(&mut a, PRNG_SEED, 7);
        let (skipped, _) = run(&mut a, PRNG_SKIP, 10);
        let mut b = PrngFu::new(32);
        run(&mut b, PRNG_SEED, 7);
        let mut last = 0;
        for _ in 0..10 {
            last = run(&mut b, PRNG_NEXT, 0).0.unwrap();
        }
        assert_eq!(skipped, Some(last));
    }

    #[test]
    fn zero_seed_coerced() {
        let mut fu = PrngFu::new(32);
        run(&mut fu, PRNG_SEED, 0);
        assert_eq!(fu.state(), 1);
        assert!(run(&mut fu, PRNG_NEXT, 0).0.unwrap() != 0);
    }

    #[test]
    fn bits_look_balanced() {
        // Cheap sanity: over 4096 outputs, each bit position should be
        // set roughly half the time.
        let mut fu = PrngFu::new(32);
        run(&mut fu, PRNG_SEED, 12345);
        let mut ones = [0u32; 32];
        let n = 4096;
        for _ in 0..n {
            let v = run(&mut fu, PRNG_NEXT, 0).0.unwrap() as u32;
            for (i, cnt) in ones.iter_mut().enumerate() {
                *cnt += (v >> i) & 1;
            }
        }
        for (i, &c) in ones.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!(
                (0.40..0.60).contains(&frac),
                "bit {i} set {frac:.3} of the time"
            );
        }
    }

    #[test]
    fn seed_produces_no_data_write() {
        let fu = PrngFu::new(32);
        assert!(!fu.variety_writes_data(PRNG_SEED));
        assert!(fu.variety_writes_data(PRNG_NEXT));
    }
}
