//! The logic unit of the stateless case study (thesis Table 3.2).
//!
//! "The logic unit is able to do a variety of basic bitwise logic
//! operations. All operations are applied to the first and second source
//! operand in the case of two input operands and to the first operand in
//! the case \[of\] one input operand."
//!
//! The variety code carries a 2-input truth table (see
//! [`fu_isa::variety::LogicVariety`]) — the natural encoding for a LUT
//! fabric, where *any* of the 16 bitwise functions costs the same silicon.

use crate::kernel::{Kernel, KernelOutput};
use fu_isa::variety::LogicVariety;
use fu_isa::{funit_codes, Word};
use fu_rtm::protocol::DispatchPacket;
use rtl_sim::{AreaEstimate, CriticalPath};

/// The Table 3.2 logic kernel.
#[derive(Debug, Clone)]
pub struct LogicKernel {
    word_bits: u32,
}

impl LogicKernel {
    /// A logic kernel for `word_bits`-wide registers.
    pub fn new(word_bits: u32) -> LogicKernel {
        let _ = Word::zero(word_bits);
        LogicKernel { word_bits }
    }
}

impl Kernel for LogicKernel {
    fn name(&self) -> &'static str {
        "logic"
    }

    fn func_code(&self) -> u8 {
        funit_codes::LOGIC
    }

    fn word_bits(&self) -> u32 {
        self.word_bits
    }

    fn compute(&self, pkt: &DispatchPacket) -> KernelOutput {
        let v = LogicVariety(pkt.variety);
        let (data, flags) = v.evaluate(&pkt.ops[0], &pkt.ops[1]);
        KernelOutput {
            data,
            data2: None,
            flags: Some(flags),
        }
    }

    fn writes_data(&self, variety: u8) -> bool {
        LogicVariety(variety).outputs_data()
    }

    fn reads_srcs(&self, variety: u8) -> [bool; 3] {
        let t = variety & LogicVariety::TABLE;
        // The first operand matters when the table differs between a=0
        // and a=1 rows; likewise for the second operand's columns.
        let reads_a = (t & 0b0011) != ((t >> 2) & 0b0011);
        let reads_b = (t & 0b0101) != ((t >> 1) & 0b0101);
        [reads_a, reads_b, false]
    }

    fn area(&self) -> AreaEstimate {
        // One 4-LUT per output bit: the truth table *is* the LUT content.
        AreaEstimate {
            les: self.word_bits as u64,
            ffs: 0,
            bram_bits: 0,
        }
    }

    fn critical_path(&self) -> CriticalPath {
        CriticalPath::of(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimal::MinimalFu;
    use fu_isa::variety::LogicOp;
    use fu_isa::Flags;
    use fu_rtm::protocol::{FunctionalUnit, LockTicket};
    use proptest::prelude::*;
    use rtl_sim::Clocked;

    fn pkt(variety: u8, a: u64, b: u64) -> DispatchPacket {
        DispatchPacket {
            variety,
            ops: [Word::from_u64(a, 32), Word::from_u64(b, 32), Word::zero(32)],
            flags_in: Flags::NONE,
            dst_reg: 1,
            dst2_reg: None,
            dst_flag: 0,
            imm8: 0,
            ticket: LockTicket::default(),
            seq: 0,
        }
    }

    #[test]
    fn named_ops_compute_expected_values() {
        let k = LogicKernel::new(32);
        let a = 0xf0f0_1234u64;
        let b = 0x0ff0_4321u64;
        let eval = |op: LogicOp| {
            k.compute(&pkt(op.variety().0, a, b))
                .data
                .map(|d| d.as_u64())
        };
        assert_eq!(eval(LogicOp::And), Some(a & b));
        assert_eq!(eval(LogicOp::Or), Some(a | b));
        assert_eq!(eval(LogicOp::Xor), Some(a ^ b));
        assert_eq!(eval(LogicOp::Nand), Some(!(a & b) & 0xffff_ffff));
        assert_eq!(eval(LogicOp::Nor), Some(!(a | b) & 0xffff_ffff));
        assert_eq!(eval(LogicOp::Xnor), Some(!(a ^ b) & 0xffff_ffff));
        assert_eq!(eval(LogicOp::Not), Some(!a & 0xffff_ffff));
        assert_eq!(eval(LogicOp::Andn), Some(a & !b));
        assert_eq!(eval(LogicOp::Copy), Some(a));
        assert_eq!(eval(LogicOp::Test), None);
    }

    #[test]
    fn operand_dependence_derived_from_table() {
        let k = LogicKernel::new(32);
        assert_eq!(k.reads_srcs(LogicOp::And.variety().0), [true, true, false]);
        assert_eq!(k.reads_srcs(LogicOp::Not.variety().0), [true, false, false]);
        assert_eq!(
            k.reads_srcs(LogicOp::Copy.variety().0),
            [true, false, false]
        );
        // Constant-0 and constant-1 tables read nothing.
        assert_eq!(k.reads_srcs(0b0000), [false, false, false]);
        assert_eq!(k.reads_srcs(0b1111), [false, false, false]);
    }

    #[test]
    fn test_op_writes_flags_only() {
        let mut fu = MinimalFu::new(LogicKernel::new(32), false);
        fu.dispatch(pkt(LogicOp::Test.variety().0, 0b1100, 0b0011));
        fu.commit();
        let out = fu.ack_output();
        assert!(out.data.is_none());
        assert!(out.flags.unwrap().1.zero(), "1100 & 0011 == 0");
    }

    proptest! {
        #[test]
        fn prop_every_table_is_a_pure_bitwise_function(t in 0u8..16, a: u32, b: u32) {
            let k = LogicKernel::new(32);
            let v = LogicVariety::from_table(t).0;
            let out = k.compute(&pkt(v, a as u64, b as u64)).data.unwrap().as_u64() as u32;
            for bit in 0..32 {
                let ai = (a >> bit) & 1;
                let bi = (b >> bit) & 1;
                prop_assert_eq!((out >> bit) & 1, ((t >> (2 * ai + bi)) & 1) as u32);
            }
        }

        #[test]
        fn prop_unread_operands_do_not_matter(t in 0u8..16, a: u32, b1: u32, b2: u32) {
            let k = LogicKernel::new(32);
            let v = LogicVariety::from_table(t).0;
            let [_, reads_b, _] = k.reads_srcs(v);
            if !reads_b {
                let o1 = k.compute(&pkt(v, a as u64, b1 as u64));
                let o2 = k.compute(&pkt(v, a as u64, b2 as u64));
                prop_assert_eq!(o1, o2, "declared-unread operand changed the result");
            }
        }
    }
}
