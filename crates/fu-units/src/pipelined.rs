//! The performance-optimised pipelined skeleton (thesis §2.3.4 /
//! Figure 2.19).
//!
//! "For maximum performance and throughput, the functionally effective
//! logic contained in the functional unit is implemented in a pipeline
//! which is able to receive a new instruction either every clock cycle or
//! at least every kth clock cycle. … the functional unit becomes only busy
//! towards the dispatcher if the FIFO buffers contained in the functional
//! unit are full. … It is recommended to configure the FIFO buffers to be
//! able to hold more data elements than there are pipeline stages in the
//! functional unit pipeline."
//!
//! [`PipelinedFu`] models exactly this: a `stages`-deep pipeline whose
//! completions drain into a result FIFO of `fifo_depth` entries.
//! Occupancy (pipeline + FIFO) is bounded by the FIFO depth — the
//! conservative admission rule the thesis derives from the observation
//! that "the number of elements stored in any one of the FIFO buffers will
//! never exceed the number of elements stored in the FIFO buffers
//! buffering register numbers for data output".

use std::collections::VecDeque;

use crate::kernel::{make_output, Kernel};
use fu_rtm::protocol::{AuxRole, DispatchPacket, FuOutput, FunctionalUnit};
use rtl_sim::{AreaEstimate, Clocked, CriticalPath};

/// Pipelined-skeleton wrapper around a combinational kernel.
#[derive(Debug, Clone)]
pub struct PipelinedFu<K: Kernel> {
    kernel: K,
    stages: u32,
    fifo_depth: usize,
    /// In-flight instructions: (cycles until completion, computed output).
    pipe: VecDeque<(u32, FuOutput)>,
    /// Completed results awaiting the write arbiter.
    fifo: VecDeque<FuOutput>,
    /// Dispatch accepted this evaluate phase (enters the pipe at commit).
    staged: Option<FuOutput>,
    high_water: usize,
}

impl<K: Kernel> PipelinedFu<K> {
    /// Wrap `kernel` in a `stages`-deep pipeline backed by a
    /// `fifo_depth`-entry result FIFO.
    ///
    /// # Panics
    /// Panics when `stages == 0`, `fifo_depth == 0`, or the FIFO is not
    /// deeper than the pipeline (the thesis's sizing recommendation is
    /// enforced: a shallower FIFO deadlocks the admission rule).
    pub fn new(kernel: K, stages: u32, fifo_depth: usize) -> PipelinedFu<K> {
        assert!(stages >= 1, "pipeline needs at least one stage");
        assert!(
            fifo_depth > stages as usize,
            "FIFO depth ({fifo_depth}) must exceed pipeline stages ({stages})"
        );
        PipelinedFu {
            kernel,
            stages,
            fifo_depth,
            pipe: VecDeque::new(),
            fifo: VecDeque::new(),
            staged: None,
            high_water: 0,
        }
    }

    /// Pipeline depth.
    pub fn stages(&self) -> u32 {
        self.stages
    }

    /// Result-FIFO capacity.
    pub fn fifo_depth(&self) -> usize {
        self.fifo_depth
    }

    /// Peak combined occupancy observed (for the A3 sizing ablation).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    fn occupancy(&self) -> usize {
        self.pipe.len() + self.fifo.len() + self.staged.is_some() as usize
    }
}

impl<K: Kernel> Clocked for PipelinedFu<K> {
    fn commit(&mut self) {
        // Advance the pipeline; the commit that admits an instruction is
        // its first stage latch, so an instruction dispatched in cycle t
        // is visible to the arbiter in cycle t + stages.
        for entry in &mut self.pipe {
            entry.0 -= 1;
        }
        if let Some(out) = self.staged.take() {
            self.pipe.push_back((self.stages - 1, out));
        }
        while self.pipe.front().is_some_and(|(c, _)| *c == 0) {
            let (_, out) = self.pipe.pop_front().expect("checked front");
            self.fifo.push_back(out);
        }
        self.high_water = self.high_water.max(self.occupancy());
        debug_assert!(self.fifo.len() <= self.fifo_depth);
    }

    fn reset(&mut self) {
        self.pipe.clear();
        self.fifo.clear();
        self.staged = None;
        self.high_water = 0;
    }
}

impl<K: Kernel> FunctionalUnit for PipelinedFu<K> {
    fn name(&self) -> &'static str {
        self.kernel.name()
    }

    fn func_code(&self) -> u8 {
        self.kernel.func_code()
    }

    fn aux_role(&self) -> AuxRole {
        self.kernel.aux_role()
    }

    fn can_dispatch(&self) -> bool {
        // Busy towards the dispatcher only when the FIFOs are full (in
        // the conservative occupancy sense above).
        self.staged.is_none() && self.occupancy() < self.fifo_depth
    }

    fn dispatch(&mut self, pkt: DispatchPacket) {
        assert!(self.can_dispatch(), "dispatch to full pipelined unit");
        let result = self.kernel.compute(&pkt);
        self.staged = Some(make_output(&pkt, result));
    }

    fn peek_output(&self) -> Option<&FuOutput> {
        self.fifo.front()
    }

    fn ack_output(&mut self) -> FuOutput {
        self.fifo.pop_front().expect("ack with no pending output")
    }

    fn is_idle(&self) -> bool {
        self.occupancy() == 0
    }

    fn wake_hint(&self) -> Option<u64> {
        // With the result FIFO empty the oldest in-flight instruction
        // emerges after its remaining stage count; nothing observable
        // happens earlier (admission capacity only shrinks on dispatch,
        // which a quiet span excludes). A staged dispatch latches at the
        // next edge.
        if !self.fifo.is_empty() {
            return None;
        }
        if self.staged.is_some() {
            return Some(1);
        }
        self.pipe.front().map(|&(c, _)| u64::from(c.max(1)))
    }

    fn variety_writes_data(&self, v: u8) -> bool {
        self.kernel.writes_data(v)
    }

    fn variety_writes_flags(&self, v: u8) -> bool {
        self.kernel.writes_flags(v)
    }

    fn variety_reads_flags(&self, v: u8) -> bool {
        self.kernel.reads_flags(v)
    }

    fn variety_reads_srcs(&self, v: u8) -> [bool; 3] {
        self.kernel.reads_srcs(v)
    }

    fn clone_unit(&self) -> Option<Box<dyn FunctionalUnit>> {
        Some(Box::new(self.clone()))
    }

    fn area(&self) -> AreaEstimate {
        // Kernel spread over pipeline registers plus the result FIFOs —
        // "uses a lot of FPGA resources and especially on-chip SRAM
        // blocks consumed by the FIFO buffers".
        let w = self.kernel.word_bits() as u64;
        self.kernel.area()
            + AreaEstimate::register(self.stages as u64 * (w + 16))
            + AreaEstimate::fifo(w + 8, self.fifo_depth as u64)
            + AreaEstimate::fifo(8 + 8, self.fifo_depth as u64)
    }

    fn critical_path(&self) -> CriticalPath {
        // The kernel is cut into `stages` pieces.
        let per_stage = self
            .kernel
            .critical_path()
            .levels
            .div_ceil(self.stages as u64);
        CriticalPath::of(per_stage.max(2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::testutil::{pkt, IdKernel};

    fn unit(stages: u32, depth: usize) -> PipelinedFu<IdKernel> {
        PipelinedFu::new(IdKernel { bits: 32 }, stages, depth)
    }

    #[test]
    #[should_panic(expected = "must exceed pipeline stages")]
    fn shallow_fifo_rejected() {
        unit(4, 4);
    }

    #[test]
    fn sustains_one_dispatch_per_cycle_with_draining_arbiter() {
        let mut fu = unit(3, 8);
        let mut dispatched = 0u32;
        let mut completed = 0u32;
        for _ in 0..50 {
            if fu.peek_output().is_some() {
                fu.ack_output();
                completed += 1;
            }
            if fu.can_dispatch() {
                fu.dispatch(pkt(0, dispatched as u64, 0, 32));
                dispatched += 1;
            }
            fu.commit();
        }
        assert_eq!(dispatched, 50, "full throughput while the arbiter drains");
        assert!(
            completed >= 45,
            "completions track dispatches minus latency"
        );
    }

    #[test]
    fn results_emerge_in_order_after_latency() {
        let mut fu = unit(3, 8);
        fu.dispatch(pkt(0, 100, 0, 32));
        fu.commit();
        fu.dispatch(pkt(0, 200, 0, 32));
        fu.commit();
        assert!(
            fu.peek_output().is_none(),
            "latency 3: nothing after 2 cycles"
        );
        fu.commit();
        assert_eq!(fu.peek_output().unwrap().data.unwrap().1.as_u64(), 100);
        fu.ack_output();
        fu.commit();
        assert_eq!(fu.peek_output().unwrap().data.unwrap().1.as_u64(), 200);
    }

    #[test]
    fn fills_and_stalls_when_arbiter_never_acks() {
        let mut fu = unit(2, 5);
        let mut dispatched = 0;
        for _ in 0..20 {
            if fu.can_dispatch() {
                fu.dispatch(pkt(0, 1, 0, 32));
                dispatched += 1;
            }
            fu.commit();
        }
        assert_eq!(dispatched, 5, "occupancy bounded by FIFO depth");
        assert_eq!(fu.high_water(), 5);
        assert!(!fu.can_dispatch());
        // Draining one result opens one slot.
        fu.ack_output();
        assert!(fu.can_dispatch());
    }

    #[test]
    fn pipeline_keeps_filling_while_fifo_backs_up() {
        // The pipeline itself "does not need to stall its operation in
        // case of full FIFO buffers" — only admission stops.
        let mut fu = unit(3, 6);
        for i in 0..6 {
            assert!(fu.can_dispatch(), "slot {i} admitted");
            fu.dispatch(pkt(0, i, 0, 32));
            fu.commit();
        }
        // Never acked: after enough cycles all six sit in the FIFO.
        for _ in 0..5 {
            fu.commit();
        }
        let mut got = Vec::new();
        while fu.peek_output().is_some() {
            got.push(fu.ack_output().data.unwrap().1.as_u64());
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn deeper_pipeline_shortens_per_stage_path() {
        #[derive(Clone)]
        struct DeepKernel;
        impl Kernel for DeepKernel {
            fn name(&self) -> &'static str {
                "deep"
            }
            fn func_code(&self) -> u8 {
                9
            }
            fn word_bits(&self) -> u32 {
                32
            }
            fn compute(&self, _p: &DispatchPacket) -> crate::kernel::KernelOutput {
                crate::kernel::KernelOutput::default()
            }
            fn area(&self) -> AreaEstimate {
                AreaEstimate::ZERO
            }
            fn critical_path(&self) -> CriticalPath {
                CriticalPath::of(16)
            }
        }
        let one = PipelinedFu::new(DeepKernel, 1, 4).critical_path();
        let four = PipelinedFu::new(DeepKernel, 4, 8).critical_path();
        assert!(four < one);
    }

    #[test]
    fn reset_restores_empty() {
        let mut fu = unit(2, 4);
        fu.dispatch(pkt(0, 1, 0, 32));
        fu.commit();
        fu.commit();
        fu.commit();
        fu.reset();
        assert!(fu.is_idle());
        assert_eq!(fu.high_water(), 0);
    }
}
