//! Running a functional unit in a slower clock domain.
//!
//! "The designer might even choose to run parts of a functional unit
//! inside another clock domain or to communicate with off-chip components
//! from within a function unit." (thesis §2.3.4)
//!
//! [`ClockDomainFu`] wraps any [`FunctionalUnit`] and clocks it once every
//! `divider` system cycles — the standard trick for a deep combinational
//! core that cannot meet the controller's clock: run it at clock/k
//! instead of pipelining it. The wrapper models the synchronisers a real
//! clock crossing needs: dispatches are captured in the fast domain and
//! presented to the unit at its next slow edge; outputs are registered
//! back into the fast domain one fast cycle after the slow edge that
//! produced them. (Metastability windows are not modelled — the
//! simulation is deterministic — but the latency of the crossing is.)

use fu_rtm::protocol::{AuxRole, DispatchPacket, FuOutput, FunctionalUnit};
use rtl_sim::{AreaEstimate, Clocked, CriticalPath};

/// A unit clocked at `1/divider` of the system clock.
#[derive(Debug, Clone)]
pub struct ClockDomainFu<U: FunctionalUnit> {
    inner: U,
    divider: u32,
    phase: u32,
    /// Dispatch captured in the fast domain, awaiting the slow edge.
    pending_in: Option<DispatchPacket>,
    /// Output resynchronised into the fast domain.
    pending_out: Option<FuOutput>,
}

impl<U: FunctionalUnit> ClockDomainFu<U> {
    /// Wrap `inner`, clocking it every `divider` system cycles
    /// (`divider >= 1`; 1 is a transparent wrapper).
    pub fn new(inner: U, divider: u32) -> ClockDomainFu<U> {
        assert!(divider >= 1, "clock divider must be at least 1");
        ClockDomainFu {
            inner,
            divider,
            phase: 0,
            pending_in: None,
            pending_out: None,
        }
    }

    /// The clock divider.
    pub fn divider(&self) -> u32 {
        self.divider
    }

    /// The wrapped unit.
    pub fn inner(&self) -> &U {
        &self.inner
    }
}

impl<U: FunctionalUnit> Clocked for ClockDomainFu<U> {
    fn commit(&mut self) {
        self.phase += 1;
        if self.phase >= self.divider {
            self.phase = 0;
            // Slow-domain edge: deliver the synchronised dispatch, clock
            // the unit, capture any completed output.
            if let Some(pkt) = self.pending_in.take() {
                debug_assert!(self.inner.can_dispatch(), "admission checked at dispatch");
                self.inner.dispatch(pkt);
            }
            self.inner.commit();
            if self.pending_out.is_none() && self.inner.peek_output().is_some() {
                self.pending_out = Some(self.inner.ack_output());
            }
        }
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.phase = 0;
        self.pending_in = None;
        self.pending_out = None;
    }
}

impl<U: FunctionalUnit + Clone + 'static> FunctionalUnit for ClockDomainFu<U> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn func_code(&self) -> u8 {
        self.inner.func_code()
    }

    fn aux_role(&self) -> AuxRole {
        self.inner.aux_role()
    }

    fn can_dispatch(&self) -> bool {
        // One dispatch may wait at the crossing; the inner unit must be
        // able to take it at the next slow edge.
        self.pending_in.is_none() && self.inner.can_dispatch()
    }

    fn dispatch(&mut self, pkt: DispatchPacket) {
        assert!(self.can_dispatch(), "dispatch to busy clock-domain wrapper");
        self.pending_in = Some(pkt);
    }

    fn peek_output(&self) -> Option<&FuOutput> {
        self.pending_out.as_ref()
    }

    fn ack_output(&mut self) -> FuOutput {
        self.pending_out.take().expect("ack with no pending output")
    }

    fn is_idle(&self) -> bool {
        self.pending_in.is_none() && self.pending_out.is_none() && self.inner.is_idle()
    }

    fn needs_clock_when_idle(&self) -> bool {
        // The divider phase advances every fast cycle, idle or not; an
        // activity-gated scheduler must keep clocking the wrapper so the
        // slow-domain edges stay aligned with the system clock.
        true
    }

    fn advance_idle(&mut self, cycles: u64) {
        // `cycles` idle fast-cycle commits advance the phase counter and
        // fire a slow edge at every wrap; while idle those edges only
        // clock the (idle) inner unit.
        let total = self.phase as u64 + cycles;
        self.inner.advance_idle(total / self.divider as u64);
        self.phase = (total % self.divider as u64) as u32;
    }

    fn wake_hint(&self) -> Option<u64> {
        // Observable changes only surface at slow-domain edges. The next
        // edge is `divider - phase` fast cycles out; an inner unit that
        // bounds its own change at `h` slow commits pushes the bound to
        // the `h`-th edge. A synchronised dispatch or an unbounded inner
        // unit pins the hint to the next edge, which is still exact: the
        // fast cycles in between cannot change the interface.
        if self.pending_out.is_some() {
            return None;
        }
        let to_edge = u64::from(self.divider - self.phase);
        if self.pending_in.is_some() {
            return Some(to_edge);
        }
        match self.inner.wake_hint() {
            Some(h) if h >= 1 => {
                Some(to_edge.saturating_add((h - 1).saturating_mul(u64::from(self.divider))))
            }
            _ => Some(to_edge),
        }
    }

    fn advance_busy(&mut self, cycles: u64) {
        // Closed form for `cycles` fast commits: the phase wraps
        // (phase + cycles) / divider times; each wrap is one slow edge.
        // The hint guarantees at most one edge while a dispatch waits at
        // the crossing (it is bounded by the next edge), so the bulk of
        // the edges can be forwarded to the inner unit's own bulk hook.
        let div = u64::from(self.divider);
        let total = u64::from(self.phase) + cycles;
        let mut edges = total / div;
        self.phase = (total % div) as u32;
        if edges == 0 {
            return;
        }
        if let Some(pkt) = self.pending_in.take() {
            debug_assert!(self.inner.can_dispatch(), "admission checked at dispatch");
            self.inner.dispatch(pkt);
            self.inner.commit();
            edges -= 1;
        }
        if edges > 0 {
            self.inner.advance_busy(edges);
        }
        if self.pending_out.is_none() && self.inner.peek_output().is_some() {
            self.pending_out = Some(self.inner.ack_output());
        }
    }

    fn variety_writes_data(&self, v: u8) -> bool {
        self.inner.variety_writes_data(v)
    }

    fn variety_writes_flags(&self, v: u8) -> bool {
        self.inner.variety_writes_flags(v)
    }

    fn variety_reads_flags(&self, v: u8) -> bool {
        self.inner.variety_reads_flags(v)
    }

    fn variety_reads_srcs(&self, v: u8) -> [bool; 3] {
        self.inner.variety_reads_srcs(v)
    }

    fn clone_unit(&self) -> Option<Box<dyn FunctionalUnit>> {
        Some(Box::new(self.clone()))
    }

    fn area(&self) -> AreaEstimate {
        // Inner unit + two synchroniser register banks.
        self.inner.area() + AreaEstimate::register(2 * (32 + 16))
    }

    fn critical_path(&self) -> CriticalPath {
        // The whole point: the inner path is cut by the divider from the
        // system clock's perspective (it has `divider` cycles to settle);
        // only the synchronisers load the fast domain.
        let effective = self
            .inner
            .critical_path()
            .levels
            .div_ceil(self.divider as u64);
        CriticalPath::of(effective.max(2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::testutil::{pkt, IdKernel};
    use crate::minimal::MinimalFu;

    fn wrapped(divider: u32) -> ClockDomainFu<MinimalFu<IdKernel>> {
        ClockDomainFu::new(MinimalFu::new(IdKernel { bits: 32 }, false), divider)
    }

    fn cycles_to_output(fu: &mut ClockDomainFu<MinimalFu<IdKernel>>) -> u32 {
        let mut cycles = 0;
        while fu.peek_output().is_none() {
            fu.commit();
            cycles += 1;
            assert!(cycles < 1000, "output overdue");
        }
        cycles
    }

    #[test]
    fn divider_one_is_transparent() {
        let mut fu = wrapped(1);
        fu.dispatch(pkt(0, 5, 0, 32));
        let c = cycles_to_output(&mut fu);
        assert!(
            c <= 2,
            "divider 1 adds at most the crossing register, took {c}"
        );
        assert_eq!(fu.ack_output().data.unwrap().1.as_u64(), 5);
    }

    #[test]
    fn latency_scales_with_divider() {
        let mut fast = wrapped(1);
        fast.dispatch(pkt(0, 1, 0, 32));
        let c1 = cycles_to_output(&mut fast);
        let mut slow = wrapped(4);
        slow.dispatch(pkt(0, 1, 0, 32));
        let c4 = cycles_to_output(&mut slow);
        assert!(
            c4 >= 3 * c1.max(1),
            "divider 4 should roughly quadruple latency: {c1} -> {c4}"
        );
        assert_eq!(slow.ack_output().data.unwrap().1.as_u64(), 1);
    }

    #[test]
    fn results_are_identical_across_domains() {
        for divider in [1u32, 2, 3, 7] {
            let mut fu = wrapped(divider);
            fu.dispatch(pkt(0, 42, 0, 32));
            cycles_to_output(&mut fu);
            let out = fu.ack_output();
            assert_eq!(out.data.unwrap().1.as_u64(), 42, "divider {divider}");
            assert!(fu.is_idle());
        }
    }

    #[test]
    fn crossing_holds_one_dispatch() {
        let mut fu = wrapped(8);
        fu.dispatch(pkt(0, 1, 0, 32));
        assert!(
            !fu.can_dispatch(),
            "the synchroniser slot is single-entry until the slow edge"
        );
        fu.commit();
        assert!(!fu.can_dispatch(), "inner unit busy now");
    }

    #[test]
    fn critical_path_shrinks_with_divider() {
        let one = wrapped(1).critical_path();
        let four = wrapped(4).critical_path();
        assert!(four <= one);
    }

    #[test]
    fn reset_clears_crossing_state() {
        let mut fu = wrapped(4);
        fu.dispatch(pkt(0, 1, 0, 32));
        fu.commit();
        fu.reset();
        assert!(fu.is_idle());
        assert!(fu.can_dispatch());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_divider_rejected() {
        wrapped(0);
    }

    #[test]
    fn wake_hint_and_advance_busy_match_commits() {
        use fu_rtm::testing::LatencyFu;
        // Wrap a unit with an exact hint; the wrapper must translate
        // slow-domain hints into fast cycles and bulk-advance
        // bit-identically to stepping, across every phase alignment.
        for divider in [1u32, 3, 4] {
            for lead_in in 0..divider {
                let mk = || {
                    let mut fu = ClockDomainFu::new(LatencyFu::new("slow", 1, 5), divider);
                    for _ in 0..lead_in {
                        fu.commit(); // stagger the phase before dispatch
                    }
                    fu.dispatch(pkt(0, 7, 0, 32));
                    fu
                };
                let (mut skipped, mut stepped) = (mk(), mk());
                let mut guard = 0;
                while skipped.peek_output().is_none() {
                    let h = skipped.wake_hint().expect("busy wrapper hints");
                    assert!(h >= 1);
                    skipped.advance_busy(h);
                    for _ in 0..h {
                        assert!(stepped.peek_output().is_none());
                        stepped.commit();
                    }
                    guard += 1;
                    assert!(guard < 100, "wrapper never completed");
                }
                assert!(stepped.peek_output().is_some(), "same completion cycle");
                assert_eq!(
                    skipped.ack_output().data,
                    stepped.ack_output().data,
                    "divider {divider} lead-in {lead_in}"
                );
            }
        }
    }
}
