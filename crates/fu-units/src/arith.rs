//! The arithmetic unit of the stateless case study (thesis Table 3.1).
//!
//! "The arithmetic unit is able to do binary as well as two's complement
//! additions, subtractions as well as comparisons. Multi-word operation is
//! supported through an externally provided carry bit read from the input
//! carry flag."
//!
//! The datapath is one adder; the six variety bits (see
//! [`fu_isa::variety::ArithVariety`]) select input zeroing/complementing
//! and the carry source, yielding the full ADD/ADC/SUB/SBB/INC/DEC/NEG/
//! CMP/CMPB family. The thesis's reference implementation "perform\[s\] the
//! operation in a single clock cycle" and is "able to accept an
//! instruction every second clock cycle" — i.e. a [`crate::MinimalFu`]
//! wrapper, which is what [`ArithKernel`] is designed for.

use crate::kernel::{Kernel, KernelOutput};
use fu_isa::variety::ArithVariety;
use fu_isa::{funit_codes, Word};
use fu_rtm::protocol::{AuxRole, DispatchPacket};
use rtl_sim::{AreaEstimate, CriticalPath};

/// The Table 3.1 arithmetic kernel.
#[derive(Debug, Clone)]
pub struct ArithKernel {
    word_bits: u32,
}

impl ArithKernel {
    /// An arithmetic kernel for `word_bits`-wide registers.
    pub fn new(word_bits: u32) -> ArithKernel {
        let _ = Word::zero(word_bits); // validates the width
        ArithKernel { word_bits }
    }
}

impl Kernel for ArithKernel {
    fn name(&self) -> &'static str {
        "arith"
    }

    fn func_code(&self) -> u8 {
        funit_codes::ARITH
    }

    fn aux_role(&self) -> AuxRole {
        AuxRole::FlagSource
    }

    fn word_bits(&self) -> u32 {
        self.word_bits
    }

    fn compute(&self, pkt: &DispatchPacket) -> KernelOutput {
        let v = ArithVariety(pkt.variety);
        let (data, flags) = v.evaluate(&pkt.ops[0], &pkt.ops[1], pkt.flags_in);
        KernelOutput {
            data,
            data2: None,
            flags: Some(flags),
        }
    }

    fn writes_data(&self, variety: u8) -> bool {
        ArithVariety(variety).outputs_data()
    }

    fn reads_flags(&self, variety: u8) -> bool {
        ArithVariety(variety).uses_carry_flag()
    }

    fn reads_srcs(&self, variety: u8) -> [bool; 3] {
        [
            variety & ArithVariety::FIRST_ZERO == 0,
            variety & ArithVariety::SECOND_ZERO == 0,
            false,
        ]
    }

    fn area(&self) -> AreaEstimate {
        let w = self.word_bits as u64;
        // adder + operand zero/complement muxes + flag logic
        AreaEstimate::adder(w) + AreaEstimate::mux2(2 * w) + AreaEstimate::comparator(w)
    }

    fn critical_path(&self) -> CriticalPath {
        CriticalPath::of(1).then(CriticalPath::adder(self.word_bits as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimal::MinimalFu;
    use fu_isa::variety::ArithOp;
    use fu_isa::Flags;
    use fu_rtm::protocol::{FunctionalUnit, LockTicket};
    use proptest::prelude::*;
    use rtl_sim::Clocked;

    fn pkt(op: ArithOp, a: u64, b: u64, flags_in: Flags) -> DispatchPacket {
        DispatchPacket {
            variety: op.variety().0,
            ops: [Word::from_u64(a, 32), Word::from_u64(b, 32), Word::zero(32)],
            flags_in,
            dst_reg: 1,
            dst2_reg: None,
            dst_flag: 0,
            imm8: 0,
            ticket: LockTicket::default(),
            seq: 0,
        }
    }

    #[test]
    fn metadata_mirrors_table_3_1() {
        let k = ArithKernel::new(32);
        for op in ArithOp::ALL {
            let v = op.variety().0;
            assert_eq!(
                k.writes_data(v),
                !matches!(op, ArithOp::Cmp | ArithOp::Cmpb),
                "{op:?} data"
            );
            assert_eq!(
                k.reads_flags(v),
                matches!(op, ArithOp::Adc | ArithOp::Sbb | ArithOp::Cmpb),
                "{op:?} flags"
            );
            assert!(k.writes_flags(v), "{op:?} always writes flags");
        }
        // INC reads only the first source, NEG only the second.
        assert_eq!(k.reads_srcs(ArithOp::Inc.variety().0), [true, false, false]);
        assert_eq!(k.reads_srcs(ArithOp::Neg.variety().0), [false, true, false]);
        assert_eq!(k.reads_srcs(ArithOp::Add.variety().0), [true, true, false]);
    }

    #[test]
    fn through_minimal_skeleton() {
        let mut fu = MinimalFu::new(ArithKernel::new(32), false);
        fu.dispatch(pkt(ArithOp::Sub, 100, 58, Flags::NONE));
        fu.commit();
        let out = fu.ack_output();
        assert_eq!(out.data.unwrap().1.as_u64(), 42);
        let (_, f) = out.flags.unwrap();
        assert!(f.carry(), "no borrow");
        assert!(!f.zero());
    }

    #[test]
    fn cmp_produces_flags_only() {
        let mut fu = MinimalFu::new(ArithKernel::new(32), false);
        fu.dispatch(pkt(ArithOp::Cmp, 7, 7, Flags::NONE));
        fu.commit();
        let out = fu.ack_output();
        assert!(out.data.is_none());
        assert!(out.flags.unwrap().1.zero());
    }

    #[test]
    fn wide_word_instantiation() {
        let k = ArithKernel::new(128);
        let p = DispatchPacket {
            variety: ArithOp::Add.variety().0,
            ops: [
                Word::from_u128(u128::MAX, 128),
                Word::from_u128(1, 128),
                Word::zero(128),
            ],
            flags_in: Flags::NONE,
            dst_reg: 0,
            dst2_reg: None,
            dst_flag: 0,
            imm8: 0,
            ticket: LockTicket::default(),
            seq: 0,
        };
        let out = k.compute(&p);
        assert!(out.data.unwrap().is_zero());
        assert!(out.flags.unwrap().carry());
    }

    #[test]
    fn area_scales_with_word_size() {
        assert!(ArithKernel::new(128).area().les > ArithKernel::new(32).area().les);
        assert!(ArithKernel::new(128).critical_path() > ArithKernel::new(32).critical_path());
    }

    proptest! {
        #[test]
        fn prop_kernel_matches_reference_semantics(
            op_idx in 0usize..9, a: u32, b: u32, carry: bool,
        ) {
            let op = ArithOp::ALL[op_idx];
            let flags_in = if carry { Flags::CARRY } else { Flags::NONE };
            let k = ArithKernel::new(32);
            let out = k.compute(&pkt(op, a as u64, b as u64, flags_in));
            // Independent reference model over u64 arithmetic.
            let c_in = match op {
                ArithOp::Adc | ArithOp::Sbb | ArithOp::Cmpb => carry,
                ArithOp::Sub | ArithOp::Inc | ArithOp::Neg | ArithOp::Cmp => true,
                _ => false,
            };
            let x = match op {
                ArithOp::Neg => 0u64,
                _ => a as u64,
            };
            let y = match op {
                ArithOp::Inc | ArithOp::Dec => 0u32,
                _ => b,
            };
            let y = match op {
                ArithOp::Sub | ArithOp::Sbb | ArithOp::Neg | ArithOp::Dec
                | ArithOp::Cmp | ArithOp::Cmpb => !y,
                _ => y,
            } as u64;
            let full = x + y + c_in as u64;
            let expect = full as u32;
            match op {
                ArithOp::Cmp | ArithOp::Cmpb => prop_assert!(out.data.is_none()),
                _ => prop_assert_eq!(out.data.unwrap().as_u64(), expect as u64),
            }
            let f = out.flags.unwrap();
            prop_assert_eq!(f.carry(), full >> 32 != 0);
            prop_assert_eq!(f.zero(), expect == 0);
            prop_assert_eq!(f.neg(), expect >> 31 == 1);
        }
    }
}
