//! A CRC-32 update unit — the classic "long sequence of ordinary
//! instructions" accelerator.
//!
//! The paper's selection criteria for functional units: operations that
//! "require a relatively long sequence of ordinary instructions to
//! perform; they can be performed much more quickly using circuit
//! techniques; they are executed frequently." A table-less CRC-32 is
//! 8 instructions *per bit* in software but one XOR cone per bit in
//! hardware — the textbook fit.
//!
//! The kernel is *stateless*: it computes one CRC-32 (IEEE, reflected,
//! polynomial `0xEDB88320`) update of the running value in `src2` with
//! the 4 data bytes in `src1`. The running CRC lives in an ordinary data
//! register, so long messages chain through the register file with the
//! framework's own interlocks — no unit-local state needed, which is
//! exactly the stateless-unit discipline of §IV-A.

use crate::kernel::{Kernel, KernelOutput};
use fu_isa::{Flags, Word};
use fu_rtm::protocol::DispatchPacket;
use rtl_sim::{AreaEstimate, CriticalPath};

/// Variety bit: finalise (XOR with `0xFFFF_FFFF`) after updating.
pub const CRC_FINALIZE: u8 = 1 << 0;
/// Variety bit: initialise the running value to `0xFFFF_FFFF` first
/// (start of message), ignoring `src2`.
pub const CRC_INIT: u8 = 1 << 1;

/// Default function code for the CRC unit.
pub const CRC_FUNC_CODE: u8 = 22;

// The polynomial network itself lives in `fu_isa::crc` so the reliable
// link transport and this functional unit share one implementation — the
// same reuse a real design gets by instantiating a single CRC core in both
// the transceiver and the unit library.
pub use fu_isa::crc::{crc32, crc32_byte, crc32_word};

/// The CRC-32 update kernel.
#[derive(Debug, Clone)]
pub struct CrcKernel {
    word_bits: u32,
}

impl CrcKernel {
    /// A CRC kernel for `word_bits`-wide registers (the CRC itself is
    /// always the low 32 bits).
    pub fn new(word_bits: u32) -> CrcKernel {
        let _ = Word::zero(word_bits);
        CrcKernel { word_bits }
    }
}

impl Kernel for CrcKernel {
    fn name(&self) -> &'static str {
        "crc32"
    }

    fn func_code(&self) -> u8 {
        CRC_FUNC_CODE
    }

    fn word_bits(&self) -> u32 {
        self.word_bits
    }

    fn compute(&self, pkt: &DispatchPacket) -> KernelOutput {
        let data = pkt.ops[0].as_u64() as u32;
        let running = if pkt.variety & CRC_INIT != 0 {
            0xffff_ffff
        } else {
            pkt.ops[1].as_u64() as u32
        };
        let mut crc = crc32_word(running, data);
        if pkt.variety & CRC_FINALIZE != 0 {
            crc = !crc;
        }
        let out = Word::from_u64(crc as u64, self.word_bits);
        KernelOutput {
            data: Some(out),
            data2: None,
            flags: Some(Flags::from_parts(false, crc == 0, false, false)),
        }
    }

    fn reads_srcs(&self, variety: u8) -> [bool; 3] {
        [true, variety & CRC_INIT == 0, false]
    }

    fn area(&self) -> AreaEstimate {
        // 32 bits of XOR cone over the byte-unrolled polynomial network.
        AreaEstimate {
            les: 32 * 8,
            ffs: 0,
            bram_bits: 0,
        }
    }

    fn critical_path(&self) -> CriticalPath {
        // Four byte stages of XOR trees.
        CriticalPath::of(4 * 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimal::MinimalFu;
    use fu_rtm::protocol::{FunctionalUnit, LockTicket};
    use proptest::prelude::*;
    use rtl_sim::Clocked;

    fn pkt(variety: u8, data: u64, running: u64) -> DispatchPacket {
        DispatchPacket {
            variety,
            ops: [
                Word::from_u64(data, 32),
                Word::from_u64(running, 32),
                Word::zero(32),
            ],
            flags_in: Flags::NONE,
            dst_reg: 1,
            dst2_reg: None,
            dst_flag: 0,
            imm8: 0,
            ticket: LockTicket::default(),
            seq: 0,
        }
    }

    #[test]
    fn reference_matches_known_vector() {
        // The canonical CRC-32 check value: crc32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn chained_updates_match_reference() {
        // "12345678" as two little-endian words, finalised on the last.
        let k = CrcKernel::new(32);
        let w1 = u32::from_le_bytes(*b"1234");
        let w2 = u32::from_le_bytes(*b"5678");
        let step1 = k
            .compute(&pkt(CRC_INIT, w1 as u64, 0))
            .data
            .unwrap()
            .as_u64();
        let step2 = k
            .compute(&pkt(CRC_FINALIZE, w2 as u64, step1))
            .data
            .unwrap()
            .as_u64();
        assert_eq!(step2 as u32, crc32(b"12345678"));
    }

    #[test]
    fn through_minimal_skeleton() {
        let mut fu = MinimalFu::new(CrcKernel::new(32), false);
        fu.dispatch(pkt(
            CRC_INIT | CRC_FINALIZE,
            u32::from_le_bytes(*b"abcd") as u64,
            0,
        ));
        fu.commit();
        let out = fu.ack_output();
        assert_eq!(out.data.unwrap().1.as_u64() as u32, crc32(b"abcd"));
    }

    #[test]
    fn init_variety_ignores_running_input() {
        let k = CrcKernel::new(32);
        let a = k.compute(&pkt(CRC_INIT, 7, 0)).data.unwrap();
        let b = k.compute(&pkt(CRC_INIT, 7, 0xdead_beef)).data.unwrap();
        assert_eq!(a, b);
        assert_eq!(k.reads_srcs(CRC_INIT), [true, false, false]);
        assert_eq!(k.reads_srcs(0), [true, true, false]);
    }

    proptest! {
        #[test]
        fn prop_word_update_equals_four_byte_updates(crc: u32, word: u32) {
            let by_word = crc32_word(crc, word);
            let by_bytes = word
                .to_le_bytes()
                .iter()
                .fold(crc, |c, &b| crc32_byte(c, b));
            prop_assert_eq!(by_word, by_bytes);
        }

        #[test]
        fn prop_kernel_chain_matches_reference(words in proptest::collection::vec(any::<u32>(), 1..16)) {
            let k = CrcKernel::new(32);
            let mut running = 0u64;
            for (i, &w) in words.iter().enumerate() {
                let mut variety = 0;
                if i == 0 {
                    variety |= CRC_INIT;
                }
                if i == words.len() - 1 {
                    variety |= CRC_FINALIZE;
                }
                running = k.compute(&pkt(variety, w as u64, running)).data.unwrap().as_u64();
            }
            let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
            prop_assert_eq!(running as u32, crc32(&bytes));
        }
    }
}
