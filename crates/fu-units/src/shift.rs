//! A shift/rotate unit (extension FU).
//!
//! Not part of the thesis case study, but a textbook candidate for a
//! framework functional unit: a full barrel shifter is cheap in LUTs and
//! expensive in instructions. The variety selects SHL/SHR/SAR/ROL and
//! whether the amount comes from the second operand or from the
//! instruction's `src3` field as an immediate (see
//! [`fu_isa::variety::ShiftVariety`]).

use crate::kernel::{Kernel, KernelOutput};
use fu_isa::variety::ShiftVariety;
use fu_isa::{funit_codes, Word};
use fu_rtm::protocol::DispatchPacket;
use rtl_sim::area::log2_ceil;
use rtl_sim::{AreaEstimate, CriticalPath};

/// The barrel-shifter kernel.
#[derive(Debug, Clone)]
pub struct ShiftKernel {
    word_bits: u32,
}

impl ShiftKernel {
    /// A shift kernel for `word_bits`-wide registers.
    pub fn new(word_bits: u32) -> ShiftKernel {
        let _ = Word::zero(word_bits);
        ShiftKernel { word_bits }
    }
}

impl Kernel for ShiftKernel {
    fn name(&self) -> &'static str {
        "shift"
    }

    fn func_code(&self) -> u8 {
        funit_codes::SHIFT
    }

    fn word_bits(&self) -> u32 {
        self.word_bits
    }

    fn compute(&self, pkt: &DispatchPacket) -> KernelOutput {
        let v = ShiftVariety(pkt.variety);
        let amount = if v.imm_amount() {
            pkt.imm8 as u32
        } else {
            // Hardware uses only the low bits of the amount operand.
            pkt.ops[1].as_u64() as u32 & 0xff
        };
        let (data, flags) = v.evaluate(&pkt.ops[0], amount);
        KernelOutput {
            data: Some(data),
            data2: None,
            flags: Some(flags),
        }
    }

    fn reads_srcs(&self, variety: u8) -> [bool; 3] {
        [true, !ShiftVariety(variety).imm_amount(), false]
    }

    fn area(&self) -> AreaEstimate {
        // A barrel shifter: log2(w) mux stages of w bits each.
        let w = self.word_bits as u64;
        let stages = log2_ceil(w);
        AreaEstimate::mux2(w * stages)
    }

    fn critical_path(&self) -> CriticalPath {
        CriticalPath::of(log2_ceil(self.word_bits as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fu_isa::Flags;
    use fu_rtm::protocol::LockTicket;
    use proptest::prelude::*;

    fn pkt(variety: u8, a: u64, b: u64, imm8: u8) -> DispatchPacket {
        DispatchPacket {
            variety,
            ops: [Word::from_u64(a, 32), Word::from_u64(b, 32), Word::zero(32)],
            flags_in: Flags::NONE,
            dst_reg: 1,
            dst2_reg: None,
            dst_flag: 0,
            imm8,
            ticket: LockTicket::default(),
            seq: 0,
        }
    }

    #[test]
    fn register_amount() {
        let k = ShiftKernel::new(32);
        let out = k.compute(&pkt(ShiftVariety::SHL.0, 1, 8, 0));
        assert_eq!(out.data.unwrap().as_u64(), 256);
    }

    #[test]
    fn immediate_amount_ignores_operand() {
        let k = ShiftKernel::new(32);
        let v = ShiftVariety::SHR.0 | ShiftVariety::IMM_AMOUNT;
        let out = k.compute(&pkt(v, 0x100, 999, 4));
        assert_eq!(out.data.unwrap().as_u64(), 0x10);
        assert_eq!(k.reads_srcs(v), [true, false, false]);
        assert_eq!(k.reads_srcs(ShiftVariety::SHR.0), [true, true, false]);
    }

    #[test]
    fn arithmetic_shift_sign_extends() {
        let k = ShiftKernel::new(32);
        let out = k.compute(&pkt(ShiftVariety::SAR.0, 0x8000_0000, 31, 0));
        assert_eq!(out.data.unwrap().as_u64(), 0xffff_ffff);
        assert!(out.flags.unwrap().neg());
    }

    #[test]
    fn zero_result_sets_zero_flag() {
        let k = ShiftKernel::new(32);
        let out = k.compute(&pkt(ShiftVariety::SHL.0, 1, 32, 0));
        assert!(out.data.unwrap().is_zero());
        assert!(out.flags.unwrap().zero());
    }

    proptest! {
        #[test]
        fn prop_rotate_composes(a: u32, s1 in 0u32..32, s2 in 0u32..32) {
            let k = ShiftKernel::new(32);
            let once = k
                .compute(&pkt(ShiftVariety::ROL.0, a as u64, ((s1 + s2) % 32) as u64, 0))
                .data
                .unwrap();
            let first = k
                .compute(&pkt(ShiftVariety::ROL.0, a as u64, s1 as u64, 0))
                .data
                .unwrap();
            let twice = k
                .compute(&pkt(ShiftVariety::ROL.0, first.as_u64(), s2 as u64, 0))
                .data
                .unwrap();
            prop_assert_eq!(once, twice);
        }

        #[test]
        fn prop_shifts_match_native(a: u32, s in 0u32..32) {
            let k = ShiftKernel::new(32);
            let shl = k.compute(&pkt(ShiftVariety::SHL.0, a as u64, s as u64, 0)).data.unwrap();
            prop_assert_eq!(shl.as_u64(), (a << s) as u64);
            let shr = k.compute(&pkt(ShiftVariety::SHR.0, a as u64, s as u64, 0)).data.unwrap();
            prop_assert_eq!(shr.as_u64(), (a >> s) as u64);
            let sar = k.compute(&pkt(ShiftVariety::SAR.0, a as u64, s as u64, 0)).data.unwrap();
            prop_assert_eq!(sar.as_u64(), ((a as i32) >> s) as u32 as u64);
        }
    }
}
