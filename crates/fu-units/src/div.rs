//! An integer divider — the unit behind the thesis's error-flag example.
//!
//! "…an exceptional condition, e.g. a division by zero. If this flag is
//! set, the contents of the destination registers (if any) are undefined
//! by specification."
//!
//! Division is the textbook multi-cycle operation (restoring division
//! retires one quotient bit per cycle), so the divider is the natural
//! tenant of the **FSM skeleton**: wrap [`DivKernel`] in
//! [`crate::FsmFu`] with `word_bits` execute cycles. The kernel produces
//! the quotient in the first destination and the remainder in the second
//! (`aux` as [`AuxRole::SecondDest`]); a zero divisor raises the error
//! flag and leaves the destinations undefined — the reproduction writes
//! all-ones, and the specification forbids relying on it.

use crate::kernel::{Kernel, KernelOutput};
use fu_isa::{Flags, Word};
use fu_rtm::protocol::{AuxRole, DispatchPacket};
use rtl_sim::{AreaEstimate, CriticalPath};

/// Variety bit: suppress the remainder (quotient-only form).
pub const DIV_NO_REMAINDER: u8 = 1 << 0;

/// Function code of the divider (not in the thesis's table; chosen in the
/// free space and recorded in the functional-unit table).
pub const DIV_FUNC_CODE: u8 = 21;

/// The restoring-division kernel.
#[derive(Debug, Clone)]
pub struct DivKernel {
    word_bits: u32,
}

impl DivKernel {
    /// A divider kernel for `word_bits`-wide registers.
    pub fn new(word_bits: u32) -> DivKernel {
        let _ = Word::zero(word_bits);
        DivKernel { word_bits }
    }

    /// The recommended FSM wrapper: one execute cycle per quotient bit.
    pub fn recommended_unit(word_bits: u32) -> crate::FsmFu<DivKernel> {
        crate::FsmFu::new(DivKernel::new(word_bits), word_bits)
    }
}

impl Kernel for DivKernel {
    fn name(&self) -> &'static str {
        "div"
    }

    fn func_code(&self) -> u8 {
        DIV_FUNC_CODE
    }

    fn aux_role(&self) -> AuxRole {
        AuxRole::SecondDest
    }

    fn word_bits(&self) -> u32 {
        self.word_bits
    }

    fn compute(&self, pkt: &DispatchPacket) -> KernelOutput {
        let dividend = pkt.ops[0].as_u128();
        let divisor = pkt.ops[1].as_u128();
        let no_rem = pkt.variety & DIV_NO_REMAINDER != 0;
        if divisor == 0 {
            // Destinations undefined by specification; error flag set.
            let undefined = Word::from_u128(u128::MAX, self.word_bits);
            let mut flags = Flags::NONE;
            flags.set(Flags::ERROR, true);
            return KernelOutput {
                data: Some(undefined),
                data2: (!no_rem).then_some(undefined),
                flags: Some(flags),
            };
        }
        let q = Word::from_u128(dividend / divisor, self.word_bits);
        let r = Word::from_u128(dividend % divisor, self.word_bits);
        let flags = Flags::from_parts(false, q.is_zero(), q.msb(), false);
        KernelOutput {
            data: Some(q),
            data2: (!no_rem).then_some(r),
            flags: Some(flags),
        }
    }

    fn area(&self) -> AreaEstimate {
        // One subtract/restore datapath plus quotient/remainder registers.
        let w = self.word_bits as u64;
        AreaEstimate::adder(w) + AreaEstimate::mux2(w) + AreaEstimate::register(3 * w)
    }

    fn critical_path(&self) -> CriticalPath {
        // Per-cycle: one conditional subtract.
        CriticalPath::adder(self.word_bits as u64).then(CriticalPath::of(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsm::FsmFu;
    use fu_rtm::protocol::{FunctionalUnit, LockTicket};
    use proptest::prelude::*;
    use rtl_sim::Clocked;

    fn pkt(a: u64, b: u64, variety: u8) -> DispatchPacket {
        DispatchPacket {
            variety,
            ops: [Word::from_u64(a, 32), Word::from_u64(b, 32), Word::zero(32)],
            flags_in: Flags::NONE,
            dst_reg: 1,
            dst2_reg: Some(2),
            dst_flag: 0,
            imm8: 0,
            ticket: LockTicket::default(),
            seq: 0,
        }
    }

    #[test]
    fn quotient_and_remainder() {
        let k = DivKernel::new(32);
        let out = k.compute(&pkt(100, 7, 0));
        assert_eq!(out.data.unwrap().as_u64(), 14);
        assert_eq!(out.data2.unwrap().as_u64(), 2);
        assert!(!out.flags.unwrap().error());
    }

    #[test]
    fn division_by_zero_sets_error_flag() {
        let k = DivKernel::new(32);
        let out = k.compute(&pkt(5, 0, 0));
        assert!(out.flags.unwrap().error());
        // Destinations exist but are undefined by specification.
        assert!(out.data.is_some());
    }

    #[test]
    fn quotient_only_variety() {
        let k = DivKernel::new(32);
        let out = k.compute(&pkt(100, 7, DIV_NO_REMAINDER));
        assert!(out.data2.is_none());
    }

    #[test]
    fn multi_cycle_through_fsm_skeleton() {
        let mut fu = DivKernel::recommended_unit(32);
        fu.dispatch(pkt(1000, 3, 0));
        // 32 execute cycles + send states; no early output.
        for _ in 0..32 {
            assert!(fu.peek_output().is_none());
            fu.commit();
        }
        let mut budget = 8;
        while fu.peek_output().is_none() {
            fu.commit();
            budget -= 1;
            assert!(budget > 0, "output overdue");
        }
        let out = fu.ack_output();
        assert_eq!(out.data.unwrap().1.as_u64(), 333);
        assert_eq!(out.data2.unwrap().1.as_u64(), 1);
    }

    #[test]
    fn wide_word_division() {
        let k = DivKernel::new(128);
        let p = DispatchPacket {
            variety: 0,
            ops: [
                Word::from_u128(u128::MAX - 1, 128),
                Word::from_u128(3, 128),
                Word::zero(128),
            ],
            flags_in: Flags::NONE,
            dst_reg: 1,
            dst2_reg: Some(2),
            dst_flag: 0,
            imm8: 0,
            ticket: LockTicket::default(),
            seq: 0,
        };
        let out = k.compute(&p);
        assert_eq!(out.data.unwrap().as_u128(), (u128::MAX - 1) / 3);
        assert_eq!(out.data2.unwrap().as_u128(), (u128::MAX - 1) % 3);
    }

    #[test]
    fn fsm_wrapper_propagates_error_metadata() {
        let fu = FsmFu::new(DivKernel::new(32), 32);
        assert_eq!(fu.aux_role(), AuxRole::SecondDest);
        assert_eq!(fu.func_code(), DIV_FUNC_CODE);
    }

    proptest! {
        #[test]
        fn prop_matches_native_division(a: u32, b in 1u32..) {
            let k = DivKernel::new(32);
            let out = k.compute(&pkt(a as u64, b as u64, 0));
            prop_assert_eq!(out.data.unwrap().as_u64(), (a / b) as u64);
            prop_assert_eq!(out.data2.unwrap().as_u64(), (a % b) as u64);
            prop_assert!(!out.flags.unwrap().error());
        }

        #[test]
        fn prop_identity_reconstruction(a: u32, b in 1u32..) {
            let k = DivKernel::new(32);
            let out = k.compute(&pkt(a as u64, b as u64, 0));
            let q = out.data.unwrap().as_u64();
            let r = out.data2.unwrap().as_u64();
            prop_assert_eq!(q * b as u64 + r, a as u64);
            prop_assert!(r < b as u64);
        }
    }
}
